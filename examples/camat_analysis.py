#!/usr/bin/env python
"""C-AMAT anatomy: the paper's Fig. 1 example and the five dimensions.

First replays the worked example of Section II through the C-AMAT analyzer
(five accesses, two misses, one pure miss) and verifies the paper's numbers
(AMAT = 3.8, C-AMAT = 1.6).  Then demonstrates the five optimization
dimensions of Eq. (2) — H, C_H, pMR, pAMP, C_M — with what-if analysis on a
measured workload: which single parameter change buys the most?

Run:  python examples/camat_analysis.py
"""

from repro import DEFAULT_MACHINE, get_benchmark, measure_layer, simulate_and_measure
from repro.core import format_layer_measurement
from repro.core.camat import CAMATParams


def fig1_example() -> None:
    print("=" * 72)
    print("Fig. 1 worked example (Section II)")
    print("=" * 72)
    # Five accesses, 3 hit-operation cycles each; A3 misses with 2 pure
    # miss cycles, A4's single overlapped miss cycle hides under A5's hits.
    hit_start = [1, 1, 3, 3, 4]
    hit_end = [4, 4, 6, 6, 7]
    miss_start = [0, 0, 6, 6, 0]
    miss_end = [0, 0, 9, 7, 0]
    m = measure_layer(hit_start, hit_end, miss_start, miss_end)
    print(format_layer_measurement("Fig. 1 cache", m))
    print()
    print(f"paper: AMAT = 3 + 0.4 x 2 = 3.8      -> measured {m.amat:.2f}")
    print(f"paper: C-AMAT = 3/(5/2) + 1/5 x 2/1  -> measured {m.camat:.2f}")
    print(f"concurrency improved memory performance by {m.amat / m.camat:.2f}x\n")


def what_if_analysis() -> None:
    print("=" * 72)
    print("Five-dimension what-if analysis (Eq. 2) on 403.gcc")
    print("=" * 72)
    trace = get_benchmark("403.gcc").trace(20_000, seed=3)
    _, stats = simulate_and_measure(DEFAULT_MACHINE, trace, seed=0)
    base = stats.l1.camat_params
    print(f"measured L1 parameters: H={base.hit_time:.1f} C_H={base.hit_concurrency:.2f} "
          f"pMR={base.pure_miss_rate:.3f} pAMP={base.pure_miss_penalty:.1f} "
          f"C_M={base.pure_miss_concurrency:.2f}")
    print(f"measured C-AMAT1 = {base.value:.3f} cycles/access\n")

    scenarios: list[tuple[str, CAMATParams]] = [
        ("halve hit time H", base.with_(hit_time=base.hit_time / 2)),
        ("double hit concurrency C_H",
         base.with_(hit_concurrency=2 * base.hit_concurrency)),
        ("halve pure miss rate pMR",
         base.with_(pure_miss_rate=base.pure_miss_rate / 2)),
        ("halve pure miss penalty pAMP",
         base.with_(pure_miss_penalty=base.pure_miss_penalty / 2)),
        ("double pure miss concurrency C_M",
         base.with_(pure_miss_concurrency=2 * base.pure_miss_concurrency)),
    ]
    print(f"{'what-if':38s} {'C-AMAT':>8s} {'improvement':>12s}")
    for name, params in scenarios:
        gain = base.value / params.value
        print(f"{name:38s} {params.value:8.3f} {gain:11.2f}x")
    print("\nThe biggest lever differs per workload: locality-bound codes gain")
    print("from pMR, concurrency-starved ones from C_H/C_M — exactly the")
    print("diagnosis the LPM algorithm automates.")


if __name__ == "__main__":
    fig1_example()
    what_if_analysis()
