#!/usr/bin/env python
"""Characterize simulated machines with lmbench-style probes.

Before trusting an experiment on a simulated machine, measure the machine:
dependent-chase latency per footprint, streaming bandwidth per footprint,
and usable memory-level parallelism.  The probes recover the configured
hierarchy purely from observed behaviour — a useful sanity ritual and a
compact illustration of how locality (latency ladder) and concurrency
(bandwidth, MLP) are distinct resources, which is the premise of C-AMAT.

Run:  python examples/machine_characterization.py
"""

from repro.core import render_table
from repro.sim import table1_config
from repro.workloads.micro import characterize

KB = 1024
FOOTPRINTS = (8 * KB, 64 * KB, 4 << 20)


def main() -> None:
    profiles = [characterize(table1_config(label), footprints=FOOTPRINTS)
                for label in ("A", "D")]

    labels = [p.config_name for p in profiles]
    rows = []
    for fp in FOOTPRINTS:
        rows.append((f"latency @ {fp // KB} KB (cycles)",
                     *(p.latency_cycles[fp] for p in profiles)))
    for fp in FOOTPRINTS:
        rows.append((f"bandwidth @ {fp // KB} KB (lines/cyc)",
                     *(p.bandwidth_lines_per_cycle[fp] for p in profiles)))
    rows.append(("usable MLP (outstanding misses)", *(p.mlp for p in profiles)))

    print(render_table(
        ["probe", *labels], rows, float_fmt="{:.3f}",
        title="Machine characterization: Table I configurations A vs D",
    ))
    print("\nReading the table: the latency ladder (locality) is identical —")
    print("A and D share the same caches.  What D buys is *concurrency*:")
    print("4x the L1 bandwidth (ports) and 4x the usable MLP (MSHRs +")
    print("window).  That is precisely the C-AMAT claim: modern memory")
    print("performance is a concurrency resource, not just a latency one.")


if __name__ == "__main__":
    main()
