#!/usr/bin/env python
"""Case Study I: LPM-guided exploration of a reconfigurable architecture.

Runs the Fig. 3 algorithm twice over the bwaves-like workload:

1. along the paper's Table I ladder A -> B -> C -> D (with E as the
   over-provision trim), printing the LPMR walk; and
2. as a greedy search over the full six-knob design space, showing how few
   of the thousands of configurations LPM needs to evaluate.

Run:  python examples/reconfigurable_exploration.py
"""

from repro import LPMAlgorithm, get_benchmark, table1_config
from repro.core import format_run_result
from repro.reconfig import DesignSpace, GreedyReconfigBackend, LadderBackend

N_ACCESSES = 30_000
SEED = 7
# Stall targets scaled to this substrate (see EXPERIMENTS.md E3): the
# pure-Python scaled hierarchy cannot reach the paper's 1%, but the walk's
# structure — coarse target met first, fine target met later, then trim —
# is preserved.
DELTA_COARSE = 250.0
DELTA_FINE = 150.0


def ladder_walk() -> None:
    print("=" * 72)
    print("Table I ladder walk (configurations A..E)")
    print("=" * 72)
    trace = get_benchmark("410.bwaves").trace(N_ACCESSES, seed=SEED)
    backend = LadderBackend(
        [table1_config(c) for c in "ABCD"],
        trace,
        deprovision_configs=[table1_config("E")],
    )
    algo = LPMAlgorithm(delta_percent=DELTA_FINE, delta_slack_fraction=0.5, max_steps=10)
    result = algo.run(backend)
    print(format_run_result(result))
    print(f"\nsimulations spent: {backend.log.evaluations}")
    stall = result.final_report.predicted_stall_fraction_of_compute()
    print(f"final stall: {100 * stall:.1f}% of CPI_exe (target {DELTA_FINE:.0f}%)\n")


def greedy_search() -> None:
    print("=" * 72)
    print("Greedy six-knob design-space search")
    print("=" * 72)
    trace = get_benchmark("410.bwaves").trace(N_ACCESSES, seed=SEED)
    space = DesignSpace()
    print(f"design space size: {space.size():,} configurations")
    backend = GreedyReconfigBackend(space, trace, delta_percent=DELTA_COARSE)
    algo = LPMAlgorithm(delta_percent=DELTA_COARSE, delta_slack_fraction=0.5, max_steps=12)
    result = algo.run(backend, allow_deprovision=False)
    print(format_run_result(result))
    print(f"\nsimulations spent: {backend.log.evaluations} "
          f"({100 * backend.log.evaluations / space.size():.3f}% of the space)")
    print(f"final configuration: {backend.describe()}")


if __name__ == "__main__":
    ladder_walk()
    greedy_search()
