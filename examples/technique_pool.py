#!/usr/bin/env python
"""The full LPM workflow: measure, diagnose, deploy a technique, repeat.

The paper's framing: dozens of memory optimizations exist (a "technique
pool"), but they compete for budget and can conflict — LPM's job is to say
*when and which*.  This example closes the loop on a pointer-chase + hot-set
workload:

1. measure on a starved machine and print the diagnosis;
2. deploy the top recommendation, re-measure, print the next diagnosis;
3. continue until the matching test passes or the pool is empty.

Each deployment is a real mechanism in the simulator (ports, MSHRs,
window, prefetcher, stream bypass), so the diagnosis is validated by the
improvement it predicts.

Run:  python examples/technique_pool.py
"""

from repro.core import render_table
from repro.core.diagnosis import diagnose
from repro.sim import DEFAULT_MACHINE, simulate_and_measure
from repro.sim.prefetch import BypassConfig, PrefetchConfig
from repro.workloads.generators import KernelSpec
from repro.workloads.spec import BenchmarkProfile

KB, MB = 1024, 1024 * 1024
N_ACCESSES = 20_000


def make_workload():
    profile = BenchmarkProfile(
        name="mixed-pain",
        kernels=(
            KernelSpec("working_set", 0.45, 3 * KB),
            KernelSpec("strided", 0.35, 2 * MB, stride_bytes=64),
            KernelSpec("working_set", 0.20, 8 * MB, burst_length=8),
        ),
        compute_per_access=1.5,
        ilp_dependency=0.5,
    )
    return profile.trace(N_ACCESSES, seed=9)


#: dimension -> (technique label, config transformation)
DEPLOYMENTS = {
    "C_H": ("add L1 ports (1 -> 4, pipelined)",
            lambda c: c.with_knobs(l1_ports=4).with_(l1_pipelined=True)),
    "C_M": ("add MSHRs (-> 16) and window (-> 128)",
            lambda c: c.with_knobs(mshr_count=16, iw_size=128, rob_size=128)),
    "pMR": ("stream bypass + stride prefetcher",
            lambda c: c.with_(l1_bypass=BypassConfig(),
                              prefetch=PrefetchConfig(degree=4, distance=2))),
    "pAMP": ("double DRAM banks (8 -> 16)",
             lambda c: c.with_(dram=__import__("dataclasses").replace(
                 c.dram, n_banks=16))),
}


def main() -> None:
    trace = make_workload()
    config = DEFAULT_MACHINE.with_knobs(
        mshr_count=4, l1_ports=1, iw_size=32, rob_size=32, name="starved"
    )
    history = []
    deployed: set[str] = set()
    for step in range(6):
        _, stats = simulate_and_measure(config, trace, seed=0)
        findings = diagnose(stats, config)
        top = findings[0]
        history.append((
            step, config.name, stats.cpi,
            100 * stats.stall_fraction_of_compute, top.dimension,
        ))
        print(f"step {step}: CPI={stats.cpi:.2f} "
              f"stall={100 * stats.stall_fraction_of_compute:.0f}% "
              f"-> top finding [{top.dimension}] {top.evidence}")
        if top.dimension == "matched":
            print("  matched — stopping.")
            break
        candidates = [d for d in (f.dimension for f in findings)
                      if d in DEPLOYMENTS and d not in deployed]
        if not candidates:
            print("  technique pool exhausted for the remaining findings.")
            break
        dim = candidates[0]
        label, transform = DEPLOYMENTS[dim]
        print(f"  deploying: {label}")
        config = transform(config).with_(name=f"{config.name}+{dim}")
        deployed.add(dim)

    print()
    print(render_table(
        ["step", "configuration", "CPI", "stall % of CPI_exe", "top finding"],
        history, float_fmt="{:.2f}",
        title="Technique-pool walk, LPM-diagnosed",
    ))
    first, last = history[0], history[-1]
    print(f"\nend-to-end: CPI {first[2]:.2f} -> {last[2]:.2f} "
          f"({first[2] / last[2]:.2f}x) in {len(history) - 1} deployments, "
          "each chosen by measurement rather than guesswork.")


if __name__ == "__main__":
    main()
