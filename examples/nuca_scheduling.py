#!/usr/bin/env python
"""Case Study II: NUCA-aware scheduling on heterogeneous L1 caches.

Profiles the sixteen SPEC-like benchmarks on the Fig. 5 machine (four
4-core groups with 4/16/32/64 KB private L1), then compares Random,
Round-Robin and NUCA-SA (coarse- and fine-grained) by harmonic weighted
speedup under the shared-L2 contention model — the Fig. 8 experiment.

Run:  python examples/nuca_scheduling.py
"""

import numpy as np

from repro import (
    NUCAMachine,
    SELECTED_16,
    evaluate_schedule,
    get_benchmark,
    nuca_sa,
    profile_benchmarks,
    random_schedule,
    round_robin_schedule,
)
from repro.analysis import hsp_text

N_ACCESSES = 20_000
SEED = 3


def main() -> None:
    machine = NUCAMachine()
    print(f"machine: {machine.n_cores} cores, L1 sizes "
          f"{[s // 1024 for s in machine.core_l1_sizes]} KB")
    print(f"application-to-architecture mapping space: "
          f"{machine.mapping_space_size():,}\n")

    print("profiling 16 benchmarks on 4 L1 sizes (64 standalone simulations)...")
    profiles = [get_benchmark(name) for name in SELECTED_16]
    db = profile_benchmarks(machine, profiles, n_mem=N_ACCESSES, seed=SEED)

    apps = list(SELECTED_16)
    results: dict[str, float] = {}
    rand_hsps = [
        evaluate_schedule(random_schedule(apps, machine, seed=s), db, machine).hsp
        for s in range(8)
    ]
    results["Random (avg of 8)"] = float(np.mean(rand_hsps))
    results["Round Robin"] = evaluate_schedule(
        round_robin_schedule(apps, machine), db, machine
    ).hsp
    results["NUCA-SA (cg)"] = evaluate_schedule(
        nuca_sa(apps, machine, db, grain="coarse"), db, machine
    ).hsp
    results["NUCA-SA (fg)"] = evaluate_schedule(
        nuca_sa(apps, machine, db, grain="fine"), db, machine
    ).hsp

    print()
    print(hsp_text(results))
    fg = results["NUCA-SA (fg)"]
    print(f"\nNUCA-SA (fg) vs Random:      +{100 * (fg / results['Random (avg of 8)'] - 1):.2f}%"
          f"   (paper: +12.29%)")
    print(f"NUCA-SA (fg) vs Round Robin: +{100 * (fg / results['Round Robin'] - 1):.2f}%"
          f"   (paper: +11.16%)")

    print("\nwhere the fine-grained scheduler placed each application:")
    schedule = nuca_sa(apps, machine, db, grain="fine")
    for app, size in sorted(schedule.assigned_sizes(machine), key=lambda x: (x[1], x[0])):
        print(f"  {app:18s} -> {size // 1024:2d} KB L1")


if __name__ == "__main__":
    main()
