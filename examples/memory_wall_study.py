#!/usr/bin/env python
"""The memory wall, quantified: stall time vs latency and concurrency.

The paper's framing: data stall time is 50-70% of execution time, and
hierarchy alone (locality) cannot close the gap — concurrency must hide
what locality cannot avoid.  This study measures, on the default machine:

1. how the stall fraction grows as DRAM gets slower (the wall itself);
2. how each concurrency resource (MSHRs, L1 ports, window/ROB) pushes the
   wall back, at a fixed DRAM latency — the C-AMAT view of the same data
   (C_M rises, pAMP falls);
3. the AMAT-vs-C-AMAT gap: how much the conventional model overstates the
   effective memory access time once concurrency exists.

Run:  python examples/memory_wall_study.py
"""

from dataclasses import replace

from repro import DEFAULT_MACHINE, get_benchmark, simulate_and_measure
from repro.core import render_table

N_ACCESSES = 20_000
SEED = 7


def wall_vs_dram_latency(trace) -> None:
    print("=" * 72)
    print("1. Stall fraction vs DRAM latency (config: default machine)")
    print("=" * 72)
    rows = []
    for scale in (0.5, 1.0, 2.0, 4.0):
        dram = DEFAULT_MACHINE.dram
        slow = replace(
            dram,
            t_cas=max(int(dram.t_cas * scale), 1),
            t_rcd=int(dram.t_rcd * scale),
            t_rp=int(dram.t_rp * scale),
        )
        cfg = DEFAULT_MACHINE.with_(dram=slow, name=f"dram x{scale}")
        _, st = simulate_and_measure(cfg, trace, seed=0)
        rows.append((f"x{scale}", 100 * st.stall_fraction_of_compute,
                     st.l1.pure_miss_penalty, st.lpmr1))
    print(render_table(
        ["DRAM latency", "stall % of CPI_exe", "pAMP1", "LPMR1"], rows,
        float_fmt="{:.1f}",
    ))
    print()


def concurrency_pushes_back(trace) -> None:
    print("=" * 72)
    print("2. Concurrency resources push the wall back")
    print("=" * 72)
    variants = [
        ("baseline (starved)", {}),
        ("+ MSHRs 4 -> 16", dict(mshr_count=16)),
        ("+ L1 ports 1 -> 4", dict(mshr_count=16, l1_ports=4)),
        ("+ IW/ROB 32 -> 128", dict(mshr_count=16, l1_ports=4,
                                    iw_size=128, rob_size=128)),
    ]
    rows = []
    for name, knobs in variants:
        cfg = DEFAULT_MACHINE.with_knobs(name=name, **knobs)
        _, st = simulate_and_measure(cfg, trace, seed=0)
        rows.append((
            name,
            100 * st.stall_fraction_of_compute,
            st.l1.pure_miss_concurrency,
            st.l1.pure_miss_rate,
            st.l1.camat,
        ))
    print(render_table(
        ["configuration", "stall %", "C_M1", "pMR1", "C-AMAT1"], rows,
        float_fmt="{:.2f}",
    ))
    print("\nEach resource raises pure-miss concurrency and/or converts pure")
    print("misses into overlapped ones — the LPM model's two levers.\n")


def amat_overstates(trace) -> None:
    print("=" * 72)
    print("3. AMAT vs C-AMAT across benchmarks (default machine)")
    print("=" * 72)
    rows = []
    for name in ("401.bzip2", "403.gcc", "429.mcf", "433.milc", "410.bwaves"):
        tr = get_benchmark(name).trace(N_ACCESSES, seed=SEED)
        _, st = simulate_and_measure(DEFAULT_MACHINE, tr, seed=0)
        rows.append((name, st.l1.amat, st.l1.camat, st.l1.amat / st.l1.camat))
    print(render_table(
        ["benchmark", "AMAT1", "C-AMAT1", "AMAT / C-AMAT"], rows,
        float_fmt="{:.2f}",
    ))
    print("\nPointer-chasing mcf gains nothing from concurrency (ratio ~1);")
    print("streaming codes hide most of their miss latency behind hits.")


if __name__ == "__main__":
    trace = get_benchmark("410.bwaves").trace(N_ACCESSES, seed=SEED)
    wall_vs_dram_latency(trace)
    concurrency_pushes_back(trace)
    amat_overstates(trace)
