#!/usr/bin/env python
"""Quickstart: measure a workload's layered performance matching.

Simulates the bwaves-like workload on a weak (Table I "A") and a strong
("D") machine, prints the per-layer C-AMAT decomposition and the LPM
matching snapshot for each, and shows how much of the data stall the
stronger configuration removes.

Run:  python examples/quickstart.py
"""

from repro import get_benchmark, simulate_and_measure, table1_config
from repro.core import format_layer_measurement, format_lpmr_report

N_ACCESSES = 30_000
SEED = 7


def main() -> None:
    trace = get_benchmark("410.bwaves").trace(N_ACCESSES, seed=SEED)
    print(f"workload: {trace}\n")

    stats_by_config = {}
    for label in ("A", "D"):
        config = table1_config(label)
        _, stats = simulate_and_measure(config, trace, seed=0)
        stats_by_config[label] = stats

        print("=" * 72)
        print(f"Configuration {label}: {config.knob_summary()}")
        print("=" * 72)
        print(format_layer_measurement("L1", stats.l1))
        print()
        print(format_layer_measurement("L2 (LLC)", stats.l2))
        print()
        print(format_lpmr_report(stats.lpmr_report(),
                                 title=f"LPM snapshot on configuration {label}"))
        print()

    a, d = stats_by_config["A"], stats_by_config["D"]
    print("=" * 72)
    print("Summary: what layered performance matching buys")
    print("=" * 72)
    print(f"  LPMR1:              {a.lpmr1:6.2f}  ->  {d.lpmr1:6.2f}")
    print(f"  C-AMAT1 (cycles):   {a.l1.camat:6.2f}  ->  {d.l1.camat:6.2f}")
    print(f"  stall %% of compute: {100 * a.stall_fraction_of_compute:6.1f}  ->  "
          f"{100 * d.stall_fraction_of_compute:6.1f}")
    speedup = a.cpi / d.cpi
    print(f"  end-to-end speedup A -> D: {speedup:.2f}x")


if __name__ == "__main__":
    main()
