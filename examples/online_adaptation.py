#!/usr/bin/env python
"""Online adaptation: interval-driven LPM on a bursty workload.

"All the steps are conducted on-line to adapt to the dynamic behavior of
the applications" — this example measures a bursty workload in windows,
classifies each window with the Fig. 3 case logic, and shows how the
measurement interval trades detection against reaction cost (Section V's
10/20/40-cycle interval study is regenerated in
benchmarks/bench_interval_detection.py).

Run:  python examples/online_adaptation.py
"""

from repro import DEFAULT_MACHINE, simulate_and_measure
from repro.core import render_table
from repro.core.algorithm import classify_case
from repro.workloads.phases import bursty_trace, detection_rate, generate_bursts

WINDOWS = 8
N_ACCESSES = 24_000


def windowed_measurement() -> None:
    print("=" * 72)
    print("Per-window LPM measurement on a bursty workload")
    print("=" * 72)
    trace = bursty_trace(N_ACCESSES, seed=5)
    rows = []
    per_window = trace.n_instructions // WINDOWS
    for w in range(WINDOWS):
        window = trace.slice(w * per_window, (w + 1) * per_window)
        _, st = simulate_and_measure(DEFAULT_MACHINE, window, seed=0)
        report = st.lpmr_report()
        thresholds = report.thresholds(150.0)
        case = classify_case(report, thresholds, thresholds.t1 * 0.5)
        rows.append((w, window.f_mem, report.lpmr1, thresholds.t1,
                     f"Case {case.value}"))
    print(render_table(
        ["window", "f_mem", "LPMR1", "T1", "algorithm case"], rows,
        float_fmt="{:.3f}",
    ))
    print("\nWindows dominated by bursts flag Case I/II (optimize); quiet")
    print("windows fall into the matched band or Case III (over-provision).\n")


def interval_tradeoff() -> None:
    print("=" * 72)
    print("Measurement-interval trade-off (Section V)")
    print("=" * 72)
    bursts = generate_bursts(20_000, seed=0)
    rows = []
    for interval, cost, label in ((10, 4, "hardware reconfig"),
                                  (20, 4, "hardware reconfig"),
                                  (40, 40, "software scheduling")):
        rows.append((interval, cost, label,
                     100 * detection_rate(bursts, interval, cost)))
    print(render_table(
        ["interval (cycles)", "reaction cost", "mechanism", "bursts handled timely %"],
        rows, float_fmt="{:.1f}",
    ))
    print("\npaper: 96% @ 10 cycles, 89% @ 20 (hardware), 73% @ 40 (software).")


if __name__ == "__main__":
    windowed_measurement()
    interval_tradeoff()
