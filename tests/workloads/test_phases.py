"""Tests for burst phases and the measurement-interval study (E7)."""

import numpy as np
import pytest

from repro.workloads.phases import (
    Burst,
    IntervalDetector,
    bursty_trace,
    detection_rate,
    generate_bursts,
)


class TestBurstGeneration:
    def test_bursts_are_ordered_and_disjoint(self):
        bursts = generate_bursts(200, seed=1)
        for a, b in zip(bursts, bursts[1:]):
            assert b.start >= a.end

    def test_deterministic(self):
        a = generate_bursts(50, seed=3)
        b = generate_bursts(50, seed=3)
        assert a == b

    def test_positive_durations(self):
        for burst in generate_bursts(200, seed=1):
            assert burst.duration >= 1

    def test_rejects_zero_bursts(self):
        with pytest.raises(ValueError):
            generate_bursts(0)


class TestIntervalDetector:
    def test_long_burst_always_caught(self):
        det = IntervalDetector(interval=10, reaction_cost=4)
        assert det.processes_timely(Burst(start=3, duration=1000))

    def test_short_burst_missed(self):
        det = IntervalDetector(interval=10, reaction_cost=4)
        assert not det.processes_timely(Burst(start=3, duration=5))

    def test_perceive_vs_timely(self):
        # Burst fits one interval but not the reaction cost.
        det = IntervalDetector(interval=10, reaction_cost=8)
        burst = Burst(start=0, duration=15)
        assert det.perceives(burst)
        assert not det.processes_timely(burst)

    def test_boundary_alignment_matters(self):
        det = IntervalDetector(interval=10, reaction_cost=0)
        # A 12-cycle burst starting right at a boundary is caught...
        assert det.processes_timely(Burst(start=10, duration=12))
        # ...but starting mid-interval it is not (next boundary at 20,
        # burst ends at 27 < 20+10).
        assert not det.processes_timely(Burst(start=15, duration=12))

    def test_smaller_interval_detects_more(self):
        bursts = generate_bursts(3000, seed=2)
        r10 = detection_rate(bursts, 10, 4)
        r40 = detection_rate(bursts, 40, 4)
        assert r10 > r40

    def test_higher_cost_detects_less(self):
        bursts = generate_bursts(3000, seed=2)
        assert detection_rate(bursts, 40, 4) > detection_rate(bursts, 40, 40)

    def test_paper_operating_points(self):
        """Sec. V: 10 cyc -> ~96%, 20 cyc -> ~89% (hw); 40 cyc + 40-cycle
        scheduling cost -> ~73% (sw).  Calibrated to a few percent."""
        bursts = generate_bursts(20000, seed=0)
        assert detection_rate(bursts, 10, 4) == pytest.approx(0.96, abs=0.03)
        assert detection_rate(bursts, 20, 4) == pytest.approx(0.89, abs=0.03)
        assert detection_rate(bursts, 40, 40) == pytest.approx(0.73, abs=0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            IntervalDetector(0, 4)
        with pytest.raises(ValueError):
            IntervalDetector(10, -1)
        with pytest.raises(ValueError):
            detection_rate([], 10, 4)


class TestBurstyTrace:
    def test_has_two_intensity_levels(self):
        tr = bursty_trace(3000, seed=1)
        mem_pos = np.flatnonzero(tr.is_mem)
        gaps = np.diff(mem_pos)
        # Burst phases have back-to-back accesses (gap 1), quiet ones gap 9.
        assert (gaps == 1).any()
        assert (gaps > 5).any()

    def test_requested_access_count(self):
        tr = bursty_trace(1234, seed=1)
        assert tr.n_mem == 1234

    def test_deterministic(self):
        a = bursty_trace(500, seed=7)
        b = bursty_trace(500, seed=7)
        np.testing.assert_array_equal(a.address, b.address)

    def test_custom_intensities(self):
        tr = bursty_trace(500, burst_intensity=2, quiet_intensity=20, seed=1)
        mem_pos = np.flatnonzero(tr.is_mem)
        gaps = np.diff(mem_pos)
        assert gaps.min() >= 1
        assert gaps.max() >= 15
