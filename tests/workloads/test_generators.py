"""Unit and property tests for the synthetic address-stream kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.generators import (
    KernelSpec,
    mixture_addresses,
    pointer_chase_addresses,
    strided_addresses,
    working_set_addresses,
    zipf_addresses,
)

KB = 1024


class TestStrided:
    def test_sequence(self):
        a = strided_addresses(4, footprint_bytes=1024, stride_bytes=8)
        np.testing.assert_array_equal(a, [0, 8, 16, 24])

    def test_wraps_at_footprint(self):
        a = strided_addresses(5, footprint_bytes=32, stride_bytes=8)
        np.testing.assert_array_equal(a, [0, 8, 16, 24, 0])

    def test_base_offset(self):
        a = strided_addresses(2, footprint_bytes=1024, stride_bytes=8, base=1 << 20)
        assert a[0] == 1 << 20

    def test_start_offset(self):
        a = strided_addresses(2, footprint_bytes=1024, stride_bytes=8, start_offset=16)
        np.testing.assert_array_equal(a, [16, 24])

    def test_zero_length(self):
        assert strided_addresses(0, footprint_bytes=64).size == 0

    def test_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            strided_addresses(4, footprint_bytes=64, stride_bytes=0)


class TestWorkingSet:
    def test_stays_within_footprint(self):
        a = working_set_addresses(1000, footprint_bytes=4 * KB, seed=0)
        assert a.min() >= 0
        assert a.max() < 4 * KB

    def test_covers_footprint(self):
        a = working_set_addresses(5000, footprint_bytes=4 * KB, seed=0)
        lines = np.unique(a >> 6)
        assert lines.size > 48  # most of the 64 lines touched

    def test_deterministic(self):
        a = working_set_addresses(100, footprint_bytes=4 * KB, seed=5)
        b = working_set_addresses(100, footprint_bytes=4 * KB, seed=5)
        np.testing.assert_array_equal(a, b)

    def test_word_aligned(self):
        a = working_set_addresses(100, footprint_bytes=4 * KB, seed=0)
        assert np.all(a % 8 == 0)


class TestZipf:
    def test_stays_within_footprint(self):
        a = zipf_addresses(1000, footprint_bytes=64 * KB, alpha=1.2, seed=0)
        assert a.max() < 64 * KB

    def test_skew_concentrates_mass(self):
        a = zipf_addresses(20000, footprint_bytes=64 * KB, alpha=1.5, seed=0)
        lines, counts = np.unique(a >> 6, return_counts=True)
        counts = np.sort(counts)[::-1]
        top10_share = counts[:10].sum() / counts.sum()
        assert top10_share > 0.35

    def test_lower_alpha_less_skewed(self):
        def share(alpha):
            a = zipf_addresses(20000, footprint_bytes=64 * KB, alpha=alpha, seed=0)
            _, counts = np.unique(a >> 6, return_counts=True)
            counts = np.sort(counts)[::-1]
            return counts[:10].sum() / counts.sum()

        assert share(0.6) < share(1.8)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            zipf_addresses(10, footprint_bytes=KB, alpha=0.0)


class TestPointerChase:
    def test_visits_every_line_once_per_lap(self):
        n_lines = 32
        a = pointer_chase_addresses(n_lines, footprint_bytes=n_lines * 64, seed=0)
        lines = a >> 6
        assert sorted(lines.tolist()) == list(range(n_lines))

    def test_scattered_order(self):
        a = pointer_chase_addresses(64, footprint_bytes=64 * 64, seed=0)
        diffs = np.abs(np.diff(a >> 6))
        assert diffs.mean() > 4  # not a sequential sweep

    def test_deterministic(self):
        a = pointer_chase_addresses(50, footprint_bytes=4 * KB, seed=3)
        b = pointer_chase_addresses(50, footprint_bytes=4 * KB, seed=3)
        np.testing.assert_array_equal(a, b)


class TestKernelSpec:
    def test_chase_is_dependent_by_default(self):
        assert KernelSpec("chase", 0.5, KB).is_dependent
        assert not KernelSpec("strided", 0.5, KB).is_dependent

    def test_dependent_override(self):
        assert KernelSpec("strided", 0.5, KB, dependent=True).is_dependent
        assert not KernelSpec("chase", 0.5, KB, dependent=False).is_dependent

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            KernelSpec("belady", 0.5, KB)

    def test_rejects_bad_weight(self):
        with pytest.raises(ValueError):
            KernelSpec("strided", 1.5, KB)

    def test_rejects_bad_burst(self):
        with pytest.raises(ValueError):
            KernelSpec("strided", 0.5, KB, burst_length=0)


class TestMixture:
    def test_weights_respected(self):
        kernels = [
            KernelSpec("strided", 0.8, 64 * KB, stride_bytes=8),
            KernelSpec("working_set", 0.2, 4 * KB),
        ]
        mix = mixture_addresses(20000, kernels, seed=0)
        frac0 = (mix.component == 0).mean()
        assert 0.77 < frac0 < 0.83

    def test_regions_disjoint(self):
        kernels = [
            KernelSpec("working_set", 0.5, 4 * KB),
            KernelSpec("working_set", 0.5, 4 * KB),
        ]
        mix = mixture_addresses(5000, kernels, seed=0)
        a0 = mix.addresses[mix.component == 0]
        a1 = mix.addresses[mix.component == 1]
        assert a0.max() < a1.min()

    def test_chase_marks_depends(self):
        kernels = [
            KernelSpec("chase", 0.5, 64 * KB),
            KernelSpec("strided", 0.5, 64 * KB),
        ]
        mix = mixture_addresses(2000, kernels, seed=0)
        np.testing.assert_array_equal(mix.depends, mix.component == 0)

    def test_strided_component_stays_sequential(self):
        kernels = [
            KernelSpec("strided", 0.5, 1 << 20, stride_bytes=8),
            KernelSpec("working_set", 0.5, 4 * KB),
        ]
        mix = mixture_addresses(2000, kernels, seed=0)
        stream = mix.addresses[mix.component == 0]
        np.testing.assert_array_equal(np.diff(stream), 8)

    def test_burst_lengths(self):
        kernels = [
            KernelSpec("working_set", 0.5, 4 * KB, burst_length=8),
            KernelSpec("working_set", 0.5, 4 * KB),
        ]
        mix = mixture_addresses(4000, kernels, seed=0)
        # Runs of component 0 should mostly be full 8-bursts.
        comp = mix.component
        runs = []
        cur = None
        length = 0
        for c in comp:
            if c == cur:
                length += 1
            else:
                if cur == 0:
                    runs.append(length)
                cur, length = c, 1
        if cur == 0:
            runs.append(length)
        full = [r for r in runs if r % 8 == 0]
        assert len(full) >= 0.8 * len(runs)

    def test_per_access_weight_preserved_with_bursts(self):
        kernels = [
            KernelSpec("working_set", 0.3, 4 * KB, burst_length=10),
            KernelSpec("working_set", 0.7, 4 * KB),
        ]
        mix = mixture_addresses(50000, kernels, seed=0)
        frac0 = (mix.component == 0).mean()
        assert 0.25 < frac0 < 0.35

    def test_empty_kernel_list_rejected(self):
        with pytest.raises(ValueError):
            mixture_addresses(10, [])

    def test_zero_weight_sum_rejected(self):
        with pytest.raises(ValueError):
            mixture_addresses(10, [KernelSpec("strided", 0.0, KB)])

    @given(st.integers(min_value=1, max_value=500), st.integers(min_value=0, max_value=10))
    @settings(max_examples=30, deadline=None)
    def test_output_length_matches_n(self, n, seed):
        kernels = [
            KernelSpec("strided", 0.4, 8 * KB, stride_bytes=8, burst_length=3),
            KernelSpec("zipf", 0.6, 8 * KB),
        ]
        mix = mixture_addresses(n, kernels, seed=seed)
        assert mix.addresses.shape[0] == n
        assert mix.depends.shape[0] == n
        assert mix.component.shape[0] == n
