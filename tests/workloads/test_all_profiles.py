"""Every benchmark profile runs clean through the whole stack.

Parametrized over all 20 profiles: trace generation, simulation on the
default machine, analyzer measurement, and the basic measurement contracts
(no NaNs, concurrencies >= 1, f_mem near the declared value).
"""

import math

import pytest

from repro.sim import DEFAULT_MACHINE, simulate_and_measure
from repro.workloads.spec import BENCHMARKS, get_benchmark


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_profile_full_stack(name):
    profile = get_benchmark(name)
    trace = profile.trace(3000, seed=4)
    assert trace.n_mem == 3000
    assert trace.f_mem == pytest.approx(profile.f_mem, rel=0.25)

    _, stats = simulate_and_measure(DEFAULT_MACHINE, trace, seed=0)
    assert stats.cpi > 0
    assert stats.cpi_exe > 0
    assert stats.cpi >= stats.cpi_exe - 1e-9
    assert 0.0 <= stats.overlap_ratio_cm < 1.0

    for layer_name in ("l1", "l2"):
        layer = getattr(stats, layer_name)
        if layer.accesses == 0:
            continue
        assert layer.hit_concurrency >= 1.0
        assert layer.pure_miss_concurrency >= 1.0
        assert 0.0 <= layer.miss_rate <= 1.0
        assert layer.pure_miss_rate <= layer.miss_rate + 1e-12
        assert not math.isnan(layer.camat)
        assert layer.camat_model == pytest.approx(layer.camat)

    report = stats.lpmr_report()
    assert report.lpmr1 >= 0
    assert not math.isnan(report.predicted_stall_per_instruction())
    thresholds = report.thresholds(100.0)
    assert thresholds.t1 > 0


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_profile_deterministic(name):
    a = get_benchmark(name).trace(500, seed=11)
    b = get_benchmark(name).trace(500, seed=11)
    assert (a.address == b.address).all()
    assert (a.is_mem == b.is_mem).all()
