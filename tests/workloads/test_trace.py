"""Unit tests for the Trace container."""

import numpy as np
import pytest

from repro.workloads.trace import Trace


class TestConstruction:
    def test_from_memory_addresses_scalar_gap(self):
        tr = Trace.from_memory_addresses([0, 64, 128], compute_per_access=2)
        assert tr.n_instructions == 9
        assert tr.n_mem == 3
        assert tr.f_mem == pytest.approx(1 / 3)
        np.testing.assert_array_equal(tr.memory_addresses, [0, 64, 128])

    def test_from_memory_addresses_vector_gap(self):
        tr = Trace.from_memory_addresses([0, 64], compute_per_access=np.array([0, 3]))
        assert tr.n_instructions == 5
        assert tr.is_mem[0]           # first access has no preceding compute
        assert tr.is_mem[4]

    def test_program_order_preserved(self):
        addrs = [100, 200, 300]
        tr = Trace.from_memory_addresses(addrs, compute_per_access=1)
        np.testing.assert_array_equal(tr.memory_addresses, addrs)

    def test_load_fraction(self):
        tr = Trace.from_memory_addresses(
            np.zeros(1000, dtype=np.int64), compute_per_access=0,
            load_fraction=0.25, seed=1,
        )
        frac = tr.is_load[tr.is_mem].mean()
        assert 0.18 < frac < 0.32

    def test_depends_mapped_to_mem_positions(self):
        dep = np.array([True, False, True])
        tr = Trace.from_memory_addresses([0, 64, 128], compute_per_access=1, depends=dep)
        assert tr.depends is not None
        np.testing.assert_array_equal(tr.depends[tr.is_mem], dep)
        assert not tr.depends[~tr.is_mem].any()

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            Trace(is_mem=np.zeros(3, bool), address=np.zeros(2, np.int64),
                  is_load=np.zeros(3, bool))

    def test_rejects_negative_gap(self):
        with pytest.raises(ValueError):
            Trace.from_memory_addresses([0], compute_per_access=np.array([-1]))

    def test_rejects_negative_address(self):
        with pytest.raises(ValueError):
            Trace(is_mem=np.ones(1, bool), address=np.array([-64]),
                  is_load=np.ones(1, bool))

    def test_rejects_bad_load_fraction(self):
        with pytest.raises(ValueError):
            Trace.from_memory_addresses([0], load_fraction=1.5)

    def test_rejects_depends_length_mismatch(self):
        with pytest.raises(ValueError):
            Trace.from_memory_addresses([0, 64], depends=np.array([True]))


class TestStatistics:
    def test_footprint_counts_distinct_lines(self):
        tr = Trace.from_memory_addresses([0, 8, 64, 128, 128])
        assert tr.footprint_bytes(64) == 3 * 64

    def test_empty_footprint(self):
        tr = Trace(is_mem=np.zeros(3, bool), address=np.zeros(3, np.int64),
                   is_load=np.zeros(3, bool))
        assert tr.footprint_bytes() == 0
        assert tr.f_mem == 0.0

    def test_repr(self):
        tr = Trace.from_memory_addresses([0, 64], name="x")
        assert "x" in repr(tr)
        assert "mem=2" in repr(tr)


class TestManipulation:
    def test_slice(self):
        tr = Trace.from_memory_addresses([0, 64, 128], compute_per_access=1)
        sub = tr.slice(0, 4)
        assert sub.n_instructions == 4
        assert sub.n_mem == 2

    def test_slice_carries_depends(self):
        dep = np.array([True, True, True])
        tr = Trace.from_memory_addresses([0, 64, 128], compute_per_access=1, depends=dep)
        sub = tr.slice(0, 4)
        assert sub.depends is not None

    def test_concatenate(self):
        a = Trace.from_memory_addresses([0], name="a")
        b = Trace.from_memory_addresses([64], name="b")
        c = Trace.concatenate([a, b])
        assert c.n_mem == 2
        assert c.name == "a+b"

    def test_concatenate_mixed_depends(self):
        a = Trace.from_memory_addresses([0], depends=np.array([True]))
        b = Trace.from_memory_addresses([64])
        c = Trace.concatenate([a, b])
        assert c.depends is not None
        assert c.depends.shape[0] == c.n_instructions

    def test_concatenate_empty_list(self):
        with pytest.raises(ValueError):
            Trace.concatenate([])

    def test_len(self):
        tr = Trace.from_memory_addresses([0, 64], compute_per_access=1)
        assert len(tr) == 4


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        tr = Trace.from_memory_addresses(
            [0, 64, 128], compute_per_access=2, name="rt",
            depends=np.array([True, False, True]),
        )
        tr.metadata["benchmark"] = "x"
        path = str(tmp_path / "trace.npz")
        tr.save(path)
        back = Trace.load(path)
        np.testing.assert_array_equal(back.is_mem, tr.is_mem)
        np.testing.assert_array_equal(back.address, tr.address)
        np.testing.assert_array_equal(back.is_load, tr.is_load)
        np.testing.assert_array_equal(back.depends, tr.depends)
        assert back.name == "rt"
        assert back.metadata["benchmark"] == "x"

    def test_roundtrip_without_depends(self, tmp_path):
        tr = Trace.from_memory_addresses([0, 64], name="nodep")
        path = str(tmp_path / "t.npz")
        tr.save(path)
        back = Trace.load(path)
        assert back.depends is None
        assert back.n_mem == 2

    def test_loaded_trace_simulates_identically(self, tmp_path):
        from repro.sim import DEFAULT_MACHINE, HierarchySimulator
        from repro.workloads.spec import get_benchmark

        tr = get_benchmark("403.gcc").trace(1500, seed=2)
        path = str(tmp_path / "gcc.npz")
        tr.save(path)
        back = Trace.load(path)
        a = HierarchySimulator(DEFAULT_MACHINE, seed=0).run(tr)
        b = HierarchySimulator(DEFAULT_MACHINE, seed=0).run(back)
        assert a.total_cycles == b.total_cycles
