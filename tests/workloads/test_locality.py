"""Stack-distance profiling: brute-force cross-checks and invariants.

The Fenwick-tree histogram must agree exactly with a naive materialized
LRU stack, the derived miss-ratio curve must be a survival function
(monotone non-increasing in capacity), and the histogram must depend
only on the trace *content* — never on names, seeds, or other metadata
outside the digest.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.locality import (
    LocalityProfile,
    ReuseHistogram,
    profile_trace,
    reuse_histogram,
)
from repro.workloads.trace import Trace


def _trace_from_lines(lines, *, name="loc", compute=2, depends=None):
    return Trace.from_memory_addresses(
        np.asarray(lines, dtype=np.int64) * 64,
        compute_per_access=compute, name=name, seed=0, depends=depends,
    )


def _naive_stack_distances(lines):
    """Materialized LRU stack: the textbook O(M^2) definition."""
    stack = []
    out = []
    for line in lines:
        if line in stack:
            idx = stack.index(line)
            out.append(idx)
            stack.pop(idx)
        else:
            out.append(-1)
        stack.insert(0, line)
    return out


def _lru_miss_ratio(lines, capacity):
    """Direct fully-associative LRU simulation at ``capacity`` lines."""
    stack = []
    misses = 0
    for line in lines:
        if line in stack:
            stack.remove(line)
        else:
            misses += 1
            if len(stack) >= capacity:
                stack.pop()
        stack.insert(0, line)
    return misses / len(lines)


@st.composite
def line_sequences(draw):
    n = draw(st.integers(min_value=1, max_value=80))
    n_lines = draw(st.integers(min_value=1, max_value=24))
    return [draw(st.integers(min_value=0, max_value=n_lines - 1)) for _ in range(n)]


class TestStackDistances:
    @given(line_sequences())
    @settings(max_examples=100, deadline=None)
    def test_matches_naive_lru_stack(self, lines):
        trace = _trace_from_lines(lines)
        hist = reuse_histogram(trace, warm=False)
        naive = _naive_stack_distances(lines)
        assert hist.cold == sum(1 for d in naive if d < 0)
        reuse = sorted(d for d in naive if d >= 0)
        expanded = sorted(
            int(d) for d, c in zip(hist.distances, hist.counts) for _ in range(c)
        )
        assert expanded == reuse

    @given(line_sequences(), st.integers(min_value=1, max_value=32))
    @settings(max_examples=100, deadline=None)
    def test_miss_fraction_matches_lru_simulation(self, lines, capacity):
        trace = _trace_from_lines(lines)
        hist = reuse_histogram(trace, warm=False)
        assert hist.miss_fraction(capacity) == pytest.approx(
            _lru_miss_ratio(lines, capacity)
        )

    @given(line_sequences())
    @settings(max_examples=60, deadline=None)
    def test_miss_fraction_monotone_in_capacity(self, lines):
        trace = _trace_from_lines(lines)
        for warm in (False, True):
            hist = reuse_histogram(trace, warm=warm)
            curve = [hist.miss_fraction(c) for c in range(0, 40)]
            assert all(a >= b for a, b in zip(curve, curve[1:]))
            assert all(0.0 <= m <= 1.0 for m in curve)

    @given(line_sequences())
    @settings(max_examples=60, deadline=None)
    def test_content_determines_histogram(self, lines):
        """Same content digest -> identical histogram, whatever the metadata."""
        a = reuse_histogram(_trace_from_lines(lines, name="first"))
        b = reuse_histogram(_trace_from_lines(lines, name="second"))
        assert a.trace_digest == b.trace_digest
        assert np.array_equal(a.distances, b.distances)
        assert np.array_equal(a.counts, b.counts)
        assert (a.cold, a.n_accesses) == (b.cold, b.n_accesses)


class TestWarmConvention:
    def test_warm_has_no_cold_misses(self):
        hist = reuse_histogram(_trace_from_lines([1, 2, 3, 1, 2, 3]), warm=True)
        assert hist.cold == 0
        assert int(hist.counts.sum()) == hist.n_accesses

    def test_warm_sees_wraparound_reuse(self):
        # A cyclic scan of 3 lines: cold-start says 3 cold misses; warm
        # steady state says every access reuses at distance 2.
        cold = reuse_histogram(_trace_from_lines([1, 2, 3]), warm=False)
        warm = reuse_histogram(_trace_from_lines([1, 2, 3]), warm=True)
        assert cold.cold == 3
        assert warm.miss_fraction(3) == 0.0
        assert warm.miss_fraction(2) == 1.0


class TestHistogramPlumbing:
    def test_round_trip(self):
        hist = reuse_histogram(_trace_from_lines([1, 2, 1, 3, 2, 1]))
        again = ReuseHistogram.from_dict(hist.to_dict())
        assert np.array_equal(hist.distances, again.distances)
        assert np.array_equal(hist.counts, again.counts)
        assert hist.trace_digest == again.trace_digest
        for capacity in (0, 1, 2, 4, 100):
            assert hist.miss_fraction(capacity) == again.miss_fraction(capacity)

    def test_line_bytes_must_be_power_of_two(self):
        trace = _trace_from_lines([1, 2, 3])
        with pytest.raises(ValueError):
            reuse_histogram(trace, line_bytes=48)

    def test_line_granularity_merges_neighbours(self):
        # Addresses 0 and 64 are distinct 64B lines but one 128B line.
        trace = Trace.from_memory_addresses(
            np.array([0, 64, 0, 64]), compute_per_access=1, name="g", seed=0
        )
        fine = reuse_histogram(trace, line_bytes=64, warm=False)
        coarse = reuse_histogram(trace, line_bytes=128, warm=False)
        assert fine.miss_fraction(1) > coarse.miss_fraction(1)


class TestLocalityProfile:
    def test_profile_statistics(self):
        dep = np.array([False, True, False, True, False, False])
        trace = _trace_from_lines([1, 2, 3, 1, 2, 3], depends=dep, compute=0)
        profile = profile_trace(trace)
        assert profile.f_mem == pytest.approx(1.0)
        assert profile.dep_frac_mem == pytest.approx(2 / 6)
        assert profile.n_instructions == trace.n_instructions
        assert profile.trace_digest == trace.content_digest()

    def test_round_trip(self):
        profile = profile_trace(_trace_from_lines([5, 6, 5, 7, 6]))
        again = LocalityProfile.from_dict(profile.to_dict())
        assert again.f_mem == profile.f_mem
        assert again.dep_frac_mem == profile.dep_frac_mem
        assert np.array_equal(again.histogram.counts, profile.histogram.counts)
