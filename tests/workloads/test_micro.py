"""Tests for the machine-characterization probes.

These double as end-to-end timing pins for the simulator: the probes must
recover the configured latencies and bandwidths from behaviour alone.
"""

import pytest

from repro.sim import DEFAULT_MACHINE, table1_config
from repro.workloads.micro import (
    bandwidth_probe,
    characterize,
    latency_probe,
    mlp_probe,
)

KB = 1024
MB = 1024 * 1024


@pytest.fixture(scope="module")
def machine():
    # Strong configuration so core resources never mask memory behaviour.
    return table1_config("D")


class TestLatencyProbe:
    def test_l1_resident_equals_hit_time(self, machine):
        lat = latency_probe(machine, 8 * KB)
        assert lat == pytest.approx(machine.l1_hit_time, abs=0.2)

    def test_l2_resident_is_l2_round_trip(self, machine):
        lat = latency_probe(machine, 64 * KB)
        expected = (machine.l1_hit_time + machine.l1_to_l2_delay
                    + machine.l2_hit_time + machine.l1_to_l2_delay)
        assert lat == pytest.approx(expected, abs=1.0)

    def test_dram_resident_is_slowest(self, machine):
        l1 = latency_probe(machine, 8 * KB)
        l2 = latency_probe(machine, 64 * KB)
        mem = latency_probe(machine, 4 * MB)
        assert l1 < l2 < mem
        assert mem > 30  # DRAM round trip on the default timing

    def test_monotone_in_footprint(self, machine):
        # Monotone up to DRAM row-buffer noise (~2%) between huge footprints.
        lats = [latency_probe(machine, fp) for fp in (8 * KB, 64 * KB, 1 * MB, 8 * MB)]
        assert all(b >= 0.97 * a for a, b in zip(lats, lats[1:]))


class TestBandwidthProbe:
    def test_l1_bandwidth_matches_ports(self, machine):
        # 4 non-pipelined ports, 3-cycle hit time -> 4/3 accesses/cycle.
        bw = bandwidth_probe(machine, 8 * KB)
        assert bw == pytest.approx(machine.l1_ports / machine.l1_hit_time, rel=0.1)

    def test_l2_bandwidth_matches_banks(self, machine):
        # 8 non-pipelined banks, 8-cycle service -> 1 line/cycle ceiling.
        bw = bandwidth_probe(machine, 64 * KB)
        ceiling = machine.l2_banks / machine.l2_hit_time
        assert bw == pytest.approx(ceiling, rel=0.15)

    def test_bandwidth_falls_down_the_hierarchy(self, machine):
        bws = [bandwidth_probe(machine, fp) for fp in (8 * KB, 64 * KB, 4 * MB)]
        assert bws[0] > bws[1] > bws[2]

    def test_more_ports_more_l1_bandwidth(self):
        narrow = table1_config("A")
        wide = table1_config("D")
        assert bandwidth_probe(wide, 8 * KB) > 2 * bandwidth_probe(narrow, 8 * KB)


class TestMlpProbe:
    def test_bounded_by_mshrs(self):
        cfg = DEFAULT_MACHINE.with_knobs(mshr_count=4, iw_size=256, rob_size=256)
        assert mlp_probe(cfg) <= 4

    def test_grows_with_mshrs(self):
        small = DEFAULT_MACHINE.with_knobs(mshr_count=2, iw_size=256, rob_size=256)
        big = DEFAULT_MACHINE.with_knobs(mshr_count=16, iw_size=256, rob_size=256)
        assert mlp_probe(big) > mlp_probe(small)

    def test_window_can_be_the_binding_limit(self):
        tight = DEFAULT_MACHINE.with_knobs(mshr_count=32, iw_size=2, rob_size=256)
        assert mlp_probe(tight) <= 3


class TestCharacterize:
    def test_profile_summary(self, machine):
        profile = characterize(machine, footprints=(8 * KB, 4 * MB))
        assert profile.config_name == machine.name
        assert set(profile.latency_cycles) == {8 * KB, 4 * MB}
        rows = profile.as_rows()
        assert len(rows) == 2 * 2 + 1
        assert all(v > 0 for _, v in rows)
