"""Tests for the SPEC-like benchmark profiles, including the Fig. 6/7 facts."""

import numpy as np
import pytest

from repro.workloads.generators import KernelSpec
from repro.workloads.spec import (
    BENCHMARKS,
    SELECTED_16,
    BenchmarkProfile,
    benchmark_names,
    get_benchmark,
)

KB = 1024


class TestRegistry:
    def test_sixteen_selected(self):
        assert len(SELECTED_16) == 16
        assert len(set(SELECTED_16)) == 16
        for name in SELECTED_16:
            assert name in BENCHMARKS

    def test_lookup_by_full_name(self):
        assert get_benchmark("429.mcf").name == "429.mcf"

    def test_lookup_by_suffix(self):
        assert get_benchmark("mcf").name == "429.mcf"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_benchmark("999.nothing")

    def test_names_sorted(self):
        names = benchmark_names()
        assert names == sorted(names)

    def test_paper_benchmarks_present(self):
        for name in ("401.bzip2", "403.gcc", "410.bwaves", "416.gamess",
                     "429.mcf", "433.milc"):
            assert name in BENCHMARKS


class TestProfileValidation:
    def test_rejects_empty_kernels(self):
        with pytest.raises(ValueError):
            BenchmarkProfile(name="x", kernels=())

    def test_rejects_negative_compute(self):
        with pytest.raises(ValueError):
            BenchmarkProfile(
                name="x", kernels=(KernelSpec("strided", 1.0, KB),),
                compute_per_access=-1,
            )

    def test_rejects_bad_ilp(self):
        with pytest.raises(ValueError):
            BenchmarkProfile(
                name="x", kernels=(KernelSpec("strided", 1.0, KB),),
                ilp_dependency=1.5,
            )

    def test_f_mem(self):
        p = BenchmarkProfile(name="x", kernels=(KernelSpec("strided", 1.0, KB),),
                             compute_per_access=3.0)
        assert p.f_mem == pytest.approx(0.25)


class TestTraceGeneration:
    def test_trace_has_requested_accesses(self):
        tr = get_benchmark("401.bzip2").trace(500, seed=1)
        assert tr.n_mem == 500

    def test_f_mem_close_to_profile(self):
        p = get_benchmark("403.gcc")
        tr = p.trace(5000, seed=1)
        assert tr.f_mem == pytest.approx(p.f_mem, rel=0.15)

    def test_deterministic_given_seed(self):
        a = get_benchmark("429.mcf").trace(300, seed=9)
        b = get_benchmark("429.mcf").trace(300, seed=9)
        np.testing.assert_array_equal(a.address, b.address)
        np.testing.assert_array_equal(a.depends, b.depends)

    def test_different_seeds_differ(self):
        a = get_benchmark("429.mcf").trace(300, seed=1)
        b = get_benchmark("429.mcf").trace(300, seed=2)
        assert not np.array_equal(a.address, b.address)

    def test_mcf_has_dependent_accesses(self):
        tr = get_benchmark("429.mcf").trace(1000, seed=1)
        assert tr.depends is not None
        dep_frac = tr.depends[tr.is_mem].mean()
        assert 0.35 < dep_frac < 0.75  # chase weight is 0.55

    def test_milc_has_no_dependent_accesses(self):
        tr = get_benchmark("433.milc").trace(1000, seed=1)
        mem_dep = tr.depends[tr.is_mem] if tr.depends is not None else np.zeros(1)
        assert mem_dep.mean() < 0.01

    def test_ilp_chains_marked_on_compute(self):
        p = get_benchmark("410.bwaves")
        tr = p.trace(1000, seed=1)
        assert tr.depends is not None
        comp_dep = tr.depends[~tr.is_mem].mean()
        assert abs(comp_dep - p.ilp_dependency) < 0.1

    def test_metadata(self):
        tr = get_benchmark("433.milc").trace(100, seed=1)
        assert tr.metadata["benchmark"] == "433.milc"
        assert tr.metadata["suite"] == "fp"


class TestFootprintCharacter:
    def test_bzip2_small_footprint(self):
        tr = get_benchmark("401.bzip2").trace(4000, seed=1)
        # Dominated by a 2 KB working set plus a slow stream.
        assert tr.footprint_bytes() < 64 * KB

    def test_milc_large_footprint(self):
        tr = get_benchmark("433.milc").trace(4000, seed=1)
        assert tr.footprint_bytes() > 32 * KB

    def test_mcf_large_footprint(self):
        tr = get_benchmark("429.mcf").trace(4000, seed=1)
        assert tr.footprint_bytes() > 64 * KB
