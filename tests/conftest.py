"""Repo-wide pytest options.

``--update-goldens`` rewrites the committed CLI snapshots under
``tests/golden/`` instead of diffing against them (see
``tests/golden/test_cli_goldens.py``).
"""


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/golden/*.txt from the current CLI output",
    )
