"""Unit tests for the validation and RNG utilities."""

import numpy as np
import pytest

from repro.util.rng import derive_seed, make_rng, spawn
from repro.util.validation import (
    check_at_least,
    check_fraction,
    check_int,
    check_non_negative,
    check_positive,
    check_power_of_two,
    check_probability_vector,
    require,
)


class TestRequire:
    def test_passes(self):
        require(True, "never")

    def test_raises(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")


class TestNumericChecks:
    def test_check_positive(self):
        assert check_positive("x", 1.5) == 1.5
        with pytest.raises(ValueError):
            check_positive("x", 0)
        with pytest.raises(ValueError):
            check_positive("x", -1)
        with pytest.raises(ValueError):
            check_positive("x", float("inf"))
        assert check_positive("x", float("inf"), allow_inf=True) == float("inf")

    def test_check_positive_rejects_nan_and_strings(self):
        with pytest.raises(ValueError):
            check_positive("x", float("nan"))
        with pytest.raises(TypeError):
            check_positive("x", "3")
        with pytest.raises(TypeError):
            check_positive("x", True)  # bools are not numbers here

    def test_check_non_negative(self):
        assert check_non_negative("x", 0) == 0.0
        with pytest.raises(ValueError):
            check_non_negative("x", -0.1)

    def test_check_fraction(self):
        assert check_fraction("x", 1.0) == 1.0
        with pytest.raises(ValueError):
            check_fraction("x", 1.0, inclusive_high=False)
        with pytest.raises(ValueError):
            check_fraction("x", 1.01)
        with pytest.raises(ValueError):
            check_fraction("x", -0.01)

    def test_check_at_least(self):
        assert check_at_least("x", 2.0, 1.0) == 2.0
        with pytest.raises(ValueError):
            check_at_least("x", 0.5, 1.0)
        with pytest.raises(ValueError):
            check_at_least("x", float("inf"), 1.0)

    def test_check_int(self):
        assert check_int("x", 5) == 5
        with pytest.raises(TypeError):
            check_int("x", 5.0)
        with pytest.raises(TypeError):
            check_int("x", True)
        with pytest.raises(ValueError):
            check_int("x", 0, minimum=1)

    def test_check_power_of_two(self):
        assert check_power_of_two("x", 1) == 1
        assert check_power_of_two("x", 64) == 64
        for bad in (0, 3, 12, -4):
            with pytest.raises((ValueError, TypeError)):
                check_power_of_two("x", bad)

    def test_check_probability_vector(self):
        assert check_probability_vector("p", [0.25, 0.75]) == [0.25, 0.75]
        with pytest.raises(ValueError):
            check_probability_vector("p", [0.5, 0.6])
        with pytest.raises(ValueError):
            check_probability_vector("p", [])
        with pytest.raises(ValueError):
            check_probability_vector("p", [-0.5, 1.5])
        with pytest.raises(TypeError):
            check_probability_vector("p", 7)


class TestRng:
    def test_make_rng_from_seed(self):
        a = make_rng(3)
        b = make_rng(3)
        assert a.integers(1 << 30) == b.integers(1 << 30)

    def test_make_rng_passthrough(self):
        g = np.random.default_rng(0)
        assert make_rng(g) is g

    def test_derive_seed_stable(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_derive_seed_sensitive_to_labels(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a", "b") != derive_seed(1, "ab")
        assert derive_seed(1) != derive_seed(2)

    def test_spawn_independent_streams(self):
        a = spawn(1, "x")
        b = spawn(1, "y")
        assert a.integers(1 << 30) != b.integers(1 << 30)
