"""Tests for the online interval-driven LPM controller."""

import pytest

from repro.core.algorithm import LPMCase
from repro.core.online import (
    KnobPolicy,
    LadderKnobPolicy,
    OnlineLPMController,
    OnlineRunResult,
)
from repro.reconfig.space import DesignSpace
from repro.sim.engine import HierarchySimulator
from repro.sim.params import DEFAULT_MACHINE
from repro.workloads.spec import get_benchmark
from repro.workloads.trace import Trace

import numpy as np


@pytest.fixture(scope="module")
def space():
    return DesignSpace()


@pytest.fixture(scope="module")
def workload():
    return get_benchmark("410.bwaves").trace(16000, seed=7)


class TestEngineReconfigure:
    def test_keeps_cache_contents(self):
        sim = HierarchySimulator(DEFAULT_MACHINE)
        tr = Trace.from_memory_addresses(np.arange(50, dtype=np.int64) * 64,
                                         compute_per_access=1)
        sim.warm_caches(tr)
        sim.reconfigure(DEFAULT_MACHINE.with_knobs(l1_ports=4, mshr_count=16))
        res = sim.run(tr)
        assert res.accesses.l1_miss_count == 0  # warm contents survived

    def test_rejects_geometry_change(self):
        sim = HierarchySimulator(DEFAULT_MACHINE)
        with pytest.raises(ValueError):
            sim.reconfigure(DEFAULT_MACHINE.with_knobs(l1_size_bytes=64 * 1024))

    def test_run_start_cycle_offsets_timeline(self):
        tr = Trace.from_memory_addresses(np.zeros(20, dtype=np.int64),
                                         compute_per_access=1)
        sim = HierarchySimulator(DEFAULT_MACHINE)
        res = sim.run(tr, start_cycle=1000)
        assert res.instructions.dispatch.min() >= 1000

    def test_chunked_run_timeline_is_continuous(self):
        tr = get_benchmark("401.bzip2").trace(2000, seed=1)
        sim = HierarchySimulator(DEFAULT_MACHINE)
        half = tr.n_instructions // 2
        first = sim.run(tr.slice(0, half))
        second = sim.run(tr.slice(half, tr.n_instructions),
                         start_cycle=int(first.instructions.retire.max()))
        assert second.instructions.dispatch.min() >= first.instructions.retire.max()


class TestLadderKnobPolicy:
    def test_matched_keeps_point(self, space):
        policy = LadderKnobPolicy()
        p = space.minimum_point()
        assert policy.next_point(space, p, LPMCase.MATCHED) is None

    def test_case_i_upgrades_l1_and_l2(self, space):
        policy = LadderKnobPolicy()
        p = space.minimum_point()
        nxt = policy.next_point(space, p, LPMCase.OPTIMIZE_BOTH)
        assert nxt is not None
        assert nxt.l2_banks > p.l2_banks
        changed_l1 = (nxt.l1_ports, nxt.mshr_count, nxt.iw_size, nxt.rob_size) != (
            p.l1_ports, p.mshr_count, p.iw_size, p.rob_size)
        assert changed_l1

    def test_case_ii_upgrades_only_l1(self, space):
        policy = LadderKnobPolicy()
        p = space.minimum_point()
        nxt = policy.next_point(space, p, LPMCase.OPTIMIZE_L1)
        assert nxt is not None
        assert nxt.l2_banks == p.l2_banks

    def test_round_robin_spreads_upgrades(self, space):
        policy = LadderKnobPolicy()
        p = space.minimum_point()
        seen_knobs = set()
        for _ in range(4):
            nxt = policy.next_point(space, p, LPMCase.OPTIMIZE_L1)
            for knob in ("l1_ports", "mshr_count", "iw_size", "rob_size"):
                if getattr(nxt, knob) != getattr(p, knob):
                    seen_knobs.add(knob)
            p = nxt
        assert len(seen_knobs) >= 3

    def test_deprovision_downgrades(self, space):
        policy = LadderKnobPolicy()
        p = space.maximum_point()
        nxt = policy.next_point(space, p, LPMCase.DEPROVISION)
        assert nxt is not None
        assert nxt.cost() < p.cost()

    def test_ceiling_returns_none(self, space):
        policy = LadderKnobPolicy()
        top = space.maximum_point()
        assert policy.next_point(space, top, LPMCase.OPTIMIZE_L1) is None

    def test_base_policy_is_abstract(self, space):
        with pytest.raises(NotImplementedError):
            KnobPolicy().next_point(space, space.minimum_point(), LPMCase.MATCHED)


class TestController:
    def test_adaptive_run_produces_intervals(self, space, workload):
        ctrl = OnlineLPMController(space, interval_instructions=8000, seed=0)
        result = ctrl.run(workload)
        assert len(result.intervals) == -(-workload.n_instructions // 8000)
        assert result.instructions == workload.n_instructions
        assert result.total_cycles > 0

    def test_adaptation_improves_over_static_weakest(self, space, workload):
        # A tight stall target drives upgrades away from the weakest point.
        adaptive = OnlineLPMController(space, interval_instructions=4000,
                                       delta_percent=60.0, seed=0)
        adaptive_result = adaptive.run(workload)
        static = OnlineLPMController(space, interval_instructions=4000,
                                     delta_percent=60.0, seed=0)
        static_result = static.run(workload, adapt=False)
        assert adaptive_result.cpi < static_result.cpi
        assert adaptive_result.reconfigurations >= 1

    def test_tighter_target_drives_more_adaptation(self, space, workload):
        loose = OnlineLPMController(space, interval_instructions=4000,
                                    delta_percent=120.0, seed=0).run(workload)
        tight = OnlineLPMController(space, interval_instructions=4000,
                                    delta_percent=40.0, seed=0).run(workload)
        assert tight.reconfigurations >= loose.reconfigurations
        assert tight.cpi <= loose.cpi + 1e-9

    def test_static_mode_never_reconfigures(self, space, workload):
        ctrl = OnlineLPMController(space, interval_instructions=4000, seed=0)
        result = ctrl.run(workload, adapt=False)
        assert result.reconfigurations == 0
        labels = {r.config_label for r in result.intervals}
        assert len(labels) == 1

    def test_reconfiguration_cost_charged(self, space, workload):
        cheap = OnlineLPMController(space, interval_instructions=4000,
                                    delta_percent=60.0, reconfiguration_cost=0, seed=0)
        r_cheap = cheap.run(workload)
        costly = OnlineLPMController(space, interval_instructions=4000,
                                     delta_percent=60.0, reconfiguration_cost=5000, seed=0)
        r_costly = costly.run(workload)
        assert r_costly.reconfiguration_cycles >= r_cheap.reconfiguration_cycles
        if r_costly.reconfigurations:
            assert r_costly.reconfiguration_cycles == 5000 * r_costly.reconfigurations

    def test_interval_records_carry_running_config(self, space, workload):
        ctrl = OnlineLPMController(space, interval_instructions=4000, seed=0)
        result = ctrl.run(workload)
        # First interval always runs on the starting (minimum) point.
        assert result.intervals[0].config_label == space.minimum_point().label()

    def test_mean_hardware_cost_between_min_and_max(self, space, workload):
        ctrl = OnlineLPMController(space, interval_instructions=4000, seed=0)
        result = ctrl.run(workload)
        assert space.minimum_point().cost() <= result.mean_hardware_cost
        assert result.mean_hardware_cost <= space.maximum_point().cost()

    def test_empty_result_accessors(self):
        r = OnlineRunResult()
        assert r.cpi == 0.0
        assert r.mean_hardware_cost == 0.0
        assert r.cases() == []

    def test_validation(self, space):
        with pytest.raises(ValueError):
            OnlineLPMController(space, interval_instructions=0)
        with pytest.raises(ValueError):
            OnlineLPMController(space, delta_percent=0.0)
        with pytest.raises(ValueError):
            OnlineLPMController(space, reconfiguration_cost=-1)
        with pytest.raises(ValueError):
            OnlineLPMController(space, cooldown_intervals=-1)
        with pytest.raises(ValueError):
            OnlineLPMController(space, confirm_intervals=0)


class TestRobustness:
    def test_mean_hardware_cost_with_zero_total_cycles(self):
        # Regression: a degenerate run (reconfiguration overhead only, or
        # fully rejected intervals) must not divide by zero.
        r = OnlineRunResult(total_cycles=0, reconfiguration_cycles=0)
        assert r.mean_hardware_cost == 0.0
        r2 = OnlineRunResult(total_cycles=8, reconfigurations=2,
                             reconfiguration_cycles=8)
        assert r2.mean_hardware_cost == 0.0  # no interval cycles either

    def test_default_hysteresis_matches_eager_behavior(self, space, workload):
        eager = OnlineLPMController(space, interval_instructions=4000,
                                    delta_percent=60.0, seed=0).run(workload)
        explicit = OnlineLPMController(space, interval_instructions=4000,
                                       delta_percent=60.0, seed=0,
                                       cooldown_intervals=0,
                                       confirm_intervals=1).run(workload)
        assert explicit.cases() == eager.cases()
        assert explicit.reconfigurations == eager.reconfigurations
        assert explicit.held_reconfigurations == eager.held_reconfigurations == 0 \
            or explicit.held_reconfigurations == eager.held_reconfigurations

    def test_cooldown_suppresses_back_to_back_reconfigurations(self, space, workload):
        eager = OnlineLPMController(space, interval_instructions=4000,
                                    delta_percent=60.0, seed=0).run(workload)
        cooled = OnlineLPMController(space, interval_instructions=4000,
                                     delta_percent=60.0, seed=0,
                                     cooldown_intervals=3).run(workload)
        assert cooled.reconfigurations <= eager.reconfigurations
        if eager.reconfigurations > 1:
            assert cooled.reconfigurations < eager.reconfigurations
            assert cooled.held_reconfigurations > 0
        # No two applied reconfigurations closer than the cooldown.
        applied = [r.index for r in cooled.intervals if r.reconfigured]
        assert all(b - a > 3 for a, b in zip(applied, applied[1:]))

    def test_confirmation_requires_consecutive_agreement(self, space, workload):
        eager = OnlineLPMController(space, interval_instructions=4000,
                                    delta_percent=60.0, seed=0).run(workload)
        confirmed = OnlineLPMController(space, interval_instructions=4000,
                                        delta_percent=60.0, seed=0,
                                        confirm_intervals=2).run(workload)
        assert confirmed.reconfigurations <= eager.reconfigurations
        # The first interval can never reconfigure under confirm_intervals=2.
        assert not confirmed.intervals[0].reconfigured
