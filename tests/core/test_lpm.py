"""Unit tests for the LPM model: LPMRs, request rates, thresholds."""

import pytest

from repro.core.lpm import (
    LPMRReport,
    MatchingThresholds,
    lpmr1,
    lpmr2,
    lpmr3,
    request_rate,
    threshold_t1,
    threshold_t2,
)
from repro.core.stall import StallModel, stall_time_lpmr1, stall_time_lpmr2


class TestRequestRates:
    def test_l1_request_rate(self):
        # IPC_exe * f_mem
        assert request_rate(2.0, 0.4) == pytest.approx(0.8)

    def test_llc_request_rate_filters_by_mr1(self):
        assert request_rate(2.0, 0.4, 0.1) == pytest.approx(0.08)

    def test_mm_request_rate_filters_by_both(self):
        assert request_rate(2.0, 0.4, 0.1, 0.5) == pytest.approx(0.04)

    def test_rejects_bad_miss_rate(self):
        with pytest.raises(ValueError):
            request_rate(2.0, 0.4, 1.1)


class TestLPMRs:
    def test_lpmr1_eq9(self):
        assert lpmr1(1.6, 0.4, 0.5) == pytest.approx(1.28)

    def test_lpmr2_eq10(self):
        assert lpmr2(10.0, 0.4, 0.1, 0.5) == pytest.approx(0.8)

    def test_lpmr3_eq11(self):
        assert lpmr3(100.0, 0.4, 0.1, 0.5, 0.5) == pytest.approx(4.0)

    def test_lpmr_is_request_over_supply(self):
        # LPMR1 = (IPC_exe * f_mem) / APC1 with APC1 = 1/C-AMAT1
        ipc_exe, f_mem, camat1 = 2.0, 0.4, 1.6
        apc1 = 1.0 / camat1
        assert lpmr1(camat1, f_mem, 1.0 / ipc_exe) == pytest.approx(
            request_rate(ipc_exe, f_mem) / apc1
        )


class TestThresholds:
    def test_t1_eq14(self):
        assert threshold_t1(1.0, 0.0) == pytest.approx(0.01)
        assert threshold_t1(10.0, 0.5) == pytest.approx(0.2)

    def test_t1_grows_with_overlap(self):
        assert threshold_t1(1.0, 0.9) > threshold_t1(1.0, 0.1)

    def test_t2_eq15(self):
        t2 = threshold_t2(
            delta_percent=10.0, overlap_ratio_cm=0.5, eta_combined=0.5,
            hit_time=2.0, hit_concurrency=2.0, f_mem=0.4, cpi_exe=1.0,
        )
        budget = 0.1 / 0.5
        hit_cost = 2.0 * 0.4 / (2.0 * 1.0)
        assert t2 == pytest.approx((budget - hit_cost) / 0.5)

    def test_t2_can_be_negative_when_hit_cost_exceeds_budget(self):
        t2 = threshold_t2(1.0, 0.0, 0.5, 4.0, 1.0, 0.5, 1.0)
        assert t2 < 0

    def test_meeting_t1_bounds_stall_eq12(self):
        # If LPMR1 == T1 exactly, Eq. 12 stall equals delta% * CPI_exe.
        delta, ov, cpi_exe = 5.0, 0.4, 1.5
        t1 = threshold_t1(delta, ov)
        stall = stall_time_lpmr1(cpi_exe, ov, t1)
        assert stall == pytest.approx(delta / 100.0 * cpi_exe)

    def test_meeting_t2_bounds_stall_eq13(self):
        # If LPMR2 == T2 exactly, substituting into Eq. 13 collapses to the
        # stall budget: stall/instruction == delta% * CPI_exe.
        delta, ov, cpi_exe = 10.0, 0.5, 2.0
        eta_c, h1, ch1, f_mem = 0.5, 1.0, 4.0, 0.2
        t2 = threshold_t2(delta, ov, eta_c, h1, ch1, f_mem, cpi_exe)
        stall = stall_time_lpmr2(h1, ch1, f_mem, cpi_exe, eta_c, t2, ov)
        assert stall == pytest.approx(delta / 100.0 * cpi_exe)

    def test_compute_classmethod(self):
        sm = StallModel(f_mem=0.4, cpi_exe=1.0, overlap_ratio_cm=0.5)
        th = MatchingThresholds.compute(10.0, sm, 0.5, 2.0, 2.0)
        assert th.t1 == pytest.approx(0.2)
        assert th.delta_percent == 10.0


def _report(**overrides) -> LPMRReport:
    base = dict(
        lpmr1=2.0, lpmr2=3.0, lpmr3=4.0,
        camat1=1.6, camat2=10.0, camat3=60.0,
        mr1=0.1, mr2=0.4, f_mem=0.4, cpi_exe=0.8,
        overlap_ratio_cm=0.5, eta_combined=0.5,
        hit_time1=2.0, hit_concurrency1=2.0,
    )
    base.update(overrides)
    return LPMRReport(**base)


class TestLPMRReport:
    def test_predicted_stall_matches_eq12(self):
        r = _report()
        assert r.predicted_stall_per_instruction() == pytest.approx(
            stall_time_lpmr1(r.cpi_exe, r.overlap_ratio_cm, r.lpmr1)
        )

    def test_stall_fraction(self):
        r = _report()
        frac = r.predicted_stall_fraction_of_compute()
        assert frac == pytest.approx(r.predicted_stall_per_instruction() / r.cpi_exe)

    def test_is_matched_respects_threshold(self):
        tight = _report(lpmr1=0.001)
        assert tight.is_matched(1.0)
        loose = _report(lpmr1=8.0)
        assert not loose.is_matched(1.0)

    def test_thresholds_delegate(self):
        r = _report()
        th = r.thresholds(10.0)
        assert th.t1 == pytest.approx(0.2)

    def test_stall_model_roundtrip(self):
        r = _report()
        sm = r.stall_model
        assert sm.f_mem == r.f_mem
        assert sm.cpi_exe == r.cpi_exe
