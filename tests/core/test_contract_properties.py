"""Property-based tests of the model-invariant contract layer.

Two things are under test here:

1. the paper's identities themselves — Eq. (4) layer coupling and the
   Eq. (9)-(11) LPMR definitions hold on randomized parameter draws;
2. the contract machinery — under :func:`repro.lint.contracts.runtime_checks`
   every decorated producer (``measure_layer``, ``CAMATAnalyzer.run``,
   ``measure_hierarchy``, ``HierarchyStats.lpmr_report``) verifies its own
   output, and doctored outputs raise :class:`ContractViolation`.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analyzer import CAMATAnalyzer, measure_layer
from repro.core.camat import CAMATParams, CAMATStack, eta, recursive_camat
from repro.core.lpm import LPMRReport, lpmr1, lpmr2, lpmr3
from repro.lint.contracts import (
    CONTRACTS,
    ContractViolation,
    check_layer,
    check_report,
    runtime_checks,
    runtime_checks_enabled,
    verify,
)
from tests.core.test_analyzer_properties import access_population

# Positive model quantities, bounded away from 0 so ratios stay well
# conditioned (the identities are exact; we only admit rounding error).
positive = st.floats(min_value=0.1, max_value=100.0, allow_nan=False)
fraction = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
concurrency = st.floats(min_value=1.0, max_value=64.0, allow_nan=False)


class TestEq4Recursion:
    @given(
        hit_time=positive,
        hit_concurrency=concurrency,
        pmr=fraction,
        pamp=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        amp_extra=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        c_m=concurrency,
        cm_ratio=st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_recursion_collapses_to_eq2(
        self, hit_time, hit_concurrency, pmr, pamp, amp_extra, c_m, cm_ratio
    ):
        """Eq. (4) equals Eq. (2) when eta and C-AMAT_2 come from the same
        measurement: pMR*eta*C-AMAT_2 == pMR*pAMP/C_M with
        eta = (pAMP/AMP)(Cm/C_M) and C-AMAT_2 = AMP/Cm."""
        amp = pamp + amp_extra  # AMP >= pAMP (overlapped cycles only add)
        if amp == 0.0:
            return  # no misses: the recursion term vanishes trivially
        cm = c_m * cm_ratio  # conventional miss concurrency, any positive value
        upper = CAMATParams(
            hit_time=hit_time,
            hit_concurrency=hit_concurrency,
            pure_miss_rate=pmr,
            pure_miss_penalty=pamp,
            pure_miss_concurrency=c_m,
        )
        eta1 = eta(pamp, amp, cm, c_m)
        camat2 = amp / cm  # the lower layer's per-access latency, Eq. (4) term
        assert recursive_camat(upper, eta1, camat2) == pytest.approx(
            upper.value, rel=1e-9, abs=1e-12
        )

    @given(
        params=st.lists(
            st.tuples(positive, concurrency, fraction, positive, positive, concurrency),
            min_size=2,
            max_size=4,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_stack_recursion_matches_direct_value(self, params):
        """A stack built so each lower layer's Eq. (2) value equals the upper
        layer's AMP/Cm collapses the full recursion to layer 0's direct value."""
        layers = []
        etas = []
        for i, (h, c_h, pmr, pamp, amp_extra, c_m) in enumerate(params):
            amp = pamp + amp_extra
            cm = max(c_m * 0.5, 1.0)
            if i > 0:
                # Make this layer's direct C-AMAT equal the upper layer's
                # AMP/Cm so the telescoping is exact.
                prev_h, prev_cm = layers[-1][0], layers[-1][1]
                h = prev_h / prev_cm
                c_h, pmr, pamp = 1.0, 0.0, 0.0
            layers.append((amp, cm))
            etas.append(eta(pamp, amp, cm, c_m) if i < len(params) - 1 else None)
            params[i] = (h, c_h, pmr, pamp, c_m)
        stack = CAMATStack(
            layers=tuple(
                CAMATParams(h, c_h, pmr, pamp, c_m)
                for (h, c_h, pmr, pamp, c_m) in params
            ),
            miss_rates=tuple(0.5 for _ in params),
            etas=tuple(e for e in etas if e is not None),
        )
        top = stack.top_camat()
        assert top >= stack.layers[0].hit_component - 1e-12
        # The recursion is monotone in depth: cutting it off at any layer
        # and substituting that layer's direct value changes nothing here.
        for i in range(stack.depth):
            assert stack.recursive_camat_of(i) >= 0.0


class TestLPMRDefinitions:
    @given(
        camat1=positive, camat2=positive, camat3=positive,
        f_mem=fraction, mr1=fraction, mr2=fraction,
        cpi_exe=st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
        overlap=st.floats(min_value=0.0, max_value=0.99, allow_nan=False),
        eta_combined=fraction,
    )
    @settings(max_examples=200, deadline=None)
    def test_report_built_from_definitions_satisfies_contracts(
        self, camat1, camat2, camat3, f_mem, mr1, mr2, cpi_exe, overlap, eta_combined
    ):
        report = LPMRReport(
            lpmr1=lpmr1(camat1, f_mem, cpi_exe),
            lpmr2=lpmr2(camat2, f_mem, mr1, cpi_exe),
            lpmr3=lpmr3(camat3, f_mem, mr1, mr2, cpi_exe),
            camat1=camat1, camat2=camat2, camat3=camat3,
            mr1=mr1, mr2=mr2, f_mem=f_mem, cpi_exe=cpi_exe,
            overlap_ratio_cm=overlap, eta_combined=eta_combined,
            hit_time1=1.0, hit_concurrency1=1.0,
        )
        assert check_report(report) is report

    def test_tampered_lpmr_is_rejected(self):
        report = LPMRReport(
            lpmr1=lpmr1(2.0, 0.4, 1.0),
            lpmr2=lpmr2(8.0, 0.4, 0.1, 1.0),
            lpmr3=lpmr3(50.0, 0.4, 0.1, 0.2, 1.0),
            camat1=2.0, camat2=8.0, camat3=50.0,
            mr1=0.1, mr2=0.2, f_mem=0.4, cpi_exe=1.0,
            overlap_ratio_cm=0.3, eta_combined=0.5,
            hit_time1=1.0, hit_concurrency1=2.0,
        )
        broken = dataclasses.replace(report, lpmr2=report.lpmr2 * 1.5 + 0.1)
        with pytest.raises(ContractViolation, match=r"Eq\. 10"):
            check_report(broken)


class TestMeasuredLayerContracts:
    @given(access_population())
    @settings(max_examples=120, deadline=None)
    def test_measure_layer_satisfies_all_layer_contracts(self, pop):
        with runtime_checks():
            m = measure_layer(*pop)  # the decorator itself asserts
        assert not verify(m, [c for c in CONTRACTS if CONTRACTS[c].applies_to == "layer"])

    @given(access_population(max_accesses=8, max_start=20, max_penalty=6))
    @settings(max_examples=30, deadline=None)
    def test_streaming_analyzer_satisfies_contracts(self, pop):
        analyzer = CAMATAnalyzer()
        for hs, he, ms, me in zip(*pop):
            analyzer.add_access(hs, he, ms, me)
        with runtime_checks():
            analyzer.run()

    def test_doctored_measurement_raises(self):
        m = measure_layer([0, 2], [3, 5], [3, 0], [10, 0])
        broken = dataclasses.replace(m, active_cycles=m.active_cycles + 1)
        with pytest.raises(ContractViolation):
            check_layer(broken)

    def test_runtime_mode_is_scoped(self):
        assert not runtime_checks_enabled()
        with runtime_checks():
            assert runtime_checks_enabled()
        assert not runtime_checks_enabled()


class TestEndToEndPipeline:
    def test_simulated_hierarchy_passes_all_contracts(self):
        from repro.sim.params import table1_config
        from repro.sim.stats import simulate_and_measure
        from repro.workloads.spec import get_benchmark

        trace = get_benchmark("401.bzip2").trace(800, seed=1)
        with runtime_checks():
            # measure_hierarchy and lpmr_report both self-verify here.
            _, stats = simulate_and_measure(table1_config("A"), trace, seed=0)
            report = stats.lpmr_report()
        assert report.lpmr1 > 0.0
