"""Golden test: the paper's Fig. 1 worked example (Section II).

Five accesses, each with 3 cycles of cache hit operations.  Accesses 3 and
4 miss; access 3's penalty contains 2 pure miss cycles, access 4's single
overlapped miss cycle is hidden by access 5's hit activity.  The paper
states the resulting parameter values exactly:

    AMAT   = 3 + 0.4 * 2 = 3.8
    C_H    = (2*2 + 4*1 + 3*2 + 1*1) / 6 = 5/2
    C_M    = 1 * 2 / 2 = 1
    pAMP   = 2 / 1 = 2
    pMR    = 1/5
    C-AMAT = 3/(5/2) + (1/5) * 2/1 = 1.6  (= 8 active cycles / 5 accesses)

Timeline used here (cycles 1..9, half-open intervals), consistent with all
the quantities above:

    A1: hit  cycles 1-3                -> [1, 4)
    A2: hit  cycles 1-3                -> [1, 4)
    A3: hit-op cycles 3-5, miss 6-8    -> hit [3, 6), miss [6, 9); cycles 7,8 pure
    A4: hit-op cycles 3-5, miss 6      -> hit [3, 6), miss [6, 7); overlapped by A5
    A5: hit  cycles 4-6                -> [4, 7)

Per-cycle hit concurrency: c1-2: 2, c3: 4, c4-5: 3, c6: 1 — the four hit
phases of Fig. 1 (2 accesses x 2 cycles, 4 x 1, 3 x 2, 1 x 1).
"""

import pytest

from repro.core import CAMATAnalyzer, measure_layer
from repro.core.camat import amat, camat

HIT_START = [1, 1, 3, 3, 4]
HIT_END = [4, 4, 6, 6, 7]
MISS_START = [0, 0, 6, 6, 0]
MISS_END = [0, 0, 9, 7, 0]


@pytest.fixture(scope="module")
def measurement():
    return measure_layer(HIT_START, HIT_END, MISS_START, MISS_END)


class TestFig1Vectorized:
    def test_hit_time(self, measurement):
        assert measurement.hit_time == pytest.approx(3.0)

    def test_hit_concurrency(self, measurement):
        # C_H = (2*2 + 4*1 + 3*2 + 1*1)/6 = 5/2
        assert measurement.hit_concurrency == pytest.approx(2.5)

    def test_miss_rate_and_amp(self, measurement):
        assert measurement.miss_count == 2
        assert measurement.miss_rate == pytest.approx(0.4)
        # AMP = (3 + 1)/2 = 2
        assert measurement.avg_miss_penalty == pytest.approx(2.0)

    def test_pure_miss_parameters(self, measurement):
        assert measurement.pure_miss_count == 1
        assert measurement.pure_miss_rate == pytest.approx(0.2)
        assert measurement.pure_miss_penalty == pytest.approx(2.0)
        assert measurement.pure_miss_concurrency == pytest.approx(1.0)
        assert measurement.pure_miss_cycles == 2

    def test_amat_value(self, measurement):
        assert measurement.amat == pytest.approx(3.8)
        assert amat(3.0, 0.4, 2.0) == pytest.approx(3.8)

    def test_camat_value(self, measurement):
        assert measurement.camat == pytest.approx(1.6)
        assert camat(3.0, 2.5, 0.2, 2.0, 1.0) == pytest.approx(1.6)

    def test_camat_via_apc(self, measurement):
        # 8 memory-active cycles for 5 accesses
        assert measurement.active_cycles == 8
        assert measurement.apc == pytest.approx(5.0 / 8.0)
        assert 1.0 / measurement.apc == pytest.approx(measurement.camat)

    def test_eq2_matches_apc_measurement(self, measurement):
        assert measurement.camat_model == pytest.approx(measurement.camat)

    def test_concurrency_doubles_memory_performance(self, measurement):
        # "In this example, concurrency has doubled memory performance."
        assert measurement.amat / measurement.camat == pytest.approx(3.8 / 1.6)


class TestFig1Streaming:
    def test_streaming_detectors_agree_with_vectorized(self, measurement):
        analyzer = CAMATAnalyzer()
        for hs, he, ms, me in zip(HIT_START, HIT_END, MISS_START, MISS_END):
            analyzer.add_access(hs, he, ms, me)
        streamed = analyzer.run()
        assert streamed.hit_concurrency == pytest.approx(measurement.hit_concurrency)
        assert streamed.pure_miss_concurrency == pytest.approx(
            measurement.pure_miss_concurrency
        )
        assert streamed.pure_miss_rate == pytest.approx(measurement.pure_miss_rate)
        assert streamed.pure_miss_penalty == pytest.approx(measurement.pure_miss_penalty)
        assert streamed.camat == pytest.approx(measurement.camat)
        assert streamed.amat == pytest.approx(measurement.amat)
        assert streamed.active_cycles == measurement.active_cycles
        assert streamed.miss_concurrency == pytest.approx(measurement.miss_concurrency)
