"""Unit tests for the stall-time formulations (Eqs. 5-8, 12-13)."""

import pytest

from repro.core.stall import (
    StallModel,
    combined_eta,
    cpu_time,
    overlap_ratio,
    stall_time_amat,
    stall_time_amat_classic,
    stall_time_camat,
    stall_time_lpmr1,
    stall_time_lpmr2,
)


class TestCpuTime:
    def test_eq5(self):
        # 1000 instructions, CPI_exe 1.5, stall 0.5 cycles/instr, 1ns cycle
        assert cpu_time(1000, 1.5, 0.5, 1e-9) == pytest.approx(2e-6)

    def test_no_stall(self):
        assert cpu_time(100, 2.0, 0.0) == pytest.approx(200.0)

    def test_rejects_negative_stall(self):
        with pytest.raises(ValueError):
            cpu_time(100, 2.0, -0.1)


class TestAmatStall:
    def test_eq6(self):
        assert stall_time_amat(0.4, 3.8) == pytest.approx(1.52)

    def test_classic_form_counts_only_penalty(self):
        assert stall_time_amat_classic(0.4, 0.4, 2.0) == pytest.approx(0.32)

    def test_classic_below_eq6(self):
        assert stall_time_amat_classic(0.4, 0.4, 2.0) < stall_time_amat(0.4, 3.8)


class TestOverlapRatio:
    def test_eq8(self):
        assert overlap_ratio(30.0, 100.0) == pytest.approx(0.3)

    def test_full_overlap(self):
        assert overlap_ratio(100.0, 100.0) == pytest.approx(1.0)

    def test_rejects_overlap_exceeding_total(self):
        with pytest.raises(ValueError):
            overlap_ratio(101.0, 100.0)

    def test_rejects_zero_total(self):
        with pytest.raises(ValueError):
            overlap_ratio(0.0, 0.0)


class TestCamatStall:
    def test_eq7(self):
        assert stall_time_camat(0.4, 1.6, 0.5) == pytest.approx(0.32)

    def test_full_overlap_means_no_stall(self):
        assert stall_time_camat(0.4, 1.6, 1.0) == pytest.approx(0.0)

    def test_reduces_to_eq6_without_overlap(self):
        assert stall_time_camat(0.4, 3.8, 0.0) == pytest.approx(stall_time_amat(0.4, 3.8))


class TestLpmrStall:
    def test_eq12(self):
        # stall = CPI_exe * (1 - overlap) * LPMR1
        assert stall_time_lpmr1(1.0, 0.5, 2.0) == pytest.approx(1.0)

    def test_eq12_equals_eq7(self):
        # LPMR1 = C-AMAT1 * f_mem / CPI_exe, so Eq. 12 == Eq. 7 identically.
        f_mem, camat1, cpi_exe, ov = 0.4, 1.6, 1.25, 0.3
        lpmr1 = camat1 * f_mem / cpi_exe
        assert stall_time_lpmr1(cpi_exe, ov, lpmr1) == pytest.approx(
            stall_time_camat(f_mem, camat1, ov)
        )

    def test_eq13_monotone_in_lpmr2(self):
        lo = stall_time_lpmr2(2.0, 2.0, 0.4, 1.0, 0.5, 1.0, 0.3)
        hi = stall_time_lpmr2(2.0, 2.0, 0.4, 1.0, 0.5, 4.0, 0.3)
        assert hi > lo

    def test_eq13_small_eta_shrinks_l2_impact(self):
        args = dict(hit_time=2.0, hit_concurrency=2.0, f_mem=0.4, cpi_exe=1.0,
                    lpmr2=5.0, overlap_ratio_cm=0.0)
        near_zero = stall_time_lpmr2(eta_combined=0.01, **args)
        big = stall_time_lpmr2(eta_combined=0.9, **args)
        assert near_zero < big
        # with eta -> 0 the stall approaches the pure L1-hit term
        assert near_zero == pytest.approx(2.0 / 2.0 * 0.4, rel=0.15)


class TestCombinedEta:
    def test_bounds(self):
        # no overlap at all: pure == conventional -> eta = 1
        assert combined_eta(10.0, 10.0, 2.0, 2.0, 0.3, 0.3) == pytest.approx(1.0)

    def test_fig1_eta(self):
        # pAMP=2, AMP=2, Cm=1, C_M=1, pMR=0.2, MR=0.4 -> eta = 0.5
        assert combined_eta(2.0, 2.0, 1.0, 1.0, 0.2, 0.4) == pytest.approx(0.5)

    def test_rejects_zero_miss_rate(self):
        with pytest.raises(ValueError):
            combined_eta(2.0, 2.0, 1.0, 1.0, 0.2, 0.0)


class TestStallModel:
    def test_ipc_exe(self):
        assert StallModel(0.4, 2.0, 0.3).ipc_exe == pytest.approx(0.5)

    def test_stall_budget_fine_grained(self):
        m = StallModel(0.4, 2.0, 0.3)
        assert m.stall_budget(1.0) == pytest.approx(0.02)

    def test_stall_budget_coarse_grained(self):
        m = StallModel(0.4, 2.0, 0.3)
        assert m.stall_budget(10.0) == pytest.approx(0.2)

    def test_stall_from_camat_matches_free_function(self):
        m = StallModel(0.4, 2.0, 0.3)
        assert m.stall_from_camat(1.6) == pytest.approx(stall_time_camat(0.4, 1.6, 0.3))

    def test_cpu_time_per_instruction(self):
        m = StallModel(0.4, 2.0, 0.3)
        assert m.cpu_time_per_instruction(0.5) == pytest.approx(2.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            StallModel(1.5, 2.0, 0.3)
        with pytest.raises(ValueError):
            StallModel(0.4, 0.0, 0.3)
        with pytest.raises(ValueError):
            StallModel(0.4, 2.0, 1.5)
