"""Tests for the human-readable report renderers."""

import pytest

from repro.core.algorithm import LPMAlgorithm
from repro.core.analyzer import measure_layer
from repro.core.lpm import LPMRReport
from repro.core.report import (
    format_layer_measurement,
    format_lpmr_report,
    format_run_result,
)


def make_report(lpmr1=2.0, lpmr2=3.0):
    return LPMRReport(
        lpmr1=lpmr1, lpmr2=lpmr2, lpmr3=1.0,
        camat1=1.6, camat2=10.0, camat3=40.0,
        mr1=0.1, mr2=0.4, f_mem=0.4, cpi_exe=0.8,
        overlap_ratio_cm=0.5, eta_combined=0.5,
        hit_time1=3.0, hit_concurrency1=2.0,
    )


class TestFormatLayerMeasurement:
    def test_contains_all_camat_parameters(self):
        m = measure_layer([1, 1], [4, 4], [4, 0], [9, 0])
        text = format_layer_measurement("L1", m)
        for token in ("C_H", "C_M", "pMR", "pAMP", "C-AMAT", "AMAT", "APC", "eta"):
            assert token in text
        assert "[L1]" in text


class TestFormatLPMRReport:
    def test_contains_three_ratios_and_stall(self):
        text = format_lpmr_report(make_report())
        assert "LPMR1" in text and "LPMR3" in text
        assert "stall" in text
        assert "overlapRatio_cm" in text


class TestFormatRunResult:
    def test_walk_table(self):
        class Backend:
            def __init__(self):
                self.step = 0

            def measure(self):
                return make_report(lpmr1=2.0 - self.step, lpmr2=0.0001)

            def optimize(self, l1, l2):
                self.step += 1
                return self.step < 3

            def deprovision(self):
                return False

            def describe(self):
                return f"cfg{self.step}"

        result = LPMAlgorithm(delta_percent=120.0, max_steps=8).run(Backend())
        text = format_run_result(result)
        assert "cfg0" in text
        assert "Case" in text
        assert result.status.value in text

    def test_empty_history_renders(self):
        from repro.core.algorithm import LPMRunResult, LPMStatus

        text = format_run_result(LPMRunResult(status=LPMStatus.MATCHED))
        assert "matched" in text
