"""Unit tests for the C-AMAT / AMAT value objects (Eqs. 1-4)."""

import pytest

from repro.core.camat import (
    AMATParams,
    CAMATParams,
    CAMATStack,
    amat,
    apc_from_camat,
    camat,
    camat_from_apc,
    eta,
    recursive_camat,
)


class TestAMAT:
    def test_value(self):
        assert amat(2.0, 0.1, 20.0) == pytest.approx(4.0)

    def test_zero_miss_rate(self):
        assert amat(1.0, 0.0, 100.0) == pytest.approx(1.0)

    def test_rejects_negative_hit_time(self):
        with pytest.raises(ValueError):
            AMATParams(-1.0, 0.1, 10.0)

    def test_rejects_miss_rate_above_one(self):
        with pytest.raises(ValueError):
            AMATParams(1.0, 1.5, 10.0)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            AMATParams(float("nan"), 0.1, 10.0)

    def test_rejects_non_numeric(self):
        with pytest.raises(TypeError):
            AMATParams("3", 0.1, 10.0)  # type: ignore[arg-type]


class TestCAMAT:
    def test_fig1_values(self):
        assert camat(3.0, 2.5, 0.2, 2.0, 1.0) == pytest.approx(1.6)

    def test_degenerates_to_amat_without_concurrency(self):
        # C_H = C_M = 1, pMR = MR, pAMP = AMP -> C-AMAT == AMAT
        p = CAMATParams(2.0, 1.0, 0.3, 15.0, 1.0)
        assert p.value == pytest.approx(amat(2.0, 0.3, 15.0))

    def test_components_sum(self):
        p = CAMATParams(3.0, 2.0, 0.1, 8.0, 2.0)
        assert p.hit_component + p.miss_component == pytest.approx(p.value)

    def test_with_replaces_one_parameter(self):
        p = CAMATParams(3.0, 2.0, 0.1, 8.0, 2.0)
        q = p.with_(hit_concurrency=4.0)
        assert q.hit_concurrency == 4.0
        assert q.hit_time == p.hit_time
        assert q.value < p.value

    def test_increasing_ch_decreases_camat(self):
        base = CAMATParams(3.0, 1.0, 0.2, 10.0, 1.0)
        better = base.with_(hit_concurrency=3.0)
        assert better.value < base.value

    def test_increasing_cm_decreases_camat(self):
        base = CAMATParams(3.0, 2.0, 0.2, 10.0, 1.0)
        better = base.with_(pure_miss_concurrency=4.0)
        assert better.value < base.value

    def test_rejects_concurrency_below_one(self):
        with pytest.raises(ValueError):
            CAMATParams(3.0, 0.5, 0.2, 10.0, 1.0)
        with pytest.raises(ValueError):
            CAMATParams(3.0, 1.0, 0.2, 10.0, 0.0)

    def test_degenerate_amat_constructor(self):
        p = CAMATParams(3.0, 2.0, 0.1, 8.0, 2.0)
        a = p.degenerate_amat(miss_rate=0.4, avg_miss_penalty=2.0)
        assert a.value == pytest.approx(3.8)


class TestAPC:
    def test_roundtrip(self):
        assert camat_from_apc(apc_from_camat(1.6)) == pytest.approx(1.6)

    def test_fig1(self):
        assert camat_from_apc(5.0 / 8.0) == pytest.approx(1.6)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            camat_from_apc(0.0)


class TestEta:
    def test_unit_when_no_overlap(self):
        # pure == conventional in every respect -> eta = 1
        assert eta(10.0, 10.0, 2.0, 2.0) == pytest.approx(1.0)

    def test_small_when_overlap_hides_misses(self):
        assert eta(1.0, 10.0, 2.0, 2.0) == pytest.approx(0.1)

    def test_concurrency_ratio(self):
        assert eta(10.0, 10.0, 1.0, 4.0) == pytest.approx(0.25)


class TestRecursiveCAMAT:
    def test_eq4_manual(self):
        upper = CAMATParams(2.0, 2.0, 0.1, 12.0, 2.0)
        # eta1 * C-AMAT2 must replace pAMP1/C_M1 for the identity to hold.
        lower_camat = 10.0
        eta1 = (12.0 / 2.0) / lower_camat  # pAMP1/C_M1 / C-AMAT2
        value = recursive_camat(upper, eta1, lower_camat)
        assert value == pytest.approx(upper.value)

    def test_zero_eta_removes_lower_layer_impact(self):
        upper = CAMATParams(2.0, 2.0, 0.5, 100.0, 1.0)
        assert recursive_camat(upper, 0.0, 1000.0) == pytest.approx(upper.hit_component)


class TestCAMATStack:
    def _stack(self):
        l1 = CAMATParams(2.0, 2.0, 0.10, 8.0, 2.0)
        l2 = CAMATParams(8.0, 1.5, 0.20, 40.0, 2.0)
        # Choose etas so the recursion reproduces each direct value exactly.
        eta1 = (l1.pure_miss_penalty / l1.pure_miss_concurrency) / l2.value
        return CAMATStack(layers=(l1, l2), miss_rates=(0.2, 0.3), etas=(eta1,))

    def test_depth(self):
        assert self._stack().depth == 2

    def test_bottom_layer_recursion_is_direct_value(self):
        s = self._stack()
        assert s.recursive_camat_of(1) == pytest.approx(s.camat_of(1))

    def test_top_camat_matches_direct_when_etas_consistent(self):
        s = self._stack()
        assert s.top_camat() == pytest.approx(s.camat_of(0))

    def test_rejects_mismatched_lengths(self):
        l1 = CAMATParams(2.0, 2.0, 0.10, 8.0, 2.0)
        with pytest.raises(ValueError):
            CAMATStack(layers=(l1,), miss_rates=(0.2, 0.3), etas=())
        with pytest.raises(ValueError):
            CAMATStack(layers=(l1, l1), miss_rates=(0.2, 0.3), etas=())

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            CAMATStack(layers=(), miss_rates=(), etas=())

    def test_three_level_recursion(self):
        l1 = CAMATParams(2.0, 2.0, 0.10, 8.0, 2.0)
        l2 = CAMATParams(8.0, 1.5, 0.20, 40.0, 2.0)
        l3 = CAMATParams(60.0, 1.2, 0.0, 0.0, 1.0)
        eta2 = (l2.pure_miss_penalty / l2.pure_miss_concurrency) / l3.value
        eta1 = (l1.pure_miss_penalty / l1.pure_miss_concurrency) / l2.value
        s = CAMATStack(layers=(l1, l2, l3), miss_rates=(0.2, 0.3, 0.9), etas=(eta1, eta2))
        assert s.top_camat() == pytest.approx(l1.value)
        assert s.recursive_camat_of(1) == pytest.approx(l2.value)
