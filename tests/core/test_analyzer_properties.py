"""Property-based tests of the C-AMAT analyzer invariants.

Strategy: generate random access populations (hit interval of fixed length
H at a random start; optional miss interval appended after the hit
interval) and check the paper's structural identities on the vectorized
measurement, plus agreement with the cycle-stepped streaming reference.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analyzer import CAMATAnalyzer, concurrency_profile, measure_layer


@st.composite
def access_population(draw, max_accesses=40, max_start=60, hit_time=3, max_penalty=12):
    n = draw(st.integers(min_value=1, max_value=max_accesses))
    hs, he, ms, me = [], [], [], []
    for _ in range(n):
        start = draw(st.integers(min_value=0, max_value=max_start))
        hs.append(start)
        he.append(start + hit_time)
        penalty = draw(st.integers(min_value=0, max_value=max_penalty))
        if penalty:
            # Penalty may begin after an arbitrary queueing delay.
            delay = draw(st.integers(min_value=0, max_value=4))
            ms.append(start + hit_time + delay)
            me.append(start + hit_time + delay + penalty)
        else:
            ms.append(0)
            me.append(0)
    return hs, he, ms, me


class TestAnalyzerIdentities:
    @given(access_population())
    @settings(max_examples=120, deadline=None)
    def test_camat_equals_inverse_apc(self, pop):
        m = measure_layer(*pop)
        assert m.camat == pytest.approx(1.0 / m.apc)

    @given(access_population())
    @settings(max_examples=120, deadline=None)
    def test_eq2_matches_apc_measurement(self, pop):
        # For uniform hit times, Eq. (2) equals active_cycles/accesses exactly.
        m = measure_layer(*pop)
        assert m.camat_model == pytest.approx(m.camat)

    @given(access_population())
    @settings(max_examples=120, deadline=None)
    def test_camat_never_exceeds_amat(self, pop):
        # Concurrency can only hide latency, never add it.
        m = measure_layer(*pop)
        assert m.camat <= m.amat + 1e-9

    @given(access_population())
    @settings(max_examples=120, deadline=None)
    def test_pure_miss_rate_bounded_by_miss_rate(self, pop):
        m = measure_layer(*pop)
        assert m.pure_miss_rate <= m.miss_rate + 1e-12
        assert m.pure_miss_count <= m.miss_count

    @given(access_population())
    @settings(max_examples=120, deadline=None)
    def test_concurrencies_at_least_one(self, pop):
        m = measure_layer(*pop)
        assert m.hit_concurrency >= 1.0
        assert m.pure_miss_concurrency >= 1.0
        assert m.miss_concurrency >= 1.0

    @given(access_population())
    @settings(max_examples=120, deadline=None)
    def test_pure_miss_concurrency_bounds_conventional(self, pop):
        # Every pure miss cycle is a miss-active cycle, so pure cycles are a
        # subset; the pure-cycle total can't exceed the conventional total.
        m = measure_layer(*pop)
        assert m.pure_miss_cycles <= m.miss_active_cycles

    @given(access_population())
    @settings(max_examples=120, deadline=None)
    def test_active_cycle_partition(self, pop):
        # Every memory-active cycle is hit-active or a pure-miss cycle.
        m = measure_layer(*pop)
        assert m.active_cycles == m.hit_active_cycles + m.pure_miss_cycles

    @given(access_population())
    @settings(max_examples=120, deadline=None)
    def test_layer_eta_non_negative(self, pop):
        # The per-layer eta of Eq. (4) can exceed 1 (pAMP averages over the
        # penalty-biased pure-miss population); only non-negativity holds.
        m = measure_layer(*pop)
        assert m.eta >= 0.0

    @given(access_population())
    @settings(max_examples=120, deadline=None)
    def test_combined_eta_is_pure_cycle_fraction(self, pop):
        # The Eq. (13) combined eta algebraically reduces to
        # pure_miss_cycles / miss_active_cycles, hence always lies in [0, 1].
        from repro.core.stall import combined_eta

        m = measure_layer(*pop)
        if m.miss_count == 0 or m.avg_miss_penalty == 0.0:
            return
        value = combined_eta(
            m.pure_miss_penalty, m.avg_miss_penalty,
            m.miss_concurrency, m.pure_miss_concurrency,
            m.pure_miss_rate, m.miss_rate,
        )
        assert value == pytest.approx(m.pure_miss_cycles / m.miss_active_cycles)
        assert 0.0 <= value <= 1.0 + 1e-9

    @given(access_population())
    @settings(max_examples=120, deadline=None)
    def test_pamp_bounded_by_amp(self, pop):
        # Pure cycles of a miss are a subset of its penalty cycles, but pAMP
        # averages over *pure misses* only, so compare totals instead:
        # pAMP * pure_misses <= AMP * misses.
        m = measure_layer(*pop)
        assert (
            m.pure_miss_penalty * m.pure_miss_count
            <= m.avg_miss_penalty * m.miss_count + 1e-9
        )

    @given(access_population(max_accesses=12, max_start=20, max_penalty=6))
    @settings(max_examples=60, deadline=None)
    def test_vectorized_agrees_with_streaming_reference(self, pop):
        m = measure_layer(*pop)
        analyzer = CAMATAnalyzer()
        for hs, he, ms, me in zip(*pop):
            analyzer.add_access(hs, he, ms, me)
        r = analyzer.run()
        assert r.accesses == m.accesses
        assert r.hit_concurrency == pytest.approx(m.hit_concurrency)
        assert r.pure_miss_concurrency == pytest.approx(m.pure_miss_concurrency)
        assert r.miss_concurrency == pytest.approx(m.miss_concurrency)
        assert r.pure_miss_count == m.pure_miss_count
        assert r.pure_miss_penalty == pytest.approx(m.pure_miss_penalty)
        assert r.avg_miss_penalty == pytest.approx(m.avg_miss_penalty)
        assert r.active_cycles == m.active_cycles
        assert r.camat == pytest.approx(m.camat)


class TestConcurrencyProfile:
    def test_simple_overlap(self):
        starts = np.array([0, 1, 1])
        ends = np.array([2, 3, 2])
        prof = concurrency_profile(starts, ends, 0, 3)
        assert prof.tolist() == [1, 3, 1]

    def test_clipping_outside_window(self):
        starts = np.array([-5, 10])
        ends = np.array([2, 20])
        prof = concurrency_profile(starts, ends, 0, 5)
        assert prof.tolist() == [1, 1, 0, 0, 0]

    def test_empty_intervals_ignored(self):
        starts = np.array([0, 3])
        ends = np.array([0, 3])
        prof = concurrency_profile(starts, ends, 0, 5)
        assert prof.sum() == 0

    def test_rejects_inverted_window(self):
        with pytest.raises(ValueError):
            concurrency_profile(np.array([0]), np.array([1]), 5, 0)

    @given(access_population())
    @settings(max_examples=60, deadline=None)
    def test_profile_mass_equals_total_interval_length(self, pop):
        hs, he, _, _ = pop
        hs = np.asarray(hs)
        he = np.asarray(he)
        prof = concurrency_profile(hs, he, int(hs.min()), int(he.max()))
        assert prof.sum() == (he - hs).sum()


class TestAnalyzerEdgeCases:
    def test_empty_population(self):
        m = measure_layer([], [], [], [])
        assert m.accesses == 0
        assert m.camat == 0.0
        assert m.apc == 0.0

    def test_single_hit(self):
        m = measure_layer([0], [3], [0], [0])
        assert m.camat == pytest.approx(3.0)
        assert m.miss_count == 0
        assert m.eta == 0.0

    def test_single_isolated_miss_is_pure(self):
        m = measure_layer([0], [3], [3], [13])
        assert m.pure_miss_count == 1
        assert m.pure_miss_penalty == pytest.approx(10.0)
        assert m.camat == pytest.approx(13.0)
        assert m.camat == pytest.approx(m.amat)  # no concurrency to exploit

    def test_fully_hidden_miss_is_not_pure(self):
        # A long-running hit stream covers the whole miss penalty.
        m = measure_layer([0, 0], [3, 20], [3, 0], [10, 0])
        assert m.miss_count == 1
        assert m.pure_miss_count == 0
        assert m.pure_miss_rate == 0.0

    def test_rejects_empty_hit_interval(self):
        with pytest.raises(ValueError):
            measure_layer([0], [0], [0], [5])

    def test_rejects_inverted_miss_interval(self):
        with pytest.raises(ValueError):
            measure_layer([0], [3], [5], [4])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            measure_layer([0, 1], [3, 4], [0], [0])

    def test_streaming_detector_rejects_negative(self):
        from repro.core.analyzer import HitConcurrencyDetector, MissConcurrencyDetector

        with pytest.raises(ValueError):
            HitConcurrencyDetector().observe(-1)
        with pytest.raises(ValueError):
            MissConcurrencyDetector().observe(-1, False)

    def test_detector_reset(self):
        from repro.core.analyzer import HitConcurrencyDetector

        hcd = HitConcurrencyDetector()
        hcd.observe(3)
        hcd.reset()
        assert hcd.hit_active_cycles == 0
        assert hcd.hit_concurrency == 1.0
