"""Tests for the bottleneck diagnosis module."""

import pytest

from repro.core.diagnosis import Finding, diagnose, render_diagnosis
from repro.sim import DEFAULT_MACHINE, simulate_and_measure, table1_config
from repro.workloads.spec import get_benchmark


def measure(bench, config, n=12000, seed=7):
    trace = get_benchmark(bench).trace(n, seed=seed)
    _, stats = simulate_and_measure(config, trace, seed=0)
    return stats


class TestDiagnose:
    def test_port_starved_machine_flags_ch(self):
        cfg = table1_config("A")  # one non-pipelined port
        stats = measure("410.bwaves", cfg)
        findings = diagnose(stats, cfg)
        assert findings[0].dimension == "C_H"
        assert findings[0].layer == "L1"
        assert any("port" in t for t in findings[0].techniques)

    def test_pointer_chase_flags_pmr_and_deep_latency(self):
        cfg = table1_config("D")
        stats = measure("429.mcf", cfg)
        findings = diagnose(stats, cfg)
        dims = {f.dimension for f in findings}
        assert "pMR" in dims
        assert "pAMP" in dims
        # Locality techniques recommended for the chase.
        top = findings[0]
        assert any("locality" in t or "prefetch" in t for t in top.techniques)

    def test_matched_run_yields_single_finding(self):
        cfg = table1_config("D")
        stats = measure("401.bzip2", cfg)
        findings = diagnose(stats, cfg)
        assert len(findings) == 1
        assert findings[0].dimension == "matched"
        assert "Case III" in findings[0].techniques[0]

    def test_findings_sorted_by_severity(self):
        cfg = table1_config("A")
        stats = measure("429.mcf", cfg)
        findings = diagnose(stats, cfg)
        sev = [f.severity for f in findings]
        assert sev == sorted(sev, reverse=True)

    def test_mshr_starved_machine_flags_cm(self):
        cfg = DEFAULT_MACHINE.with_knobs(
            mshr_count=2, l1_ports=4, iw_size=256, rob_size=256
        ).with_(l1_pipelined=True)
        import numpy as np
        from repro.workloads.trace import Trace

        rng = np.random.default_rng(0)
        addrs = (rng.integers(0, 1 << 23, 10000) >> 6) << 6
        trace = Trace.from_memory_addresses(addrs, compute_per_access=1)
        _, stats = simulate_and_measure(cfg, trace, seed=0)
        findings = diagnose(stats, cfg)
        dims = [f.dimension for f in findings]
        assert "C_M" in dims

    def test_finding_is_frozen_dataclass(self):
        f = Finding("H", "L1", 0.5, "x", ("t",))
        with pytest.raises(Exception):
            f.severity = 1.0  # type: ignore[misc]


class TestRenderDiagnosis:
    def test_report_structure(self):
        cfg = table1_config("A")
        stats = measure("410.bwaves", cfg, n=6000)
        text = render_diagnosis(stats, cfg)
        assert "C-AMAT1" in text
        assert "recommended techniques" in text
        assert "dimension" in text

    def test_matched_report(self):
        cfg = table1_config("D")
        stats = measure("401.bzip2", cfg, n=6000)
        text = render_diagnosis(stats, cfg)
        assert "matched" in text
