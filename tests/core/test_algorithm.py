"""Unit tests of the LPM algorithm loop (Fig. 3) against scripted backends."""

import pytest

from repro.core.algorithm import (
    LPMAlgorithm,
    LPMCase,
    LPMStatus,
    classify_case,
)
from repro.core.lpm import LPMRReport, MatchingThresholds


def make_report(lpmr1: float, lpmr2: float, *, overlap: float = 0.5) -> LPMRReport:
    return LPMRReport(
        lpmr1=lpmr1, lpmr2=lpmr2, lpmr3=lpmr2 * 1.5,
        camat1=lpmr1 * 2.0, camat2=lpmr2 * 10.0, camat3=lpmr2 * 40.0,
        mr1=0.1, mr2=0.4, f_mem=0.4, cpi_exe=0.8,
        overlap_ratio_cm=overlap, eta_combined=0.5,
        hit_time1=2.0, hit_concurrency1=8.0,
    )


class ScriptedBackend:
    """Backend whose measurements walk down a predefined LPMR schedule."""

    def __init__(self, schedule, deprovision_schedule=()):
        self.schedule = list(schedule)
        self.deprovision_schedule = list(deprovision_schedule)
        self.position = 0
        self.optimize_calls = []
        self.deprovision_calls = 0

    def measure(self):
        lpmr1, lpmr2 = self.schedule[self.position]
        return make_report(lpmr1, lpmr2)

    def optimize(self, l1, l2):
        self.optimize_calls.append((l1, l2))
        if self.position + 1 >= len(self.schedule):
            return False
        self.position += 1
        return True

    def deprovision(self):
        self.deprovision_calls += 1
        if not self.deprovision_schedule:
            return False
        self.schedule[self.position] = self.deprovision_schedule.pop(0)
        return True

    def describe(self):
        return f"cfg-{self.position}"


class TestClassifyCase:
    def _thresholds(self, t1, t2):
        return MatchingThresholds(delta_percent=1.0, t1=t1, t2=t2)

    def test_case_i_both_layers_mismatch(self):
        r = make_report(8.0, 9.0)
        assert classify_case(r, self._thresholds(1.0, 2.0), 0.5) is LPMCase.OPTIMIZE_BOTH

    def test_case_ii_only_l1_mismatch(self):
        r = make_report(8.0, 1.0)
        assert classify_case(r, self._thresholds(1.0, 2.0), 0.5) is LPMCase.OPTIMIZE_L1

    def test_case_iii_overprovision(self):
        r = make_report(0.1, 1.0)
        assert classify_case(r, self._thresholds(1.0, 2.0), 0.5) is LPMCase.DEPROVISION

    def test_case_iv_matched_band(self):
        r = make_report(0.7, 1.0)
        assert classify_case(r, self._thresholds(1.0, 2.0), 0.5) is LPMCase.MATCHED

    def test_boundary_exactly_t1_is_matched(self):
        r = make_report(1.0, 5.0)
        assert classify_case(r, self._thresholds(1.0, 2.0), 0.5) is LPMCase.MATCHED

    def test_boundary_t1_minus_delta_is_matched(self):
        r = make_report(0.5, 1.0)
        assert classify_case(r, self._thresholds(1.0, 2.0), 0.5) is LPMCase.MATCHED


class TestAlgorithmRun:
    def test_walks_until_matched(self):
        # LPMR trajectory mimicking Table I: both high, then L2 fine, then done.
        backend = ScriptedBackend([(8.0, 9.0), (2.0, 0.001), (0.19, 0.001)])
        algo = LPMAlgorithm(delta_percent=10.0, delta_slack_fraction=0.5, max_steps=20)
        result = algo.run(backend)
        assert result.status is LPMStatus.MATCHED
        cases = [s.case for s in result.steps]
        assert cases[0] is LPMCase.OPTIMIZE_BOTH
        assert LPMCase.MATCHED in cases

    def test_case_ii_only_touches_l1(self):
        backend = ScriptedBackend([(8.0, 0.0001), (0.19, 0.0001)])
        algo = LPMAlgorithm(delta_percent=10.0, max_steps=10)
        result = algo.run(backend)
        assert result.status is LPMStatus.MATCHED
        assert backend.optimize_calls[0] == (True, False)

    def test_exhausted_backend(self):
        backend = ScriptedBackend([(8.0, 9.0)])  # cannot improve
        algo = LPMAlgorithm(delta_percent=1.0, max_steps=10)
        result = algo.run(backend)
        assert result.status is LPMStatus.EXHAUSTED
        assert result.steps[-1].action_taken is False

    def test_step_limit(self):
        class Oscillating(ScriptedBackend):
            def optimize(self, l1, l2):
                return True  # claims progress but measurement never improves

        backend = Oscillating([(8.0, 9.0)])
        algo = LPMAlgorithm(delta_percent=1.0, max_steps=5)
        result = algo.run(backend)
        assert result.status is LPMStatus.STEP_LIMIT
        assert len(result.steps) == 5

    def test_deprovision_path(self):
        # Starts massively over-provisioned; one deprovision lands in band.
        backend = ScriptedBackend([(0.001, 0.001)], deprovision_schedule=[(0.15, 0.001)])
        algo = LPMAlgorithm(delta_percent=10.0, delta_slack_fraction=0.5, max_steps=10)
        result = algo.run(backend)
        assert result.status is LPMStatus.MATCHED
        assert backend.deprovision_calls == 1

    def test_deprovision_disabled(self):
        backend = ScriptedBackend([(0.001, 0.001)])
        algo = LPMAlgorithm(delta_percent=10.0, max_steps=10)
        result = algo.run(backend, allow_deprovision=False)
        assert result.status is LPMStatus.MATCHED
        assert backend.deprovision_calls == 0

    def test_trajectory_labels(self):
        backend = ScriptedBackend([(8.0, 9.0), (0.19, 0.001)])
        algo = LPMAlgorithm(delta_percent=10.0, max_steps=10)
        result = algo.run(backend)
        labels = [c for c, _, _ in result.trajectory()]
        assert labels[0] == "cfg-0"

    def test_fixed_delta_slack(self):
        algo = LPMAlgorithm(delta_percent=1.0, delta_slack=0.05, delta_slack_fraction=None)
        backend = ScriptedBackend([(0.001, 0.001)])
        result = algo.run(backend)
        # T1 = 0.02 with overlap 0.5; LPMR1 + 0.05 > T1 so this is matched.
        assert result.status is LPMStatus.MATCHED

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            LPMAlgorithm(delta_percent=0.0)
        with pytest.raises(ValueError):
            LPMAlgorithm(delta_slack=0.1, delta_slack_fraction=0.5)
        with pytest.raises(ValueError):
            LPMAlgorithm(delta_slack=None, delta_slack_fraction=None)

    def test_result_accessors_raise_when_empty(self):
        from repro.core.algorithm import LPMRunResult

        empty = LPMRunResult(status=LPMStatus.MATCHED)
        with pytest.raises(ValueError):
            _ = empty.final_report
        with pytest.raises(ValueError):
            _ = empty.final_case

    def test_optimization_steps_counts_actions(self):
        backend = ScriptedBackend([(8.0, 9.0), (2.0, 9.0), (0.19, 0.001)])
        algo = LPMAlgorithm(delta_percent=10.0, max_steps=10)
        result = algo.run(backend)
        assert result.optimization_steps == 2
