"""Integration tests: the LPM algorithm driving architecture exploration."""

import pytest

from repro.core.algorithm import LPMAlgorithm, LPMStatus
from repro.reconfig.explorer import GreedyReconfigBackend, LadderBackend
from repro.reconfig.space import DesignPoint, DesignSpace
from repro.sim.params import TABLE1_CONFIGS, table1_config
from repro.workloads.spec import get_benchmark


@pytest.fixture(scope="module")
def bwaves_trace():
    return get_benchmark("410.bwaves").trace(12000, seed=7)


@pytest.fixture(scope="module")
def ladder_backend(bwaves_trace):
    configs = [table1_config(label) for label in "ABCD"]
    return LadderBackend(configs, bwaves_trace, deprovision_configs=[table1_config("E")])


class TestLadderBackend:
    def test_measure_caches_simulations(self, ladder_backend):
        before = ladder_backend.log.evaluations
        ladder_backend.measure()
        mid = ladder_backend.log.evaluations
        ladder_backend.measure()
        assert ladder_backend.log.evaluations == mid
        assert mid >= before

    def test_optimize_advances_rung(self, bwaves_trace):
        backend = LadderBackend([table1_config(c) for c in "AB"], bwaves_trace)
        assert backend.describe() == "A"
        assert backend.optimize(l1=True, l2=True)
        assert backend.describe() == "B"
        assert not backend.optimize(l1=True, l2=False)

    def test_deprovision_switches_to_trim_config(self, bwaves_trace):
        backend = LadderBackend(
            [table1_config("D")], bwaves_trace,
            deprovision_configs=[table1_config("E")],
        )
        assert backend.deprovision()
        assert backend.describe() == "E"
        assert not backend.deprovision()

    def test_lpmr_decreases_along_table1_ladder(self, ladder_backend):
        # The Table I shape: LPMR1 falls from A to D.
        values = []
        backend = LadderBackend(
            [table1_config(c) for c in "ABCD"], ladder_backend.trace
        )
        while True:
            values.append(backend.measure().lpmr1)
            if not backend.optimize(l1=True, l2=True):
                break
        assert values[0] > values[-1]
        assert values[-1] == min(values)

    def test_rejects_empty_ladder(self, bwaves_trace):
        with pytest.raises(ValueError):
            LadderBackend([], bwaves_trace)

    def test_cache_keys_on_knobs_not_name(self, bwaves_trace):
        # Regression: two configurations sharing a display name must not
        # alias each other's measurements.
        weak = table1_config("A").with_knobs(name="same")
        strong = table1_config("D").with_knobs(name="same")
        backend = LadderBackend([weak, strong], bwaves_trace)
        weak_report = backend.measure()
        backend.optimize(l1=True, l2=True)
        strong_report = backend.measure()
        assert backend.log.evaluations == 2
        assert strong_report.lpmr1 != weak_report.lpmr1

    def test_same_knobs_different_name_share_measurement(self, bwaves_trace):
        a1 = table1_config("A")
        a2 = table1_config("A").with_knobs(name="A-again")
        backend = LadderBackend([a1, a2], bwaves_trace)
        backend.measure()
        backend.optimize(l1=True, l2=True)
        backend.measure()
        assert backend.log.evaluations == 1  # identical knobs: one simulation


class TestAlgorithmOnLadder:
    def test_walk_reduces_stall(self, bwaves_trace):
        configs = [table1_config(c) for c in "ABCD"]
        backend = LadderBackend(configs, bwaves_trace)
        # Generous delta so the substrate can reach the matched band.
        algo = LPMAlgorithm(delta_percent=120.0, delta_slack_fraction=0.5, max_steps=10)
        result = algo.run(backend, allow_deprovision=False)
        assert result.status in (LPMStatus.MATCHED, LPMStatus.EXHAUSTED)
        first, last = result.steps[0], result.steps[-1]
        assert last.report.lpmr1 <= first.report.lpmr1

    def test_unreachable_target_exhausts_ladder(self, bwaves_trace):
        configs = [table1_config(c) for c in "AB"]
        backend = LadderBackend(configs, bwaves_trace)
        algo = LPMAlgorithm(delta_percent=0.0001, max_steps=10)
        result = algo.run(backend)
        assert result.status is LPMStatus.EXHAUSTED


class TestGreedyBackend:
    @pytest.fixture(scope="class")
    def space(self):
        return DesignSpace()

    def test_optimize_improves_lpmr1(self, space, bwaves_trace):
        backend = GreedyReconfigBackend(space, bwaves_trace, seed=1)
        before = backend.measure().lpmr1
        assert backend.optimize(l1=True, l2=True)
        after = backend.measure().lpmr1
        assert after < before

    def test_optimize_l1_only_touches_l1_knobs(self, space, bwaves_trace):
        backend = GreedyReconfigBackend(space, bwaves_trace, seed=1)
        start = backend.point
        backend.measure()
        if backend.optimize(l1=True, l2=False):
            assert backend.point.l2_banks == start.l2_banks

    def test_optimize_returns_false_at_ceiling(self, space, bwaves_trace):
        backend = GreedyReconfigBackend(
            space, bwaves_trace, start=space.maximum_point(), seed=1
        )
        backend.measure()
        assert not backend.optimize(l1=True, l2=True)

    def test_deprovision_requires_prior_measure(self, space, bwaves_trace):
        backend = GreedyReconfigBackend(space, bwaves_trace, seed=1)
        assert not backend.deprovision()

    def test_describe_is_point_label(self, space, bwaves_trace):
        backend = GreedyReconfigBackend(space, bwaves_trace, seed=1)
        assert backend.describe() == backend.point.label()

    def test_evaluation_count_tracks_unique_configs(self, space, bwaves_trace):
        backend = GreedyReconfigBackend(space, bwaves_trace, seed=1)
        backend.measure()
        backend.measure()
        assert backend.log.evaluations == 1

    def test_full_algorithm_run_converges_or_exhausts(self, space, bwaves_trace):
        backend = GreedyReconfigBackend(space, bwaves_trace, seed=1, delta_percent=150.0)
        algo = LPMAlgorithm(delta_percent=150.0, delta_slack_fraction=0.5, max_steps=12)
        result = algo.run(backend, allow_deprovision=False)
        assert result.status in (LPMStatus.MATCHED, LPMStatus.EXHAUSTED,
                                 LPMStatus.STEP_LIMIT)
        # Guided search must visit a tiny fraction of the design space.
        assert backend.log.evaluations < space.size() / 100


class TestMultiFidelityWalk:
    """Tier-0 surrogate pruning inside the greedy walk.

    The load-bearing property is *identity*: the multi-fidelity walk
    must land on the same final configuration as the engine-only walk —
    pruning may only remove candidates the engine would not have
    chosen.  This holds even at ``top_k=1, margin=0.0`` (maximum
    pruning) because exact-tie classes escalate every Pareto-maximal
    member instead of betting on a single representative.
    """

    @pytest.fixture(scope="class")
    def memory_bound_trace(self):
        from repro.workloads.generators import working_set_addresses
        from repro.workloads.trace import Trace

        addrs = working_set_addresses(2_500, footprint_bytes=256 * 1024, seed=7)
        return Trace.from_memory_addresses(
            addrs, compute_per_access=2, load_fraction=0.7,
            name="lpm-surrogate-gate", seed=7,
        )

    def _walk(self, trace, **backend_kwargs):
        backend = GreedyReconfigBackend(
            DesignSpace(), trace, seed=3, **backend_kwargs
        )
        algo = LPMAlgorithm(delta_percent=10.0, delta_slack_fraction=0.5,
                            max_steps=10)
        algo.run(backend)
        return backend

    def test_rejects_unknown_fidelity(self, memory_bound_trace):
        with pytest.raises(ValueError):
            GreedyReconfigBackend(
                DesignSpace(), memory_bound_trace, seed=3, fidelity="psychic"
            )

    def test_engine_fidelity_never_predicts(self, memory_bound_trace):
        backend = self._walk(memory_bound_trace, fidelity="engine")
        assert backend.log.predicted == 0

    def test_multi_fidelity_reaches_engine_final_config(self, memory_bound_trace):
        engine = self._walk(memory_bound_trace, fidelity="engine")
        multi = self._walk(memory_bound_trace, fidelity="multi",
                           top_k=1, margin=0.0)
        assert multi.describe() == engine.describe()
        # Pruning must actually save engine work, and the disjoint
        # source accounting must cover every considered candidate.
        assert multi.log.evaluations < engine.log.evaluations
        assert multi.log.predicted > 0
        assert (multi.measure().lpmr1
                == pytest.approx(engine.measure().lpmr1))
