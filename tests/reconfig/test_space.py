"""Unit tests for the Case Study I design space."""

import pytest

from repro.reconfig.space import DEFAULT_LADDERS, DesignPoint, DesignSpace


def point(**kw):
    base = dict(issue_width=4, iw_size=32, rob_size=32, l1_ports=1,
                mshr_count=4, l2_banks=4)
    base.update(kw)
    return DesignPoint(**base)


class TestDesignPoint:
    def test_as_dict_roundtrip(self):
        p = point()
        assert DesignPoint(**p.as_dict()) == p

    def test_with_knob(self):
        p = point().with_knob("mshr_count", 8)
        assert p.mshr_count == 8
        assert p.issue_width == 4

    def test_with_unknown_knob(self):
        with pytest.raises(KeyError):
            point().with_knob("l3_banks", 2)

    def test_cost_monotone(self):
        assert point(mshr_count=8).cost() > point(mshr_count=4).cost()

    def test_label(self):
        assert point().label() == "w4/iw32/rob32/p1/m4/b4"


class TestDesignSpace:
    def test_size_counts_product(self):
        space = DesignSpace()
        expected = 1
        for ladder in DEFAULT_LADDERS.values():
            expected *= len(ladder)
        assert space.size() == expected

    def test_paper_scale_space(self):
        # With 10 values per knob the paper's space has 10^6 points; our
        # default ladders still yield a space far too big to enumerate
        # during online optimization.
        assert DesignSpace().size() >= 10_000

    def test_validate_accepts_ladder_values(self):
        DesignSpace().validate(point())

    def test_validate_rejects_off_ladder(self):
        with pytest.raises(ValueError):
            DesignSpace().validate(point(mshr_count=5))

    def test_min_max_points(self):
        space = DesignSpace()
        lo, hi = space.minimum_point(), space.maximum_point()
        for knob, ladder in space.ladders.items():
            assert getattr(lo, knob) == ladder[0]
            assert getattr(hi, knob) == ladder[-1]

    def test_upgrade_steps_one_rung(self):
        space = DesignSpace()
        up = space.upgrade(point(), "mshr_count")
        assert up.mshr_count == 8

    def test_upgrade_at_top_returns_none(self):
        space = DesignSpace()
        top = space.maximum_point()
        assert space.upgrade(top, "mshr_count") is None

    def test_downgrade_at_bottom_returns_none(self):
        space = DesignSpace()
        assert space.downgrade(space.minimum_point(), "l1_ports") is None

    def test_upgrade_candidates_restricted(self):
        space = DesignSpace()
        cands = space.upgrade_candidates(point(), ("mshr_count", "l1_ports"))
        assert {k for k, _ in cands} == {"mshr_count", "l1_ports"}

    def test_downgrade_candidates_sorted_by_savings(self):
        space = DesignSpace()
        p = point(issue_width=8, iw_size=64, rob_size=64, l1_ports=4,
                  mshr_count=16, l2_banks=8)
        cands = space.downgrade_candidates(p)
        savings = [p.cost() - c.cost() for _, c in cands]
        assert savings == sorted(savings, reverse=True)

    def test_to_machine_applies_knobs(self):
        space = DesignSpace()
        cfg = space.to_machine(point(mshr_count=8, l1_ports=2))
        assert cfg.mshr_count == 8
        assert cfg.l1_ports == 2
        assert cfg.core.issue_width == 4

    def test_rejects_bad_ladder(self):
        with pytest.raises(ValueError):
            DesignSpace(ladders={**DEFAULT_LADDERS, "mshr_count": (8, 4)})

    def test_rejects_missing_ladder(self):
        bad = dict(DEFAULT_LADDERS)
        del bad["l2_banks"]
        with pytest.raises(ValueError):
            DesignSpace(ladders=bad)

    def test_rejects_unknown_ladder(self):
        with pytest.raises(ValueError):
            DesignSpace(ladders={**DEFAULT_LADDERS, "l3_size": (1, 2)})
