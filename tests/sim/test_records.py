"""Unit tests for the record containers."""

import numpy as np
import pytest

from repro.sim.records import AccessRecords, InstructionRecords


def _ints(*vals):
    return np.asarray(vals, dtype=np.int64)


def _bools(*vals):
    return np.asarray(vals, dtype=bool)


def minimal_records(**overrides):
    base = dict(
        l1_hit_start=_ints(0, 5), l1_hit_end=_ints(3, 8),
        l1_miss_start=_ints(3, 0), l1_miss_end=_ints(20, 0),
        l1_is_miss=_bools(True, False), l1_is_secondary=_bools(False, False),
        complete=_ints(20, 8), l2_index=_ints(0, -1),
        l2_hit_start=_ints(6), l2_hit_end=_ints(14),
        l2_miss_start=_ints(14), l2_miss_end=_ints(18),
        l2_is_miss=_bools(True), l2_is_secondary=_bools(False),
        mem_index=_ints(0),
        mem_start=_ints(15), mem_end=_ints(17),
    )
    base.update(overrides)
    return AccessRecords(**base)


class TestAccessRecords:
    def test_counts(self):
        r = minimal_records()
        assert r.n_accesses == 2
        assert r.n_l2_accesses == 1
        assert r.n_mem_accesses == 1
        assert r.l1_miss_count == 1
        assert r.l1_miss_rate == pytest.approx(0.5)
        assert r.l2_per_l1_access == pytest.approx(0.5)
        assert r.l2_miss_rate == pytest.approx(1.0)
        assert r.mem_per_l2_access == pytest.approx(1.0)

    def test_no_l3_by_default(self):
        r = minimal_records()
        assert not r.has_l3
        assert r.n_l3_accesses == 0
        assert r.l3_miss_rate == 0.0
        assert r.mem_per_l3_access == 0.0

    def test_l3_fields(self):
        r = minimal_records(
            l3_index=_ints(0),
            l3_hit_start=_ints(16), l3_hit_end=_ints(20),
            l3_miss_start=_ints(20), l3_miss_end=_ints(40),
            l3_is_miss=_bools(True), l3_is_secondary=_bools(False),
            l3_mem_index=_ints(0),
        )
        assert r.has_l3
        assert r.n_l3_accesses == 1
        assert r.l3_per_l2_access == pytest.approx(1.0)
        assert r.l3_miss_rate == pytest.approx(1.0)
        assert r.mem_per_l3_access == pytest.approx(1.0)
        # Memory traffic hangs off L3; the L2->memory ratio is defined as 0.
        assert r.mem_per_l2_access == 0.0

    def test_rejects_ragged_l1_columns(self):
        with pytest.raises(ValueError):
            minimal_records(l1_hit_end=_ints(3))

    def test_rejects_ragged_l2_columns(self):
        with pytest.raises(ValueError):
            minimal_records(l2_hit_end=_ints(14, 20))

    def test_rejects_ragged_mem_columns(self):
        with pytest.raises(ValueError):
            minimal_records(mem_end=_ints(17, 30))

    def test_rejects_bad_l3_index_length(self):
        with pytest.raises(ValueError):
            minimal_records(l3_index=_ints(0, 1))

    def test_rejects_ragged_l3_columns(self):
        with pytest.raises(ValueError):
            minimal_records(
                l3_index=_ints(0),
                l3_hit_start=_ints(16), l3_hit_end=_ints(20, 25),
                l3_miss_start=_ints(20), l3_miss_end=_ints(40),
                l3_is_miss=_bools(True), l3_is_secondary=_bools(False),
                l3_mem_index=_ints(0),
            )

    def test_empty_records(self):
        empty = AccessRecords(
            l1_hit_start=_ints(), l1_hit_end=_ints(),
            l1_miss_start=_ints(), l1_miss_end=_ints(),
            l1_is_miss=_bools(), l1_is_secondary=_bools(),
            complete=_ints(), l2_index=_ints(),
            l2_hit_start=_ints(), l2_hit_end=_ints(),
            l2_miss_start=_ints(), l2_miss_end=_ints(),
            l2_is_miss=_bools(), l2_is_secondary=_bools(),
            mem_index=_ints(), mem_start=_ints(), mem_end=_ints(),
        )
        assert empty.n_accesses == 0
        assert empty.l1_miss_rate == 0.0
        assert empty.l2_per_l1_access == 0.0


class TestInstructionRecords:
    def test_totals(self):
        r = InstructionRecords(
            dispatch=_ints(0, 1, 2), complete=_ints(1, 2, 5),
            retire=_ints(1, 2, 5), is_mem=_bools(False, False, True),
        )
        assert r.n_instructions == 3
        assert r.total_cycles == 5
        assert r.cpi == pytest.approx(5 / 3)

    def test_empty(self):
        r = InstructionRecords(
            dispatch=_ints(), complete=_ints(), retire=_ints(), is_mem=_bools()
        )
        assert r.total_cycles == 0
        assert r.cpi == 0.0

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            InstructionRecords(
                dispatch=_ints(0, 1), complete=_ints(1),
                retire=_ints(1), is_mem=_bools(True),
            )
