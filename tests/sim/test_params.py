"""Tests for MachineConfig identity and configuration errors."""

import pytest

from repro.runtime.errors import ConfigError
from repro.sim.params import DEFAULT_MACHINE, table1_config


class TestCacheKey:
    def test_name_does_not_affect_identity(self):
        a = table1_config("A")
        renamed = a.with_knobs(name="production")
        assert a.cache_key() == renamed.cache_key()

    def test_any_knob_change_changes_identity(self):
        a = table1_config("A")
        assert a.cache_key() != a.with_knobs(mshr_count=8).cache_key()
        assert a.cache_key() != a.with_knobs(l1_size_bytes=64 * 1024).cache_key()
        assert a.cache_key() != a.with_(l1_hit_time=4).cache_key()

    def test_table1_labels_are_all_distinct(self):
        keys = {table1_config(label).cache_key() for label in "ABCDE"}
        assert len(keys) == 5

    def test_stable_across_instances(self):
        assert table1_config("B").cache_key() == table1_config("B").cache_key()


class TestTable1Errors:
    def test_unknown_label_is_config_error(self):
        with pytest.raises(ConfigError):
            table1_config("Q")

    def test_lowercase_labels_accepted(self):
        assert table1_config("c").name == "C"

    def test_default_machine_has_key(self):
        assert isinstance(DEFAULT_MACHINE.cache_key(), str)
