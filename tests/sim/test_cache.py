"""Unit and property tests for the functional cache model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.cache import FunctionalCache
from repro.sim.params import CacheGeometry


def small_cache(policy="lru", assoc=2, sets=4, line=64, seed=0):
    geom = CacheGeometry(
        size_bytes=line * assoc * sets, line_bytes=line, associativity=assoc,
        replacement=policy,
    )
    return FunctionalCache(geom, seed=seed)


def addr(set_idx, tag, line=64, sets=4):
    return ((tag * sets + set_idx) * line)


class TestGeometry:
    def test_derived_fields(self):
        geom = CacheGeometry(32 * 1024, line_bytes=64, associativity=8)
        assert geom.n_sets == 64
        assert geom.offset_bits == 6

    def test_rejects_non_power_of_two_size(self):
        with pytest.raises(ValueError):
            CacheGeometry(30 * 1000)

    def test_rejects_inconsistent_shape(self):
        # 32 KB with 64 B lines and assoc 3: 170.67 sets — not a power of two.
        with pytest.raises(ValueError):
            CacheGeometry(32 * 1024, line_bytes=64, associativity=3)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            CacheGeometry(32 * 1024, replacement="belady")

    def test_rejects_cache_smaller_than_one_set(self):
        with pytest.raises(ValueError):
            CacheGeometry(64, line_bytes=64, associativity=2)


class TestBasicOperation:
    def test_cold_miss_then_hit(self):
        c = small_cache()
        assert not c.lookup(0)
        c.insert(0)
        assert c.lookup(0)
        assert c.hits == 1
        assert c.misses == 1

    def test_same_line_different_word_hits(self):
        c = small_cache()
        c.insert(0)
        assert c.lookup(8)
        assert c.lookup(63)

    def test_contains_does_not_touch_counters(self):
        c = small_cache()
        c.insert(0)
        assert c.contains(0)
        assert not c.contains(4096)
        assert c.hits == 0 and c.misses == 0

    def test_insert_returns_victim_address(self):
        c = small_cache(assoc=2)
        a0, a1, a2 = addr(0, 0), addr(0, 1), addr(0, 2)
        assert c.insert(a0) is None
        assert c.insert(a1) is None
        victim = c.insert(a2)
        assert victim == a0  # LRU victim is the oldest
        assert not c.contains(a0)
        assert c.contains(a1) and c.contains(a2)

    def test_evict(self):
        c = small_cache()
        c.insert(0)
        assert c.evict(0)
        assert not c.contains(0)
        assert not c.evict(0)

    def test_reinsert_resident_block_evicts_nothing(self):
        c = small_cache(assoc=2)
        c.insert(addr(0, 0))
        c.insert(addr(0, 1))
        assert c.insert(addr(0, 0)) is None
        assert c.resident_blocks() == 2

    def test_set_isolation(self):
        c = small_cache(assoc=1, sets=4)
        c.insert(addr(0, 0))
        c.insert(addr(1, 0))
        assert c.contains(addr(0, 0))
        assert c.contains(addr(1, 0))

    def test_miss_rate_property(self):
        c = small_cache()
        c.lookup(0)          # miss
        c.insert(0)
        c.lookup(0)          # hit
        assert c.miss_rate == pytest.approx(0.5)

    def test_reset_counters_keeps_contents(self):
        c = small_cache()
        c.insert(0)
        c.lookup(0)
        c.reset_counters()
        assert c.hits == 0
        assert c.contains(0)


class TestLRUStackProperty:
    """LRU inclusion: a larger LRU cache contains everything a smaller one does."""

    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_inclusion(self, lines):
        # Fully-associative LRU pair (1 set) with assoc 4 and 8.
        small = small_cache(assoc=4, sets=1)
        big = small_cache(assoc=8, sets=1)
        for line_no in lines:
            a = line_no * 64
            if not small.lookup(a):
                small.insert(a)
            if not big.lookup(a):
                big.insert(a)
        for line_no in set(lines):
            a = line_no * 64
            if small.contains(a):
                assert big.contains(a)

    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_miss_count_monotone_in_size(self, lines):
        small = small_cache(assoc=4, sets=1)
        big = small_cache(assoc=8, sets=1)
        for line_no in lines:
            a = line_no * 64
            if not small.lookup(a):
                small.insert(a)
            if not big.lookup(a):
                big.insert(a)
        assert big.misses <= small.misses


class TestReplacementPolicies:
    def test_lru_promotes_on_hit(self):
        c = small_cache(assoc=2)
        a0, a1, a2 = addr(0, 0), addr(0, 1), addr(0, 2)
        c.insert(a0)
        c.insert(a1)
        c.lookup(a0)          # promote a0
        victim = c.insert(a2)
        assert victim == a1

    def test_fifo_ignores_hits(self):
        c = small_cache(policy="fifo", assoc=2)
        a0, a1, a2 = addr(0, 0), addr(0, 1), addr(0, 2)
        c.insert(a0)
        c.insert(a1)
        c.lookup(a0)          # should NOT promote under FIFO
        victim = c.insert(a2)
        assert victim == a0

    def test_random_is_deterministic_given_seed(self):
        def run(seed):
            c = small_cache(policy="random", assoc=4, seed=seed)
            victims = []
            for tag in range(20):
                victims.append(c.insert(addr(0, tag)))
            return victims

        assert run(1) == run(1)

    def test_random_evicts_resident_block(self):
        c = small_cache(policy="random", assoc=2)
        c.insert(addr(0, 0))
        c.insert(addr(0, 1))
        victim = c.insert(addr(0, 2))
        assert victim in (addr(0, 0), addr(0, 1))
        assert c.resident_blocks() == 2

    def test_plru_requires_power_of_two_assoc(self):
        with pytest.raises(ValueError):
            small_cache(policy="plru", assoc=3, sets=4)

    def test_plru_basic_hit_miss(self):
        c = small_cache(policy="plru", assoc=4)
        for tag in range(4):
            assert not c.lookup(addr(0, tag))
            c.insert(addr(0, tag))
        for tag in range(4):
            assert c.lookup(addr(0, tag))
        victim = c.insert(addr(0, 10))
        assert victim is not None
        assert c.resident_blocks() == 4

    def test_plru_victim_is_not_most_recent(self):
        c = small_cache(policy="plru", assoc=4)
        for tag in range(4):
            c.insert(addr(0, tag))
        c.lookup(addr(0, 3))  # touch way holding tag 3
        victim = c.insert(addr(0, 9))
        assert victim != addr(0, 3)

    @pytest.mark.parametrize("policy", ["lru", "fifo", "random", "plru"])
    def test_capacity_never_exceeded(self, policy):
        c = small_cache(policy=policy, assoc=4, sets=2)
        rng = np.random.default_rng(0)
        for a in rng.integers(0, 64, 500):
            line = int(a) * 64
            if not c.lookup(line):
                c.insert(line)
        for s in range(2):
            assert c.set_occupancy(s) <= 4

    @pytest.mark.parametrize("policy", ["lru", "fifo", "random", "plru"])
    def test_working_set_within_capacity_has_no_capacity_misses(self, policy):
        c = small_cache(policy=policy, assoc=4, sets=2)
        lines = [addr(s, t, sets=2) for s in range(2) for t in range(4)]
        for a in lines:
            c.insert(a)
        c.reset_counters()
        for _ in range(10):
            for a in lines:
                assert c.lookup(a)
        assert c.misses == 0


class TestWarming:
    def test_warm_lookup_array_fills_without_stats(self):
        c = small_cache(assoc=8, sets=1)
        c.warm_lookup_array(np.array([0, 64, 128]))
        assert c.hits == 0 and c.misses == 0
        assert c.contains(0) and c.contains(64) and c.contains(128)
