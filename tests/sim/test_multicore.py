"""Tests for timed multicore co-execution with a shared L2/DRAM."""

import pytest

from repro.sched import NUCAMachine
from repro.sim import simulate_and_measure
from repro.sim.multicore import MulticoreSimulator
from repro.workloads.spec import get_benchmark

KB = 1024


@pytest.fixture(scope="module")
def machine():
    return NUCAMachine()


@pytest.fixture(scope="module")
def core_cfg(machine):
    return machine.config_for_l1(32 * KB)


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            MulticoreSimulator([])

    def test_rejects_mismatched_shared_config(self, core_cfg):
        from dataclasses import replace

        other = core_cfg.with_(l2=replace(core_cfg.l2, size_bytes=512 * KB))
        with pytest.raises(ValueError):
            MulticoreSimulator([core_cfg, other])

    def test_heterogeneous_l1_allowed(self, machine):
        cfgs = [machine.config_for_l1(s) for s in (4 * KB, 64 * KB)]
        MulticoreSimulator(cfgs)

    def test_shared_backend_objects(self, core_cfg):
        sim = MulticoreSimulator([core_cfg] * 3)
        assert sim.cores[1].l2_cache is sim.cores[0].l2_cache
        assert sim.cores[2].dram is sim.cores[0].dram
        assert sim.cores[1].l2_mshrs is sim.cores[0].l2_mshrs
        assert not sim.cores[0].l2_mshrs.in_order

    def test_run_requires_one_trace_per_core(self, core_cfg):
        sim = MulticoreSimulator([core_cfg] * 2)
        with pytest.raises(ValueError):
            sim.run([get_benchmark("401.bzip2").trace(100, seed=1)])


class TestSingleCoreEquivalence:
    def test_one_core_matches_solo_exactly(self, core_cfg):
        """The window machinery must be lossless for a lone core."""
        trace = get_benchmark("401.bzip2").trace(6000, seed=3)
        _, solo = simulate_and_measure(core_cfg, trace, seed=0)
        sim = MulticoreSimulator([core_cfg], quantum=250, seed=0)
        sim.warm_caches([trace])
        res = sim.run([trace])
        assert res.ipcs()[0] == pytest.approx(solo.ipc, rel=1e-6)

    def test_quantum_invariance_for_one_core(self, core_cfg):
        trace = get_benchmark("403.gcc").trace(4000, seed=3)
        ipcs = []
        for quantum in (100, 1000, 10_000):
            sim = MulticoreSimulator([core_cfg], quantum=quantum, seed=0)
            sim.warm_caches([trace])
            ipcs.append(sim.run([trace]).ipcs()[0])
        assert max(ipcs) - min(ipcs) < 1e-9


class TestContention:
    def test_corunners_never_speed_up(self, core_cfg):
        traces = [get_benchmark("401.bzip2").trace(5000, seed=s) for s in (3, 4)]
        _, solo = simulate_and_measure(core_cfg, traces[0], seed=0)
        sim = MulticoreSimulator([core_cfg] * 2, seed=0)
        sim.warm_caches(traces)
        res = sim.run(traces)
        assert res.ipcs()[0] <= solo.ipc * 1.02

    def test_homogeneous_corun_is_fair(self, core_cfg):
        traces = [get_benchmark("401.bzip2").trace(6000, seed=s) for s in (3, 4, 5, 6)]
        sim = MulticoreSimulator([core_cfg] * 4, seed=0)
        sim.warm_caches(traces)
        ipcs = sim.run(traces).ipcs()
        assert max(ipcs) / min(ipcs) < 1.15

    def test_bandwidth_hogs_hurt_corunners(self, core_cfg):
        victim = get_benchmark("403.gcc").trace(5000, seed=3)
        light = get_benchmark("401.bzip2").trace(5000, seed=4)
        heavy = get_benchmark("433.milc").trace(5000, seed=5)

        sim_light = MulticoreSimulator([core_cfg] * 2, seed=0)
        sim_light.warm_caches([victim, light])
        with_light = sim_light.run([victim, light]).ipcs()[0]

        sim_heavy = MulticoreSimulator([core_cfg] * 2, seed=0)
        sim_heavy.warm_caches([victim, heavy])
        with_heavy = sim_heavy.run([victim, heavy]).ipcs()[0]
        assert with_heavy < with_light

    def test_all_instructions_accounted(self, core_cfg):
        traces = [get_benchmark(n).trace(3000, seed=3)
                  for n in ("401.bzip2", "429.mcf")]
        sim = MulticoreSimulator([core_cfg] * 2, seed=0)
        res = sim.run(traces)
        for trace, result in zip(traces, res.core_results):
            assert result.instructions.n_instructions == trace.n_instructions

    def test_per_core_stats_are_analyzable(self, core_cfg):
        traces = [get_benchmark(n).trace(3000, seed=3)
                  for n in ("403.gcc", "433.milc")]
        sim = MulticoreSimulator([core_cfg] * 2, seed=0)
        sim.warm_caches(traces)
        res = sim.run(traces)
        for st in res.core_stats:
            assert st.l1.camat_model == pytest.approx(st.l1.camat)
            assert st.cpi > 0

    def test_total_cycles_covers_slowest_core(self, core_cfg):
        traces = [get_benchmark(n).trace(3000, seed=3)
                  for n in ("401.bzip2", "429.mcf")]
        sim = MulticoreSimulator([core_cfg] * 2, seed=0)
        res = sim.run(traces)
        assert res.total_cycles() >= max(
            int(r.instructions.retire.max()) for r in res.core_results
        )
