"""Tests for selective replacement (stream bypass) at the L1."""

import pytest

from repro.sim import DEFAULT_MACHINE, HierarchySimulator, simulate_and_measure
from repro.sim.prefetch import BypassConfig, StreamDetector
from repro.workloads.generators import KernelSpec
from repro.workloads.spec import BenchmarkProfile

KB = 1024
MB = 1024 * 1024


def mixed_profile(ws_weight=0.6):
    return BenchmarkProfile(
        name="bypass-mix",
        kernels=(
            KernelSpec("working_set", ws_weight, 3 * KB),
            KernelSpec("strided", 1.0 - ws_weight, 2 * MB, stride_bytes=64),
        ),
        compute_per_access=2.0,
    )


class TestStreamDetector:
    def _det(self, **kw):
        return StreamDetector(BypassConfig(**kw), line_bytes=64)

    def test_sequential_stream_classified(self):
        det = self._det(confirm_after=2)
        decisions = [det.observe_and_classify(i * 64) for i in range(10)]
        # Allocate, first stride match (conf 1), confirmed at the third.
        assert not any(decisions[:2])
        assert all(decisions[2:])

    def test_retouch_resets_confidence(self):
        det = self._det(confirm_after=2)
        for i in range(5):
            det.observe_and_classify(i * 64)
        assert det.observe_and_classify(4 * 64) is False  # same line again
        assert det.observe_and_classify(5 * 64) is False  # must reconfirm

    def test_random_not_classified(self):
        import numpy as np

        det = self._det()
        rng = np.random.default_rng(1)
        flags = [det.observe_and_classify(int(a) & ~63)
                 for a in rng.integers(0, 1 << 22, 500)]
        assert sum(flags) < 10

    def test_bypass_rate(self):
        det = self._det(confirm_after=1)
        for i in range(10):
            det.observe_and_classify(i * 64)
        assert 0.0 < det.bypass_rate < 1.0

    def test_reset(self):
        det = self._det()
        det.observe_and_classify(0)
        det.reset()
        assert det.observed == 0
        assert det.bypass_rate == 0.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BypassConfig(region_bytes=100)
        with pytest.raises(ValueError):
            BypassConfig(confirm_after=0)


class TestEngineIntegration:
    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            HierarchySimulator(DEFAULT_MACHINE.with_(l1_bypass="yes"))

    def test_bypass_preserves_hot_set(self):
        trace = mixed_profile().trace(20000, seed=5)
        base = DEFAULT_MACHINE.with_knobs(
            l1_size_bytes=4 * KB, mshr_count=8, iw_size=64, rob_size=64
        )
        _, off = simulate_and_measure(base, trace, seed=0)
        _, on = simulate_and_measure(base.with_(l1_bypass=BypassConfig()), trace, seed=0)
        # The stream no longer evicts the hot working set: MR1 drops.
        assert on.mr1_conventional < 0.8 * off.mr1_conventional
        assert on.cpi <= off.cpi * 1.02

    def test_bypassed_lines_still_return_data(self):
        trace = mixed_profile(ws_weight=0.0).trace(3000, seed=5)
        cfg = DEFAULT_MACHINE.with_(l1_bypass=BypassConfig(confirm_after=1))
        sim = HierarchySimulator(cfg, seed=0)
        res = sim.run(trace)
        # All accesses completed even though most fills bypassed the L1.
        assert int(res.accesses.complete.min()) > 0
        assert res.component_stats["l1_bypassed_fills"] > 0

    def test_stats_reported(self):
        trace = mixed_profile().trace(4000, seed=5)
        cfg = DEFAULT_MACHINE.with_(l1_bypass=BypassConfig())
        res = HierarchySimulator(cfg, seed=0).run(trace)
        assert "l1_bypass_rate" in res.component_stats
        assert 0.0 <= res.component_stats["l1_bypass_rate"] <= 1.0

    def test_no_stats_without_bypass(self):
        trace = mixed_profile().trace(1000, seed=5)
        res = HierarchySimulator(DEFAULT_MACHINE, seed=0).run(trace)
        assert "l1_bypass_rate" not in res.component_stats

    def test_pure_working_set_unaffected(self):
        prof = BenchmarkProfile(
            name="ws-only",
            kernels=(KernelSpec("working_set", 1.0, 3 * KB),),
            compute_per_access=2.0,
        )
        trace = prof.trace(6000, seed=5)
        base = DEFAULT_MACHINE.with_knobs(l1_size_bytes=8 * KB)
        _, off = simulate_and_measure(base, trace, seed=0)
        _, on = simulate_and_measure(base.with_(l1_bypass=BypassConfig()), trace, seed=0)
        assert on.cpi == pytest.approx(off.cpi, rel=0.03)
