"""Tests for the stride prefetcher and its engine integration."""

import numpy as np
import pytest

from repro.sim import DEFAULT_MACHINE, HierarchySimulator, simulate_and_measure
from repro.sim.prefetch import PrefetchConfig, StridePrefetcher
from repro.workloads.spec import get_benchmark
from repro.workloads.trace import Trace


class TestPrefetchConfig:
    def test_defaults_valid(self):
        PrefetchConfig()

    def test_validation(self):
        with pytest.raises(ValueError):
            PrefetchConfig(degree=0)
        with pytest.raises(ValueError):
            PrefetchConfig(distance=0)
        with pytest.raises(ValueError):
            PrefetchConfig(region_bytes=3000)
        with pytest.raises(ValueError):
            PrefetchConfig(max_outstanding=0)


class TestStridePrefetcher:
    def _pf(self, **kw):
        return StridePrefetcher(PrefetchConfig(**kw), line_bytes=64)

    def test_needs_confirmation_before_issuing(self):
        # confirm_after=2: allocate, stride candidate (conf 1), second
        # matching stride reaches conf 2 and starts issuing.
        pf = self._pf(confirm_after=2)
        assert pf.observe(0) == []        # first touch: allocate entry
        assert pf.observe(64) == []       # stride candidate (conf 1)
        assert pf.observe(128) != []      # confirmed: trained, issues
        # A higher threshold delays training by one more access.
        strict = self._pf(confirm_after=3)
        assert strict.observe(0) == []
        assert strict.observe(64) == []
        assert strict.observe(128) == []
        assert strict.observe(192) != []

    def test_predicts_ahead_along_stride(self):
        pf = self._pf(degree=2, distance=1, confirm_after=1)
        pf.observe(0)
        pf.observe(64)
        out = pf.observe(128)
        # block 2 observed; distance 1 -> blocks 3 and 4.
        assert out == [3, 4]

    def test_negative_stride_supported(self):
        pf = self._pf(degree=1, distance=1, confirm_after=1)
        pf.observe(640)
        pf.observe(576)
        out = pf.observe(512)
        assert out == [7]  # block 8 - stride 1 => 7

    def test_stride_change_retrains(self):
        pf = self._pf(degree=1, distance=1, confirm_after=1)
        pf.observe(0)
        pf.observe(64)
        assert pf.observe(128) != []
        assert pf.observe(128 + 256) == []  # stride changed: retrain

    def test_random_accesses_issue_nothing(self):
        pf = self._pf(confirm_after=2)
        rng = np.random.default_rng(0)
        issued = []
        for a in rng.integers(0, 1 << 20, 300):
            issued += pf.observe(int(a) & ~63)
        assert len(issued) < 10

    def test_table_eviction_bounds_state(self):
        pf = self._pf(table_size=4)
        for region in range(20):
            pf.observe(region * 4096)
        assert len(pf._table) <= 4

    def test_zero_stride_ignored(self):
        pf = self._pf(confirm_after=1)
        pf.observe(0)
        assert pf.observe(0) == []
        assert pf.observe(8) == []  # same block: stride 0 in lines

    def test_reset(self):
        pf = self._pf(confirm_after=1)
        pf.observe(0)
        pf.issued = 5
        pf.reset()
        assert pf.issued == 0
        assert pf._table == {}
        assert pf.accuracy == 0.0


class TestEngineIntegration:
    def _machine(self, **pf_kw):
        cfg = DEFAULT_MACHINE.with_knobs(mshr_count=8, l1_ports=1,
                                         iw_size=32, rob_size=32)
        if pf_kw is not None:
            cfg = cfg.with_(prefetch=PrefetchConfig(**pf_kw))
        return cfg

    def test_rejects_wrong_prefetch_type(self):
        with pytest.raises(TypeError):
            HierarchySimulator(DEFAULT_MACHINE.with_(prefetch="stride"))

    def test_streaming_workload_benefits(self):
        tr = get_benchmark("433.milc").trace(24000, seed=7)
        base = DEFAULT_MACHINE.with_knobs(mshr_count=8, l1_ports=1,
                                          iw_size=32, rob_size=32)
        _, off = simulate_and_measure(base, tr, seed=0)
        _, on = simulate_and_measure(
            base.with_(prefetch=PrefetchConfig(degree=4, distance=2)), tr, seed=0
        )
        assert on.cpi < 0.85 * off.cpi
        assert on.l1.pure_miss_rate < 0.3 * off.l1.pure_miss_rate

    def test_stats_reported(self):
        tr = get_benchmark("433.milc").trace(6000, seed=7)
        cfg = DEFAULT_MACHINE.with_(prefetch=PrefetchConfig())
        sim = HierarchySimulator(cfg, seed=0)
        sim.warm_caches(tr)
        res = sim.run(tr)
        assert res.component_stats["prefetches_issued"] > 0
        assert 0.0 <= res.component_stats["prefetch_accuracy"] <= 1.0

    def test_no_prefetch_stats_without_prefetcher(self):
        tr = get_benchmark("433.milc").trace(2000, seed=7)
        sim = HierarchySimulator(DEFAULT_MACHINE, seed=0)
        res = sim.run(tr)
        assert "prefetches_issued" not in res.component_stats

    def test_random_workload_unhurt(self):
        rng = np.random.default_rng(0)
        addrs = (rng.integers(0, 1 << 23, 6000) >> 6) << 6
        tr = Trace.from_memory_addresses(addrs, compute_per_access=2, name="rnd")
        base = DEFAULT_MACHINE.with_knobs(mshr_count=8, iw_size=64, rob_size=64)
        _, off = simulate_and_measure(base, tr, seed=0)
        _, on = simulate_and_measure(base.with_(prefetch=PrefetchConfig()), tr, seed=0)
        # Random traffic trains almost nothing: performance within 5%.
        assert on.cpi == pytest.approx(off.cpi, rel=0.05)

    def test_outstanding_budget_respected(self):
        tr = get_benchmark("462.libquantum").trace(8000, seed=7)
        cfg = DEFAULT_MACHINE.with_(
            prefetch=PrefetchConfig(degree=8, distance=1, max_outstanding=2)
        )
        sim = HierarchySimulator(cfg, seed=0)
        res = sim.run(tr)
        # With budget 2 and degree 8 the issue count stays well below the
        # unconstrained candidate volume.
        unconstrained = HierarchySimulator(
            DEFAULT_MACHINE.with_(
                prefetch=PrefetchConfig(degree=8, distance=1, max_outstanding=64)
            ),
            seed=0,
        ).run(tr)
        assert (
            res.component_stats["prefetches_issued"]
            < unconstrained.component_stats["prefetches_issued"]
        )

    def test_determinism_with_prefetcher(self):
        tr = get_benchmark("433.milc").trace(4000, seed=7)
        cfg = DEFAULT_MACHINE.with_(prefetch=PrefetchConfig())
        a = HierarchySimulator(cfg, seed=0).run(tr)
        b = HierarchySimulator(cfg, seed=0).run(tr)
        assert a.total_cycles == b.total_cycles
        assert a.component_stats == b.component_stats
