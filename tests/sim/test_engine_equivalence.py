"""Bit-for-bit equivalence of the engine fast path and the reference loop.

The fast path (`engine="fast"`) is a specialization of the reference issue
loop, not an approximation: on every eligible workload/machine pair it must
produce byte-identical access records, instruction records and component
statistics.  This suite sweeps the workload-generator matrix (strided /
working-set / zipf / pointer-chase), warm and cold caches, and the Table I
machines; it also pins down the eligibility gate (prefetch or non-LRU
replacement fall back to the reference loop under `engine="auto"` and
reject `engine="fast"` outright).
"""

import dataclasses

import numpy as np
import pytest

from repro.runtime.errors import ConfigError
from repro.sim import DEFAULT_MACHINE, HierarchySimulator, table1_config
from repro.sim.params import MachineConfig
from repro.sim.prefetch import PrefetchConfig
from repro.workloads.generators import (
    pointer_chase_addresses,
    strided_addresses,
    working_set_addresses,
    zipf_addresses,
)
from repro.workloads.trace import Trace

N = 4_000
FOOTPRINT = 256 * 1024  # larger than L1, smaller than L2: exercises both


def _make_trace(kind: str) -> Trace:
    if kind == "strided":
        addrs = strided_addresses(N, footprint_bytes=FOOTPRINT, stride_bytes=72)
        depends = None
    elif kind == "working_set":
        addrs = working_set_addresses(N, footprint_bytes=FOOTPRINT, seed=5)
        depends = None
    elif kind == "zipf":
        addrs = zipf_addresses(N, footprint_bytes=FOOTPRINT, alpha=1.1, seed=5)
        depends = None
    elif kind == "pointer_chase":
        addrs = pointer_chase_addresses(N, footprint_bytes=FOOTPRINT, seed=5)
        depends = np.ones(N, dtype=bool)
    else:  # pragma: no cover - parametrization guard
        raise AssertionError(kind)
    return Trace.from_memory_addresses(
        addrs, compute_per_access=2, load_fraction=0.8, name=kind,
        seed=9, depends=depends,
    )


def _assert_identical(res_fast, res_ref) -> None:
    for f in dataclasses.fields(res_ref.accesses):
        a = getattr(res_fast.accesses, f.name)
        b = getattr(res_ref.accesses, f.name)
        assert a.dtype == b.dtype, f.name
        assert np.array_equal(a, b), f.name
    for f in dataclasses.fields(res_ref.instructions):
        a = getattr(res_fast.instructions, f.name)
        b = getattr(res_ref.instructions, f.name)
        assert a.dtype == b.dtype, f.name
        assert np.array_equal(a, b), f.name
    assert res_fast.component_stats == res_ref.component_stats


def _run_both(config: MachineConfig, trace: Trace, *, warm: bool):
    results = []
    for engine in ("fast", "reference"):
        sim = HierarchySimulator(config, seed=0, engine=engine)
        if warm:
            sim.run(trace)
            results.append(sim.run(trace))
        else:
            results.append(sim.run(trace))
    return results


class TestGeneratorMatrix:
    @pytest.mark.parametrize("kind", ["strided", "working_set", "zipf",
                                      "pointer_chase"])
    @pytest.mark.parametrize("warm", [False, True])
    def test_bit_identical(self, kind, warm):
        res_fast, res_ref = _run_both(DEFAULT_MACHINE, _make_trace(kind),
                                      warm=warm)
        _assert_identical(res_fast, res_ref)

    @pytest.mark.parametrize("label", ["A", "C", "E"])
    def test_table1_machines(self, label):
        res_fast, res_ref = _run_both(table1_config(label),
                                      _make_trace("working_set"), warm=False)
        _assert_identical(res_fast, res_ref)

    def test_benchmark_profile_trace(self):
        from repro.workloads.spec import get_benchmark

        trace = get_benchmark("403.gcc").trace(3_000, seed=1)
        res_fast, res_ref = _run_both(DEFAULT_MACHINE, trace, warm=False)
        _assert_identical(res_fast, res_ref)

    def test_stop_cycle_truncation(self):
        trace = _make_trace("working_set")
        sims = [HierarchySimulator(DEFAULT_MACHINE, seed=0, engine=e)
                for e in ("fast", "reference")]
        res_fast, res_ref = (s.run(trace, stop_cycle=5_000) for s in sims)
        assert res_fast.instructions.n_instructions < trace.n_instructions
        _assert_identical(res_fast, res_ref)


class TestEligibilityGate:
    def _prefetch_config(self) -> MachineConfig:
        return dataclasses.replace(DEFAULT_MACHINE, prefetch=PrefetchConfig())

    def test_auto_uses_fast_on_default_machine(self):
        sim = HierarchySimulator(DEFAULT_MACHINE, seed=0)
        assert sim._use_fast_path()

    def test_prefetch_falls_back_to_reference(self):
        sim = HierarchySimulator(self._prefetch_config(), seed=0)
        assert not sim._use_fast_path()
        # Auto mode must still run (through the reference loop).
        res = sim.run(_make_trace("strided"))
        assert res.accesses.n_accesses == N

    def test_prefetch_rejects_engine_fast(self):
        with pytest.raises(ConfigError):
            HierarchySimulator(self._prefetch_config(), seed=0, engine="fast")

    def test_non_lru_falls_back(self):
        config = dataclasses.replace(
            DEFAULT_MACHINE,
            l1=dataclasses.replace(DEFAULT_MACHINE.l1, replacement="fifo"),
        )
        assert not HierarchySimulator(config, seed=0)._use_fast_path()
        with pytest.raises(ConfigError):
            HierarchySimulator(config, seed=0, engine="fast")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError):
            HierarchySimulator(DEFAULT_MACHINE, seed=0, engine="turbo")

    def test_prefetch_reference_results_unchanged(self):
        # engine="auto" and engine="reference" agree when the gate trips:
        # fallback must not alter behavior.
        config = self._prefetch_config()
        trace = _make_trace("zipf")
        res_auto = HierarchySimulator(config, seed=0).run(trace)
        res_ref = HierarchySimulator(config, seed=0, engine="reference").run(trace)
        _assert_identical(res_auto, res_ref)
