"""Bit-for-bit equivalence of the fast, batch and reference engines.

The fast path (`engine="fast"`) and the vectorized batch kernel
(`engine="batch"`, :mod:`repro.sim.batch`) are specializations of the
reference issue loop, not approximations: on every eligible
workload/machine pair they must produce byte-identical access records,
instruction records and component statistics.  This suite sweeps the
workload-generator matrix (strided / working-set / zipf / pointer-chase),
warm and cold caches, and the Table I machines three ways; the batch
kernel additionally runs *multi-lane* — one kernel call stepping a
heterogeneous config slice — against per-config reference runs, with
failure diffs that name the config lane, the divergent field and the
first divergent row.  The eligibility gates are pinned down too (prefetch
or non-LRU replacement fall back under `engine="auto"`, reject
`engine="fast"`/`engine="batch"` outright).
"""

import dataclasses

import numpy as np
import pytest

from repro.runtime.errors import ConfigError
from repro.sim import DEFAULT_MACHINE, HierarchySimulator, table1_config
from repro.sim.batch import BatchHierarchySimulator, partition_eligible
from repro.sim.params import MachineConfig
from repro.sim.prefetch import PrefetchConfig
from repro.workloads.generators import (
    pointer_chase_addresses,
    strided_addresses,
    working_set_addresses,
    zipf_addresses,
)
from repro.workloads.trace import Trace

N = 4_000
FOOTPRINT = 256 * 1024  # larger than L1, smaller than L2: exercises both

#: A small heterogeneous design-space slice: Table I cores plus an
#: undersized-L1 variant so lanes disagree on geometry, not just knobs.
BATCH_SLICE = [
    DEFAULT_MACHINE,
    table1_config("A"),
    table1_config("C"),
    table1_config("E"),
    DEFAULT_MACHINE.with_knobs(l1_size_bytes=16 * 1024, name="L1-16KB"),
]


def _make_trace(kind: str) -> Trace:
    if kind == "strided":
        addrs = strided_addresses(N, footprint_bytes=FOOTPRINT, stride_bytes=72)
        depends = None
    elif kind == "working_set":
        addrs = working_set_addresses(N, footprint_bytes=FOOTPRINT, seed=5)
        depends = None
    elif kind == "zipf":
        addrs = zipf_addresses(N, footprint_bytes=FOOTPRINT, alpha=1.1, seed=5)
        depends = None
    elif kind == "pointer_chase":
        addrs = pointer_chase_addresses(N, footprint_bytes=FOOTPRINT, seed=5)
        depends = np.ones(N, dtype=bool)
    else:  # pragma: no cover - parametrization guard
        raise AssertionError(kind)
    return Trace.from_memory_addresses(
        addrs, compute_per_access=2, load_fraction=0.8, name=kind,
        seed=9, depends=depends,
    )


def _field_diff(name: str, got, want, *, lane: str) -> str:
    """A failure message naming the lane, field and first divergent row."""
    got = np.asarray(got)
    want = np.asarray(want)
    if got.shape != want.shape:
        return f"{lane}: field {name!r} shape {got.shape} != {want.shape}"
    bad = np.nonzero(got != want)[0]
    first = int(bad[0])
    return (
        f"{lane}: field {name!r} diverges first at row {first} "
        f"(got {got[first]!r}, want {want[first]!r}; "
        f"{bad.size}/{got.size} rows differ)"
    )


def _assert_identical(res_got, res_ref, *, lane: str = "single") -> None:
    for rec_name in ("accesses", "instructions"):
        got_rec = getattr(res_got, rec_name)
        ref_rec = getattr(res_ref, rec_name)
        for f in dataclasses.fields(ref_rec):
            a = getattr(got_rec, f.name)
            b = getattr(ref_rec, f.name)
            assert a.dtype == b.dtype, f"{lane}: {f.name} dtype {a.dtype} != {b.dtype}"
            if not np.array_equal(a, b):
                pytest.fail(_field_diff(f.name, a, b, lane=lane))
    assert res_got.component_stats == res_ref.component_stats, (
        f"{lane}: component_stats differ"
    )


def _run_both(config: MachineConfig, trace: Trace, *, warm: bool,
              engines=("fast", "reference")):
    results = []
    for engine in engines:
        sim = HierarchySimulator(config, seed=0, engine=engine)
        if warm:
            sim.run(trace)
            results.append(sim.run(trace))
        else:
            results.append(sim.run(trace))
    return results


def _reference_runs(configs, trace, *, warm: bool, perfect: bool = False,
                    stop_cycle=None):
    out = []
    for config in configs:
        sim = HierarchySimulator(config, seed=0, engine="reference")
        if warm:
            sim.run(trace)
        out.append(sim.run(trace, perfect=perfect, stop_cycle=stop_cycle))
    return out


def _batch_runs(configs, trace, *, warm: bool, perfect: bool = False,
                stop_cycle=None):
    sim = BatchHierarchySimulator(configs, seed=0)
    if warm:
        sim.run(trace)
    return sim.run(trace, perfect=perfect, stop_cycle=stop_cycle)


def _assert_batch_matches_reference(configs, trace, *, warm: bool,
                                    perfect: bool = False, stop_cycle=None):
    ref = _reference_runs(configs, trace, warm=warm, perfect=perfect,
                          stop_cycle=stop_cycle)
    got = _batch_runs(configs, trace, warm=warm, perfect=perfect,
                      stop_cycle=stop_cycle)
    assert len(got) == len(configs)
    for idx, (config, res_ref, res_batch) in enumerate(zip(configs, ref, got)):
        _assert_identical(res_batch, res_ref, lane=f"lane {idx} ({config.name})")


class TestGeneratorMatrix:
    @pytest.mark.parametrize("kind", ["strided", "working_set", "zipf",
                                      "pointer_chase"])
    @pytest.mark.parametrize("warm", [False, True])
    def test_bit_identical(self, kind, warm):
        res_fast, res_batch, res_ref = _run_both(
            DEFAULT_MACHINE, _make_trace(kind), warm=warm,
            engines=("fast", "batch", "reference"),
        )
        _assert_identical(res_fast, res_ref, lane="fast")
        _assert_identical(res_batch, res_ref, lane="batch")

    @pytest.mark.parametrize("label", ["A", "C", "E"])
    def test_table1_machines(self, label):
        res_fast, res_batch, res_ref = _run_both(
            table1_config(label), _make_trace("working_set"), warm=False,
            engines=("fast", "batch", "reference"),
        )
        _assert_identical(res_fast, res_ref, lane="fast")
        _assert_identical(res_batch, res_ref, lane="batch")

    def test_benchmark_profile_trace(self):
        from repro.workloads.spec import get_benchmark

        trace = get_benchmark("403.gcc").trace(3_000, seed=1)
        res_fast, res_batch, res_ref = _run_both(
            DEFAULT_MACHINE, trace, warm=False,
            engines=("fast", "batch", "reference"),
        )
        _assert_identical(res_fast, res_ref, lane="fast")
        _assert_identical(res_batch, res_ref, lane="batch")

    def test_stop_cycle_truncation(self):
        trace = _make_trace("working_set")
        sims = [HierarchySimulator(DEFAULT_MACHINE, seed=0, engine=e)
                for e in ("fast", "batch", "reference")]
        res_fast, res_batch, res_ref = (
            s.run(trace, stop_cycle=5_000) for s in sims
        )
        assert res_fast.instructions.n_instructions < trace.n_instructions
        _assert_identical(res_fast, res_ref, lane="fast")
        _assert_identical(res_batch, res_ref, lane="batch")


class TestBatchMultiLane:
    """One kernel call stepping a heterogeneous slice == N reference runs."""

    @pytest.mark.parametrize("kind", ["strided", "working_set", "zipf",
                                      "pointer_chase"])
    @pytest.mark.parametrize("warm", [False, True])
    def test_slice_bit_identical(self, kind, warm):
        _assert_batch_matches_reference(BATCH_SLICE, _make_trace(kind),
                                        warm=warm)

    def test_perfect_mode(self):
        _assert_batch_matches_reference(BATCH_SLICE, _make_trace("zipf"),
                                        warm=False, perfect=True)

    @pytest.mark.parametrize("stop", [500, 5_000])
    def test_stop_cycle_per_lane_early_exit(self, stop):
        _assert_batch_matches_reference(BATCH_SLICE,
                                        _make_trace("working_set"),
                                        warm=False, stop_cycle=stop)

    def test_l3_configured_lane(self):
        from repro.sim.params import CacheGeometry

        l3_config = dataclasses.replace(
            DEFAULT_MACHINE,
            l3=CacheGeometry(2 * 1024 * 1024, line_bytes=64,
                             associativity=16, replacement="lru"),
            name="with-L3",
        )
        _assert_batch_matches_reference([DEFAULT_MACHINE, l3_config],
                                        _make_trace("zipf"), warm=True)

    def test_sequential_runs_carry_warm_state(self):
        # Two runs on one batch instance == two runs on each reference
        # instance: cache/DRAM/port state carries across runs per lane.
        trace = _make_trace("working_set")
        batch = BatchHierarchySimulator(BATCH_SLICE, seed=0)
        refs = [HierarchySimulator(c, seed=0, engine="reference")
                for c in BATCH_SLICE]
        for round_no in range(2):
            got = batch.run(trace)
            for idx, (config, ref) in enumerate(zip(BATCH_SLICE, refs)):
                _assert_identical(
                    got[idx], ref.run(trace),
                    lane=f"round {round_no}, lane {idx} ({config.name})",
                )


SPEC_PROFILES_16 = [
    "400.perlbench", "401.bzip2", "403.gcc", "410.bwaves", "416.gamess",
    "429.mcf", "433.milc", "434.zeusmp", "435.gromacs", "436.cactusADM",
    "437.leslie3d", "444.namd", "445.gobmk", "450.soplex", "456.hmmer",
    "458.sjeng",
]


class TestSpecProfileSweep:
    """Equivalence-matrix sweep over the 16 SPEC-profile generators.

    Reduced scale (1.5k accesses, two-lane slice) keeps the sweep under
    test-suite budget while still touching every profile's kernel mixture;
    a kernel regression is diagnosable from the failure message alone
    (config lane, field, first divergent row).
    """

    @pytest.mark.parametrize("profile", SPEC_PROFILES_16)
    def test_profile_bit_identical(self, profile):
        from repro.workloads.spec import get_benchmark

        trace = get_benchmark(profile).trace(1_500, seed=1)
        configs = [DEFAULT_MACHINE, table1_config("C")]
        _assert_batch_matches_reference(configs, trace, warm=True)


class TestEligibilityGate:
    def _prefetch_config(self) -> MachineConfig:
        return dataclasses.replace(DEFAULT_MACHINE, prefetch=PrefetchConfig())

    def test_auto_uses_fast_on_default_machine(self):
        sim = HierarchySimulator(DEFAULT_MACHINE, seed=0)
        assert sim._use_fast_path()

    def test_prefetch_falls_back_to_reference(self):
        sim = HierarchySimulator(self._prefetch_config(), seed=0)
        assert not sim._use_fast_path()
        # Auto mode must still run (through the reference loop).
        res = sim.run(_make_trace("strided"))
        assert res.accesses.n_accesses == N

    def test_prefetch_rejects_engine_fast(self):
        with pytest.raises(ConfigError):
            HierarchySimulator(self._prefetch_config(), seed=0, engine="fast")

    def test_non_lru_falls_back(self):
        config = dataclasses.replace(
            DEFAULT_MACHINE,
            l1=dataclasses.replace(DEFAULT_MACHINE.l1, replacement="fifo"),
        )
        assert not HierarchySimulator(config, seed=0)._use_fast_path()
        with pytest.raises(ConfigError):
            HierarchySimulator(config, seed=0, engine="fast")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError):
            HierarchySimulator(DEFAULT_MACHINE, seed=0, engine="turbo")

    def test_prefetch_reference_results_unchanged(self):
        # engine="auto" and engine="reference" agree when the gate trips:
        # fallback must not alter behavior.
        config = self._prefetch_config()
        trace = _make_trace("zipf")
        res_auto = HierarchySimulator(config, seed=0).run(trace)
        res_ref = HierarchySimulator(config, seed=0, engine="reference").run(trace)
        _assert_identical(res_auto, res_ref)


class TestBatchEligibilityGate:
    def _prefetch_config(self) -> MachineConfig:
        return dataclasses.replace(
            DEFAULT_MACHINE, prefetch=PrefetchConfig(), name="prefetching"
        )

    def test_constructor_rejects_ineligible_lane_eagerly(self):
        configs = [DEFAULT_MACHINE, self._prefetch_config(), table1_config("A")]
        with pytest.raises(ConfigError, match="prefetching"):
            BatchHierarchySimulator(configs, seed=0)

    def test_constructor_rejects_empty_batch(self):
        with pytest.raises(ConfigError):
            BatchHierarchySimulator([], seed=0)

    def test_engine_batch_rejects_ineligible_scalar(self):
        with pytest.raises(ConfigError):
            HierarchySimulator(self._prefetch_config(), seed=0, engine="batch")

    def test_engine_batch_matches_reference_single_lane(self):
        trace = _make_trace("zipf")
        res_batch = HierarchySimulator(
            DEFAULT_MACHINE, seed=0, engine="batch"
        ).run(trace)
        res_ref = HierarchySimulator(
            DEFAULT_MACHINE, seed=0, engine="reference"
        ).run(trace)
        _assert_identical(res_batch, res_ref, lane="batch")

    def test_partition_eligible_splits_by_gate(self):
        non_lru = dataclasses.replace(
            DEFAULT_MACHINE,
            l1=dataclasses.replace(DEFAULT_MACHINE.l1, replacement="fifo"),
            name="fifo-l1",
        )
        configs = [DEFAULT_MACHINE, self._prefetch_config(),
                   table1_config("C"), non_lru]
        ok, fallback = partition_eligible(configs)
        assert ok == [0, 2]
        assert fallback == [1, 3]
