"""Unit tests for the measurement glue in repro.sim.stats."""

import numpy as np
import pytest

from repro.core.analyzer import measure_layer
from repro.sim.stats import HierarchyStats, measure_hierarchy, simulate_and_measure
from repro.sim import DEFAULT_MACHINE, HierarchySimulator
from repro.workloads.trace import Trace


def _layer(hs, he, ms, me):
    return measure_layer(hs, he, ms, me)


def make_stats(**overrides) -> HierarchyStats:
    l1 = _layer([0, 3], [3, 6], [3, 0], [13, 0])
    l2 = _layer([4], [12], [0], [0])
    mem = measure_layer([], [], [], [])
    base = dict(
        l1=l1, l2=l2, mem=mem,
        cpi=1.0, cpi_exe=0.5, f_mem=0.4, n_instructions=100,
        mr1_conventional=0.5, mr1_request=0.5,
        mr2_conventional=0.0, mr2_request=0.0,
    )
    base.update(overrides)
    return HierarchyStats(**base)


class TestDerivedQuantities:
    def test_stall_per_instruction(self):
        st = make_stats(cpi=1.2, cpi_exe=0.5)
        assert st.stall_per_instruction == pytest.approx(0.7)

    def test_stall_clamped_at_zero(self):
        st = make_stats(cpi=0.4, cpi_exe=0.5)
        assert st.stall_per_instruction == 0.0

    def test_stall_fraction(self):
        st = make_stats(cpi=1.0, cpi_exe=0.5)
        assert st.stall_fraction_of_compute == pytest.approx(1.0)

    def test_overlap_ratio_in_range(self):
        st = make_stats()
        assert 0.0 <= st.overlap_ratio_cm < 1.0

    def test_overlap_ratio_zero_when_stall_exceeds_activity(self):
        st = make_stats(cpi=100.0, cpi_exe=0.5)
        assert st.overlap_ratio_cm == 0.0

    def test_overlap_capped_below_one_when_no_stall(self):
        st = make_stats(cpi=0.5, cpi_exe=0.5)
        assert st.overlap_ratio_cm < 1.0

    def test_eta_combined_is_pure_cycle_fraction(self):
        st = make_stats()
        expected = st.l1.pure_miss_cycles / st.l1.miss_active_cycles
        assert st.eta_combined == pytest.approx(expected)

    def test_eta_zero_without_misses(self):
        hit_only = _layer([0], [3], [0], [0])
        st = make_stats(l1=hit_only)
        assert st.eta_combined == 0.0

    def test_lpmr_formulas(self):
        st = make_stats()
        assert st.lpmr1 == pytest.approx(st.l1.camat * 0.4 / 0.5)
        assert st.lpmr2 == pytest.approx(st.l2.camat * 0.4 * 0.5 / 0.5)
        assert st.lpmr3 == 0.0  # no memory accesses

    def test_apc_accessors(self):
        st = make_stats()
        assert st.apc1 == st.l1.apc
        assert st.apc2 == st.l2.apc

    def test_ipc(self):
        assert make_stats(cpi=2.0).ipc == pytest.approx(0.5)

    def test_lpmr_report_threshold_path_with_zero_eta(self):
        # eta == 0 must yield an infinite T2 (vacuous L2 constraint), not an
        # exception (regression test for the threshold_t2 guard).
        hit_only = _layer([0], [3], [0], [0])
        st = make_stats(l1=hit_only, cpi=0.5, cpi_exe=0.5)
        th = st.lpmr_report().thresholds(10.0)
        assert th.t2 == float("inf")


class TestMeasureHierarchy:
    def test_empty_memory_layer(self):
        tr = Trace(is_mem=np.zeros(50, bool), address=np.zeros(50, np.int64),
                   is_load=np.zeros(50, bool))
        sim = HierarchySimulator(DEFAULT_MACHINE)
        res = sim.run(tr)
        st = measure_hierarchy(res, cpi_exe=res.cpi)
        assert st.l1.accesses == 0
        assert st.mem.accesses == 0
        assert st.f_mem == 0.0
        assert st.lpmr1 == 0.0

    def test_warm_flag_changes_miss_rate(self):
        addrs = (np.arange(600, dtype=np.int64) % 300) * 64
        tr = Trace.from_memory_addresses(addrs, compute_per_access=1)
        _, cold = simulate_and_measure(DEFAULT_MACHINE, tr, warm=False)
        _, warmed = simulate_and_measure(DEFAULT_MACHINE, tr, warm=True)
        assert warmed.mr1_conventional <= cold.mr1_conventional

    def test_cpi_exe_from_perfect_run_is_attached(self):
        addrs = np.arange(400, dtype=np.int64) * 64
        tr = Trace.from_memory_addresses(addrs, compute_per_access=2)
        _, st = simulate_and_measure(DEFAULT_MACHINE, tr)
        assert 0 < st.cpi_exe <= st.cpi
