"""Property-based tests of the batch kernel's config-axis algebra.

A lane's result must depend only on that lane's config, the trace and the
seed — never on which other lanes share the kernel call.  Hypothesis
hammers that contract with random small traces and random knob draws:
a batch of one equals the scalar fast path, permuting the config axis
permutes the results, re-batching any slice leaves each lane untouched,
and ineligible configs mixed into a measurement batch fall back per-lane
without perturbing the eligible lanes.
"""

import dataclasses

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import DEFAULT_MACHINE, HierarchySimulator
from repro.sim.batch import BatchHierarchySimulator
from repro.sim.prefetch import PrefetchConfig
from repro.sim.stats import simulate_and_measure, simulate_and_measure_batch
from repro.workloads.trace import Trace


@st.composite
def random_trace(draw):
    n = draw(st.integers(min_value=1, max_value=120))
    rng_seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(rng_seed)
    footprint_lines = draw(st.integers(min_value=1, max_value=4096))
    addrs = rng.integers(0, footprint_lines, n) * 64
    gaps = rng.integers(0, 4, n)
    dep = rng.random(n) < draw(st.floats(min_value=0.0, max_value=0.9))
    return Trace.from_memory_addresses(
        addrs, compute_per_access=gaps, name="prop", seed=0, depends=dep
    )


@st.composite
def random_machine(draw, name="prop"):
    return DEFAULT_MACHINE.with_knobs(
        issue_width=draw(st.sampled_from([1, 2, 4, 8])),
        iw_size=draw(st.sampled_from([2, 8, 32, 128])),
        rob_size=draw(st.sampled_from([4, 16, 64, 256])),
        l1_ports=draw(st.sampled_from([1, 2, 4])),
        mshr_count=draw(st.sampled_from([1, 4, 16])),
        l2_banks=draw(st.sampled_from([2, 8])),
        name=name,
    )


@st.composite
def random_batch(draw, min_size=1, max_size=4):
    k = draw(st.integers(min_value=min_size, max_value=max_size))
    return [draw(random_machine(name=f"lane{i}")) for i in range(k)]


def _assert_same(res_got, res_want, *, lane: str) -> None:
    for rec_name in ("accesses", "instructions"):
        got = getattr(res_got, rec_name)
        want = getattr(res_want, rec_name)
        for f in dataclasses.fields(want):
            assert np.array_equal(getattr(got, f.name), getattr(want, f.name)), (
                f"{lane}: {rec_name}.{f.name} differs"
            )
    assert res_got.component_stats == res_want.component_stats, (
        f"{lane}: component_stats differ"
    )


class TestBatchConfigAxis:
    @given(random_trace(), random_machine())
    @settings(max_examples=40, deadline=None)
    def test_batch_of_one_equals_scalar_fast_path(self, trace, machine):
        res_batch = BatchHierarchySimulator([machine], seed=0).run(trace)[0]
        res_fast = HierarchySimulator(machine, seed=0, engine="fast").run(trace)
        _assert_same(res_batch, res_fast, lane="batch-of-1")

    @given(random_trace(), random_batch(min_size=2), st.randoms())
    @settings(max_examples=25, deadline=None)
    def test_permuting_configs_permutes_results(self, trace, configs, rnd):
        perm = list(range(len(configs)))
        rnd.shuffle(perm)
        base = BatchHierarchySimulator(configs, seed=0).run(trace)
        shuffled = BatchHierarchySimulator(
            [configs[j] for j in perm], seed=0
        ).run(trace)
        for i, j in enumerate(perm):
            _assert_same(shuffled[i], base[j], lane=f"perm lane {i} <- {j}")

    @given(random_trace(), random_batch(min_size=2), st.data())
    @settings(max_examples=25, deadline=None)
    def test_rebatching_a_slice_is_invariant(self, trace, configs, data):
        split = data.draw(
            st.integers(min_value=1, max_value=len(configs) - 1), label="split"
        )
        whole = BatchHierarchySimulator(configs, seed=0).run(trace)
        head = BatchHierarchySimulator(configs[:split], seed=0).run(trace)
        tail = BatchHierarchySimulator(configs[split:], seed=0).run(trace)
        for i, res in enumerate(head + tail):
            _assert_same(res, whole[i], lane=f"rebatch lane {i}")

    @given(random_trace(), random_batch())
    @settings(max_examples=15, deadline=None)
    def test_batch_is_deterministic(self, trace, configs):
        a = BatchHierarchySimulator(configs, seed=1).run(trace)
        b = BatchHierarchySimulator(configs, seed=1).run(trace)
        for i, (ra, rb) in enumerate(zip(a, b)):
            _assert_same(ra, rb, lane=f"determinism lane {i}")


class TestMixedEligibilityFallback:
    @given(random_trace(), random_batch(max_size=3), st.data())
    @settings(max_examples=15, deadline=None)
    def test_ineligible_lane_falls_back_without_perturbing_others(
        self, trace, configs, data
    ):
        ineligible = DEFAULT_MACHINE.with_knobs(name="prefetching")
        ineligible = dataclasses.replace(ineligible, prefetch=PrefetchConfig())
        pos = data.draw(
            st.integers(min_value=0, max_value=len(configs)), label="pos"
        )
        mixed = configs[:pos] + [ineligible] + configs[pos:]
        pairs = simulate_and_measure_batch(mixed, trace, seed=0, warm=True)
        assert len(pairs) == len(mixed)
        for i, config in enumerate(mixed):
            res_solo, stats_solo = simulate_and_measure(
                config, trace, seed=0, warm=True
            )
            _assert_same(pairs[i][0], res_solo, lane=f"mixed lane {i}")
            assert pairs[i][1] == stats_solo, f"mixed lane {i}: stats differ"
