"""Integration-level tests of the timing engine's behaviour and invariants."""

import numpy as np
import pytest

from repro.sim import (
    DEFAULT_MACHINE,
    HierarchySimulator,
    simulate_and_measure,
)
from repro.workloads.trace import Trace


def tiny_machine(**kw):
    return DEFAULT_MACHINE.with_knobs(**kw)


def hit_trace(n=100, line=0, compute=1):
    addrs = np.full(n, line * 64, dtype=np.int64)
    return Trace.from_memory_addresses(addrs, compute_per_access=compute, name="hits")


def stream_trace(n=200, stride=64, compute=1):
    addrs = np.arange(n, dtype=np.int64) * stride
    return Trace.from_memory_addresses(addrs, compute_per_access=compute, name="stream")


class TestBasicExecution:
    def test_all_hits_after_first(self):
        sim = HierarchySimulator(DEFAULT_MACHINE)
        res = sim.run(hit_trace(50))
        acc = res.accesses
        # One primary (cold) miss; accesses arriving before its fill are
        # coalesced secondary misses; everything after the fill hits.
        assert acc.n_l2_accesses == 1
        primaries = (acc.l1_is_miss & ~acc.l1_is_secondary).sum()
        assert primaries == 1
        assert acc.l1_miss_count < 50
        assert not acc.l1_is_miss[-1]

    def test_warmed_cache_no_misses(self):
        sim = HierarchySimulator(DEFAULT_MACHINE)
        tr = hit_trace(50)
        sim.warm_caches(tr)
        res = sim.run(tr)
        assert res.accesses.l1_miss_count == 0

    def test_perfect_run_never_misses(self):
        sim = HierarchySimulator(DEFAULT_MACHINE)
        res = sim.run(stream_trace(100), perfect=True)
        assert res.accesses.l1_miss_count == 0
        assert res.accesses.n_l2_accesses == 0

    def test_perfect_cpi_is_lower_bound(self):
        tr = stream_trace(300)
        perfect = HierarchySimulator(DEFAULT_MACHINE).run(tr, perfect=True)
        real = HierarchySimulator(DEFAULT_MACHINE).run(tr)
        assert real.cpi >= perfect.cpi - 1e-9

    def test_empty_trace(self):
        sim = HierarchySimulator(DEFAULT_MACHINE)
        tr = Trace(is_mem=np.zeros(0, bool), address=np.zeros(0, np.int64),
                   is_load=np.zeros(0, bool))
        res = sim.run(tr)
        assert res.total_cycles == 0
        assert res.accesses.n_accesses == 0

    def test_compute_only_trace(self):
        sim = HierarchySimulator(DEFAULT_MACHINE.with_knobs(issue_width=2))
        tr = Trace(is_mem=np.zeros(100, bool), address=np.zeros(100, np.int64),
                   is_load=np.zeros(100, bool))
        res = sim.run(tr)
        # 100 independent 1-cycle ops on a 2-wide core: ~50 cycles.
        assert 45 <= res.total_cycles <= 60


class TestPipelineOrdering:
    def test_dispatch_monotone(self):
        res = HierarchySimulator(DEFAULT_MACHINE).run(stream_trace(200))
        d = res.instructions.dispatch
        assert np.all(np.diff(d) >= 0)

    def test_retire_in_order(self):
        res = HierarchySimulator(DEFAULT_MACHINE).run(stream_trace(200))
        r = res.instructions.retire
        assert np.all(np.diff(r) >= 0)

    def test_retire_after_complete(self):
        res = HierarchySimulator(DEFAULT_MACHINE).run(stream_trace(200))
        assert np.all(res.instructions.retire >= res.instructions.complete)

    def test_complete_after_dispatch(self):
        res = HierarchySimulator(DEFAULT_MACHINE).run(stream_trace(200))
        assert np.all(res.instructions.complete > res.instructions.dispatch)

    def test_issue_width_bounds_dispatch_rate(self):
        w = 2
        cfg = tiny_machine(issue_width=w, iw_size=64, rob_size=64)
        res = HierarchySimulator(cfg).run(hit_trace(200, compute=0))
        d = res.instructions.dispatch
        _, counts = np.unique(d, return_counts=True)
        assert counts.max() <= w

    def test_rob_bounds_inflight(self):
        rob = 8
        cfg = tiny_machine(rob_size=rob, iw_size=64)
        res = HierarchySimulator(cfg).run(stream_trace(200))
        d, r = res.instructions.dispatch, res.instructions.retire
        # Instruction i dispatches only after instruction i-rob retired.
        for i in range(rob, len(d)):
            assert d[i] >= r[i - rob]


class TestMemoryIntervals:
    def test_hit_interval_length_is_hit_time(self):
        res = HierarchySimulator(DEFAULT_MACHINE).run(stream_trace(100))
        acc = res.accesses
        lengths = acc.l1_hit_end - acc.l1_hit_start
        assert np.all(lengths == DEFAULT_MACHINE.l1_hit_time)

    def test_miss_interval_follows_hit_interval(self):
        res = HierarchySimulator(DEFAULT_MACHINE).run(stream_trace(100))
        acc = res.accesses
        m = acc.l1_is_miss
        assert np.all(acc.l1_miss_start[m] == acc.l1_hit_end[m])
        assert np.all(acc.l1_miss_end[m] >= acc.l1_miss_start[m])

    def test_hits_have_empty_miss_interval(self):
        res = HierarchySimulator(DEFAULT_MACHINE).run(hit_trace(100))
        acc = res.accesses
        h = ~acc.l1_is_miss
        assert np.all(acc.l1_miss_end[h] == acc.l1_miss_start[h])

    def test_l2_rows_match_primary_misses(self):
        res = HierarchySimulator(DEFAULT_MACHINE).run(stream_trace(300))
        acc = res.accesses
        primaries = int(np.count_nonzero(acc.l1_is_miss & ~acc.l1_is_secondary))
        assert acc.n_l2_accesses == primaries

    def test_l2_index_mapping(self):
        res = HierarchySimulator(DEFAULT_MACHINE).run(stream_trace(300))
        acc = res.accesses
        mapped = acc.l2_index[acc.l2_index >= 0]
        assert sorted(mapped.tolist()) == list(range(acc.n_l2_accesses))

    def test_complete_not_before_data(self):
        res = HierarchySimulator(DEFAULT_MACHINE).run(stream_trace(300))
        acc = res.accesses
        m = acc.l1_is_miss
        assert np.all(acc.complete[m] >= acc.l1_miss_end[m])
        h = ~m
        assert np.all(acc.complete[h] == acc.l1_hit_end[h])

    def test_secondary_misses_create_no_l2_rows(self):
        # Same line accessed back-to-back: one primary, others coalesce.
        addrs = np.zeros(10, dtype=np.int64)
        tr = Trace.from_memory_addresses(addrs, compute_per_access=0, name="co")
        cfg = tiny_machine(mshr_count=4)
        res = HierarchySimulator(cfg).run(tr)
        acc = res.accesses
        assert acc.n_l2_accesses == 1
        assert int(np.count_nonzero(acc.l1_is_secondary)) >= 1


class TestKnobEffects:
    def test_more_ports_speed_up_hit_bandwidth(self):
        tr = hit_trace(400, compute=0)
        slow = HierarchySimulator(tiny_machine(l1_ports=1)).run(tr)
        fast = HierarchySimulator(tiny_machine(l1_ports=4)).run(tr)
        assert fast.total_cycles < slow.total_cycles

    def test_more_mshrs_speed_up_miss_streams(self):
        # Distinct lines, bursty: MSHR-bound under 1, freer under 16.
        rng = np.random.default_rng(0)
        addrs = (rng.integers(0, 1 << 22, 600) >> 6) << 6
        tr = Trace.from_memory_addresses(addrs, compute_per_access=0, name="rnd")
        slow = HierarchySimulator(tiny_machine(mshr_count=1)).run(tr)
        fast = HierarchySimulator(tiny_machine(mshr_count=16)).run(tr)
        assert fast.total_cycles < slow.total_cycles

    def test_bigger_rob_hides_latency(self):
        rng = np.random.default_rng(0)
        addrs = (rng.integers(0, 1 << 22, 400) >> 6) << 6
        tr = Trace.from_memory_addresses(addrs, compute_per_access=4, name="rnd")
        small = HierarchySimulator(tiny_machine(rob_size=8, iw_size=64, mshr_count=16)).run(tr)
        big = HierarchySimulator(tiny_machine(rob_size=256, iw_size=64, mshr_count=16)).run(tr)
        assert big.total_cycles < small.total_cycles

    def test_iw_bounds_inflight_memory_ops(self):
        # Regression: the window (LSQ) limit must apply to memory ops.
        # With a huge ROB but a tiny IW, in-flight memory ops are capped.
        rng = np.random.default_rng(0)
        addrs = (rng.integers(0, 1 << 22, 400) >> 6) << 6
        tr = Trace.from_memory_addresses(addrs, compute_per_access=0, name="rnd")
        narrow = HierarchySimulator(
            tiny_machine(iw_size=2, rob_size=256, mshr_count=16)
        ).run(tr)
        wide = HierarchySimulator(
            tiny_machine(iw_size=64, rob_size=256, mshr_count=16)
        ).run(tr)
        assert narrow.total_cycles > 1.3 * wide.total_cycles

    def test_dependent_loads_serialize(self):
        rng = np.random.default_rng(0)
        addrs = (rng.integers(0, 1 << 22, 300) >> 6) << 6
        dep = np.ones(300, dtype=bool)
        t_dep = Trace.from_memory_addresses(addrs, compute_per_access=0, name="dep",
                                            depends=dep)
        t_free = Trace.from_memory_addresses(addrs, compute_per_access=0, name="free")
        cfg = tiny_machine(mshr_count=16, iw_size=64)
        serial = HierarchySimulator(cfg).run(t_dep)
        parallel = HierarchySimulator(cfg).run(t_free)
        assert serial.total_cycles > 1.5 * parallel.total_cycles

    def test_compute_dependency_bounds_ipc(self):
        n = 400
        dep = np.ones(n, dtype=bool)
        t_dep = Trace(is_mem=np.zeros(n, bool), address=np.zeros(n, np.int64),
                      is_load=np.zeros(n, bool), depends=dep)
        t_free = Trace(is_mem=np.zeros(n, bool), address=np.zeros(n, np.int64),
                       is_load=np.zeros(n, bool))
        cfg = tiny_machine(issue_width=8)
        serial = HierarchySimulator(cfg).run(t_dep)
        free = HierarchySimulator(cfg).run(t_free)
        assert serial.cpi == pytest.approx(1.0, rel=0.1)
        assert free.cpi == pytest.approx(1 / 8, rel=0.2)


class TestDeterminism:
    def test_same_seed_same_result(self):
        tr = stream_trace(300)
        a = HierarchySimulator(DEFAULT_MACHINE, seed=3).run(tr)
        b = HierarchySimulator(DEFAULT_MACHINE, seed=3).run(tr)
        assert a.total_cycles == b.total_cycles
        assert np.array_equal(a.accesses.l1_miss_end, b.accesses.l1_miss_end)


class TestSimulateAndMeasure:
    def test_returns_consistent_stats(self):
        tr = stream_trace(500, compute=2)
        res, st = simulate_and_measure(DEFAULT_MACHINE, tr)
        assert st.n_instructions == tr.n_instructions
        assert st.f_mem == pytest.approx(tr.f_mem)
        assert st.cpi == pytest.approx(res.cpi)
        assert st.cpi_exe <= st.cpi + 1e-9
        assert st.l1.accesses == tr.n_mem

    def test_lpmr_report_roundtrip(self):
        tr = stream_trace(500, compute=2)
        _, st = simulate_and_measure(DEFAULT_MACHINE, tr)
        report = st.lpmr_report()
        assert report.lpmr1 == pytest.approx(st.lpmr1)
        assert 0.0 <= report.overlap_ratio_cm < 1.0

    def test_stall_consistency_with_eq12(self):
        # Eq. 12 with the measured overlap ratio reproduces measured stall
        # (the overlap ratio is defined through Eq. 7; see stats docstring).
        tr = stream_trace(800, compute=2)
        _, st = simulate_and_measure(DEFAULT_MACHINE, tr)
        if st.l1.active_cycles and st.stall_per_instruction > 0:
            predicted = st.lpmr_report().predicted_stall_per_instruction()
            assert predicted == pytest.approx(st.stall_per_instruction, rel=0.02)
