"""Tests for cycle-bounded quanta (stop_cycle) and pipeline resumption."""

import numpy as np
import pytest

from repro.sim import DEFAULT_MACHINE, HierarchySimulator
from repro.workloads.spec import get_benchmark
from repro.workloads.trace import Trace


@pytest.fixture()
def trace():
    return get_benchmark("403.gcc").trace(3000, seed=2)


class TestStopCycle:
    def test_stops_before_bound(self, trace):
        sim = HierarchySimulator(DEFAULT_MACHINE, seed=0)
        res = sim.run(trace, stop_cycle=500)
        assert res.instructions_executed < trace.n_instructions
        assert res.instructions.dispatch.max() < 500

    def test_records_sliced_to_executed(self, trace):
        sim = HierarchySimulator(DEFAULT_MACHINE, seed=0)
        res = sim.run(trace, stop_cycle=500)
        n = res.instructions_executed
        assert res.instructions.n_instructions == n
        n_mem = int(res.instructions.is_mem.sum())
        assert res.accesses.n_accesses == n_mem

    def test_no_bound_executes_everything(self, trace):
        sim = HierarchySimulator(DEFAULT_MACHINE, seed=0)
        res = sim.run(trace)
        assert res.instructions_executed == trace.n_instructions

    def test_zero_progress_window(self, trace):
        sim = HierarchySimulator(DEFAULT_MACHINE, seed=0)
        res = sim.run(trace, start_cycle=100, stop_cycle=100)
        assert res.instructions_executed == 0
        assert res.accesses.n_accesses == 0


class TestResume:
    def test_chunked_equals_monolithic_for_compute(self):
        # Pure compute: chunked execution with resume must match the
        # monolithic run exactly (no memory-boundary effects at all).
        n = 600
        tr = Trace(is_mem=np.zeros(n, bool), address=np.zeros(n, np.int64),
                   is_load=np.zeros(n, bool))
        mono = HierarchySimulator(DEFAULT_MACHINE, seed=0).run(tr)

        sim = HierarchySimulator(DEFAULT_MACHINE, seed=0)
        pos, clock, total = 0, 0, 0
        while pos < n:
            res = sim.run(tr.slice(pos, n), start_cycle=clock, stop_cycle=clock + 37,
                          resume=pos > 0)
            if res.instructions_executed == 0:
                clock += 37
                continue
            pos += res.instructions_executed
            clock = int(res.instructions.dispatch.max())
            total = int(res.instructions.retire.max())
        assert total == mono.instructions.retire.max()

    def test_chunked_memory_run_close_to_monolithic(self, trace):
        mono = HierarchySimulator(DEFAULT_MACHINE, seed=0)
        mono.warm_caches(trace)
        mono_res = mono.run(trace)

        sim = HierarchySimulator(DEFAULT_MACHINE, seed=0)
        sim.warm_caches(trace)
        pos, clock = 0, 0
        last_retire = 0
        n = trace.n_instructions
        while pos < n:
            res = sim.run(trace.slice(pos, n), start_cycle=clock,
                          stop_cycle=clock + 250, resume=pos > 0)
            if res.instructions_executed == 0:
                clock += 250
                continue
            pos += res.instructions_executed
            clock = max(int(res.instructions.dispatch.max()), clock)
            last_retire = int(res.instructions.retire.max())
        # Boundary effects only: within a few percent of monolithic.
        assert last_retire == pytest.approx(mono_res.instructions.retire.max(),
                                            rel=0.05)

    def test_resume_false_drains_pipeline(self, trace):
        sim = HierarchySimulator(DEFAULT_MACHINE, seed=0)
        first = sim.run(trace.slice(0, 500))
        fresh = sim.run(trace.slice(500, 1000),
                        start_cycle=int(first.instructions.retire.max()))
        # Without resume, dispatch restarts at/after the given start cycle.
        assert fresh.instructions.dispatch.min() >= first.instructions.retire.max()

    def test_resume_preserves_inflight_window_pressure(self):
        # A tiny window (iw=2) with back-to-back misses: resuming keeps the
        # in-flight ops, so the resumed chunk starts window-constrained.
        rng = np.random.default_rng(0)
        addrs = (rng.integers(0, 1 << 22, 400) >> 6) << 6
        tr = Trace.from_memory_addresses(addrs, compute_per_access=0)
        cfg = DEFAULT_MACHINE.with_knobs(iw_size=2, rob_size=256, mshr_count=16)
        mono = HierarchySimulator(cfg, seed=0).run(tr).total_cycles

        sim = HierarchySimulator(cfg, seed=0)
        pos, clock, last = 0, 0, 0
        n = tr.n_instructions
        while pos < n:
            res = sim.run(tr.slice(pos, n), start_cycle=clock,
                          stop_cycle=clock + 200, resume=pos > 0)
            if res.instructions_executed == 0:
                clock += 200
                continue
            pos += res.instructions_executed
            clock = max(int(res.instructions.dispatch.max()), clock)
            last = int(res.instructions.retire.max())
        assert last == pytest.approx(mono, rel=0.1)
