"""Property-based tests of the timing engine's structural invariants.

Random small traces and random machine knobs; the invariants must hold for
every combination: pipeline ordering, interval sanity, record-index
consistency, the analyzer identity on real simulator output, and
determinism.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analyzer import measure_layer
from repro.sim import DEFAULT_MACHINE, HierarchySimulator
from repro.workloads.trace import Trace

KB = 1024


@st.composite
def random_trace(draw):
    n = draw(st.integers(min_value=1, max_value=120))
    rng_seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(rng_seed)
    footprint_lines = draw(st.integers(min_value=1, max_value=4096))
    addrs = rng.integers(0, footprint_lines, n) * 64
    gaps = rng.integers(0, 4, n)
    dep = rng.random(n) < draw(st.floats(min_value=0.0, max_value=0.9))
    return Trace.from_memory_addresses(
        addrs, compute_per_access=gaps, name="prop", seed=0, depends=dep
    )


@st.composite
def random_machine(draw):
    return DEFAULT_MACHINE.with_knobs(
        issue_width=draw(st.sampled_from([1, 2, 4, 8])),
        iw_size=draw(st.sampled_from([2, 8, 32, 128])),
        rob_size=draw(st.sampled_from([4, 16, 64, 256])),
        l1_ports=draw(st.sampled_from([1, 2, 4])),
        mshr_count=draw(st.sampled_from([1, 4, 16])),
        l2_banks=draw(st.sampled_from([2, 8])),
    )


class TestEngineInvariants:
    @given(random_trace(), random_machine())
    @settings(max_examples=60, deadline=None)
    def test_pipeline_ordering(self, trace, machine):
        res = HierarchySimulator(machine, seed=0).run(trace)
        ins = res.instructions
        assert np.all(np.diff(ins.dispatch) >= 0)
        assert np.all(np.diff(ins.retire) >= 0)
        assert np.all(ins.complete > ins.dispatch)
        assert np.all(ins.retire >= ins.complete)

    @given(random_trace(), random_machine())
    @settings(max_examples=60, deadline=None)
    def test_interval_sanity(self, trace, machine):
        res = HierarchySimulator(machine, seed=0).run(trace)
        acc = res.accesses
        if acc.n_accesses == 0:
            return
        assert np.all(acc.l1_hit_end - acc.l1_hit_start == machine.l1_hit_time)
        assert np.all(acc.l1_miss_end >= acc.l1_miss_start)
        miss = acc.l1_is_miss
        assert np.all(acc.l1_miss_start[miss] == acc.l1_hit_end[miss])
        hits = ~miss
        assert np.all(acc.l1_miss_end[hits] == acc.l1_miss_start[hits])
        assert np.all(acc.complete >= acc.l1_hit_end)

    @given(random_trace(), random_machine())
    @settings(max_examples=60, deadline=None)
    def test_record_index_consistency(self, trace, machine):
        res = HierarchySimulator(machine, seed=0).run(trace)
        acc = res.accesses
        primaries = int(np.count_nonzero(acc.l1_is_miss & ~acc.l1_is_secondary))
        assert acc.n_l2_accesses == primaries
        mapped = acc.l2_index[acc.l2_index >= 0]
        assert sorted(mapped.tolist()) == list(range(acc.n_l2_accesses))
        l2_primaries = int(np.count_nonzero(acc.l2_is_miss & ~acc.l2_is_secondary))
        assert acc.n_mem_accesses == l2_primaries

    @given(random_trace(), random_machine())
    @settings(max_examples=40, deadline=None)
    def test_analyzer_identity_on_engine_output(self, trace, machine):
        res = HierarchySimulator(machine, seed=0).run(trace)
        acc = res.accesses
        if acc.n_accesses == 0:
            return
        m = measure_layer(acc.l1_hit_start, acc.l1_hit_end,
                          acc.l1_miss_start, acc.l1_miss_end)
        assert m.camat_model == pytest.approx(m.camat)
        assert m.pure_miss_count <= m.miss_count
        assert m.camat <= m.amat + 1e-9

    @given(random_trace(), random_machine())
    @settings(max_examples=30, deadline=None)
    def test_determinism(self, trace, machine):
        a = HierarchySimulator(machine, seed=1).run(trace)
        b = HierarchySimulator(machine, seed=1).run(trace)
        assert a.total_cycles == b.total_cycles
        assert np.array_equal(a.instructions.retire, b.instructions.retire)

    @given(random_trace())
    @settings(max_examples=30, deadline=None)
    def test_perfect_run_is_lower_bound(self, trace):
        perfect = HierarchySimulator(DEFAULT_MACHINE, seed=0).run(trace, perfect=True)
        real = HierarchySimulator(DEFAULT_MACHINE, seed=0).run(trace)
        assert perfect.total_cycles <= real.total_cycles

    @given(random_trace())
    @settings(max_examples=30, deadline=None)
    def test_stronger_machine_never_slower(self, trace):
        weak = DEFAULT_MACHINE.with_knobs(
            issue_width=2, iw_size=8, rob_size=16, l1_ports=1,
            mshr_count=2, l2_banks=2,
        )
        strong = DEFAULT_MACHINE.with_knobs(
            issue_width=8, iw_size=128, rob_size=256, l1_ports=4,
            mshr_count=16, l2_banks=8,
        )
        slow = HierarchySimulator(weak, seed=0).run(trace)
        fast = HierarchySimulator(strong, seed=0).run(trace)
        # Strictly more of every resource can reorder DRAM row-buffer luck,
        # so allow a sliver of slack.
        assert fast.total_cycles <= slow.total_cycles * 1.05 + 10
