"""Unit and property tests for the MSHR file with miss coalescing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.mshr import MSHRFile


class TestPrimarySecondary:
    def test_first_miss_is_primary(self):
        m = MSHRFile(4)
        res = m.present(block=1, arrival=0)
        assert not res.is_secondary
        assert res.grant_time == 0
        m.complete_primary(1, fill_time=50)
        assert m.primary_misses == 1

    def test_same_block_coalesces(self):
        m = MSHRFile(4)
        res = m.present(1, 0)
        m.complete_primary(1, 50)
        res2 = m.present(1, 10)
        assert res2.is_secondary
        assert res2.fill_time == 50
        assert m.secondary_misses == 1

    def test_after_fill_new_primary(self):
        m = MSHRFile(4)
        m.present(1, 0)
        m.complete_primary(1, 50)
        res = m.present(1, 60)
        assert not res.is_secondary
        m.complete_primary(1, 120)
        assert m.primary_misses == 2

    def test_exactly_at_fill_time_is_new_primary(self):
        # fill <= arrival means the data already arrived.
        m = MSHRFile(4)
        m.present(1, 0)
        m.complete_primary(1, 50)
        res = m.present(1, 50)
        assert not res.is_secondary

    def test_distinct_blocks_use_distinct_mshrs(self):
        m = MSHRFile(4)
        for b in range(3):
            res = m.present(b, 0)
            assert not res.is_secondary
            m.complete_primary(b, 100)
        assert m.outstanding_at(50) == 3


class TestCapacityStall:
    def test_full_file_delays_grant(self):
        m = MSHRFile(2)
        for b, fill in ((1, 30), (2, 40)):
            m.present(b, 0)
            m.complete_primary(b, fill)
        res = m.present(3, 10)
        assert not res.is_secondary
        assert res.grant_time == 30  # earliest outstanding fill
        m.complete_primary(3, 80)
        assert m.full_stall_cycles == 20

    def test_no_stall_when_slot_free_by_arrival(self):
        m = MSHRFile(1)
        m.present(1, 0)
        m.complete_primary(1, 10)
        res = m.present(2, 20)
        assert res.grant_time == 20
        assert m.full_stall_cycles == 0

    def test_coalescing_ratio(self):
        m = MSHRFile(4)
        m.present(1, 0)
        m.complete_primary(1, 100)
        m.present(1, 1)
        m.present(1, 2)
        assert m.coalescing_ratio == pytest.approx(2 / 3)

    def test_peak_occupancy(self):
        m = MSHRFile(8)
        for b in range(5):
            m.present(b, 0)
            m.complete_primary(b, 100)
        assert m.peak_occupancy == 5

    def test_reset(self):
        m = MSHRFile(2)
        m.present(1, 0)
        m.complete_primary(1, 100)
        m.reset()
        assert m.outstanding_at(50) == 0
        assert m.total_misses == 0

    def test_over_capacity_complete_raises(self):
        m = MSHRFile(1)
        m.present(1, 0)
        m.complete_primary(1, 100)
        with pytest.raises(RuntimeError):
            m.complete_primary(2, 100)  # no present() honoured for this


@st.composite
def miss_stream(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    events = []
    arrival = 0
    for _ in range(n):
        arrival += draw(st.integers(min_value=0, max_value=10))
        block = draw(st.integers(min_value=0, max_value=7))
        latency = draw(st.integers(min_value=1, max_value=40))
        events.append((arrival, block, latency))
    return events


class TestMSHRProperties:
    @given(miss_stream(), st.integers(min_value=1, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, events, capacity):
        m = MSHRFile(capacity)
        holds = []
        for arrival, block, latency in events:
            res = m.present(block, arrival)
            if not res.is_secondary:
                fill = res.grant_time + latency
                m.complete_primary(block, fill)
                holds.append((res.grant_time, fill))
        for g, _ in holds:
            live = sum(1 for g2, f2 in holds if g2 <= g < f2)
            assert live <= capacity

    @given(miss_stream())
    @settings(max_examples=60, deadline=None)
    def test_secondary_fill_matches_outstanding_primary(self, events):
        m = MSHRFile(8)
        outstanding = {}
        for arrival, block, latency in events:
            res = m.present(block, arrival)
            if res.is_secondary:
                fill = outstanding[block]
                assert res.fill_time == fill
                assert fill > arrival
            else:
                fill = res.grant_time + latency
                m.complete_primary(block, fill)
                outstanding[block] = fill

    @given(miss_stream())
    @settings(max_examples=60, deadline=None)
    def test_miss_accounting_sums(self, events):
        m = MSHRFile(4)
        for arrival, block, latency in events:
            res = m.present(block, arrival)
            if not res.is_secondary:
                m.complete_primary(block, res.grant_time + latency)
        assert m.total_misses == len(events)
        assert m.primary_misses + m.secondary_misses == len(events)
