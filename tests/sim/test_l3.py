"""Tests for the optional third cache level.

The paper: "the extension to additional cache levels is straightforward"
(Section III) and "C-AMAT can be further extended to the next layer of the
memory hierarchy" (Section II).  These tests exercise the three-level
engine path and the extended measurement chain.
"""

import numpy as np
import pytest

from repro.sim import CacheGeometry, DEFAULT_MACHINE, HierarchySimulator, simulate_and_measure
from repro.workloads.spec import get_benchmark
from repro.workloads.trace import Trace

KB = 1024
MB = 1024 * 1024


def three_level(l2_kb=128, l3_kb=1024, **kw):
    return DEFAULT_MACHINE.with_(
        l2=CacheGeometry(l2_kb * KB, associativity=16),
        l3=CacheGeometry(l3_kb * KB, associativity=16),
        name="3-level",
        **kw,
    )


@pytest.fixture(scope="module")
def mcf_trace():
    return get_benchmark("429.mcf").trace(8000, seed=7)


class TestConfigValidation:
    def test_l3_line_size_must_match(self):
        with pytest.raises(ValueError):
            DEFAULT_MACHINE.with_(
                l3=CacheGeometry(1 * MB, line_bytes=128, associativity=16)
            )

    def test_l3_params_validated(self):
        with pytest.raises(ValueError):
            three_level(l3_banks=3)
        with pytest.raises(ValueError):
            three_level(l3_hit_time=0)

    def test_two_level_machines_have_no_l3_records(self, mcf_trace):
        res = HierarchySimulator(DEFAULT_MACHINE, seed=0).run(mcf_trace)
        assert not res.accesses.has_l3
        assert res.accesses.n_l3_accesses == 0


class TestThreeLevelExecution:
    def test_l3_rows_match_l2_primary_misses(self, mcf_trace):
        res = HierarchySimulator(three_level(), seed=0).run(mcf_trace)
        acc = res.accesses
        primaries = int(np.count_nonzero(acc.l2_is_miss & ~acc.l2_is_secondary))
        assert acc.n_l3_accesses == primaries
        assert acc.has_l3

    def test_l3_index_mapping(self, mcf_trace):
        res = HierarchySimulator(three_level(), seed=0).run(mcf_trace)
        acc = res.accesses
        mapped = acc.l3_index[acc.l3_index >= 0]
        assert sorted(mapped.tolist()) == list(range(acc.n_l3_accesses))
        # No direct L2 -> memory rows when an L3 is present.
        assert np.all(acc.mem_index == -1)

    def test_mem_rows_hang_off_l3(self):
        # Footprint bigger than L3 so DRAM traffic exists.
        rng = np.random.default_rng(0)
        addrs = (rng.integers(0, 16 * MB, 6000) >> 6) << 6
        tr = Trace.from_memory_addresses(addrs, compute_per_access=1, name="big")
        res = HierarchySimulator(three_level(l3_kb=256), seed=0).run(tr)
        acc = res.accesses
        assert acc.n_mem_accesses > 0
        mapped = acc.l3_mem_index[acc.l3_mem_index >= 0]
        assert sorted(mapped.tolist()) == list(range(acc.n_mem_accesses))

    def test_l3_reduces_memory_pressure_for_mid_footprints(self, mcf_trace):
        small = HierarchySimulator(DEFAULT_MACHINE, seed=0)
        small.warm_caches(mcf_trace)
        two = small.run(mcf_trace)
        big = HierarchySimulator(three_level(), seed=0)
        big.warm_caches(mcf_trace)
        three = big.run(mcf_trace)
        assert three.total_cycles < two.total_cycles

    def test_l3_hit_interval_length(self, mcf_trace):
        cfg = three_level(l3_hit_time=17)
        res = HierarchySimulator(cfg, seed=0).run(mcf_trace)
        acc = res.accesses
        if acc.n_l3_accesses:
            lengths = acc.l3_hit_end - acc.l3_hit_start
            assert np.all(lengths == 17)

    def test_warm_includes_l3(self, mcf_trace):
        sim = HierarchySimulator(three_level(), seed=0)
        sim.warm_caches(mcf_trace)
        res = sim.run(mcf_trace)
        assert res.accesses.l3_miss_rate < 0.05


class TestThreeLevelMeasurement:
    def test_stats_expose_l3_layer(self, mcf_trace):
        _, st = simulate_and_measure(three_level(), mcf_trace, seed=0)
        assert st.l3 is not None
        assert st.l3.accesses > 0
        # The Eq. (2)/(3) identity holds at the third layer too.
        assert st.l3.camat_model == pytest.approx(st.l3.camat)

    def test_two_level_stats_have_no_l3(self, mcf_trace):
        _, st = simulate_and_measure(DEFAULT_MACHINE, mcf_trace, seed=0)
        assert st.l3 is None
        assert st.lpmr4 == 0.0

    def test_lpmr_chain_thins_down_the_hierarchy(self):
        rng = np.random.default_rng(0)
        addrs = (rng.integers(0, 16 * MB, 8000) >> 6) << 6
        tr = Trace.from_memory_addresses(addrs, compute_per_access=2, name="big")
        _, st = simulate_and_measure(three_level(l3_kb=256), tr, seed=0)
        # Request rates thin layer by layer, so the deeper matching ratios
        # are bounded by the shallower ones for this uniform workload.
        assert st.lpmr1 >= st.lpmr3 * 0.5
        assert st.lpmr4 > 0.0

    def test_mr3_fields_populated(self):
        rng = np.random.default_rng(0)
        addrs = (rng.integers(0, 16 * MB, 6000) >> 6) << 6
        tr = Trace.from_memory_addresses(addrs, compute_per_access=1, name="big")
        _, st = simulate_and_measure(three_level(l3_kb=256), tr, seed=0)
        assert 0.0 < st.mr3_conventional <= 1.0
        assert 0.0 < st.mr3_request <= 1.0

    def test_reconfigure_keeps_l3(self, mcf_trace):
        cfg = three_level()
        sim = HierarchySimulator(cfg, seed=0)
        sim.warm_caches(mcf_trace)
        sim.reconfigure(cfg.with_knobs(mshr_count=16))
        res = sim.run(mcf_trace)
        assert res.accesses.l3_miss_rate < 0.05
