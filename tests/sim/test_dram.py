"""Unit tests for the DRAM bank/row-buffer timing model."""

import pytest

from repro.sim.dram import DRAMModel
from repro.sim.params import DRAMTiming


def model(**kw):
    defaults = dict(n_banks=4, t_cas=10, t_rcd=6, t_rp=6, t_burst=2, t_bus=5, row_bytes=1024)
    defaults.update(kw)
    return DRAMModel(DRAMTiming(**defaults), line_bytes=64)


class TestAddressMapping:
    def test_bank_from_low_block_bits(self):
        m = model()
        assert m.map_address(0)[0] == 0
        assert m.map_address(1)[0] == 1
        assert m.map_address(5)[0] == 1

    def test_row_advances_every_blocks_per_row(self):
        m = model()
        # 1024-byte rows / 64-byte lines = 16 blocks per row (per bank).
        bank0_blocks = [0, 4, 8]  # all bank 0
        rows = [m.map_address(b)[1] for b in bank0_blocks]
        assert rows[0] == rows[1] == rows[2] == 0
        far = m.map_address(16 * 4)[1]
        assert far == 1


class TestRowBufferStates:
    def test_first_access_is_closed(self):
        m = model()
        res = m.access(0, request_time=0)
        assert res.kind == "closed"
        # bus(5) then RCD+CAS(16) + burst(2)
        assert res.service_start == 5
        assert res.service_end == 5 + 16 + 2
        assert res.data_ready == res.service_end + 5

    def test_same_row_hit(self):
        m = model()
        m.access(0, 0)
        res = m.access(4, 100)  # bank 0, same row
        assert res.kind == "hit"
        assert res.service_end - res.service_start == 10 + 2

    def test_row_conflict(self):
        m = model()
        m.access(0, 0)
        res = m.access(16 * 4, 100)  # bank 0, next row
        assert res.kind == "conflict"
        assert res.service_end - res.service_start == 6 + 6 + 10 + 2

    def test_busy_bank_queues(self):
        m = model()
        r1 = m.access(0, 0)
        r2 = m.access(4, 0)  # same bank, immediately
        assert r2.service_start == r1.service_end

    def test_distinct_banks_parallel(self):
        m = model()
        r1 = m.access(0, 0)
        r2 = m.access(1, 0)
        assert r2.service_start == r1.service_start

    def test_row_hit_rate(self):
        m = model()
        m.access(0, 0)
        m.access(4, 100)
        m.access(8, 200)
        assert m.row_hit_rate == pytest.approx(2 / 3)

    def test_mean_bank_wait(self):
        m = model()
        m.access(0, 0)
        m.access(4, 0)
        assert m.mean_bank_wait > 0

    def test_reset(self):
        m = model()
        m.access(0, 0)
        m.reset()
        res = m.access(4, 0)
        assert res.kind == "closed"
        assert m.accesses == 1


class TestBandwidth:
    def test_sequential_stream_gets_row_hits(self):
        m = model()
        kinds = [m.access(b, b * 2).kind for b in range(32)]
        # First lap over the 4 banks opens rows; everything after hits.
        assert kinds[:4] == ["closed"] * 4
        assert all(k == "hit" for k in kinds[8:])

    def test_random_far_accesses_conflict(self):
        m = model()
        m.access(0, 0)
        m.access(16 * 4, 1000)
        m.access(32 * 4, 2000)
        assert m.row_conflicts == 2
