"""Unit and property tests for the event-driven resource schedulers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.ports import BankScheduler, PortScheduler, SlotPool


class TestPortScheduler:
    def test_single_port_serializes(self):
        p = PortScheduler(1)
        assert p.acquire(0, 3) == 0
        assert p.acquire(0, 3) == 3
        assert p.acquire(0, 3) == 6

    def test_two_ports_parallel(self):
        p = PortScheduler(2)
        assert p.acquire(0, 3) == 0
        assert p.acquire(0, 3) == 0
        assert p.acquire(0, 3) == 3

    def test_idle_port_grants_at_arrival(self):
        p = PortScheduler(1)
        p.acquire(0, 3)
        assert p.acquire(100, 3) == 100

    def test_mean_wait(self):
        p = PortScheduler(1)
        p.acquire(0, 4)
        p.acquire(0, 4)  # waits 4
        assert p.mean_wait == pytest.approx(2.0)

    def test_rejects_zero_occupancy(self):
        with pytest.raises(ValueError):
            PortScheduler(1).acquire(0, 0)

    def test_rejects_zero_ports(self):
        with pytest.raises(ValueError):
            PortScheduler(0)

    def test_reset(self):
        p = PortScheduler(1)
        p.acquire(0, 10)
        p.reset()
        assert p.acquire(0, 1) == 0
        assert p.grants == 1

    @given(
        st.integers(min_value=1, max_value=4),
        st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=50),
    )
    @settings(max_examples=60, deadline=None)
    def test_grants_monotone_for_monotone_arrivals(self, n_ports, deltas):
        p = PortScheduler(n_ports)
        arrival = 0
        last_grant = -1
        for d in deltas:
            arrival += d
            grant = p.acquire(arrival, 3)
            assert grant >= arrival
            assert grant >= last_grant
            last_grant = grant

    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_throughput_bounded_by_ports(self, deltas):
        # With occupancy k, at most n_ports grants can start in any k-cycle
        # window; check the aggregate bound over the whole run.
        n_ports, occ = 2, 3
        p = PortScheduler(n_ports)
        arrival = 0
        grants = []
        for d in deltas:
            arrival += d
            grants.append(p.acquire(arrival, occ))
        span = max(grants) - min(grants) + occ
        assert len(grants) <= n_ports * (span / occ) + n_ports


class TestBankScheduler:
    def test_bank_mapping(self):
        b = BankScheduler(4)
        assert b.bank_of(0) == 0
        assert b.bank_of(5) == 1
        assert b.bank_of(7) == 3

    def test_different_banks_parallel(self):
        b = BankScheduler(4)
        assert b.acquire(0, 0, 8) == 0
        assert b.acquire(1, 0, 8) == 0

    def test_same_bank_serializes(self):
        b = BankScheduler(4)
        assert b.acquire(0, 0, 8) == 0
        assert b.acquire(4, 0, 8) == 8  # block 4 -> bank 0

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            BankScheduler(3)

    def test_reset(self):
        b = BankScheduler(2)
        b.acquire(0, 0, 100)
        b.reset()
        assert b.acquire(0, 0, 1) == 0


class TestSlotPool:
    def test_admits_up_to_capacity_immediately(self):
        s = SlotPool(2)
        assert s.admit(0) == 0
        s.hold(10)
        assert s.admit(0) == 0
        s.hold(20)

    def test_full_pool_delays_admission(self):
        s = SlotPool(1)
        assert s.admit(0) == 0
        s.hold(10)
        assert s.admit(5) == 10

    def test_expired_holds_free_slots(self):
        s = SlotPool(1)
        s.admit(0)
        s.hold(10)
        assert s.admit(15) == 15

    def test_occupancy_at(self):
        s = SlotPool(3)
        for r in (5, 10, 15):
            s.admit(0)
            s.hold(r)
        assert s.occupancy_at(0) == 3
        assert s.occupancy_at(7) == 2
        assert s.occupancy_at(20) == 0

    def test_peak_occupancy(self):
        s = SlotPool(3)
        for r in (5, 10):
            s.admit(0)
            s.hold(r)
        assert s.peak_occupancy == 2

    def test_over_capacity_hold_raises(self):
        s = SlotPool(1)
        s.admit(0)
        s.hold(10)
        with pytest.raises(RuntimeError):
            s.hold(20)  # hold without matching admit

    @given(st.lists(st.tuples(
        st.integers(min_value=0, max_value=3),     # inter-arrival delta
        st.integers(min_value=1, max_value=30),    # hold duration
    ), min_size=1, max_size=80))
    @settings(max_examples=50, deadline=None)
    def test_never_exceeds_capacity(self, reqs):
        cap = 3
        s = SlotPool(cap)
        arrival = 0
        intervals = []
        for delta, dur in reqs:
            arrival += delta
            grant = s.admit(arrival)
            s.hold(grant + dur)
            intervals.append((grant, grant + dur))
        # At every grant instant, at most `cap` intervals overlap.
        for t, _ in intervals:
            live = sum(1 for g, r in intervals if g <= t < r)
            assert live <= cap
