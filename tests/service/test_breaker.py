"""Circuit breaker state machine, driven by a fake clock."""

import pytest

from repro.runtime.errors import (
    ConfigError,
    EvaluationTimeout,
    MeasurementError,
    WorkerCrashed,
)
from repro.service.breaker import (
    BreakerConfig,
    CircuitBreaker,
    is_infrastructure_failure,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def _breaker(**kwargs):
    defaults = dict(failure_threshold=3, reset_timeout_s=1.0, half_open_probes=1)
    defaults.update(kwargs)
    clock = FakeClock()
    return CircuitBreaker(BreakerConfig(**defaults), clock=clock), clock


class TestTripping:
    def test_trips_only_on_consecutive_failures(self):
        breaker, _ = _breaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # streak broken
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 1

    def test_open_blocks_until_reset_timeout(self):
        breaker, clock = _breaker(reset_timeout_s=2.0)
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        assert breaker.retry_after_s() == pytest.approx(2.0)
        clock.advance(1.0)
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.allow()  # half-open probe
        assert breaker.state == CircuitBreaker.HALF_OPEN


class TestHalfOpen:
    def _opened(self):
        breaker, clock = _breaker(reset_timeout_s=1.0, half_open_probes=1)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.0)
        return breaker, clock

    def test_probe_budget_is_bounded(self):
        breaker, _ = self._opened()
        assert breaker.allow()  # the one probe
        assert not breaker.allow()  # a second concurrent probe is refused

    def test_probe_success_closes(self):
        breaker, _ = self._opened()
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow() and breaker.allow()  # unlimited again

    def test_probe_failure_reopens_and_waits_again(self):
        breaker, clock = self._opened()
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.trips == 2
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.allow()  # a fresh probe after the full wait


class TestClassification:
    @pytest.mark.parametrize("error, infra", [
        (WorkerCrashed("died"), True),
        (EvaluationTimeout("deadline"), True),
        (MeasurementError("bad stats"), False),
        (ConfigError("bad knob"), False),
        (None, False),
    ])
    def test_is_infrastructure_failure(self, error, infra):
        assert is_infrastructure_failure(error) is infra

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ConfigError):
            BreakerConfig(reset_timeout_s=0)
        with pytest.raises(ConfigError):
            BreakerConfig(half_open_probes=0)
