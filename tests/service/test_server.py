"""End-to-end service tests over a real localhost socket.

Each test boots an :class:`EvaluationServer` on an ephemeral port inside
its own ``asyncio.run`` loop, talks the real wire protocol through
:class:`ServiceClient`, and asserts the degradation contract: results
bit-identical to direct engine runs, explicit backpressure under
saturation, client disconnects without job loss, graceful drain.
"""

import asyncio
import json

from repro.runtime.evaluate import EvaluationRequest, EvaluationRuntime
from repro.runtime.pool import PoolConfig, RetryPolicy
from repro.service.admission import AdmissionConfig
from repro.service.client import ServiceClient
from repro.service.protocol import JobStatus, encode_message
from repro.service.scheduler import SchedulerConfig
from repro.service.server import EvaluationServer, ServerConfig
from repro.sim.params import table1_config
from repro.workloads.generators import working_set_addresses
from repro.workloads.trace import Trace


def _trace(n=250, seed=13):
    return Trace.from_memory_addresses(
        working_set_addresses(n, footprint_bytes=32 * 1024, seed=seed),
        compute_per_access=1, name="srv", seed=seed,
    )


def _server(journal=None, cache=None, **scheduler_kwargs):
    defaults = dict(
        max_batch=2,
        idle_poll_s=0.01,
        admission=AdmissionConfig(max_queued_total=32, max_queued_per_client=32),
    )
    defaults.update(scheduler_kwargs)
    runtime = EvaluationRuntime(
        pool=PoolConfig(max_workers=0, retry=RetryPolicy(max_retries=0)),
        journal=journal, cache=cache,
    )
    return EvaluationServer(
        runtime,
        config=ServerConfig(scheduler=SchedulerConfig(**defaults)),
    )


class TestEndToEnd:
    def test_results_bit_identical_to_direct_engine(self):
        async def main():
            trace = _trace()
            async with _server() as server:
                async with ServiceClient(
                    "127.0.0.1", server.port, client_id="c1"
                ) as client:
                    digest = await client.register_trace(trace)
                    for i, label in enumerate(["A", "B", "C"]):
                        await client.submit_with_retry(
                            f"job-{label}", trace_digest=digest,
                            config={"label": label}, seed=i,
                        )
                    replies = {
                        label: await client.wait(f"job-{label}", timeout_s=60)
                        for label in ["A", "B", "C"]
                    }
            # Recompute directly through the runtime (same engine path the
            # server uses) and compare dictionaries exactly.
            for i, label in enumerate(["A", "B", "C"]):
                reply = replies[label]
                assert reply["status"] == JobStatus.DONE
                direct = EvaluationRuntime().evaluate(EvaluationRequest(
                    key="direct", config=table1_config(label),
                    trace=trace, seed=i,
                ))
                assert reply["stats"] == direct.to_dict(), label

        asyncio.run(main())

    def test_concurrent_clients_all_served(self):
        async def main():
            trace = _trace()
            async with _server() as server:
                async def one_client(name, n_jobs):
                    async with ServiceClient(
                        "127.0.0.1", server.port, client_id=name
                    ) as client:
                        digest = await client.register_trace(trace)
                        for i in range(n_jobs):
                            await client.submit_with_retry(
                                f"{name}-{i}", trace_digest=digest,
                                config={"label": "A"}, seed=hash(name) % 100 + i,
                            )
                        return [
                            (await client.wait(f"{name}-{i}", timeout_s=60))["status"]
                            for i in range(n_jobs)
                        ]

                outcomes = await asyncio.gather(
                    one_client("alpha", 3),
                    one_client("beta", 3),
                    one_client("gamma", 2),
                )
            assert all(
                status == JobStatus.DONE
                for statuses in outcomes for status in statuses
            )

        asyncio.run(main())

    def test_protocol_errors_answered_not_fatal(self):
        async def main():
            async with _server() as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(b"this is not json\n")
                await writer.drain()
                reply = json.loads(await asyncio.wait_for(
                    reader.readline(), timeout=10))
                assert reply["ok"] is False and reply["code"] == "protocol"
                # The connection survives and still answers valid requests.
                writer.write(encode_message({"op": "ping"}))
                await writer.drain()
                reply = json.loads(await asyncio.wait_for(
                    reader.readline(), timeout=10))
                assert reply["ok"] is True
                writer.write(encode_message({"op": "warp"}))
                await writer.drain()
                reply = json.loads(await asyncio.wait_for(
                    reader.readline(), timeout=10))
                assert reply["ok"] is False and "unknown op" in reply["error"]
                writer.close()
                await writer.wait_closed()

        asyncio.run(main())

    def test_unknown_digest_and_unknown_job(self):
        async def main():
            async with _server() as server:
                async with ServiceClient(
                    "127.0.0.1", server.port, client_id="c1"
                ) as client:
                    reply = await client.submit(
                        "j1", trace_digest="ff" * 32, config={"label": "A"}
                    )
                    assert reply["ok"] is False and reply["code"] == "protocol"
                    reply = await client.status("ghost")
                    assert reply["ok"] is False
                    assert reply["code"] == "unknown_job"

        asyncio.run(main())


class TestBackpressure:
    def test_saturation_rejects_with_retry_after_then_recovers(self):
        async def main():
            trace = _trace()
            async with _server(
                admission=AdmissionConfig(max_queued_total=2,
                                          max_queued_per_client=2),
                max_batch=1,
            ) as server:
                async with ServiceClient(
                    "127.0.0.1", server.port, client_id="flood"
                ) as client:
                    digest = await client.register_trace(trace)
                    raw = [
                        await client.submit(
                            f"f-{i}", trace_digest=digest,
                            config={"label": "A"}, seed=i,
                        )
                        for i in range(8)
                    ]
                    rejected = [r for r in raw if not r["ok"]]
                    assert rejected, "flooding past the queue bound must reject"
                    assert all(r["code"] == "rejected" for r in rejected)
                    assert all(r["retry_after_s"] > 0 for r in rejected)
                    # With retry-after honored, the same jobs all complete.
                    for i in range(8):
                        reply = await client.submit_with_retry(
                            f"f-{i}", trace_digest=digest,
                            config={"label": "A"}, seed=i,
                        )
                        assert reply["ok"], reply
                    for i in range(8):
                        done = await client.wait(f"f-{i}", timeout_s=60)
                        assert done["status"] == JobStatus.DONE
                    assert client.rejections > 0

        asyncio.run(main())


class TestDisconnectAndDrain:
    def test_client_disconnect_does_not_lose_the_job(self):
        async def main():
            trace = _trace()
            async with _server() as server:
                digest = trace.content_digest()
                first = ServiceClient("127.0.0.1", server.port,
                                      client_id="dropper")
                await first.connect()
                await first.register_trace(trace)
                reply = await first.submit(
                    "orphan", trace_digest=digest, config={"label": "B"},
                    seed=3,
                )
                assert reply["ok"]
                # Vanish without waiting — the chaos matrix's disconnect.
                first._writer.transport.abort()
                first._writer = first._reader = None

                async with ServiceClient(
                    "127.0.0.1", server.port, client_id="heir"
                ) as second:
                    reply = await second.wait("orphan", timeout_s=60)
                    assert reply["status"] == JobStatus.DONE
                    direct = EvaluationRuntime().evaluate(EvaluationRequest(
                        key="direct", config=table1_config("B"),
                        trace=trace, seed=3,
                    ))
                    assert reply["stats"] == direct.to_dict()

        asyncio.run(main())

    def test_drain_journals_survive_restart(self, tmp_path):
        async def main():
            trace = _trace()
            journal_path = tmp_path / "service.jsonl"
            async with _server(journal=journal_path) as server:
                async with ServiceClient(
                    "127.0.0.1", server.port, client_id="c1"
                ) as client:
                    digest = await client.register_trace(trace)
                    for i in range(3):
                        await client.submit_with_retry(
                            f"j-{i}", trace_digest=digest,
                            config={"label": "A"}, seed=i,
                        )
                    for i in range(3):
                        assert (await client.wait(
                            f"j-{i}", timeout_s=60))["status"] == JobStatus.DONE
            # Server drained and closed.  A restarted server with the same
            # journal replays every result without simulating.
            async with _server(journal=journal_path) as reborn:
                async with ServiceClient(
                    "127.0.0.1", reborn.port, client_id="c2"
                ) as client:
                    digest = await client.register_trace(trace)
                    for i in range(3):
                        await client.submit_with_retry(
                            f"again-{i}", trace_digest=digest,
                            config={"label": "A"}, seed=i,
                        )
                    for i in range(3):
                        reply = await client.wait(f"again-{i}", timeout_s=60)
                        assert reply["status"] == JobStatus.DONE
                        assert reply["source"] == "journal"
                assert reborn.runtime.counters.simulations == 0
                assert reborn.runtime.counters.journal_hits == 3

        asyncio.run(main())

    def test_draining_server_refuses_new_submissions(self):
        async def main():
            trace = _trace()
            server = _server()
            await server.start()
            try:
                async with ServiceClient(
                    "127.0.0.1", server.port, client_id="c1"
                ) as client:
                    digest = await client.register_trace(trace)
                    await server.scheduler.drain(timeout_s=10)
                    reply = await client.submit(
                        "late", trace_digest=digest, config={"label": "A"}
                    )
                    assert reply["ok"] is False
                    assert reply["code"] == "draining"
                    assert (await client.ping())["draining"] is True
            finally:
                await server.stop()

        asyncio.run(main())
