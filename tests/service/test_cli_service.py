"""`repro serve` / `repro submit` end to end, across real processes."""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import build_parser, main

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 0 and args.workers == 0
        assert args.max_queued == 64

    def test_submit_requires_port(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit"])

    def test_submit_options(self):
        args = build_parser().parse_args(
            ["submit", "--port", "4000", "--configs", "A,B"]
        )
        assert args.port == 4000 and args.configs == "A,B"


@pytest.fixture
def serve_process(tmp_path):
    """A `repro serve` subprocess on an ephemeral port; yields the port."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--journal", str(tmp_path / "serve.jsonl")],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True,
    )
    try:
        banner = proc.stdout.readline()
        assert banner.startswith("serving on 127.0.0.1:"), banner
        yield proc, int(banner.rsplit(":", 1)[1])
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=30)
        proc.stdout.close()
        proc.stderr.close()


class TestServeSubmit:
    def test_submit_round_trip_and_graceful_drain(self, serve_process, capsys):
        proc, port = serve_process
        rc = main([
            "submit", "--port", str(port), "--benchmark", "bzip2",
            "--configs", "A,B", "--accesses", "2000",
        ])
        assert rc == 0
        results = json.loads(capsys.readouterr().out)
        assert set(results) == {"401.bzip2:A:7", "401.bzip2:B:7"}
        for reply in results.values():
            assert reply["status"] == "done"
            assert reply["stats"]["l1"]["accesses"] > 0
        # SIGINT drains and exits 0 (not 130): the handler owns shutdown.
        proc.send_signal(signal.SIGINT)
        assert proc.wait(timeout=30) == 0
        assert "drained:" in proc.stderr.read()

    def test_submit_without_server_exits_2(self, capsys):
        rc = main([
            "submit", "--port", "1", "--benchmark", "bzip2",
            "--configs", "A", "--accesses", "1000", "--timeout", "2",
        ])
        assert rc == 2
        assert capsys.readouterr().err.startswith("error:")
