"""Wire protocol: framing, codecs, submit validation."""

import json

import pytest

from repro.service.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    config_from_wire,
    config_to_wire,
    decode_message,
    encode_message,
    parse_submit,
    trace_from_wire,
    trace_to_wire,
)
from repro.sim.params import MachineConfig, table1_config
from repro.workloads.generators import working_set_addresses
from repro.workloads.trace import Trace


def _trace(n=64, seed=5):
    return Trace.from_memory_addresses(
        working_set_addresses(n, footprint_bytes=16 * 1024, seed=seed),
        compute_per_access=1, name="wire", seed=seed,
    )


class TestFraming:
    def test_roundtrip(self):
        msg = {"op": "ping", "n": 3, "nested": {"a": [1, 2]}}
        assert decode_message(encode_message(msg)) == msg

    def test_encode_is_one_line(self):
        line = encode_message({"op": "ping"})
        assert line.endswith(b"\n") and line.count(b"\n") == 1

    @pytest.mark.parametrize("bad", [b"{not json}\n", b"[1,2,3]\n", b"\xff\xfe\n"])
    def test_malformed_frames_raise(self, bad):
        with pytest.raises(ProtocolError):
            decode_message(bad)

    def test_oversized_frame_rejected(self):
        with pytest.raises(ProtocolError):
            encode_message({"blob": "x" * MAX_LINE_BYTES})


class TestConfigCodec:
    def test_label_resolves_table1(self):
        config = config_from_wire({"label": "C"})
        assert config.knob_summary() == table1_config("C").knob_summary()

    def test_knobs_roundtrip(self):
        original = MachineConfig().with_knobs(mshr_count=8, rob_size=128)
        config = config_from_wire(config_to_wire(original))
        assert config.cache_key() == original.cache_key()

    @pytest.mark.parametrize("bad", [
        None, [], {}, {"label": "Z"}, {"knobs": {"warp_drive": 1}},
        {"knobs": {"mshr_count": "four"}},
    ])
    def test_bad_configs_raise(self, bad):
        with pytest.raises(ProtocolError):
            config_from_wire(bad)


class TestTraceCodec:
    def test_roundtrip_preserves_digest(self):
        trace = _trace()
        assert trace_from_wire(trace_to_wire(trace)).content_digest() == \
            trace.content_digest()

    def test_depends_column_survives(self):
        import numpy as np

        trace = Trace(
            is_mem=[True, False, True], address=[0, 0, 64],
            is_load=[True, False, True], depends=[False, False, True],
        )
        back = trace_from_wire(trace_to_wire(trace))
        assert back.depends is not None and bool(np.all(back.depends == trace.depends))
        assert back.content_digest() == trace.content_digest()

    def test_bad_trace_raises(self):
        with pytest.raises(ProtocolError):
            trace_from_wire({"is_mem": [True], "address": [1]})  # no is_load


class TestParseSubmit:
    def _base(self):
        return {
            "op": "submit", "job_id": "j1", "client": "c1",
            "config": {"label": "A"}, "trace_digest": "ab" * 32,
        }

    def test_minimal_submit(self):
        spec = parse_submit(self._base())
        assert spec.job_id == "j1" and spec.client == "c1"
        assert spec.seed == 0 and spec.warm is True
        assert spec.trace is None and spec.trace_digest == "ab" * 32

    def test_inline_trace_accepted(self):
        msg = self._base()
        del msg["trace_digest"]
        msg["trace"] = trace_to_wire(_trace())
        assert parse_submit(msg).trace is not None

    @pytest.mark.parametrize("mutate", [
        lambda m: m.pop("job_id"),
        lambda m: m.update(job_id=""),
        lambda m: m.update(job_id=7),
        lambda m: m.pop("trace_digest"),  # neither digest nor inline
        lambda m: m.update(trace=trace_to_wire(_trace())),  # both
        lambda m: m.update(seed="zero"),
        lambda m: m.update(seed=True),
        lambda m: m.update(warm=1),
        lambda m: m.pop("config"),
    ])
    def test_invalid_submits_raise(self, mutate):
        msg = self._base()
        mutate(msg)
        with pytest.raises(ProtocolError):
            parse_submit(msg)

    def test_wire_form_is_json_clean(self):
        # Everything parse_submit consumes must round-trip through JSON.
        msg = self._base()
        assert parse_submit(json.loads(json.dumps(msg))).job_id == "j1"
