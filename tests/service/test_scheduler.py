"""Scheduler behavior: terminal statuses, breaker integration, drain.

No pytest-asyncio in the toolchain — each test drives its own event loop
with ``asyncio.run``.
"""

import asyncio

from repro.runtime.errors import WorkerCrashed
from repro.runtime.evalcache import evaluation_cache_key
from repro.runtime.evaluate import EvaluationRequest, EvaluationRuntime, _simulate_job
from repro.runtime.pool import PoolConfig, RetryPolicy
from repro.service.admission import AdmissionConfig
from repro.service.breaker import BreakerConfig, CircuitBreaker
from repro.service.protocol import TERMINAL_STATUSES, JobStatus
from repro.service.scheduler import JobRecord, JobScheduler, SchedulerConfig
from repro.sim.params import MachineConfig
from repro.workloads.generators import working_set_addresses
from repro.workloads.trace import Trace


def _trace(n=200, seed=7):
    return Trace.from_memory_addresses(
        working_set_addresses(n, footprint_bytes=32 * 1024, seed=seed),
        compute_per_access=1, name="sched", seed=seed,
    )


def _record(job_id, trace, *, client="c1", seed=0):
    config = MachineConfig()
    request = EvaluationRequest(
        key=evaluation_cache_key(trace, config, seed, True),
        config=config, trace=trace, seed=seed,
    )
    return JobRecord(job_id=job_id, client=client, request=request)


def _crash_below_seed_3(config, trace, seed, warm, faults, label, _attempt=1):
    """Job body raising an infrastructure failure for seeds 0..2."""
    if seed < 3:
        raise WorkerCrashed(f"synthetic crash for seed {seed}")
    return _simulate_job(config, trace, seed, warm, faults, label, _attempt)


def _inline_runtime(**kwargs):
    return EvaluationRuntime(
        pool=PoolConfig(max_workers=0, retry=RetryPolicy(max_retries=0)),
        **kwargs,
    )


def _scheduler_config(**kwargs):
    defaults = dict(
        max_batch=2,
        idle_poll_s=0.01,
        admission=AdmissionConfig(max_queued_total=16, max_queued_per_client=16),
        breaker=BreakerConfig(failure_threshold=3, reset_timeout_s=0.05),
    )
    defaults.update(kwargs)
    return SchedulerConfig(**defaults)


async def _wait_all(scheduler, job_ids, timeout_s=30.0):
    for job_id in job_ids:
        record = await scheduler.wait_done(job_id, timeout_s)
        assert record is not None and record.status in TERMINAL_STATUSES, (
            job_id, None if record is None else record.status
        )


class TestTerminalStatuses:
    def test_every_submitted_job_terminates(self):
        async def main():
            trace = _trace()
            scheduler = JobScheduler(_inline_runtime(), _scheduler_config())
            scheduler.start()
            ids = []
            for i in range(5):
                record = _record(f"job-{i}", trace, seed=10 + i)
                status, retry = scheduler.submit(record)
                assert status == JobStatus.QUEUED and retry is None
                ids.append(record.job_id)
            await _wait_all(scheduler, ids)
            assert all(
                scheduler.status(j).status == JobStatus.DONE for j in ids
            )
            assert scheduler.status("job-0").stats_dict is not None
            await scheduler.drain()

        asyncio.run(main())

    def test_resubmit_same_id_is_idempotent(self):
        async def main():
            trace = _trace()
            scheduler = JobScheduler(_inline_runtime(), _scheduler_config())
            scheduler.start()
            record = _record("dup", trace, seed=10)
            assert scheduler.submit(record)[0] == JobStatus.QUEUED
            await _wait_all(scheduler, ["dup"])
            # Resubmitting after completion reports the terminal status and
            # runs nothing new.
            simulations = scheduler.runtime.counters.simulations
            status, _ = scheduler.submit(_record("dup", trace, seed=10))
            assert status == JobStatus.DONE
            await asyncio.sleep(0.05)
            assert scheduler.runtime.counters.simulations == simulations
            await scheduler.drain()

        asyncio.run(main())

    def test_identical_design_points_share_one_simulation(self):
        async def main():
            trace = _trace()
            scheduler = JobScheduler(_inline_runtime(), _scheduler_config())
            scheduler.start()
            a, b = _record("a", trace, seed=10), _record("b", trace, seed=10,
                                                         client="c2")
            scheduler.submit(a)
            scheduler.submit(b)
            await _wait_all(scheduler, ["a", "b"])
            assert a.status == b.status == JobStatus.DONE
            assert a.stats_dict == b.stats_dict
            await scheduler.drain()

        asyncio.run(main())


class TestBreakerIntegration:
    def test_consecutive_crashes_trip_then_probe_recovers(self):
        async def main():
            trace = _trace()
            runtime = _inline_runtime(job_fn=_crash_below_seed_3)
            scheduler = JobScheduler(
                runtime,
                _scheduler_config(
                    max_batch=1,
                    breaker=BreakerConfig(failure_threshold=3,
                                          reset_timeout_s=0.05),
                ),
            )
            scheduler.start()
            for i in range(3):  # seeds 0..2 crash
                scheduler.submit(_record(f"bad-{i}", trace, seed=i))
            await _wait_all(scheduler, [f"bad-{i}" for i in range(3)])
            assert scheduler.breaker.state == CircuitBreaker.OPEN
            assert scheduler.breaker.trips == 1
            for i in range(3):
                record = scheduler.status(f"bad-{i}")
                assert record.status == JobStatus.FAILED
                assert record.error_kind == "WorkerCrashed"
                assert record.retryable is True
            # A good job queued while open must still run once the breaker
            # half-opens; its success closes the breaker.
            good = _record("good", trace, seed=10)
            assert scheduler.submit(good)[0] == JobStatus.QUEUED
            await _wait_all(scheduler, ["good"])
            assert good.status == JobStatus.DONE
            assert scheduler.breaker.state == CircuitBreaker.CLOSED
            await scheduler.drain()

        asyncio.run(main())

    def test_job_fault_failures_do_not_trip(self):
        async def main():
            trace = _trace()
            # ConfigError-style failures: submit requests whose evaluation
            # raises a non-infrastructure error via a poisoned config.
            runtime = _inline_runtime(job_fn=_raise_measurement)
            scheduler = JobScheduler(
                runtime, _scheduler_config(max_batch=1)
            )
            scheduler.start()
            for i in range(4):
                scheduler.submit(_record(f"bad-{i}", trace, seed=i))
            await _wait_all(scheduler, [f"bad-{i}" for i in range(4)])
            assert scheduler.breaker.state == CircuitBreaker.CLOSED
            assert scheduler.breaker.trips == 0
            await scheduler.drain()

        asyncio.run(main())


def _raise_measurement(config, trace, seed, warm, faults, label, _attempt=1):
    from repro.runtime.errors import MeasurementError

    raise MeasurementError("synthetic unusable measurement")


def _slow_simulate(config, trace, seed, warm, faults, label, _attempt=1):
    import time

    time.sleep(0.25)
    return _simulate_job(config, trace, seed, warm, faults, label, _attempt)


class TestDrain:
    def test_drain_finishes_inflight_and_cancels_queued(self):
        async def main():
            trace = _trace()
            runtime = _inline_runtime(
                job_fn=_slow_simulate, journal=None
            )
            scheduler = JobScheduler(
                runtime, _scheduler_config(max_batch=1)
            )
            scheduler.start()
            ids = []
            for i in range(4):
                record = _record(f"job-{i}", trace, seed=10 + i)
                scheduler.submit(record)
                ids.append(record.job_id)
            await asyncio.sleep(0.1)  # let the first batch enter the pool
            await scheduler.drain(timeout_s=30.0)
            statuses = [scheduler.status(j).status for j in ids]
            # Everything is terminal; at least one ran to completion and at
            # least one was explicitly cancelled (not silently dropped).
            assert all(s in TERMINAL_STATUSES for s in statuses)
            assert JobStatus.DONE in statuses
            assert JobStatus.CANCELLED in statuses
            cancelled = [
                scheduler.status(j) for j in ids
                if scheduler.status(j).status == JobStatus.CANCELLED
            ]
            assert all(r.retryable for r in cancelled)
            # Post-drain submissions are refused.
            status, _ = scheduler.submit(_record("late", trace, seed=99))
            assert status == JobStatus.REJECTED

        asyncio.run(main())
