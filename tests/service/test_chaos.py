"""Deterministic chaos injection: worker death, store damage, recovery."""

import asyncio

from repro.runtime.errors import WorkerCrashed
from repro.runtime.evalcache import EvaluationCache, evaluation_cache_key
from repro.runtime.evaluate import EvaluationRequest, EvaluationRuntime
from repro.runtime.journal import CheckpointJournal
from repro.runtime.pool import PoolConfig, RetryPolicy
from repro.service.chaos import ChaosConfig, StoreChaos, make_chaos_job_fn
from repro.sim.params import MachineConfig
from repro.workloads.generators import working_set_addresses
from repro.workloads.trace import Trace


def _trace(n=200, seed=17):
    return Trace.from_memory_addresses(
        working_set_addresses(n, footprint_bytes=32 * 1024, seed=seed),
        compute_per_access=1, name="chaos", seed=seed,
    )


def _requests(trace, n):
    return [
        EvaluationRequest(
            key=evaluation_cache_key(trace, MachineConfig(), i, True),
            config=MachineConfig(), trace=trace, seed=i,
        )
        for i in range(n)
    ]


class TestWorkerChaos:
    def test_zero_rates_are_bit_identical_to_clean(self):
        trace = _trace()
        chaotic = EvaluationRuntime(
            pool=PoolConfig(max_workers=0),
            job_fn=make_chaos_job_fn(ChaosConfig(seed=1)),
        )
        clean = EvaluationRuntime(pool=PoolConfig(max_workers=0))
        reqs = _requests(trace, 2)
        a = chaotic.evaluate_many(reqs)
        b = clean.evaluate_many(reqs)
        for key in b:
            assert a[key].to_dict() == b[key].to_dict()

    def test_certain_crash_exhausts_retries_with_taxonomy(self):
        trace = _trace(120)
        runtime = EvaluationRuntime(
            pool=PoolConfig(max_workers=1, timeout_s=60,
                            retry=RetryPolicy(max_retries=1,
                                              backoff_base=0.01)),
            job_fn=make_chaos_job_fn(ChaosConfig(crash_rate=1.0, seed=3)),
        )
        outcomes = runtime.evaluate_many_detailed(_requests(trace, 1))
        (outcome,) = outcomes.values()
        assert not outcome.ok
        assert isinstance(outcome.error, WorkerCrashed)
        assert outcome.crashes == 2  # initial attempt + one retry
        assert runtime.counters.worker_restarts >= 2

    def test_partial_crash_rate_recovers_bit_identical(self):
        trace = _trace(150)
        reqs = _requests(trace, 4)
        chaotic = EvaluationRuntime(
            pool=PoolConfig(max_workers=2, timeout_s=60,
                            retry=RetryPolicy(max_retries=4,
                                              backoff_base=0.01)),
            job_fn=make_chaos_job_fn(ChaosConfig(crash_rate=0.4, seed=2)),
        )
        survived = chaotic.evaluate_many(reqs)
        # The seeded draws must actually kill at least one worker — a chaos
        # test that injects nothing proves nothing.
        assert chaotic.counters.worker_restarts >= 1
        clean = EvaluationRuntime(pool=PoolConfig(max_workers=0))
        baseline = clean.evaluate_many(reqs)
        for key in baseline:
            assert survived[key].to_dict() == baseline[key].to_dict()


class TestStoreChaos:
    def test_cache_corruption_quarantines_and_recomputes(self, tmp_path):
        trace = _trace()
        cache = EvaluationCache(tmp_path / "c")
        runtime = EvaluationRuntime(pool=PoolConfig(max_workers=0), cache=cache)
        reqs = _requests(trace, 2)
        baseline = runtime.evaluate_many(reqs)
        chaos = StoreChaos(
            ChaosConfig(cache_corrupt_rate=1.0, seed=5), cache=cache
        )
        chaos.maybe_damage()
        assert chaos.cache_corruptions == 1
        # A fresh runtime over the damaged cache must quarantine the torn
        # shard, recompute it, and agree with the baseline exactly.
        recovered_rt = EvaluationRuntime(
            pool=PoolConfig(max_workers=0), cache=EvaluationCache(tmp_path / "c")
        )
        recovered = recovered_rt.evaluate_many(reqs)
        assert recovered_rt.cache.quarantined == 1
        assert recovered_rt.counters.simulations == 1
        assert recovered_rt.counters.cache_hits == 1
        for key in baseline:
            assert recovered[key].to_dict() == baseline[key].to_dict()

    def test_journal_truncation_drops_only_the_tail(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j.jsonl")
        for i in range(3):
            journal.put(f"k{i}", {"value": i})
        chaos = StoreChaos(
            ChaosConfig(journal_truncate_rate=1.0, seed=7), journal=journal
        )
        chaos.maybe_damage()
        assert chaos.journal_truncations == 1
        reloaded = CheckpointJournal(journal.path)
        assert reloaded.dropped_lines <= 1
        assert set(reloaded.keys()) >= {"k0", "k1"}
        # The damaged journal stays appendable (tail was re-synced).
        journal.put("k3", {"value": 3})
        again = CheckpointJournal(journal.path)
        assert again.get("k3") == {"value": 3}
        assert again.get("k0") == {"value": 0}

    def test_store_chaos_is_seed_deterministic(self, tmp_path):
        def run(seed, tag):
            journal = CheckpointJournal(tmp_path / f"j-{tag}-{seed}.jsonl")
            for i in range(4):
                journal.put(f"k{i}", {"value": i})
            chaos = StoreChaos(
                ChaosConfig(journal_truncate_rate=0.5, seed=seed),
                journal=journal,
            )
            for _ in range(6):
                chaos.maybe_damage()
            return chaos.journal_truncations, journal.path.read_bytes()

        first = run(11, "a")
        second = run(11, "b")
        assert first[0] == second[0]
        assert first[1] == second[1]


class TestServiceUnderWorkerChaos:
    def test_service_survives_crashing_workers_end_to_end(self):
        from repro.service.client import ServiceClient
        from repro.service.protocol import JobStatus
        from repro.service.scheduler import SchedulerConfig
        from repro.service.server import EvaluationServer, ServerConfig

        async def main():
            trace = _trace(150)
            runtime = EvaluationRuntime(
                pool=PoolConfig(max_workers=2, timeout_s=60,
                                retry=RetryPolicy(max_retries=4,
                                                  backoff_base=0.01)),
                job_fn=make_chaos_job_fn(ChaosConfig(crash_rate=0.3, seed=2)),
            )
            server = EvaluationServer(
                runtime,
                config=ServerConfig(
                    scheduler=SchedulerConfig(max_batch=4, idle_poll_s=0.01)
                ),
            )
            async with server:
                async with ServiceClient(
                    "127.0.0.1", server.port, client_id="c1",
                    timeout_s=120.0,
                ) as client:
                    digest = await client.register_trace(trace)
                    for i in range(4):
                        await client.submit_with_retry(
                            f"j-{i}", trace_digest=digest,
                            config={"label": "A"}, seed=i,
                        )
                    replies = [
                        await client.wait(f"j-{i}", timeout_s=120)
                        for i in range(4)
                    ]
            assert all(r["status"] == JobStatus.DONE for r in replies)
            assert runtime.counters.worker_restarts >= 1
            # Chaos survivors match a clean direct run bit for bit.
            from repro.sim.params import table1_config

            for i, reply in enumerate(replies):
                direct = EvaluationRuntime().evaluate(EvaluationRequest(
                    key="direct", config=table1_config("A"), trace=trace,
                    seed=i,
                ))
                assert reply["stats"] == direct.to_dict()

        asyncio.run(main())
