"""Admission control: bounds, backpressure hints, round-robin fairness."""

import pytest

from repro.runtime.errors import ConfigError
from repro.service.admission import AdmissionConfig, AdmissionController


def _controller(**kwargs):
    defaults = dict(max_queued_total=8, max_queued_per_client=4,
                    retry_after_s=0.05)
    defaults.update(kwargs)
    return AdmissionController(AdmissionConfig(**defaults))


class TestBounds:
    def test_global_cap_rejects_with_hint(self):
        ctrl = _controller(max_queued_total=2, max_queued_per_client=10)
        assert ctrl.try_admit("a", 1) is None
        assert ctrl.try_admit("b", 2) is None
        hint = ctrl.try_admit("c", 3)
        assert hint is not None and hint > 0
        assert ctrl.queued == 2 and ctrl.rejected == 1

    def test_per_client_cap_spares_other_clients(self):
        ctrl = _controller(max_queued_per_client=2)
        assert ctrl.try_admit("greedy", 1) is None
        assert ctrl.try_admit("greedy", 2) is None
        assert ctrl.try_admit("greedy", 3) is not None  # over its cap
        assert ctrl.try_admit("modest", 4) is None  # unaffected

    def test_hint_grows_with_fullness(self):
        ctrl = _controller(max_queued_total=4, max_queued_per_client=1)
        ctrl.try_admit("a", 1)
        early = ctrl.try_admit("a", 2)
        for client in ("b", "c", "d"):
            ctrl.try_admit(client, 0)
        late = ctrl.try_admit("e", 9)
        assert late > early

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            AdmissionConfig(max_queued_total=0)
        with pytest.raises(ConfigError):
            AdmissionConfig(retry_after_s=0)


class TestFairness:
    def test_round_robin_across_clients(self):
        ctrl = _controller()
        # Client "hog" enqueues 3 jobs before "late" enqueues 1.
        for i in range(3):
            assert ctrl.try_admit("hog", ("hog", i)) is None
        assert ctrl.try_admit("late", ("late", 0)) is None
        order = [ctrl.next() for _ in range(4)]
        # The late client is served second, not fourth.
        assert order.index(("late", 0)) == 1
        assert order == [("hog", 0), ("late", 0), ("hog", 1), ("hog", 2)]

    def test_interleave_of_three_clients(self):
        ctrl = _controller(max_queued_total=64, max_queued_per_client=16)
        for client in ("a", "b", "c"):
            for i in range(2):
                ctrl.try_admit(client, (client, i))
        order = [ctrl.next() for _ in range(6)]
        assert order == [("a", 0), ("b", 0), ("c", 0),
                         ("a", 1), ("b", 1), ("c", 1)]

    def test_next_on_empty_returns_none(self):
        ctrl = _controller()
        assert ctrl.next() is None
        ctrl.try_admit("a", 1)
        assert ctrl.next() == 1
        assert ctrl.next() is None
        assert len(ctrl) == 0

    def test_capacity_frees_as_jobs_dequeue(self):
        ctrl = _controller(max_queued_total=2, max_queued_per_client=2)
        ctrl.try_admit("a", 1)
        ctrl.try_admit("a", 2)
        assert ctrl.try_admit("a", 3) is not None
        ctrl.next()
        assert ctrl.try_admit("a", 3) is None  # capacity came back


class TestDrain:
    def test_drain_all_empties_every_queue(self):
        ctrl = _controller()
        for client in ("a", "b"):
            for i in range(3):
                ctrl.try_admit(client, (client, i))
        drained = ctrl.drain_all()
        assert len(drained) == 6
        assert ctrl.queued == 0 and ctrl.next() is None
