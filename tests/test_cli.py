"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.benchmark == "410.bwaves"
        assert args.config == "A"

    def test_walk_options(self):
        args = build_parser().parse_args(
            ["walk", "--delta", "99", "--no-trim"]
        )
        assert args.delta == 99.0
        assert args.no_trim


class TestCommands:
    def test_benchmarks_lists_profiles(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "429.mcf" in out
        assert "433.milc" in out

    def test_simulate_prints_layers_and_report(self, capsys):
        rc = main(["simulate", "--benchmark", "bzip2", "--config", "B",
                   "--accesses", "2000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "[L1]" in out
        assert "LPMR1" in out
        assert "C-AMAT" in out

    def test_simulate_default_machine(self, capsys):
        rc = main(["simulate", "--benchmark", "bzip2", "--config", "default",
                   "--accesses", "1000"])
        assert rc == 0
        assert "default" in capsys.readouterr().out

    def test_simulate_rejects_unknown_config(self):
        with pytest.raises(ValueError):
            main(["simulate", "--config", "Z", "--accesses", "1000"])

    def test_walk_prints_case_table(self, capsys):
        rc = main(["walk", "--accesses", "6000", "--delta", "150"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Case" in out
        assert "simulations spent" in out

    def test_sweep_prints_sizes(self, capsys):
        rc = main(["sweep", "--benchmark", "bzip2", "--accesses", "3000",
                   "--sizes", "4,64"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "L1-4KB" in out and "L1-64KB" in out
        assert "APC1" in out

    def test_diagnose_prints_findings(self, capsys):
        rc = main(["diagnose", "--benchmark", "mcf", "--config", "A",
                   "--accesses", "4000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "recommended techniques" in out
        assert "C-AMAT1" in out
