"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.benchmark == "410.bwaves"
        assert args.config == "A"

    def test_walk_options(self):
        args = build_parser().parse_args(
            ["walk", "--delta", "99", "--no-trim"]
        )
        assert args.delta == 99.0
        assert args.no_trim


class TestCommands:
    def test_benchmarks_lists_profiles(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "429.mcf" in out
        assert "433.milc" in out

    def test_simulate_prints_layers_and_report(self, capsys):
        rc = main(["simulate", "--benchmark", "bzip2", "--config", "B",
                   "--accesses", "2000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "[L1]" in out
        assert "LPMR1" in out
        assert "C-AMAT" in out

    def test_simulate_default_machine(self, capsys):
        rc = main(["simulate", "--benchmark", "bzip2", "--config", "default",
                   "--accesses", "1000"])
        assert rc == 0
        assert "default" in capsys.readouterr().out

    def test_simulate_rejects_unknown_config(self, capsys):
        rc = main(["simulate", "--config", "Z", "--accesses", "1000"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Z" in err

    def test_unknown_benchmark_exits_2(self, capsys):
        rc = main(["simulate", "--benchmark", "no.such.bench",
                   "--accesses", "1000"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "no.such.bench" in err
        assert "'" not in err.splitlines()[0][:8]  # no KeyError repr quoting

    def test_bad_sweep_sizes_exit_2(self, capsys):
        rc = main(["sweep", "--benchmark", "bzip2", "--accesses", "1000",
                   "--sizes", "4,banana"])
        assert rc == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_error_output_is_one_line(self, capsys):
        main(["simulate", "--config", "Z", "--accesses", "1000"])
        err = capsys.readouterr().err
        assert len(err.strip().splitlines()) == 1

    def test_walk_prints_case_table(self, capsys):
        rc = main(["walk", "--accesses", "6000", "--delta", "150"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Case" in out
        assert "simulations spent" in out

    def test_walk_with_fault_injection_succeeds(self, capsys):
        rc = main(["walk", "--accesses", "6000", "--delta", "150",
                   "--fault-rate", "0.1", "--fault-seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Case" in out
        assert "fault injection" in out

    def test_sweep_prints_sizes(self, capsys):
        rc = main(["sweep", "--benchmark", "bzip2", "--accesses", "3000",
                   "--sizes", "4,64"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "L1-4KB" in out and "L1-64KB" in out
        assert "APC1" in out

    def test_diagnose_prints_findings(self, capsys):
        rc = main(["diagnose", "--benchmark", "mcf", "--config", "A",
                   "--accesses", "4000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "recommended techniques" in out
        assert "C-AMAT1" in out
