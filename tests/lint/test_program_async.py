"""The async tier: kinded call graph, contexts, locks, and ASYNC rules."""

import textwrap
from pathlib import Path

from repro.lint.engine import lint_source
from repro.lint.program import run_program_lint
from repro.lint.program.baseline import (
    Baseline,
    BaselineEntry,
    fingerprint_violation,
)
from repro.lint.program.callgraph import (
    build_call_graph,
    classify_contexts,
)
from repro.lint.program.symbols import build_program

TESTS_LINT = Path(__file__).resolve().parent
ASYNC_FIXTURES = TESTS_LINT / "fixtures" / "async"


def lint_fixture(name, **kwargs):
    return run_program_lint([ASYNC_FIXTURES / name], **kwargs)


def write_tree(tmp_path, files):
    for rel, src in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(src), encoding="utf-8")
    return tmp_path


class TestAsyncFixtures:
    def test_blocking_call_on_loop_path_fires(self):
        result = lint_fixture("block_bad")
        assert [v.rule for v in result.violations] == ["ASYNC001"]
        finding = result.violations[0]
        assert finding.path.endswith("block_bad/store.py")
        assert "open()" in finding.message
        assert "handle -> load_state" in finding.message
        assert "to_thread" in finding.message

    def test_executor_hop_is_clean(self):
        result = lint_fixture("block_clean")
        assert result.ok, [v.format() for v in result.violations]

    def test_await_under_sync_lock_fires(self):
        result = lint_fixture("lockhold_bad")
        assert [v.rule for v in result.violations] == ["ASYNC002"]
        finding = result.violations[0]
        assert "_STATE_LOCK" in finding.message
        assert "async with" in finding.message

    def test_async_lock_async_with_is_clean(self):
        result = lint_fixture("lockhold_clean")
        assert result.ok, [v.format() for v in result.violations]

    def test_lock_order_cycle_fires(self):
        result = lint_fixture("order_bad")
        assert [v.rule for v in result.violations] == ["ASYNC003"]
        message = result.violations[0].message
        assert "_ALPHA" in message and "_BETA" in message
        assert "deadlock" in message

    def test_consistent_lock_order_is_clean(self):
        result = lint_fixture("order_clean")
        assert result.ok, [v.format() for v in result.violations]

    def test_orphaned_coroutines_fire_all_three_shapes(self):
        result = lint_fixture("orphan_bad")
        assert [v.rule for v in result.violations] == ["ASYNC004"] * 3
        messages = "\n".join(v.message for v in result.violations)
        assert "never awaited" in messages          # bare coroutine call
        assert "without keeping a reference" in messages  # bare create_task
        assert "'pending'" in messages              # dead assignment

    def test_awaited_and_tracked_tasks_are_clean(self):
        result = lint_fixture("orphan_clean")
        assert result.ok, [v.format() for v in result.violations]

    def test_loop_thread_shared_write_fires_at_global(self):
        result = lint_fixture("shared_bad")
        assert [v.rule for v in result.violations] == ["RACE003"]
        finding = result.violations[0]
        assert finding.path.endswith("shared_bad/counters.py")
        assert "_COMPLETED" in finding.message
        assert "note_loop_side" in finding.message
        assert "note_thread_side" in finding.message

    def test_lock_guarded_writers_are_clean(self):
        result = lint_fixture("shared_clean")
        assert result.ok, [v.format() for v in result.violations]


class TestEdgeKindsAndContexts:
    """The kinded call graph and context lattice on a miniature module."""

    def _build(self, tmp_path):
        write_tree(tmp_path, {
            "mini/__init__.py": "",
            "mini/app.py": """
                import asyncio

                from mini.helpers import compute, poll, sync_step

                async def main():
                    await poll()
                    asyncio.create_task(poll())
                    await asyncio.to_thread(compute)
                    sync_step()
            """,
            "mini/helpers.py": """
                import asyncio

                async def poll():
                    await asyncio.sleep(0)

                def compute():
                    return 1

                def sync_step():
                    return 2
            """,
        })
        model = build_program([tmp_path])
        return model, build_call_graph(model)

    def test_edge_kinds(self, tmp_path):
        _model, graph = self._build(tmp_path)
        kinds = graph.edge_kinds["mini.app:main"]
        assert kinds["mini.helpers:poll"] == {"await", "spawn"}
        assert kinds["mini.helpers:compute"] == {"executor"}
        assert kinds["mini.helpers:sync_step"] == {"call"}

    def test_context_classification(self, tmp_path):
        model, graph = self._build(tmp_path)
        ctxs = classify_contexts(model, graph)
        assert "mini.app:main" in ctxs.loop
        assert "mini.helpers:poll" in ctxs.loop
        # Plain sync call from a coroutine stays on the loop ...
        assert "mini.helpers:sync_step" in ctxs.loop
        # ... but the executor hop leaves it.
        assert "mini.helpers:compute" not in ctxs.loop
        assert "mini.helpers:compute" in ctxs.thread
        assert ctxs.kinds_of("mini.helpers:compute") == ("thread",)
        assert ctxs.loop_path("mini.helpers:sync_step") == [
            "mini.app:main", "mini.helpers:sync_step",
        ]

    def test_nested_coroutine_in_sync_function_seeds_loop(self, tmp_path):
        """The _cmd_serve shape: async def nested in a sync CLI command."""
        write_tree(tmp_path, {
            "nest/__init__.py": "",
            "nest/cli.py": """
                import asyncio

                from nest.impl import step

                def command():
                    async def serve():
                        step()

                    asyncio.run(serve())
            """,
            "nest/impl.py": """
                def step():
                    return 0
            """,
        })
        model = build_program([tmp_path])
        graph = build_call_graph(model)
        ctxs = classify_contexts(model, graph)
        assert "nest.impl:step" in ctxs.loop


class TestSelfAttrInference:
    """``self.<attr>.<method>()`` resolves via ``__init__`` inference."""

    def _tree(self, tmp_path, init_body):
        return write_tree(tmp_path, {
            "svc/__init__.py": "",
            "svc/store.py": """
                class Store:
                    def save(self):
                        with open("x") as fh:
                            return fh.read()
            """,
            "svc/app.py": f"""
                from svc.store import Store

                class App:
                    {init_body}

                    async def run(self):
                        return self.store.save()
            """,
        })

    def test_constructor_assignment_resolves(self, tmp_path):
        self._tree(tmp_path, (
            "def __init__(self):\n"
            "                        self.store = Store()"
        ))
        model = build_program([tmp_path])
        graph = build_call_graph(model)
        assert "svc.store:Store.save" in graph.callees("svc.app:App.run")

    def test_annotated_parameter_with_default_resolves(self, tmp_path):
        self._tree(tmp_path, (
            'def __init__(self, store: "Store | None" = None):\n'
            "                        self.store = store if store is not None "
            "else Store()"
        ))
        result = run_program_lint([tmp_path])
        assert [v.rule for v in result.violations] == ["ASYNC001"]
        assert result.violations[0].path.endswith("svc/store.py")
        assert "App.run -> Store.save" in result.violations[0].message


class TestTierDedup:
    """CON003 (per-file) and ASYNC001 (program) never share a line."""

    SOURCE = """\
import asyncio


async def pump(queue, path):
    item = await queue.get()
    path.write_text(str(item))
    return item
"""

    def test_no_line_reported_by_both_tiers(self, tmp_path):
        root = write_tree(tmp_path, {
            "service/__init__.py": "",
            "service/conn.py": self.SOURCE,
        })
        per_file = lint_source(
            self.SOURCE, "src/repro/service/conn.py", rules=["CON003"]
        )
        program = run_program_lint([root])
        con_lines = {v.line for v in per_file}
        async_lines = {
            v.line for v in program.violations if v.rule == "ASYNC001"
        }
        # Each tier sees exactly its own hazard shape ...
        assert con_lines == {5}   # the deadline-less await
        assert async_lines == {6}  # the sync disk write
        # ... and no line is double-reported.
        assert not con_lines & async_lines


class TestNeverBaselined:
    def test_async_findings_cannot_be_grandfathered(self):
        first = lint_fixture("block_bad")
        assert not first.ok
        finding = first.violations[0]
        line_text = (
            Path(finding.path).read_text(encoding="utf-8")
            .splitlines()[finding.line - 1]
        )
        fingerprint = fingerprint_violation(finding, line_text, 0)
        baseline = Baseline(entries={
            fingerprint: BaselineEntry(
                fingerprint=fingerprint,
                rule=finding.rule,
                path=finding.path,
                line=finding.line,
                message=finding.message,
            )
        })
        again = lint_fixture("block_bad", baseline=baseline)
        # The entry is ignored: ASYNC findings always gate.
        assert [v.rule for v in again.violations] == ["ASYNC001"]
        assert not again.ok
