"""Seeded taxonomy violations (directory named ``runtime`` on purpose)."""


def swallow(fn):
    try:
        return fn()
    except Exception:  # ERR001: swallows ReproError
        return None


def reject(value):
    if value < 0:
        raise ValueError("negative")  # ERR002: taxonomy bypass
    return value
