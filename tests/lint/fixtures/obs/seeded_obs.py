"""Seeded observability violations (directory named ``obs`` on purpose)."""

import time


def bad_duration(fn):
    t0 = time.time()  # OBS001: wall clock for a duration
    fn()
    return time.time_ns() - t0  # OBS001: and again


def bad_report(count):
    print(f"merged {count} snapshots")  # OBS002: direct print
    return count
