"""Seeded RACE003 true positive: one global, loop- and thread-side writes."""

import asyncio

_COMPLETED = 0


def note_loop_side():
    global _COMPLETED
    _COMPLETED += 1


def note_thread_side():
    global _COMPLETED
    _COMPLETED += 1


async def drive():
    # note_loop_side runs on the loop; note_thread_side runs on an
    # executor thread — the unguarded read-modify-writes interleave.
    note_loop_side()
    await asyncio.to_thread(note_thread_side)
