"""Clean negative for ASYNC001: same IO, reached only through a hop."""


def load_state():
    # Identical blocking body to block_bad — but server.py ships it off
    # the loop with asyncio.to_thread, so it is thread context, not loop.
    with open("state.json") as fh:
        return fh.read()
