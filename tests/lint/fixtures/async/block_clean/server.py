"""Coroutine entry: the executor hop breaks loop-context propagation."""

import asyncio

from block_clean.store import load_state


async def handle():
    return await asyncio.to_thread(load_state)
