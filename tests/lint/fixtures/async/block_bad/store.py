"""Seeded ASYNC001 true positive: sync disk IO on the coroutine path."""


def load_state():
    # ASYNC001: open() runs on the event loop — the coroutine in
    # server.py calls this helper with no executor hop in between.
    with open("state.json") as fh:
        return fh.read()
