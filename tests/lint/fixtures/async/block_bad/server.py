"""Coroutine entry: loop context propagates into block_bad.store."""

from block_bad.store import load_state


async def handle():
    return load_state()
