"""Seeded ASYNC002 true positive: a sync lock held across an await."""

import asyncio
import threading

_STATE_LOCK = threading.Lock()


async def update(value):
    with _STATE_LOCK:
        # ASYNC002: the thread lock stays held for the whole suspension;
        # anyone else wanting it then blocks the loop thread itself.
        await asyncio.sleep(0.01)
        return value
