"""Clean negative for ASYNC004: every coroutine awaited or tracked."""

import asyncio


async def refresh():
    await asyncio.sleep(0.01)


async def main():
    await refresh()
    task = asyncio.create_task(refresh())
    return await task
