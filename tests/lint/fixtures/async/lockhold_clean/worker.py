"""Clean negative for ASYNC002: an asyncio lock under ``async with``."""

import asyncio

_STATE_LOCK = asyncio.Lock()


async def update(value):
    async with _STATE_LOCK:
        await asyncio.sleep(0.01)
        return value
