"""Clean negative for ASYNC003: one global acquisition order."""

import asyncio

_ALPHA = asyncio.Lock()
_BETA = asyncio.Lock()


async def forward():
    async with _ALPHA:
        async with _BETA:
            return "ab"


async def also_forward():
    async with _ALPHA:
        async with _BETA:
            return "ab2"
