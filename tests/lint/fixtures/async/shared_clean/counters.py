"""Clean negative for RACE003: both writers hold the same thread lock."""

import asyncio
import threading

_COMPLETED = 0
_COMPLETED_LOCK = threading.Lock()


def note_loop_side():
    global _COMPLETED
    with _COMPLETED_LOCK:
        _COMPLETED += 1


def note_thread_side():
    global _COMPLETED
    with _COMPLETED_LOCK:
        _COMPLETED += 1


async def drive():
    note_loop_side()
    await asyncio.to_thread(note_thread_side)
