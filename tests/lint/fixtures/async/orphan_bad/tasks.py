"""Seeded ASYNC004 true positives: dropped coroutines, untracked tasks."""

import asyncio


async def refresh():
    await asyncio.sleep(0.01)


async def main():
    # ASYNC004: coroutine object created and dropped; the body never runs.
    refresh()
    # ASYNC004: fire-and-forget task; nothing keeps a reference, so it can
    # be garbage-collected mid-flight and its exception is swallowed.
    asyncio.create_task(refresh())
    # ASYNC004: assigned, but no use of ``pending`` is ever reached.
    pending = asyncio.create_task(refresh())
    return None
