"""Seeded ASYNC003 true positive: opposite lock acquisition orders."""

import asyncio

_ALPHA = asyncio.Lock()
_BETA = asyncio.Lock()


async def forward():
    async with _ALPHA:
        async with _BETA:
            return "ab"


async def backward():
    # ASYNC003: _BETA before _ALPHA here, _ALPHA before _BETA above —
    # two tasks can each hold one and wait forever on the other.
    async with _BETA:
        async with _ALPHA:
            return "ba"
