"""Seeded UNIT001 true positives: dimension-mixing arithmetic.

``camat1`` is a latency (cycles) and ``mr1`` a miss ratio; adding them
is the Eq. 9 transcription error the rule exists to catch.  The
``@satisfies`` producer variant returns a ratio into the cycle-valued
``camat1`` report field.
"""

from repro.lint.contracts import satisfies


def stall_cycles(camat1: float, mr1: float) -> float:
    # UNIT001: cycles + ratio.
    return camat1 + mr1


@satisfies("lpmr_definitions")
def snapshot(camat1: float, mr1: float):
    # UNIT001 (return-field): the camat1 field expects cycles, gets ratio.
    return dict(camat1=mr1, mr1=mr1)
