"""Seeded DRIFT001 sibling B: a drifted overlap cap.

The tier-0 re-derivation quietly loosened the cap to ``1.0 - 1e-6``
while ``sim.stats`` still declares ``1.0 - 1e-9`` — the silent
divergence DRIFT001 exists to catch.  The cpi_exe floor agrees across
both siblings, so only the overlap-cap role fires.
"""

_MAX_OVERLAP = 1.0 - 1e-6


def predict(cpi: float, cpi_exe: float, overlap_ratio_cm: float) -> float:
    capped = min(overlap_ratio_cm, _MAX_OVERLAP)
    floor = max(cpi_exe, 1e-12)
    return capped * cpi / floor
