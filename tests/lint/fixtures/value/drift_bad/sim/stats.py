"""Seeded DRIFT001 sibling A: the reference overlap cap.

Declares the Eq. 10 overlap cap at its canonical value; the surrogate
twin in this package perturbs it (``1e-6`` vs ``1e-9``).
"""

_MAX_OVERLAP = 1.0 - 1e-9


def fold(cpi: float, cpi_exe: float, overlap_ratio_cm: float) -> float:
    capped = min(overlap_ratio_cm, _MAX_OVERLAP)
    floor = max(cpi_exe, 1e-12)
    return capped * cpi / floor
