"""Seeded DRIFT001 missing-sibling case: only one declaration.

``sim.stats`` declares the overlap cap but the surrogate module dropped
it entirely — a sibling silently losing a model constant is flagged,
not treated as agreement.  Neither module declares a cpi_exe floor, so
the cpi-exe-floor role stays quiet (no present reading at all).
"""

_MAX_OVERLAP = 1.0 - 1e-9


def fold(cpi: float, overlap_ratio_cm: float) -> float:
    return min(overlap_ratio_cm, _MAX_OVERLAP) * cpi
