"""The sibling that dropped the overlap cap (see ``sim/stats.py``)."""


def predict(cpi: float, overlap_ratio_cm: float) -> float:
    return overlap_ratio_cm * cpi
