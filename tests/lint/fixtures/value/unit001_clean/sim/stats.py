"""Clean twin of ``unit001_bad``: dimensionally consistent arithmetic.

Cycles add to cycles, a ratio *scales* cycles via multiplication (which
is never a clash), and the producer routes each quantity to the field
with the matching dimension.
"""

from repro.lint.contracts import satisfies


def total_latency(camat1: float, hit_time1: float) -> float:
    return camat1 + hit_time1


def weighted_latency(camat1: float, mr1: float) -> float:
    return camat1 * mr1


@satisfies("lpmr_definitions")
def snapshot(camat1: float, mr1: float):
    return dict(camat1=camat1, mr1=mr1)
