"""Clean twin of ``val002_bad``: both sanctioned gather shapes.

The guard form refines ``i - rob`` to ``[0, inf)`` on the taken branch;
the clamp form pins the index expression itself non-negative.  The
trailing ``rows[-1]`` is deliberate last-element indexing, which VAL002
exempts.
"""


def reconstruct_guarded(wret_rows, n_window: int, rob_size: int) -> float:
    rob = max(rob_size, 1)
    total = 0.0
    for i in range(n_window):
        if i >= rob:
            total = total + wret_rows[i - rob]
    return total


def reconstruct_clamped(wret_rows, n_window: int, rob_size: int) -> float:
    rob = max(rob_size, 1)
    total = 0.0
    for i in range(n_window):
        total = total + wret_rows[max(i - rob, 0)]
    return total


def last_row(wret_rows) -> float:
    return wret_rows[-1]
