"""Clean twin of ``val001_bad``: both sanctioned denominator shapes.

An epsilon clamp bounds the interval away from zero; an equality guard
refines it to the open interval ``(0, inf)`` on the surviving branch.
"""


def miss_share(stall: float, accesses: float) -> float:
    window = max(accesses, 1e-12)
    return stall / window


def guarded_share(stall: float, accesses: float) -> float:
    window = max(accesses, 0.0)
    if window == 0.0:
        return 0.0
    return stall / window
