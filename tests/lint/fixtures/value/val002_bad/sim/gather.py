"""Seeded VAL002 true positive: the PR-8 hetero-ROB gather shape.

Reconstructing per-window writeback rows as ``rows[i - rob]`` silently
wraps to the *end* of the array for the first ``rob`` iterations — both
operands are non-negative but nothing proves ``i >= rob``.
"""


def reconstruct_writeback(wret_rows, n_window: int, rob_size: int) -> float:
    rob = max(rob_size, 1)
    total = 0.0
    for i in range(n_window):
        # VAL002: i - rob is negative for the first `rob` iterations.
        total = total + wret_rows[i - rob]
    return total
