"""Seeded VAL001 true positive: a clamp that keeps zero reachable.

``max(accesses, 0.0)`` looks like a guard but only discards *negative*
inputs — the interval is still ``[0, inf)`` and the division can divide
by zero on an empty window.
"""


def miss_share(stall: float, accesses: float) -> float:
    window = max(accesses, 0.0)
    # VAL001: window has range [0, inf) which contains 0.
    return stall / window
