"""Clean DRIFT001 sibling A: both constants at the canonical values."""

_MAX_OVERLAP = 1.0 - 1e-9


def fold(cpi: float, cpi_exe: float, overlap_ratio_cm: float) -> float:
    capped = min(overlap_ratio_cm, _MAX_OVERLAP)
    floor = max(cpi_exe, 1e-12)
    return capped * cpi / floor
