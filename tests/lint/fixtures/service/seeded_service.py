"""Seeded CON003/OBS002 violations for the lint CLI tests.

Every unbounded await here is a deliberate bug specimen: a half-dead peer
would park each of these coroutines forever.
"""

import asyncio
import time


async def relay(reader, writer, queue):
    line = await reader.readline()  # CON003: no deadline on the read
    await queue.put(line)  # CON003: queue may be full forever
    writer.write(line)
    await writer.drain()  # CON003: peer may never read
    print("relayed", len(line))  # OBS002: service output must be structured


async def dial(host, port):
    reader, writer = await asyncio.open_connection(host, port)  # CON003
    started = time.time()  # OBS001: steppable wall clock
    return reader, writer, started


async def bounded_ok(reader, queue, event):
    line = await asyncio.wait_for(reader.readline(), timeout=5.0)
    await queue.put(line, timeout=1.0)
    async with asyncio.timeout(2.0):
        await event.wait()
    return line
