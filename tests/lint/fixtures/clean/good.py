"""Violation-free fixture: the CLI must exit 0 on this directory."""


def add(a: int, b: int) -> int:
    return a + b


def mean(values: list[float]) -> float:
    total = len(values)
    if total == 0:
        return 0.0
    return sum(values) / total
