"""Clean negative for RACE001/RACE002: the shared store is lock-guarded."""

import threading

_LOCK = threading.Lock()
_JOBS = {}


def record(key, value):
    with _LOCK:
        _JOBS[key] = value
    return key
