"""Pool dispatcher identical to race_bad's; the store itself is safe."""

from race_clean.state import record


class Job:
    def __init__(self, fn):
        self.fn = fn


def submit():
    return Job(fn=record)
