"""Clean negative for PURE001/PURE002: contained state only."""

_WEIGHTS = {"hit": 1.0, "miss": 4.0}  # import-time frozen: a legal input


def measure(values):
    total = 0.0
    for value in values:
        total += value * _WEIGHTS["hit"]
    return total


class Accumulator:
    """Instance state is contained; mutating ``self`` is not an effect."""

    def __init__(self):
        self.total = 0.0

    def add(self, value):
        self.total += value
        return self.total
