"""FLOW001 target module, plus a banned in-module RNG construction."""

import random


def simulate(trace, rng):
    return [rng.random() for _ in trace]


def jittered(trace):
    # FLOW001 (at the target): RNG constructed inside sim.engine itself.
    noise = random.Random(0)
    return [noise.random() for _ in trace]
