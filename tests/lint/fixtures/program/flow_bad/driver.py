"""Seeded FLOW001 true positive: untracked RNG flowing into the engine."""

import numpy as np

from flow_bad.sim.engine import simulate


def run(trace):
    rng = np.random.default_rng(123)
    generator = rng  # provenance survives the copy (reaching definitions)
    return simulate(trace, generator)
