"""Seeded PURE001 true positive: an impure tier-0 predictor.

``analysis.surrogate`` modules are measurement producers — their public
functions feed the same contract pipeline as the engine's measured
reports, so they must be transitively pure.  This fixture caches a
prediction into module state, the classic way a surrogate silently
becomes order-dependent across a sweep.
"""

_LAST_PREDICTION = {}


def predict(histogram, capacity):
    # PURE001: a measurement producer writing module state.
    miss = sum(c for d, c in histogram if d >= capacity) / max(
        sum(c for _, c in histogram), 1
    )
    _LAST_PREDICTION["miss"] = miss
    return miss
