"""Seeded RACE001/RACE002 true positives: unguarded shared module state."""

_JOBS = {}
_MODE = "fast"


def record(key, value):
    # RACE001: reachable from the pool dispatcher (escaped via Job(fn=...))
    # and mutates module state with no lock.
    _JOBS[key] = value
    return current_mode()


def current_mode():
    # Worker-side read of _MODE ...
    return _MODE


def set_mode(mode):
    # ... while the supervisor rebinds it: RACE002 on the _MODE definition.
    global _MODE
    _MODE = mode
