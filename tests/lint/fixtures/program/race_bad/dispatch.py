"""Pool dispatcher: lets ``record`` escape across the fork boundary."""

from race_bad.state import record


class Job:
    def __init__(self, fn):
        self.fn = fn


def submit():
    return Job(fn=record)
