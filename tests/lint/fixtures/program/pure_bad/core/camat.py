"""Seeded PURE001/PURE002 true positives in a measurement module."""

_CACHE = {}
_FACTORS = {"default": 1.0}


def measure(values):
    # PURE001: a measurement producer caching into module state.
    result = sum(values) / max(len(values), 1)
    _CACHE["last"] = result
    return result


def set_factor(value):
    # Runtime mutation making _FACTORS ambient state (also PURE001 itself).
    _FACTORS["default"] = value


def calibrated(values):
    # PURE002: output depends on runtime-mutated module state.
    return _FACTORS["default"] * sum(values)
