"""Pool dispatcher making ``record`` worker-side reachable."""

from sup_bad.state import record


class Job:
    def __init__(self, fn):
        self.fn = fn


def submit():
    return Job(fn=record)
