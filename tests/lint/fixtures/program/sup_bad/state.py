"""Seeded SUP001: a program-rule noqa without a justification.

The unjustified suppression is ignored (RACE001 still reports) and is
itself flagged as SUP001 — eager failure, mirroring ContractViolation.
"""

_JOBS = {}


def record(key, value):
    _JOBS[key] = value  # repro: noqa[RACE001]
    return key
