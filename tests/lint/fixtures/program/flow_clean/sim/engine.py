"""FLOW001 target module with no RNG construction of its own."""


def simulate(trace, rng):
    return [rng.random() for _ in trace]
