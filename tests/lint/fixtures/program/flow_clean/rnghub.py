"""Sanctioned RNG factory (stands in for repro.util.rng in the fixture)."""


def make_rng(seed):
    return object()  # the construction detail is irrelevant to the rule
