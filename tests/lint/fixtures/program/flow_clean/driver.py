"""Clean negative for FLOW001: the generator comes from the seeded factory."""

from flow_clean.rnghub import make_rng
from flow_clean.sim.engine import simulate


def run(trace, seed):
    rng = make_rng(seed)
    return simulate(trace, rng)
