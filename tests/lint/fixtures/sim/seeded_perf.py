"""Seeded PERF001 violations: spans/events in per-instruction loops.

Never imported; the directory is named ``sim`` so the package-scoped hot-
path rules apply.  Each marked line must be flagged; the guarded variants
at the bottom must stay clean.
"""

from repro.obs import trace as obs_trace
from repro.obs import tracing_enabled
from repro.obs.trace import event, span


def issue_loop(instructions):
    for instr in instructions:
        with obs_trace.span("engine.issue", op=instr):  # PERF001: per-instruction span
            pass


def drain_loop(fills):
    while fills:
        event("engine.fill", block=fills.pop())  # PERF001: per-iteration event


def unqualified_span(instructions):
    for instr in instructions:
        span("engine.issue")  # PERF001: from-imported span in a loop


def guarded_per_call(instructions):
    for instr in instructions:
        if tracing_enabled():
            event("engine.issue", op=instr)  # guarded: clean


def guarded_hoisted(instructions):
    if tracing_enabled():
        for instr in instructions:
            event("engine.issue", op=instr)  # hoisted guard: clean


def span_outside_loop(instructions):
    with obs_trace.span("engine.run", n=len(instructions)):  # once per run: clean
        for instr in instructions:
            pass
