"""Seeded-violation fixture: every line marked below must be flagged.

This file is never imported; it exists so the test suite can prove the
linter actually fires (and the CLI exits non-zero) on the bug shapes the
rules were built for.  The directory is named ``sim`` so package-scoped
rules apply.
"""

import random
import time

pending_jobs = []  # CON001: module-level mutable


def draw():
    return random.random()  # DET001: process-global RNG


def timestamp():
    return time.time()  # DET001: wall-clock read


def hit_rate(hits, accesses):
    return hits / accesses  # NUM001: unguarded model denominator


def walk(tags):
    return [t for t in {"a", "b"}]  # DET002: set iteration order


def matches(x):
    return x == 0.3  # NUM002: exact float equality
