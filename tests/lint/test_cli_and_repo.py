"""CLI exit codes on the seeded fixtures, and the repo-clean gate itself."""

import json
import os
import subprocess
import sys
from pathlib import Path

import repro
from repro.lint.engine import run_lint

TESTS_LINT = Path(__file__).resolve().parent
FIXTURES = TESTS_LINT / "fixtures"
REPO_ROOT = TESTS_LINT.parents[1]


def run_cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *args],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT,
    )


class TestCLIExitCodes:
    def test_seeded_violations_exit_nonzero(self):
        proc = run_cli(str(FIXTURES / "sim"))
        assert proc.returncode == 1
        assert "DET001" in proc.stdout
        assert "NUM001" in proc.stdout

    def test_taxonomy_fixture_exit_nonzero(self):
        proc = run_cli(str(FIXTURES / "runtime"))
        assert proc.returncode == 1
        assert "ERR001" in proc.stdout
        assert "ERR002" in proc.stdout

    def test_obs_fixture_exit_nonzero(self):
        proc = run_cli(str(FIXTURES / "obs"))
        assert proc.returncode == 1
        assert "OBS001" in proc.stdout
        assert "OBS002" in proc.stdout

    def test_service_fixture_exit_nonzero(self):
        proc = run_cli(str(FIXTURES / "service"))
        assert proc.returncode == 1
        assert "CON003" in proc.stdout
        assert "OBS002" in proc.stdout

    def test_clean_fixture_exits_zero(self):
        proc = run_cli(str(FIXTURES / "clean"))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 violations" in proc.stdout

    def test_json_output_parses(self):
        proc = run_cli("--json", str(FIXTURES / "sim"))
        payload = json.loads(proc.stdout)
        assert payload["ok"] is False
        assert {v["rule"] for v in payload["violations"]} >= {
            "DET001", "DET002", "NUM001", "NUM002", "CON001",
        }

    def test_rule_selection_narrows_the_run(self):
        proc = run_cli("--rules", "NUM002", str(FIXTURES / "sim"))
        assert proc.returncode == 1
        assert "NUM002" in proc.stdout
        assert "DET001" not in proc.stdout

    def test_list_rules(self):
        proc = run_cli("--list-rules")
        assert proc.returncode == 0
        assert "DET001" in proc.stdout and "CTR001" in proc.stdout

    def test_list_rules_includes_value_packs(self):
        proc = run_cli("--list-rules")
        for rule in ("VAL001", "VAL002", "UNIT001", "DRIFT001"):
            assert rule in proc.stdout


class TestSeededFixtureCoverage:
    def test_every_seeded_rule_fires(self):
        result = run_lint([
            FIXTURES / "sim", FIXTURES / "runtime", FIXTURES / "obs",
            FIXTURES / "service",
        ])
        fired = {v.rule for v in result.violations}
        assert fired >= {
            "DET001", "DET002", "NUM001", "NUM002", "CON001", "CON003",
            "ERR001", "ERR002", "OBS001", "OBS002", "PERF001",
        }


class TestRepoIsClean:
    def test_package_lints_clean(self):
        """The acceptance gate: the shipped package has zero violations."""
        package_dir = Path(repro.__file__).parent
        result = run_lint([package_dir])
        assert result.files_checked > 50
        details = "\n".join(v.format() for v in result.violations)
        assert result.ok, f"repo must lint clean:\n{details}"

    def test_suppressions_carry_justifications(self):
        """Every real ``# repro: noqa[RULE]`` must say why (`` -- reason``)."""
        from repro.lint.engine import _NOQA_RE

        package_dir = Path(repro.__file__).parent
        bad = []
        for path in sorted(package_dir.rglob("*.py")):
            for lineno, line in enumerate(path.read_text().splitlines(), start=1):
                if _NOQA_RE.search(line) and " -- " not in line:
                    bad.append(f"{path}:{lineno}")
        assert not bad, f"noqa without justification: {bad}"

    def test_package_passes_program_analysis(self):
        """The whole-program gate: zero non-baselined RACE/PURE/FLOW/SUP
        findings over the shipped package, with the checked-in baseline."""
        from repro.lint.program import load_baseline, run_program_lint

        package_dir = Path(repro.__file__).parent
        baseline = load_baseline(REPO_ROOT / "lint-baseline.json")
        result = run_program_lint([package_dir], baseline=baseline)
        details = "\n".join(v.format() for v in result.violations)
        assert result.ok, f"program analysis must pass:\n{details}"
        # The analysis actually saw the program: all three root kinds exist.
        assert result.entries.cli and result.entries.pool and result.entries.engine
        assert result.suppressed_unjustified == 0


PROGRAM_FIXTURES = FIXTURES / "program"


class TestProgramCLI:
    def test_program_flag_gates_on_seeded_fixture(self):
        proc = run_cli(
            "--program", "--rules", "RACE001,RACE002",
            str(PROGRAM_FIXTURES / "race_bad"),
        )
        assert proc.returncode == 1
        assert "RACE001" in proc.stdout and "RACE002" in proc.stdout

    def test_program_flag_passes_on_clean_fixture(self):
        proc = run_cli(
            "--program", "--rules", "RACE001,RACE002",
            str(PROGRAM_FIXTURES / "race_clean"),
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "program analysis: 0 violations" in proc.stdout

    def test_program_rules_without_flag_is_an_error(self):
        proc = run_cli("--rules", "RACE001", str(PROGRAM_FIXTURES / "race_clean"))
        assert proc.returncode == 2
        assert "--program" in proc.stderr + proc.stdout

    def test_program_json_report_carries_program_section(self):
        proc = run_cli(
            "--program", "--format", "json", "--rules", "RACE001",
            str(PROGRAM_FIXTURES / "race_bad"),
        )
        payload = json.loads(proc.stdout)
        assert payload["program"]["ok"] is False
        assert {v["rule"] for v in payload["program"]["violations"]} == {"RACE001"}
        assert payload["program"]["entry_points"]["pool"] >= 1

    def test_sarif_output_validates(self):
        from repro.lint.sarif import validate_sarif

        proc = run_cli(
            "--program", "--format", "sarif", "--rules", "RACE001",
            str(PROGRAM_FIXTURES / "race_bad"),
        )
        assert proc.returncode == 1
        doc = json.loads(proc.stdout)
        assert validate_sarif(doc) == []

    def test_update_baseline_then_rerun_passes(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        first = run_cli(
            "--program", "--rules", "RACE001,RACE002",
            "--baseline", str(baseline), "--update-baseline",
            str(PROGRAM_FIXTURES / "race_bad"),
        )
        assert first.returncode == 0, first.stdout + first.stderr
        assert baseline.exists()
        second = run_cli(
            "--program", "--rules", "RACE001,RACE002",
            "--baseline", str(baseline),
            str(PROGRAM_FIXTURES / "race_bad"),
        )
        assert second.returncode == 0, second.stdout + second.stderr
        assert "[baselined]" in second.stdout

    def test_output_flag_writes_the_report(self, tmp_path):
        out = tmp_path / "report.sarif"
        proc = run_cli(
            "--program", "--format", "sarif", "--rules", "RACE001",
            "--output", str(out), str(PROGRAM_FIXTURES / "race_clean"),
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert json.loads(out.read_text())["version"] == "2.1.0"
