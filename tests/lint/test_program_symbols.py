"""Unit tests for the cross-module symbol table and import graph."""

import textwrap
from pathlib import Path

from repro.lint.program import build_program
from repro.lint.program.symbols import module_name_for

TESTS_LINT = Path(__file__).resolve().parent
PROGRAM_FIXTURES = TESTS_LINT / "fixtures" / "program"


def build(tmp_path, files):
    """Write a dict of relpath -> source and build the program model."""
    for rel, src in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(src), encoding="utf-8")
    return build_program([tmp_path])


class TestModuleNames:
    def test_package_chain(self):
        path = PROGRAM_FIXTURES / "pure_bad" / "core" / "camat.py"
        assert module_name_for(path) == "pure_bad.core.camat"

    def test_init_names_the_package(self):
        path = PROGRAM_FIXTURES / "race_bad" / "__init__.py"
        assert module_name_for(path) == "race_bad"

    def test_file_outside_any_package_is_its_stem(self, tmp_path):
        path = tmp_path / "loose.py"
        path.write_text("x = 1\n")
        assert module_name_for(path) == "loose"


class TestIndexing:
    def test_functions_methods_and_globals(self, tmp_path):
        model = build(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                REGISTRY = {}
                LIMIT = 8

                def top():
                    return LIMIT

                class Runner:
                    def __init__(self):
                        self.n = 0

                    def run(self):
                        return top()
            """,
        })
        info = model.modules["pkg.mod"]
        assert set(info.functions) == {"top", "Runner.__init__", "Runner.run"}
        assert info.classes == {"Runner": ["Runner.__init__", "Runner.run"]}
        assert info.globals["REGISTRY"].mutable
        assert info.globals["REGISTRY"].constant_style
        assert not info.globals["LIMIT"].mutable
        method = info.functions["Runner.run"]
        assert method.class_name == "Runner"
        assert method.ref == "pkg.mod:Runner.run"
        assert method.name == "run"

    def test_decorators_resolve_through_imports(self, tmp_path):
        model = build(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/contracts.py": """
                def satisfies(*names):
                    def deco(fn):
                        return fn
                    return deco
            """,
            "pkg/mod.py": """
                from pkg.contracts import satisfies

                @satisfies("amat")
                def produce():
                    return 1.0
            """,
        })
        func = model.modules["pkg.mod"].functions["produce"]
        assert func.decorators == ("pkg.contracts.satisfies",)

    def test_parse_failure_is_recorded_not_fatal(self, tmp_path):
        model = build(tmp_path, {
            "ok.py": "x = 1\n",
            "broken.py": "def f(:\n",
        })
        assert "ok" in model.modules
        assert len(model.parse_failures) == 1
        (path,) = model.parse_failures
        assert path.endswith("broken.py")

    def test_same_module_name_from_two_roots_gets_suffix(self, tmp_path):
        for root in ("a", "b"):
            d = tmp_path / root
            d.mkdir()
            (d / "pkg.py").write_text("x = 1\n")
        model = build_program([tmp_path / "a", tmp_path / "b"])
        names = sorted(model.modules)
        assert names[0] == "pkg" and names[1].startswith("pkg@")


class TestResolution:
    def test_resolve_direct_and_from_import(self, tmp_path):
        model = build(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/impl.py": """
                def compute():
                    return 1
            """,
            "pkg/user.py": """
                from pkg.impl import compute

                def use():
                    return compute()
            """,
        })
        direct = model.resolve("pkg.impl.compute")
        assert direct is not None and direct.kind == "function"
        assert direct.function.ref == "pkg.impl:compute"

    def test_resolve_chases_reexport_through_init(self, tmp_path):
        model = build(tmp_path, {
            "pkg/__init__.py": "from pkg.impl import compute\n",
            "pkg/impl.py": """
                def compute():
                    return 1
            """,
        })
        reexported = model.resolve("pkg.compute")
        assert reexported is not None and reexported.kind == "function"
        assert reexported.function.ref == "pkg.impl:compute"

    def test_resolve_class_returns_init(self, tmp_path):
        model = build(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                class Thing:
                    def __init__(self):
                        self.x = 0
            """,
        })
        res = model.resolve("pkg.mod.Thing")
        assert res is not None and res.kind == "class"
        assert res.function.ref == "pkg.mod:Thing.__init__"

    def test_unknown_reference_is_none(self, tmp_path):
        model = build(tmp_path, {"pkg/__init__.py": "", "pkg/mod.py": "x = 1\n"})
        assert model.resolve("numpy.sqrt") is None
        assert model.resolve("pkg.mod.missing") is None


class TestImportGraph:
    def test_fixture_import_edges(self):
        model = build_program([PROGRAM_FIXTURES / "race_bad"])
        graph = model.import_graph()
        assert "race_bad.state" in graph["race_bad.dispatch"]
        assert graph["race_bad.state"] == set()

    def test_parse_is_shared_through_the_cache(self):
        model = build_program([PROGRAM_FIXTURES / "race_bad"])
        before = model.cache.parses
        rebuilt = build_program([PROGRAM_FIXTURES / "race_bad"], cache=model.cache)
        assert rebuilt.cache.parses == before  # all hits, no re-parse
        assert rebuilt.cache.hits >= len(rebuilt.modules)
