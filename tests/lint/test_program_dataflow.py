"""Unit tests for the CFG, reaching definitions, and effect inference."""

import ast
import textwrap
from pathlib import Path

from repro.lint.program import build_program
from repro.lint.program.callgraph import build_call_graph
from repro.lint.program.dataflow import (
    EffectAnalysis,
    build_cfg,
    reaching_definitions,
)


def func_node(source):
    tree = ast.parse(textwrap.dedent(source).lstrip("\n"))
    return tree.body[0]


def analyze(tmp_path, files):
    for rel, src in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(src), encoding="utf-8")
    model = build_program([tmp_path])
    return model, EffectAnalysis(model, build_call_graph(model))


class TestCFG:
    def test_every_statement_appears_once(self):
        func = func_node("""
            def f(flag):
                x = 1
                if flag:
                    x = 2
                else:
                    x = 3
                for i in range(3):
                    x += i
                return x
        """)
        cfg = build_cfg(func)
        stmts = list(cfg.statements())
        assert len(stmts) == len(set(map(id, stmts)))
        # body stmts: x=1, if, x=2, x=3, for, x+=i, return
        assert len(stmts) == 7

    def test_branches_have_successors(self):
        func = func_node("""
            def f(flag):
                if flag:
                    return 1
                return 2
        """)
        cfg = build_cfg(func)
        header_block = next(
            b for b in cfg.blocks if any(isinstance(s, ast.If) for s in b.stmts)
        )
        assert len(header_block.succs) >= 2


class TestReachingDefinitions:
    def _return_stmt(self, func):
        return next(n for n in ast.walk(func) if isinstance(n, ast.Return))

    def test_branch_merge_keeps_both_definitions(self):
        func = func_node("""
            def f(flag):
                x = 1
                if flag:
                    x = 2
                return x
        """)
        rd = reaching_definitions(func)
        defs = rd.at(self._return_stmt(func), "x")
        assert {d.lineno for d in defs} == {2, 4}

    def test_straight_line_assignment_kills_prior(self):
        func = func_node("""
            def f():
                x = 1
                x = 2
                return x
        """)
        rd = reaching_definitions(func)
        defs = rd.at(self._return_stmt(func), "x")
        assert {d.lineno for d in defs} == {3}

    def test_loop_carried_definition_reaches_header(self):
        func = func_node("""
            def f(items):
                x = 0
                for item in items:
                    x = item
                return x
        """)
        rd = reaching_definitions(func)
        defs = rd.at(self._return_stmt(func), "x")
        assert {d.lineno for d in defs} == {2, 4}

    def test_parameters_are_entry_definitions(self):
        func = func_node("""
            def f(seed):
                return seed
        """)
        rd = reaching_definitions(func)
        defs = rd.at(self._return_stmt(func), "seed")
        assert len(defs) == 1 and next(iter(defs)).stmt_id == -1


class TestEffects:
    def test_global_write_and_runtime_mutated(self, tmp_path):
        _, effects = analyze(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                _STATE = {}
                _MODE = "a"

                def put(k, v):
                    _STATE[k] = v

                def switch(m):
                    global _MODE
                    _MODE = m
            """,
        })
        put = effects.effects_of("pkg.mod:put")
        assert any(
            e.kind == "global-write" and e.target.name == "_STATE"
            for e in put.effects
        )
        assert effects.runtime_mutated == {"pkg.mod:_STATE", "pkg.mod:_MODE"}

    def test_lock_guard_is_recognized(self, tmp_path):
        _, effects = analyze(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                import threading

                _LOCK = threading.Lock()
                _STATE = {}

                def put(k, v):
                    with _LOCK:
                        _STATE[k] = v
            """,
        })
        (effect,) = [
            e for e in effects.effects_of("pkg.mod:put").effects
            if e.kind == "global-write"
        ]
        assert effect.lock_guarded

    def test_self_mutation_is_not_an_effect(self, tmp_path):
        _, effects = analyze(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                class Acc:
                    def __init__(self):
                        self.items = []

                    def add(self, v):
                        self.items.append(v)
                        self.total = v
            """,
        })
        assert effects.effects_of("pkg.mod:Acc.add").effects == []

    def test_io_and_ambient_rng_calls(self, tmp_path):
        _, effects = analyze(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                import random

                def noisy(x):
                    print(x)
                    random.seed(0)
                    return x
            """,
        })
        kinds = {e.kind for e in effects.effects_of("pkg.mod:noisy").effects}
        assert kinds == {"io", "ambient-rng"}

    def test_first_effect_path_is_transitive(self, tmp_path):
        _, effects = analyze(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                def outer(x):
                    return inner(x)

                def inner(x):
                    print(x)
                    return x

                def clean(x):
                    return x + 1
            """,
        })
        found = effects.first_effect_path("pkg.mod:outer")
        assert found is not None
        chain, effect = found
        assert chain == ["pkg.mod:outer", "pkg.mod:inner"]
        assert effect.kind == "io"
        assert effects.first_effect_path("pkg.mod:clean") is None

    def test_sanctioned_modules_are_skipped(self, tmp_path):
        _, effects = analyze(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/obs/__init__.py": "",
            "pkg/obs/log.py": """
                def emit(x):
                    print(x)
            """,
            "pkg/mod.py": """
                from pkg.obs.log import emit

                def produce(x):
                    emit(x)
                    return x
            """,
        })
        gated = effects.first_effect_path(
            "pkg.mod:produce", sanctioned=lambda m: ".obs" in m or m.endswith("obs")
        )
        assert gated is None
        ungated = effects.first_effect_path("pkg.mod:produce")
        assert ungated is not None

    def test_global_reads_are_collected(self, tmp_path):
        _, effects = analyze(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                _TABLE = {"a": 1}

                def look(k):
                    return _TABLE[k]
            """,
        })
        reads = effects.effects_of("pkg.mod:look").global_reads
        assert [g.name for g, _ in reads] == ["_TABLE"]
