"""The value-analysis tier: interval domain, unit lattice, VAL/UNIT/DRIFT.

Three layers of coverage:

* algebraic unit tests for the interval domain (lattice laws, widening
  that preserves open endpoints, arithmetic edge cases) and the unit
  lattice tables;
* fixture-driven rule tests over ``tests/lint/fixtures/value`` — one
  seeded true-positive package and one clean twin per rule, including
  the PR-8 hetero-ROB gather shape and the drifted overlap cap;
* a hypothesis soundness test: for randomly generated straight-line /
  branch / loop programs, the abstract return interval always contains
  the concretely executed return value.
"""

import ast
import math
import textwrap
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint.engine import ModuleContext
from repro.lint.program import run_program_lint
from repro.lint.program.baseline import Baseline, fingerprint_violation
from repro.lint.program.symbols import ModuleInfo, ProgramModel
from repro.lint.program.values import (
    UNIT_CYCLES,
    UNIT_RATIO,
    UNIT_SCALAR,
    UNIT_UNKNOWN,
    Interval,
    ValueAnalysis,
    point,
    unit_add,
    unit_div,
    unit_mul,
    unit_of_name,
    units_clash,
)

FIXTURES = Path(__file__).parent / "fixtures" / "value"
VALUE_RULES = ["VAL001", "VAL002", "UNIT001", "DRIFT001"]


def lint(package: str, rules=VALUE_RULES, baseline=None):
    return run_program_lint([FIXTURES / package], rules=rules, baseline=baseline)


# ---------------------------------------------------------------------------
# Interval domain
# ---------------------------------------------------------------------------

class TestIntervalDomain:
    def test_point_and_contains(self):
        iv = point(3.0)
        assert iv.contains(3.0) and not iv.contains(3.5)
        assert not iv.contains_zero()

    def test_open_endpoints_exclude_boundary(self):
        iv = Interval(0.0, math.inf, lo_open=True)
        assert not iv.contains(0.0)
        assert iv.contains(1e-300)
        assert not iv.contains_zero()
        assert iv.positive

    def test_join_is_hull(self):
        a, b = Interval(0, 1), Interval(3, 5)
        assert a.join(b) == Interval(0, 5)

    def test_meet_empty_is_none(self):
        assert Interval(0, 1).meet(Interval(2, 3)) is None
        # Touching at an open endpoint is still empty.
        assert Interval(0, 1, hi_open=True).meet(point(1.0)) is None

    def test_widen_unstable_bounds_to_infinity(self):
        old, new = Interval(0, 1), Interval(0, 2)
        widened = old.widen(new)
        assert widened.lo == 0 and widened.hi == math.inf

    def test_widen_preserves_openness_on_stable_bound(self):
        # The guard `x > 0` must survive widening at a loop head: the
        # low bound is stable, so its open flag must not be dropped.
        old = Interval(0, 1, lo_open=True)
        widened = old.widen(Interval(0, 5, lo_open=True))
        assert widened.lo == 0 and widened.lo_open
        assert not widened.contains_zero()

    def test_div_by_zero_straddling_interval_is_top(self):
        assert Interval(1, 2).div(Interval(-1, 1)).is_top

    def test_div_by_positive_interval(self):
        iv = Interval(2, 4).div(Interval(1, 2))
        assert iv.lo == 1 and iv.hi == 4

    def test_mul_with_infinity_and_zero(self):
        # 0 * inf must resolve to 0, not nan, for sound bounds.
        iv = point(0.0).mul(Interval(0, math.inf))
        assert iv.contains(0.0) and not iv.contains(1.0)

    def test_abs_and_minmax(self):
        assert Interval(-3, 2).abs() == Interval(0, 3)
        assert Interval(0, 10).max_with(point(4.0)) == Interval(4, 10)
        assert Interval(0, 10).min_with(point(4.0)) == Interval(0, 4)

    def test_bounds_is_json_safe(self):
        assert Interval(0, math.inf).bounds() == [0.0, "inf"]


# ---------------------------------------------------------------------------
# Unit lattice
# ---------------------------------------------------------------------------

class TestUnitLattice:
    def test_model_vocabulary(self):
        assert unit_of_name("camat1") == UNIT_CYCLES
        assert unit_of_name("hit_time1") == UNIT_CYCLES
        assert unit_of_name("mr2") == UNIT_RATIO
        assert unit_of_name("overlap_ratio_cm") == UNIT_RATIO
        assert unit_of_name("n_instructions") != UNIT_RATIO
        # A bare name outside the vocabulary carries no dimension.
        assert unit_of_name("total") == UNIT_UNKNOWN

    def test_scalar_is_polymorphic(self):
        # `cpi + 1.0` and `max(cpi, eps)` must not clash.
        assert not units_clash(UNIT_CYCLES, UNIT_SCALAR)
        assert unit_add(UNIT_CYCLES, UNIT_SCALAR) == UNIT_CYCLES

    def test_dimension_clash(self):
        assert units_clash(UNIT_CYCLES, UNIT_RATIO)
        assert unit_add(UNIT_CYCLES, UNIT_RATIO) == UNIT_UNKNOWN

    def test_ratio_scales_dimensions(self):
        assert unit_mul(UNIT_RATIO, UNIT_CYCLES) == UNIT_CYCLES
        assert unit_mul(UNIT_RATIO, UNIT_RATIO) == UNIT_RATIO
        assert unit_div(UNIT_CYCLES, UNIT_CYCLES) == UNIT_RATIO
        assert unit_div(UNIT_CYCLES, UNIT_RATIO) == UNIT_CYCLES


# ---------------------------------------------------------------------------
# Rule fixtures
# ---------------------------------------------------------------------------

class TestValueRuleFixtures:
    def test_val001_flags_reachable_zero_denominator(self):
        result = lint("val001_bad")
        assert [v.rule for v in result.violations] == ["VAL001"]
        v = result.violations[0]
        assert "window" in v.message
        assert v.detail is not None
        assert v.detail["interval"] == [0.0, "inf"]

    def test_val001_clean_twin_passes(self):
        assert lint("val001_clean").violations == []

    def test_val002_flags_hetero_rob_gather(self):
        result = lint("val002_bad")
        assert [v.rule for v in result.violations] == ["VAL002"]
        v = result.violations[0]
        assert "i - rob" in v.message
        assert v.detail is not None and v.detail["gather_shape"] is True

    def test_val002_clean_twin_passes(self):
        # Guarded, clamped and literal `rows[-1]` shapes all stay quiet.
        assert lint("val002_clean").violations == []

    def test_unit001_flags_add_and_return_field(self):
        result = lint("unit001_bad")
        assert [v.rule for v in result.violations] == ["UNIT001", "UNIT001"]
        kinds = {v.detail["kind"] for v in result.violations}
        assert kinds == {"add", "return-field"}
        by_kind = {v.detail["kind"]: v for v in result.violations}
        assert by_kind["add"].detail["left_unit"] == UNIT_CYCLES
        assert by_kind["add"].detail["right_unit"] == UNIT_RATIO
        assert by_kind["return-field"].detail["field"] == "camat1"

    def test_unit001_clean_twin_passes(self):
        assert lint("unit001_clean").violations == []

    def test_drift001_flags_both_drifted_siblings(self):
        result = lint("drift_bad")
        assert [v.rule for v in result.violations] == ["DRIFT001", "DRIFT001"]
        impls = {v.detail["implementation"] for v in result.violations}
        assert impls == {"sim.stats", "analysis.surrogate"}
        for v in result.violations:
            assert v.detail["role"] == "overlap-cap"
            assert v.detail["siblings"]  # each names the disagreeing twin

    def test_drift001_clean_twin_passes(self):
        assert lint("drift_clean").violations == []

    def test_drift001_flags_missing_sibling(self):
        result = lint("drift_missing_bad")
        assert [v.rule for v in result.violations] == ["DRIFT001"]
        v = result.violations[0]
        assert v.detail["missing"] is True
        assert v.detail["implementation"] == "analysis.surrogate"

    def test_drift001_is_never_baselinable(self):
        first = lint("drift_bad")
        # The driver refuses to fingerprint DRIFT findings at all...
        assert [e for e in first.baseline_entries if e.rule == "DRIFT001"] == []
        # ...and even a hand-forged baseline entry cannot grandfather one.
        forged = Baseline()
        for v in first.violations:
            src = Path(v.path).read_text(encoding="utf-8").splitlines()
            text = src[v.line - 1] if v.line <= len(src) else ""
            fp = fingerprint_violation(v, text, 0)
            forged.entries[fp] = object()  # membership is all that matters
        again = lint("drift_bad", baseline=forged)
        assert [v.rule for v in again.violations] == ["DRIFT001", "DRIFT001"]
        assert again.baselined == []

    def test_val001_is_baselinable_with_entries(self):
        first = lint("val001_bad")
        baseline = Baseline()
        for entry in first.baseline_entries:
            baseline.entries[entry.fingerprint] = entry
        again = lint("val001_bad", baseline=baseline)
        assert again.violations == []
        assert [v.rule for v in again.baselined] == ["VAL001"]


# ---------------------------------------------------------------------------
# Guard refinement and suppression, on synthesized trees
# ---------------------------------------------------------------------------

def write_sim_module(tmp_path, source):
    sim = tmp_path / "sim"
    sim.mkdir()
    (sim / "__init__.py").write_text("", encoding="utf-8")
    (sim / "mod.py").write_text(textwrap.dedent(source), encoding="utf-8")
    return tmp_path


class TestRefinement:
    def test_comparison_guard_discharges_val001(self, tmp_path):
        tree = write_sim_module(tmp_path, """
            def f(n: int) -> float:
                total = max(n, 0)
                if total > 0:
                    return 1.0 / total
                return 0.0
        """)
        assert run_program_lint([tree], rules=["VAL001"]).violations == []

    def test_len_guard_discharges_val001(self, tmp_path):
        tree = write_sim_module(tmp_path, """
            def f(xs) -> float:
                if len(xs) == 0:
                    return 0.0
                return 1.0 / len(xs)
        """)
        assert run_program_lint([tree], rules=["VAL001"]).violations == []

    def test_unguarded_clamp_to_zero_still_flags(self, tmp_path):
        tree = write_sim_module(tmp_path, """
            def f(n: int) -> float:
                total = max(n, 0)
                return 1.0 / total
        """)
        result = run_program_lint([tree], rules=["VAL001"])
        assert [v.rule for v in result.violations] == ["VAL001"]

    def test_justified_noqa_suppresses_val001(self, tmp_path):
        tree = write_sim_module(tmp_path, """
            def f(n: int) -> float:
                total = max(n, 0)
                return 1.0 / total  # repro: noqa[VAL001] -- caller guarantees n >= 1
        """)
        result = run_program_lint([tree], rules=["VAL001"])
        assert result.violations == []
        assert result.suppressed_justified == 1


# ---------------------------------------------------------------------------
# Hypothesis: soundness of the abstract semantics
# ---------------------------------------------------------------------------

def analyze_source(source: str):
    """Interval summaries for a one-module program, built in memory."""
    ctx = ModuleContext("gen/sim/kernel.py", source, ast.parse(source))
    info = ModuleInfo("gen.sim.kernel", "gen/sim/kernel.py", ctx)
    model = ProgramModel(modules={"gen.sim.kernel": info})
    return ValueAnalysis(model, graph=None)


_CONSTS = st.integers(min_value=-3, max_value=3)


def _atom(vars_):
    return st.one_of(_CONSTS.map(str), st.sampled_from(sorted(vars_)))


def _expr(vars_, depth=2):
    """A small arithmetic expression over *vars_* as source text."""
    atom = _atom(vars_)
    if depth == 0:
        return atom
    sub = _expr(vars_, depth - 1)
    binop = st.tuples(sub, st.sampled_from(["+", "-", "*"]), sub).map(
        lambda t: f"({t[0]} {t[1]} {t[2]})"
    )
    call = st.tuples(st.sampled_from(["min", "max"]), sub, sub).map(
        lambda t: f"{t[0]}({t[1]}, {t[2]})"
    )
    unary = sub.map(lambda s: f"abs({s})")
    return st.one_of(atom, binop, call, unary)


_COND = st.tuples(
    st.sampled_from(["a", "b", "x"]),
    st.sampled_from(["<", "<=", ">", ">=", "==", "!="]),
    _CONSTS,
).map(lambda t: f"{t[0]} {t[1]} {t[2]}")


@st.composite
def _programs(draw):
    lines = [f"    x = {draw(_expr({'a', 'b'}))}"]
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        kind = draw(st.sampled_from(["assign", "if", "for"]))
        if kind == "assign":
            lines.append(f"    x = {draw(_expr({'a', 'b', 'x'}))}")
        elif kind == "if":
            lines.append(f"    if {draw(_COND)}:")
            lines.append(f"        x = {draw(_expr({'a', 'b', 'x'}))}")
            lines.append("    else:")
            lines.append(f"        x = {draw(_expr({'a', 'b', 'x'}))}")
        else:
            # Loop addends avoid x so concrete values stay small while
            # the abstract side still has to widen at the loop head.
            n = draw(st.integers(min_value=0, max_value=4))
            lines.append(f"    for it in range({n}):")
            lines.append(f"        x = x + {draw(_expr({'a', 'b'}))}")
    lines.append("    return x")
    return "def f(a, b):\n" + "\n".join(lines) + "\n"


@settings(max_examples=80, deadline=None)
@given(
    source=_programs(),
    a=st.integers(min_value=-5, max_value=5),
    b=st.integers(min_value=-5, max_value=5),
)
def test_abstract_interval_contains_concrete_result(source, a, b):
    namespace = {}
    exec(compile(source, "<gen>", "exec"), namespace)  # noqa: S102 - test-only
    concrete = namespace["f"](a, b)
    summary = analyze_source(source).summaries["gen.sim.kernel:f"]
    assert summary.interval.contains(float(concrete)), (
        f"unsound: concrete {concrete} outside {summary.interval}\n{source}"
    )
