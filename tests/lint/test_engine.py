"""Tests of the lint engine itself: suppression, scoping, drivers, reporters."""

import json

import pytest

from repro.lint.engine import (
    RULES,
    ModuleContext,
    Rule,
    Severity,
    Violation,
    lint_source,
    run_lint,
)
from repro.lint.reporters import format_json, format_rule_listing, format_text

SIM_PATH = "src/repro/sim/example.py"


class TestRegistry:
    def test_all_rule_packs_registered(self):
        assert {
            "DET001", "DET002", "NUM001", "NUM002", "NUM003",
            "ERR001", "ERR002", "CON001", "CON002", "CTR001",
        } <= set(RULES)

    def test_every_rule_has_metadata(self):
        for name, rule in RULES.items():
            assert rule.name == name
            assert rule.description
            assert isinstance(rule.severity, Severity)

    def test_unknown_rule_selection_rejected(self):
        with pytest.raises(KeyError, match="NOPE999"):
            lint_source("x = 1\n", rules=["NOPE999"])


class TestScoping:
    def test_package_scoped_rule_skips_other_paths(self):
        source = "import random\n\ndef f():\n    return random.random()\n"
        assert lint_source(source, "src/repro/cli.py", rules=["DET001"]) == []
        assert len(lint_source(source, SIM_PATH, rules=["DET001"])) == 1

    def test_unscoped_rule_applies_everywhere(self):
        source = "def f(x, accesses):\n    return x / accesses\n"
        assert len(lint_source(source, "scripts/anything.py", rules=["NUM001"])) == 1


class TestSuppression:
    SOURCE = (
        "import random\n"
        "\n"
        "def f():\n"
        "    return random.random()  # repro: noqa[DET001] -- test seed source\n"
    )

    def test_noqa_suppresses_named_rule(self):
        assert lint_source(self.SOURCE, SIM_PATH, rules=["DET001"]) == []

    def test_noqa_is_rule_specific(self):
        other = self.SOURCE.replace("noqa[DET001]", "noqa[NUM001]")
        assert len(lint_source(other, SIM_PATH, rules=["DET001"])) == 1

    def test_multiple_rules_in_one_noqa(self):
        source = (
            "import random\n"
            "def f(n):\n"
            "    return random.random() / n  # repro: noqa[DET001, NUM001]\n"
        )
        assert lint_source(source, SIM_PATH, rules=["DET001", "NUM001"]) == []

    def test_run_lint_counts_suppressions(self, tmp_path):
        target = tmp_path / "sim" / "mod.py"
        target.parent.mkdir()
        target.write_text(self.SOURCE)
        result = run_lint([tmp_path])
        assert result.ok
        assert result.suppressed == 1
        assert result.files_checked == 1


class TestDrivers:
    def test_violations_sorted_and_deterministic(self, tmp_path):
        (tmp_path / "b.py").write_text("def f(n):\n    return 1 / n\n")
        (tmp_path / "a.py").write_text(
            "def g(total, count):\n    return total / count + 1 / total\n"
        )
        first = run_lint([tmp_path], rules=["NUM001"])
        second = run_lint([tmp_path], rules=["NUM001"])
        assert [v.path for v in first.violations] == sorted(
            v.path for v in first.violations
        )
        assert first.violations == second.violations
        assert not first.ok

    def test_syntax_error_reported_not_raised(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        result = run_lint([tmp_path])
        assert len(result.violations) == 1
        assert result.violations[0].rule == "SYNTAX"

    def test_violation_format_is_clickable(self):
        v = Violation(
            path="x.py", line=3, col=7, rule="NUM001",
            severity=Severity.ERROR, message="boom",
        )
        assert v.format() == "x.py:3:7: NUM001 [error] boom"


class TestModuleContext:
    def test_import_alias_resolution(self):
        import ast

        source = "import numpy as np\nx = np.random.rand\n"
        ctx = ModuleContext("m.py", source, ast.parse(source))
        attr = ctx.tree.body[1].value
        assert ctx.resolve_call_chain(attr) == ["numpy", "random", "rand"]

    def test_from_import_resolution(self):
        import ast

        source = "from time import time as now\nx = now\n"
        ctx = ModuleContext("m.py", source, ast.parse(source))
        name = ctx.tree.body[1].value
        assert ctx.resolve_call_chain(name) == ["time", "time"]


class TestReporters:
    def _result(self, source, path=SIM_PATH):
        from repro.lint.engine import LintResult

        return LintResult(lint_source(source, path), files_checked=1)

    def test_text_report_has_summary_line(self):
        report = format_text(self._result("x = 1\n"))
        assert report.endswith("0 violations in 1 files")

    def test_json_report_round_trips(self):
        result = self._result("import random\ndef f():\n    return random.random()\n")
        payload = json.loads(format_json(result))
        assert payload["ok"] is False
        assert payload["violations"][0]["rule"] == "DET001"
        assert payload["violations"][0]["line"] == 3

    def test_rule_listing_covers_registry(self):
        listing = format_rule_listing()
        for name in RULES:
            assert name in listing


class TestRuleBase:
    def test_register_rejects_anonymous_rules(self):
        from repro.lint.engine import register

        with pytest.raises(ValueError, match="must set a name"):
            @register
            class Nameless(Rule):
                pass

    def test_register_rejects_duplicates(self):
        from repro.lint.engine import register

        with pytest.raises(ValueError, match="duplicate"):
            @register
            class Clash(Rule):
                name = "DET001"
