"""The SARIF reporter: document shape, validator, baseline states."""

import json
from pathlib import Path

from repro.lint.engine import Severity, Violation
from repro.lint.program import run_program_lint
from repro.lint.sarif import (
    SARIF_VERSION,
    format_sarif,
    sarif_document,
    validate_sarif,
)

TESTS_LINT = Path(__file__).resolve().parent
PROGRAM_FIXTURES = TESTS_LINT / "fixtures" / "program"


def sample_violation(**overrides):
    base = dict(
        path="src/repro/sim/engine.py",
        line=12,
        col=4,
        rule="RACE001",
        severity=Severity.ERROR,
        message="demo finding",
    )
    base.update(overrides)
    return Violation(**base)


class TestDocumentShape:
    def test_minimal_document_is_valid(self):
        doc = sarif_document([sample_violation()])
        assert validate_sarif(doc) == []
        assert doc["version"] == SARIF_VERSION

    def test_result_carries_location_and_rule_index(self):
        doc = sarif_document([sample_violation()])
        (run,) = doc["runs"]
        (result,) = run["results"]
        assert result["ruleId"] == "RACE001"
        rules = run["tool"]["driver"]["rules"]
        assert rules[result["ruleIndex"]]["id"] == "RACE001"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 12
        assert region["startColumn"] == 5  # 0-based col -> 1-based SARIF

    def test_rule_metadata_covers_both_registries(self):
        doc = sarif_document([])
        ids = {r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]}
        assert {"DET001", "RACE001", "PURE001", "FLOW001", "SUP001", "SYNTAX"} <= ids

    def test_baselined_findings_are_marked_unchanged(self):
        doc = sarif_document(
            [sample_violation()], baselined=[sample_violation(line=40)]
        )
        states = [r["baselineState"] for r in doc["runs"][0]["results"]]
        assert states == ["new", "unchanged"]

    def test_format_sarif_round_trips_through_json(self):
        text = format_sarif([sample_violation()])
        assert validate_sarif(json.loads(text)) == []


class TestValidator:
    def test_rejects_wrong_version(self):
        doc = sarif_document([])
        doc["version"] = "2.0.0"
        assert any("version" in p for p in validate_sarif(doc))

    def test_rejects_result_without_message(self):
        doc = sarif_document([sample_violation()])
        del doc["runs"][0]["results"][0]["message"]
        assert any("message.text" in p for p in validate_sarif(doc))

    def test_rejects_unknown_rule_id(self):
        doc = sarif_document([sample_violation()])
        doc["runs"][0]["results"][0]["ruleId"] = "BOGUS9"
        assert any("not in driver rules" in p for p in validate_sarif(doc))

    def test_rejects_zero_start_line(self):
        doc = sarif_document([sample_violation()])
        region = doc["runs"][0]["results"][0]["locations"][0]["physicalLocation"]["region"]
        region["startLine"] = 0
        assert any("startLine" in p for p in validate_sarif(doc))

    def test_rejects_non_object(self):
        assert validate_sarif([]) == ["document: expected a JSON object"]


class TestEndToEnd:
    def test_program_findings_serialize_valid_sarif(self):
        result = run_program_lint([PROGRAM_FIXTURES / "race_bad"])
        doc = sarif_document(result.violations, baselined=result.baselined)
        assert validate_sarif(doc) == []
        rule_ids = {r["ruleId"] for r in doc["runs"][0]["results"]}
        assert rule_ids == {"RACE001", "RACE002"}
