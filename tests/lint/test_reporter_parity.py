"""Text and JSON reporters must render the same summary numbers.

Both reporters draw from ``LintResult.summary()`` — these tests pin the
contract so a field added to one output cannot silently miss the other.
The value-pack tests extend the same contract across all three program
outputs: the rule/message/location triple must agree between text, JSON
and SARIF, and the structured ``detail`` payload (interval bounds, unit
pairs, drift readings) must reach JSON ``detail`` and SARIF
``properties`` byte-identically.
"""

import json
import textwrap
from pathlib import Path

from repro.lint.engine import run_lint
from repro.lint.program import run_program_lint
from repro.lint.reporters import format_json, format_program_text, format_text
from repro.lint.sarif import sarif_document, validate_sarif


def seeded_tree(tmp_path):
    """A sim-scoped tree with one violation and both suppression kinds."""
    sim = tmp_path / "sim"
    sim.mkdir()
    (sim / "seeded.py").write_text(textwrap.dedent("""
        import random


        def bare():
            return random.random()


        def justified():
            return random.random()  # repro: noqa[DET001] -- parity fixture: justified

        def unjustified():
            return random.random()  # repro: noqa[DET001]
    """), encoding="utf-8")
    return tmp_path


def test_summary_fields_match_between_text_and_json(tmp_path):
    result = run_lint([seeded_tree(tmp_path)])
    summary = result.summary()
    assert summary["violations"] == 1
    assert summary["suppressed"] == 2
    assert summary["suppressed_justified"] == 1
    assert summary["suppressed_unjustified"] == 1

    payload = json.loads(format_json(result))
    # Every summary field appears in the JSON payload with the same value
    # (the violation count is carried as the list's length).
    for key, value in summary.items():
        if key == "violations":
            assert len(payload["violations"]) == value
        else:
            assert payload[key] == value

    text = format_text(result)
    assert "1 violation in" in text
    assert "2 suppressed by noqa: 1 justified, 1 unjustified" in text


def test_clean_run_parity(tmp_path):
    (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
    result = run_lint([tmp_path])
    payload = json.loads(format_json(result))
    assert payload["ok"] is True
    assert payload["violations"] == []
    assert payload["parses"] == result.summary()["parses"] == 1
    text = format_text(result)
    assert "0 violations in 1 files" in text
    assert "suppressed" not in text  # no parenthetical when nothing suppressed


def test_violation_lines_match_to_dict(tmp_path):
    result = run_lint([seeded_tree(tmp_path)])
    payload = json.loads(format_json(result))
    text_lines = format_text(result).splitlines()
    for raw, violation in zip(payload["violations"], result.violations):
        assert raw == violation.to_dict()
        assert violation.format() in text_lines


# ---------------------------------------------------------------------------
# Value-pack parity: text / JSON / SARIF must carry the same findings,
# including the structured detail payloads.
# ---------------------------------------------------------------------------

VALUE_FIXTURES = Path(__file__).parent / "fixtures" / "value"
VALUE_RULES = ["VAL001", "VAL002", "UNIT001", "DRIFT001"]


def value_pack_result():
    paths = [
        VALUE_FIXTURES / pkg
        for pkg in ("val001_bad", "val002_bad", "unit001_bad", "drift_bad")
    ]
    result = run_program_lint(paths, rules=VALUE_RULES)
    # One of each VAL/UNIT finding plus both DRIFT siblings.
    assert sorted({v.rule for v in result.violations}) == [
        "DRIFT001", "UNIT001", "VAL001", "VAL002",
    ]
    return result


def test_value_pack_json_and_sarif_fields_match():
    result = value_pack_result()
    doc = sarif_document(result.violations)
    assert validate_sarif(doc) == []
    sarif_results = doc["runs"][0]["results"]
    assert len(sarif_results) == len(result.violations)
    for violation, raw in zip(result.violations, sarif_results):
        payload = violation.to_dict()
        assert raw["ruleId"] == payload["rule"] == violation.rule
        assert raw["message"]["text"] == payload["message"]
        loc = raw["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"].endswith(
            payload["path"].replace("\\", "/").lstrip("/")
        )
        assert loc["region"]["startLine"] == payload["line"]
        # The structured payload crosses both formats byte-identically.
        assert violation.detail is not None
        assert payload["detail"] == raw["properties"] == violation.detail


def test_value_pack_detail_payload_shapes():
    by_rule = {}
    for violation in value_pack_result().violations:
        by_rule.setdefault(violation.rule, violation)
    assert by_rule["VAL001"].detail.keys() == {
        "function", "denominator", "interval",
    }
    assert by_rule["VAL002"].detail.keys() == {
        "function", "index", "interval", "gather_shape",
    }
    assert {"function", "kind", "left_unit", "right_unit", "expression"} <= (
        by_rule["UNIT001"].detail.keys()
    )
    assert {"role", "implementation", "values", "siblings"} <= (
        by_rule["DRIFT001"].detail.keys()
    )
    # Detail payloads must round-trip through JSON (inf renders as "inf").
    for violation in value_pack_result().violations:
        assert json.loads(json.dumps(violation.detail)) == violation.detail


def test_value_pack_text_lines_match_violations():
    result = value_pack_result()
    text_lines = format_program_text(result).splitlines()
    for violation in result.violations:
        assert violation.format() in text_lines
