"""Text and JSON reporters must render the same summary numbers.

Both reporters draw from ``LintResult.summary()`` — these tests pin the
contract so a field added to one output cannot silently miss the other.
"""

import json
import textwrap

from repro.lint.engine import run_lint
from repro.lint.reporters import format_json, format_text


def seeded_tree(tmp_path):
    """A sim-scoped tree with one violation and both suppression kinds."""
    sim = tmp_path / "sim"
    sim.mkdir()
    (sim / "seeded.py").write_text(textwrap.dedent("""
        import random


        def bare():
            return random.random()


        def justified():
            return random.random()  # repro: noqa[DET001] -- parity fixture: justified

        def unjustified():
            return random.random()  # repro: noqa[DET001]
    """), encoding="utf-8")
    return tmp_path


def test_summary_fields_match_between_text_and_json(tmp_path):
    result = run_lint([seeded_tree(tmp_path)])
    summary = result.summary()
    assert summary["violations"] == 1
    assert summary["suppressed"] == 2
    assert summary["suppressed_justified"] == 1
    assert summary["suppressed_unjustified"] == 1

    payload = json.loads(format_json(result))
    # Every summary field appears in the JSON payload with the same value
    # (the violation count is carried as the list's length).
    for key, value in summary.items():
        if key == "violations":
            assert len(payload["violations"]) == value
        else:
            assert payload[key] == value

    text = format_text(result)
    assert "1 violation in" in text
    assert "2 suppressed by noqa: 1 justified, 1 unjustified" in text


def test_clean_run_parity(tmp_path):
    (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
    result = run_lint([tmp_path])
    payload = json.loads(format_json(result))
    assert payload["ok"] is True
    assert payload["violations"] == []
    assert payload["parses"] == result.summary()["parses"] == 1
    text = format_text(result)
    assert "0 violations in 1 files" in text
    assert "suppressed" not in text  # no parenthetical when nothing suppressed


def test_violation_lines_match_to_dict(tmp_path):
    result = run_lint([seeded_tree(tmp_path)])
    payload = json.loads(format_json(result))
    text_lines = format_text(result).splitlines()
    for raw, violation in zip(payload["violations"], result.violations):
        assert raw == violation.to_dict()
        assert violation.format() in text_lines
