"""The program rule packs against the seeded and clean fixtures."""

import textwrap
from pathlib import Path

from repro.lint.program import (
    load_baseline,
    run_program_lint,
    write_baseline,
)
from repro.lint.program.baseline import Baseline, fingerprint_violation

TESTS_LINT = Path(__file__).resolve().parent
PROGRAM_FIXTURES = TESTS_LINT / "fixtures" / "program"


def lint_fixture(name, **kwargs):
    return run_program_lint([PROGRAM_FIXTURES / name], **kwargs)


def write_tree(tmp_path, files):
    for rel, src in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(src), encoding="utf-8")
    return tmp_path


class TestRaceRules:
    def test_seeded_race_fixture_fires_both_rules(self):
        result = lint_fixture("race_bad")
        rules = sorted(v.rule for v in result.violations)
        assert rules == ["RACE001", "RACE002"]
        race1 = next(v for v in result.violations if v.rule == "RACE001")
        assert race1.path.endswith("race_bad/state.py")
        assert "_JOBS" in race1.message
        race2 = next(v for v in result.violations if v.rule == "RACE002")
        assert "_MODE" in race2.message
        assert "current_mode" in race2.message and "set_mode" in race2.message

    def test_lock_guarded_store_is_clean(self):
        result = lint_fixture("race_clean")
        assert result.ok, [v.format() for v in result.violations]


class TestPureRules:
    def test_seeded_purity_fixture_fires(self):
        result = lint_fixture("pure_bad")
        rules = {v.rule for v in result.violations}
        assert rules == {"PURE001", "PURE002"}
        impure = [v for v in result.violations if v.rule == "PURE001"]
        assert any("measure" in v.message for v in impure)
        hidden = [v for v in result.violations if v.rule == "PURE002"]
        assert any(
            "calibrated" in v.message and "_FACTORS" in v.message for v in hidden
        )

    def test_contained_state_is_clean(self):
        result = lint_fixture("pure_clean")
        assert result.ok, [v.format() for v in result.violations]

    def test_surrogate_predictor_is_a_measurement_producer(self):
        # analysis.surrogate public functions are held to the purity
        # contract even without a @satisfies decorator.
        result = lint_fixture("surrogate_bad")
        impure = [v for v in result.violations if v.rule == "PURE001"]
        assert any(
            "predict" in v.message
            and v.path.endswith("surrogate_bad/analysis/surrogate/predictor.py")
            for v in impure
        ), [v.format() for v in result.violations]

    def test_satisfies_decorated_function_is_held_to_purity(self, tmp_path):
        root = write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/contracts.py": """
                def satisfies(*names):
                    def deco(fn):
                        return fn
                    return deco
            """,
            "pkg/anywhere.py": """
                from pkg.contracts import satisfies

                _LOG = []

                @satisfies("camat_layer")
                def produce(x):
                    _LOG.append(x)
                    return x
            """,
        })
        result = run_program_lint([root])
        assert any(
            v.rule == "PURE001" and "produce" in v.message
            for v in result.violations
        )


class TestFlowRule:
    def test_seeded_flow_fixture_fires_at_source_and_target(self):
        result = lint_fixture("flow_bad")
        assert all(v.rule == "FLOW001" for v in result.violations)
        messages = "\n".join(v.message for v in result.violations)
        assert "generator" in messages  # taint through the copy
        assert "random.Random" in messages  # in-module construction

    def test_factory_built_rng_is_clean(self):
        result = lint_fixture("flow_clean")
        assert result.ok, [v.format() for v in result.violations]


class TestSuppressions:
    def test_unjustified_noqa_is_ignored_and_flagged(self):
        result = lint_fixture("sup_bad")
        rules = sorted(v.rule for v in result.violations)
        assert rules == ["RACE001", "SUP001"]  # suppression did NOT apply
        assert result.suppressed == 0
        assert result.suppressed_unjustified == 1

    def test_justified_noqa_suppresses(self, tmp_path):
        root = write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/state.py": """
                _JOBS = {}

                def record(key, value):
                    _JOBS[key] = value  # repro: noqa[RACE001] -- worker-local store by design
                    return key
            """,
            "pkg/dispatch.py": """
                from pkg.state import record

                class Job:
                    def __init__(self, fn):
                        self.fn = fn

                def submit():
                    return Job(fn=record)
            """,
        })
        result = run_program_lint([root])
        assert result.ok, [v.format() for v in result.violations]
        assert result.suppressed == 1
        assert result.suppressed_justified == 1


class TestBaselineWorkflow:
    def test_baselined_findings_do_not_gate(self, tmp_path):
        first = lint_fixture("race_bad")
        assert not first.ok
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, first.baseline_entries)

        second = lint_fixture("race_bad", baseline=load_baseline(baseline_path))
        assert second.ok
        assert sorted(v.rule for v in second.baselined) == ["RACE001", "RACE002"]

    def test_baseline_round_trip_preserves_fingerprints(self, tmp_path):
        result = lint_fixture("race_bad")
        path = tmp_path / "baseline.json"
        write_baseline(path, result.baseline_entries)
        loaded = load_baseline(path)
        assert len(loaded) == len(result.baseline_entries)
        for entry in result.baseline_entries:
            assert entry.fingerprint in loaded

    def test_missing_baseline_is_empty(self, tmp_path):
        assert len(load_baseline(tmp_path / "nope.json")) == 0

    def test_sup001_is_never_baselined(self, tmp_path):
        result = lint_fixture("sup_bad")
        assert all(e.rule != "SUP001" for e in result.baseline_entries)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, result.baseline_entries)
        rerun = lint_fixture("sup_bad", baseline=load_baseline(baseline_path))
        assert [v.rule for v in rerun.violations] == ["SUP001"]

    def test_fingerprint_is_line_number_independent(self):
        result = lint_fixture("race_bad")
        violation = result.violations[0]
        a = fingerprint_violation(violation, "  _JOBS[key] = value  ", 0)
        b = fingerprint_violation(violation, "_JOBS[key] = value", 0)
        assert a == b  # whitespace/line position does not shift the identity
        assert a != fingerprint_violation(violation, "_JOBS[key] = value", 1)


class TestSharedCacheAndSelection:
    def test_rule_selection(self):
        result = lint_fixture("race_bad", rules=["RACE002"])
        assert [v.rule for v in result.violations] == ["RACE002"]

    def test_unknown_rule_raises(self):
        try:
            lint_fixture("race_bad", rules=["NOPE999"])
        except KeyError as exc:
            assert "NOPE999" in str(exc)
        else:
            raise AssertionError("expected KeyError")

    def test_shared_cache_parses_each_file_once(self):
        from repro.lint.engine import ASTCache, run_lint

        cache = ASTCache()
        target = PROGRAM_FIXTURES / "race_bad"
        file_result = run_lint([target], cache=cache)
        program_result = run_program_lint([target], cache=cache)
        assert file_result.parses == 3  # __init__, dispatch, state
        assert program_result.parses == 0
        assert program_result.parse_reuses == 3
        empty = Baseline()
        assert len(empty) == 0
