"""Unit tests for call-graph construction and entry-point discovery."""

import textwrap
from pathlib import Path

from repro.lint.program import build_program, find_entry_points
from repro.lint.program.callgraph import build_call_graph

TESTS_LINT = Path(__file__).resolve().parent
PROGRAM_FIXTURES = TESTS_LINT / "fixtures" / "program"


def build(tmp_path, files):
    for rel, src in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(src), encoding="utf-8")
    model = build_program([tmp_path])
    return model, build_call_graph(model)


class TestEdges:
    def test_direct_and_from_import_calls(self, tmp_path):
        _, graph = build(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/impl.py": """
                def helper():
                    return 1

                def outer():
                    return helper()
            """,
            "pkg/user.py": """
                from pkg.impl import outer

                def use():
                    return outer()
            """,
        })
        assert graph.callees("pkg.impl:outer") == ("pkg.impl:helper",)
        assert graph.callees("pkg.user:use") == ("pkg.impl:outer",)

    def test_self_method_and_constructor_edges(self, tmp_path):
        _, graph = build(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                class Runner:
                    def __init__(self):
                        self.n = 0

                    def step(self):
                        return self.reset()

                    def reset(self):
                        self.n = 0

                def make():
                    return Runner()
            """,
        })
        assert graph.callees("pkg.mod:Runner.step") == ("pkg.mod:Runner.reset",)
        assert graph.callees("pkg.mod:make") == ("pkg.mod:Runner.__init__",)

    def test_unresolved_call_contributes_no_edge(self, tmp_path):
        _, graph = build(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                import numpy as np

                def use(obj):
                    obj.method()
                    return np.sqrt(2.0)
            """,
        })
        assert graph.callees("pkg.mod:use") == ()
        dotted = {s.dotted for s in graph.sites["pkg.mod:use"]}
        assert "numpy.sqrt" in dotted  # chain kept even though unresolved


class TestReachability:
    def test_reachable_and_shortest_path(self, tmp_path):
        _, graph = build(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/mod.py": """
                def a():
                    return b()

                def b():
                    return c()

                def c():
                    return 1

                def island():
                    return 2
            """,
        })
        reachable = graph.reachable({"pkg.mod:a"})
        assert reachable == {"pkg.mod:a", "pkg.mod:b", "pkg.mod:c"}
        assert graph.path({"pkg.mod:a"}, "pkg.mod:c") == [
            "pkg.mod:a", "pkg.mod:b", "pkg.mod:c",
        ]
        assert graph.path({"pkg.mod:a"}, "pkg.mod:island") is None


class TestEntryPoints:
    def test_cli_roots(self, tmp_path):
        model, _ = build(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/cli.py": """
                def main():
                    return 0

                def _cmd_run(args):
                    return 0

                def _helper():
                    return 0
            """,
        })
        entries = find_entry_points(model)
        assert entries.cli == {"pkg.cli:main", "pkg.cli:_cmd_run"}

    def test_engine_roots_include_public_methods(self, tmp_path):
        model, _ = build(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/sim/__init__.py": "",
            "pkg/sim/engine.py": """
                class Simulator:
                    def run(self):
                        return self._step()

                    def _step(self):
                        return 1

                def simulate():
                    return 0
            """,
        })
        entries = find_entry_points(model)
        assert entries.engine == {
            "pkg.sim.engine:Simulator.run",
            "pkg.sim.engine:simulate",
        }

    def test_pool_roots_are_escaped_dispatcher_references(self):
        model = build_program([PROGRAM_FIXTURES / "race_bad"])
        entries = find_entry_points(model)
        # record escapes via Job(fn=record) in dispatch.submit.
        assert "race_bad.state:record" in entries.pool

    def test_worker_loops_are_roots_by_name(self, tmp_path):
        model, _ = build(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/pool.py": """
                def _worker_main(conn):
                    return conn

                def supervise():
                    return 1
            """,
        })
        entries = find_entry_points(model)
        assert entries.pool == {"pkg.pool:_worker_main"}
        assert entries.all() == entries.cli | entries.pool | entries.engine
