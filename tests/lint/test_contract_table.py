"""Tests of the contract table machinery (decorator, registry, verify)."""

import dataclasses

import pytest

from repro.core.analyzer import measure_layer
from repro.lint.contracts import (
    CONTRACTS,
    ContractViolation,
    check_layer,
    check_stats,
    runtime_checks,
    satisfies,
    verify,
)


class TestContractTable:
    def test_every_contract_is_typed(self):
        for name, contract in CONTRACTS.items():
            assert contract.name == name
            assert contract.equation
            assert contract.applies_to
            assert callable(contract.check)

    def test_expected_contracts_present(self):
        assert {
            "cycle_conservation", "pure_subset", "rate_bounds",
            "concurrency_floor", "eq2_identity", "eq3_apc_inverse",
            "finite_layer", "lpmr_definitions", "report_bounds",
            "finite_report", "stats_layers",
        } <= set(CONTRACTS)

    def test_verify_reports_equation_in_message(self):
        m = measure_layer([0], [3], [3], [10])
        broken = dataclasses.replace(m, pure_miss_rate=2.0)
        problems = verify(broken, ["rate_bounds"])
        assert len(problems) == 1
        assert "0 <= pMR <= MR <= 1" in problems[0]


class TestSatisfiesDecorator:
    def test_unknown_contract_rejected_at_decoration(self):
        with pytest.raises(KeyError, match="unknown contract"):
            @satisfies("no_such_contract")
            def f():
                pass

    def test_empty_declaration_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            @satisfies()
            def f():
                pass

    def test_declaration_is_introspectable(self):
        @satisfies("finite_layer")
        def produce():
            return measure_layer([0], [2], [0], [0])

        assert produce.__repro_contracts__ == ("finite_layer",)

    def test_disabled_mode_never_checks(self):
        @satisfies("cycle_conservation")
        def produce_broken():
            m = measure_layer([0], [2], [0], [0])
            return dataclasses.replace(m, active_cycles=99)

        assert produce_broken().active_cycles == 99  # no mode, no check

    def test_enabled_mode_raises_on_broken_output(self):
        @satisfies("cycle_conservation")
        def produce_broken():
            m = measure_layer([0], [2], [0], [0])
            return dataclasses.replace(m, active_cycles=99)

        with runtime_checks():
            with pytest.raises(ContractViolation, match="cycle_conservation"):
                produce_broken()

    def test_violation_is_not_retryable(self):
        from repro.runtime.errors import is_retryable

        broken = dataclasses.replace(
            measure_layer([0], [2], [0], [0]), active_cycles=99
        )
        with pytest.raises(ContractViolation) as info:
            check_layer(broken)
        assert not is_retryable(info.value)


class TestStatsContracts:
    def test_measured_hierarchy_passes(self):
        from repro.sim.params import table1_config
        from repro.sim.stats import simulate_and_measure
        from repro.workloads.spec import get_benchmark

        trace = get_benchmark("429.mcf").trace(600, seed=2)
        _, stats = simulate_and_measure(table1_config("B"), trace, seed=0)
        assert check_stats(stats) is stats

    def test_tampered_layer_inside_stats_is_caught(self):
        from repro.sim.params import table1_config
        from repro.sim.stats import simulate_and_measure
        from repro.workloads.spec import get_benchmark

        trace = get_benchmark("429.mcf").trace(600, seed=2)
        _, stats = simulate_and_measure(table1_config("B"), trace, seed=0)
        broken_l1 = dataclasses.replace(stats.l1, pure_miss_cycles=10**9)
        broken = dataclasses.replace(stats, l1=broken_l1)
        with pytest.raises(ContractViolation, match="l1"):
            check_stats(broken)
