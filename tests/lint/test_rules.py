"""Per-rule positive/negative cases for every rule pack."""

from repro.lint.engine import lint_source

SIM = "src/repro/sim/mod.py"
CORE = "src/repro/core/mod.py"
RUNTIME = "src/repro/runtime/mod.py"
SCHED = "src/repro/sched/mod.py"
OBS = "src/repro/obs/mod.py"
SERVICE = "src/repro/service/mod.py"


def rules_hit(source, path, *rules):
    return sorted({v.rule for v in lint_source(source, path, rules=list(rules) or None)})


class TestDET001:
    def test_flags_stdlib_random(self):
        src = "import random\n\ndef f():\n    return random.gauss(0, 1)\n"
        assert rules_hit(src, SIM, "DET001") == ["DET001"]

    def test_flags_time_and_uuid(self):
        src = (
            "import time\nimport uuid\n\n"
            "def f():\n    return time.time(), uuid.uuid4()\n"
        )
        assert len(lint_source(src, CORE, rules=["DET001"])) == 2

    def test_flags_legacy_numpy_random(self):
        src = "import numpy as np\n\ndef f():\n    return np.random.rand(3)\n"
        assert rules_hit(src, SIM, "DET001") == ["DET001"]

    def test_allows_seeded_generator_api(self):
        src = "import numpy as np\n\ndef f(seed):\n    return np.random.default_rng(seed)\n"
        assert lint_source(src, SIM, rules=["DET001"]) == []

    def test_ignores_unimported_name_collisions(self):
        # A local object that happens to be called ``random`` is not the
        # stdlib module; without an import the chain must not resolve.
        src = "def f(random):\n    return random.random()\n"
        assert lint_source(src, SIM, rules=["DET001"]) == []

    def test_ignores_monotonic_timing(self):
        src = "import time\n\ndef f():\n    return time.perf_counter()\n"
        assert lint_source(src, SIM, rules=["DET001"]) == []


class TestDET002:
    def test_flags_for_over_set_literal(self):
        src = "def f():\n    for x in {1, 2}:\n        pass\n"
        assert rules_hit(src, SIM, "DET002") == ["DET002"]

    def test_flags_comprehension_over_set_call(self):
        src = "def f(xs):\n    return [x for x in set(xs)]\n"
        assert rules_hit(src, SIM, "DET002") == ["DET002"]

    def test_allows_sorted_set(self):
        src = "def f(xs):\n    return [x for x in sorted(set(xs))]\n"
        assert lint_source(src, SIM, rules=["DET002"]) == []


class TestNUM001:
    def test_flags_unguarded_model_division(self):
        src = "def f(cycles, accesses):\n    return cycles / accesses\n"
        assert rules_hit(src, CORE, "NUM001") == ["NUM001"]

    def test_ternary_guard_accepted(self):
        src = "def f(c, accesses):\n    return c / accesses if accesses else 0.0\n"
        assert lint_source(src, CORE, rules=["NUM001"]) == []

    def test_early_return_guard_accepted(self):
        src = (
            "def f(c, accesses):\n"
            "    if accesses == 0:\n        return 0.0\n"
            "    return c / accesses\n"
        )
        assert lint_source(src, CORE, rules=["NUM001"]) == []

    def test_validator_guard_accepted(self):
        src = (
            "from repro.util.validation import check_positive\n\n"
            "def f(c, cpi_exe):\n"
            "    check_positive('cpi_exe', cpi_exe)\n"
            "    return c / cpi_exe\n"
        )
        assert lint_source(src, CORE, rules=["NUM001"]) == []

    def test_check_int_minimum_guard_accepted(self):
        src = (
            "from repro.util.validation import check_int\n\n"
            "def f(c, n_accesses):\n"
            "    check_int('n_accesses', n_accesses, minimum=1)\n"
            "    return c / n_accesses\n"
        )
        assert lint_source(src, CORE, rules=["NUM001"]) == []

    def test_post_init_validation_covers_methods(self):
        src = (
            "from dataclasses import dataclass\n"
            "from repro.util.validation import check_positive\n\n"
            "@dataclass\nclass Model:\n"
            "    cpi_exe: float\n"
            "    stall: float\n\n"
            "    def __post_init__(self):\n"
            "        check_positive('cpi_exe', self.cpi_exe)\n\n"
            "    def fraction(self):\n"
            "        return self.stall / self.cpi_exe\n"
        )
        assert lint_source(src, CORE, rules=["NUM001"]) == []

    def test_unvalidated_self_field_flagged(self):
        src = (
            "class Model:\n"
            "    def fraction(self):\n"
            "        return self.stall / self.cpi_exe\n"
        )
        assert rules_hit(src, CORE, "NUM001") == ["NUM001"]

    def test_non_model_denominator_ignored(self):
        src = "def f(a, width):\n    return a / width\n"
        assert lint_source(src, CORE, rules=["NUM001"]) == []


class TestNUM002:
    def test_flags_nonzero_float_equality(self):
        src = "def f(x):\n    return x == 0.25\n"
        assert rules_hit(src, CORE, "NUM002") == ["NUM002"]

    def test_zero_sentinel_exempt(self):
        src = "def f(x):\n    return x == 0.0\n"
        assert lint_source(src, CORE, rules=["NUM002"]) == []

    def test_int_equality_ignored(self):
        src = "def f(x):\n    return x == 3\n"
        assert lint_source(src, CORE, rules=["NUM002"]) == []


class TestNUM003:
    def test_flags_float_inf_string(self):
        src = "LIMIT = float('inf')\n"
        out = lint_source(src, CORE, rules=["NUM003"])
        assert [v.rule for v in out] == ["NUM003"]
        assert out[0].severity.value == "warning"

    def test_float_of_number_ignored(self):
        src = "def f(x):\n    return float(x)\n"
        assert lint_source(src, CORE, rules=["NUM003"]) == []


class TestERR001:
    def test_flags_swallowing_broad_handler(self):
        src = (
            "def f(fn):\n"
            "    try:\n        return fn()\n"
            "    except Exception:\n        return None\n"
        )
        assert rules_hit(src, RUNTIME, "ERR001") == ["ERR001"]

    def test_bare_except_flagged(self):
        src = (
            "def f(fn):\n"
            "    try:\n        return fn()\n"
            "    except:\n        return None\n"
        )
        assert rules_hit(src, RUNTIME, "ERR001") == ["ERR001"]

    def test_reraise_is_allowed(self):
        src = (
            "def f(fn):\n"
            "    try:\n        return fn()\n"
            "    except Exception:\n        log()\n        raise\n"
        )
        assert lint_source(src, RUNTIME, rules=["ERR001"]) == []

    def test_taxonomy_first_then_broad_is_allowed(self):
        src = (
            "from repro.runtime.errors import ReproError\n\n"
            "def f(fn):\n"
            "    try:\n        return fn()\n"
            "    except ReproError:\n        raise\n"
            "    except Exception:\n        return None\n"
        )
        assert lint_source(src, RUNTIME, rules=["ERR001"]) == []

    def test_narrow_handler_is_fine(self):
        src = (
            "def f(fn):\n"
            "    try:\n        return fn()\n"
            "    except (OSError, KeyError):\n        return None\n"
        )
        assert lint_source(src, RUNTIME, rules=["ERR001"]) == []


class TestERR002:
    def test_flags_builtin_raise_in_runtime(self):
        src = "def f(x):\n    raise ValueError('bad')\n"
        assert rules_hit(src, RUNTIME, "ERR002") == ["ERR002"]

    def test_scoped_to_runtime_package(self):
        src = "def f(x):\n    raise ValueError('bad')\n"
        assert lint_source(src, CORE, rules=["ERR002"]) == []

    def test_taxonomy_raise_is_fine(self):
        src = (
            "from repro.runtime.errors import ConfigError\n\n"
            "def f(x):\n    raise ConfigError('bad')\n"
        )
        assert lint_source(src, RUNTIME, rules=["ERR002"]) == []


class TestCON001:
    def test_flags_module_level_mutable(self):
        src = "cache = {}\n"
        assert rules_hit(src, RUNTIME, "CON001") == ["CON001"]

    def test_all_caps_registry_exempt(self):
        src = "RULES = {}\n"
        assert lint_source(src, RUNTIME, rules=["CON001"]) == []

    def test_function_local_mutable_is_fine(self):
        src = "def f():\n    cache = {}\n    return cache\n"
        assert lint_source(src, RUNTIME, rules=["CON001"]) == []

    def test_scoped_to_pool_adjacent_packages(self):
        src = "cache = {}\n"
        assert lint_source(src, "src/repro/analysis/mod.py", rules=["CON001"]) == []


class TestCON002:
    def test_flags_global_in_worker(self):
        src = (
            "counter = 0\n\n"
            "def _worker_main(conn):\n"
            "    global counter\n"
            "    counter += 1\n"
        )
        assert "CON002" in rules_hit(src, RUNTIME, "CON002")

    def test_flags_attribute_write_on_nonlocal_object(self):
        src = (
            "def _worker_main(conn, pool):\n"
            "    state.jobs_done += 1\n"
        )
        assert rules_hit(src, RUNTIME, "CON002") == ["CON002"]

    def test_local_attribute_writes_are_fine(self):
        src = (
            "def _worker_main(conn):\n"
            "    result = make()\n"
            "    result.value = 3\n"
            "    conn.send(result)\n"
        )
        assert lint_source(src, RUNTIME, rules=["CON002"]) == []

    def test_process_target_detected(self):
        src = (
            "from multiprocessing import Process\n\n"
            "def entry(q):\n"
            "    shared.total = 1\n\n"
            "def start():\n"
            "    return Process(target=entry, args=(1,))\n"
        )
        assert rules_hit(src, RUNTIME, "CON002") == ["CON002"]

    def test_non_worker_functions_ignored(self):
        src = "def helper(state):\n    state.value = 1\n"
        assert lint_source(src, RUNTIME, rules=["CON002"]) == []


class TestCON003:
    def test_flags_bare_stream_read(self):
        src = (
            "async def handle(reader):\n"
            "    return await reader.readline()\n"
        )
        assert rules_hit(src, SERVICE, "CON003") == ["CON003"]

    def test_flags_queue_primitives(self):
        src = (
            "async def pump(queue, out):\n"
            "    item = await queue.get()\n"
            "    await out.put(item)\n"
            "    return item\n"
        )
        assert len(lint_source(src, SERVICE, rules=["CON003"])) == 2

    def test_join_and_wait_left_to_async_tier(self):
        # Rescoped in PR 7: the generic join/wait shapes belong to the
        # whole-program ASYNC001 analysis, not the per-file primitive rule.
        src = (
            "async def settle(queue, event):\n"
            "    await queue.join()\n"
            "    await event.wait()\n"
        )
        assert lint_source(src, SERVICE, rules=["CON003"]) == []

    def test_wait_for_wrapper_accepted(self):
        src = (
            "import asyncio\n\n"
            "async def handle(reader):\n"
            "    return await asyncio.wait_for(reader.readline(), timeout=5)\n"
        )
        assert lint_source(src, SERVICE, rules=["CON003"]) == []

    def test_timeout_kwarg_accepted(self):
        src = (
            "async def stop(scheduler):\n"
            "    await scheduler.drain(timeout_s=30.0)\n"
        )
        assert lint_source(src, SERVICE, rules=["CON003"]) == []

    def test_timeout_context_accepted(self):
        src = (
            "import asyncio\n\n"
            "async def handle(queue):\n"
            "    async with asyncio.timeout(2.0):\n"
            "        await queue.get()\n"
        )
        assert lint_source(src, SERVICE, rules=["CON003"]) == []

    def test_timeout_context_outside_coroutine_does_not_count(self):
        # The bounding block must enclose the await, not merely appear in
        # an outer function that defines the coroutine.
        src = (
            "import asyncio\n\n"
            "def make(queue):\n"
            "    async with asyncio.timeout(2.0):\n"
            "        async def inner():\n"
            "            await queue.get()\n"
        )
        assert rules_hit(src, SERVICE, "CON003") == ["CON003"]

    def test_non_blocking_awaits_ignored(self):
        src = (
            "import asyncio\n\n"
            "async def respond(self, line):\n"
            "    await asyncio.sleep(0.1)\n"
            "    return await self.handle(line)\n"
        )
        assert lint_source(src, SERVICE, rules=["CON003"]) == []

    def test_scoped_to_service_package(self):
        src = (
            "async def handle(reader):\n"
            "    return await reader.readline()\n"
        )
        assert lint_source(src, RUNTIME, rules=["CON003"]) == []


class TestOBS001:
    def test_flags_wall_clock_duration(self):
        src = "import time\n\ndef f():\n    return time.time()\n"
        assert rules_hit(src, OBS, "OBS001") == ["OBS001"]

    def test_flags_time_ns(self):
        src = "import time\n\ndef f():\n    return time.time_ns()\n"
        assert rules_hit(src, RUNTIME, "OBS001") == ["OBS001"]

    def test_from_import_alias_resolved(self):
        src = "from time import time as now\n\ndef f():\n    return now()\n"
        assert rules_hit(src, OBS, "OBS001") == ["OBS001"]

    def test_perf_counter_is_fine(self):
        src = "from time import perf_counter\n\ndef f():\n    return perf_counter()\n"
        assert lint_source(src, OBS, rules=["OBS001"]) == []

    def test_scoped_to_obs_and_runtime(self):
        src = "import time\n\ndef f():\n    return time.time()\n"
        assert lint_source(src, "src/repro/analysis/mod.py", rules=["OBS001"]) == []

    def test_noqa_suppresses_with_justification(self):
        src = (
            "import time\n\ndef f():\n"
            "    return time.time()  # repro: noqa[OBS001] -- epoch timestamp, not a duration\n"
        )
        assert lint_source(src, OBS, rules=["OBS001"]) == []


class TestOBS002:
    def test_flags_direct_print(self):
        src = "def f(x):\n    print(x)\n"
        assert rules_hit(src, OBS, "OBS002") == ["OBS002"]

    def test_flags_print_in_runtime(self):
        src = "def f(x):\n    print('done', x)\n"
        assert rules_hit(src, RUNTIME, "OBS002") == ["OBS002"]

    def test_scoped_outside_obs_runtime(self):
        src = "def f(x):\n    print(x)\n"
        assert lint_source(src, "src/repro/cli.py", rules=["OBS002"]) == []

    def test_method_named_print_is_fine(self):
        src = "def f(report):\n    report.print()\n"
        assert lint_source(src, OBS, rules=["OBS002"]) == []


class TestPERF001:
    def test_flags_span_in_loop(self):
        src = (
            "from repro.obs import trace as obs_trace\n\n"
            "def run(instrs):\n"
            "    for i in instrs:\n"
            "        with obs_trace.span('issue', op=i):\n"
            "            pass\n"
        )
        assert rules_hit(src, SIM, "PERF001") == ["PERF001"]

    def test_flags_from_imported_event_in_while(self):
        src = (
            "from repro.obs.trace import event\n\n"
            "def drain(q):\n"
            "    while q:\n"
            "        event('fill', block=q.pop())\n"
        )
        assert rules_hit(src, SIM, "PERF001") == ["PERF001"]

    def test_guard_in_loop_accepted(self):
        src = (
            "from repro.obs import tracing_enabled\n"
            "from repro.obs.trace import event\n\n"
            "def run(instrs):\n"
            "    for i in instrs:\n"
            "        if tracing_enabled():\n"
            "            event('issue', op=i)\n"
        )
        assert lint_source(src, SIM, rules=["PERF001"]) == []

    def test_hoisted_guard_accepted(self):
        src = (
            "from repro.obs import tracing_enabled\n"
            "from repro.obs.trace import event\n\n"
            "def run(instrs):\n"
            "    if tracing_enabled():\n"
            "        for i in instrs:\n"
            "            event('issue', op=i)\n"
        )
        assert lint_source(src, SIM, rules=["PERF001"]) == []

    def test_span_outside_loop_is_fine(self):
        src = (
            "from repro.obs import trace as obs_trace\n\n"
            "def run(instrs):\n"
            "    with obs_trace.span('run'):\n"
            "        for i in instrs:\n"
            "            pass\n"
        )
        assert lint_source(src, SIM, rules=["PERF001"]) == []

    def test_unrelated_span_name_ignored(self):
        # A local helper named span that is not from repro.obs must not fire.
        src = (
            "def run(instrs, span):\n"
            "    for i in instrs:\n"
            "        span(i)\n"
        )
        assert lint_source(src, SIM, rules=["PERF001"]) == []

    def test_scoped_to_sim_core_and_analysis(self):
        src = (
            "from repro.obs.trace import event\n\n"
            "def run(instrs):\n"
            "    for i in instrs:\n"
            "        event('issue')\n"
        )
        assert lint_source(src, RUNTIME, rules=["PERF001"]) == []
        # analysis is a hot package too: predict_many runs per-config.
        analysis = "src/repro/analysis/surrogate/mod.py"
        assert rules_hit(src, analysis, "PERF001") == ["PERF001"]


class TestCTR001:
    def test_flags_undeclared_producer(self):
        src = (
            "def measure(x):\n"
            "    return LayerMeasurement(accesses=x)\n"
        )
        assert rules_hit(src, CORE, "CTR001") == ["CTR001"]

    def test_satisfies_decorator_accepted(self):
        src = (
            "from repro.lint.contracts import satisfies\n\n"
            "@satisfies('finite_layer')\n"
            "def measure(x):\n"
            "    return LayerMeasurement(accesses=x)\n"
        )
        assert lint_source(src, CORE, rules=["CTR001"]) == []

    def test_from_dict_exempt(self):
        src = (
            "class LayerMeasurement:\n"
            "    @classmethod\n"
            "    def from_dict(cls, data):\n"
            "        return LayerMeasurement(**data)\n"
        )
        assert lint_source(src, CORE, rules=["CTR001"]) == []

    def test_one_violation_per_function(self):
        src = (
            "def measure(x):\n"
            "    if x:\n"
            "        return LayerMeasurement(accesses=1)\n"
            "    return LayerMeasurement(accesses=0)\n"
        )
        assert len(lint_source(src, CORE, rules=["CTR001"])) == 1
