"""Tests for the fault-injection layer."""

import math

import pytest

from repro.runtime.errors import MeasurementError
from repro.runtime.faults import FaultConfig, FaultInjector
from repro.runtime.guards import ensure_finite_stats
from repro.sim.params import table1_config
from repro.sim.stats import simulate_and_measure
from repro.workloads.spec import get_benchmark


@pytest.fixture(scope="module")
def trace():
    return get_benchmark("401.bzip2").trace(1500, seed=3)


@pytest.fixture(scope="module")
def clean_stats(trace):
    _, st = simulate_and_measure(table1_config("A"), trace, seed=0)
    return st


class TestFaultConfig:
    def test_uniform_splits_rate(self):
        cfg = FaultConfig.uniform(0.4, seed=5)
        assert cfg.nan_rate == cfg.drop_rate == cfg.truncate_rate == cfg.exception_rate
        assert cfg.total_rate == pytest.approx(0.4)
        assert cfg.seed == 5

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultConfig(nan_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig.uniform(-0.1)

    def test_zero_by_default(self):
        assert FaultConfig().total_rate == 0.0


class TestFaultInjector:
    def test_exception_kind(self):
        inj = FaultInjector(FaultConfig(exception_rate=1.0), "k")
        with pytest.raises(MeasurementError, match="injected"):
            inj.maybe_fail()
        assert inj.injected["exception"] == 1

    def test_nan_kind_is_guard_detectable(self, clean_stats):
        inj = FaultInjector(FaultConfig(nan_rate=1.0), "k")
        corrupted = inj.corrupt_stats(clean_stats)
        with pytest.raises(MeasurementError):
            ensure_finite_stats(corrupted)

    def test_drop_kind_is_guard_detectable(self, clean_stats):
        inj = FaultInjector(FaultConfig(drop_rate=1.0), "k")
        corrupted = inj.corrupt_stats(clean_stats)
        assert corrupted.l1.accesses == 0
        with pytest.raises(MeasurementError, match="empty L1"):
            ensure_finite_stats(corrupted)

    def test_truncate_kind(self, trace):
        inj = FaultInjector(
            FaultConfig(truncate_rate=1.0, truncate_fraction=0.5), "k"
        )
        short = inj.corrupt_trace(trace)
        assert 0 < short.n_instructions < trace.n_instructions

    def test_no_faults_at_zero_rate(self, trace, clean_stats):
        inj = FaultInjector(FaultConfig(), "k")
        inj.maybe_fail()
        assert inj.corrupt_trace(trace) is trace
        assert inj.corrupt_stats(clean_stats) == clean_stats
        assert inj.total_injected == 0

    def test_deterministic_per_label(self):
        cfg = FaultConfig.uniform(0.5, seed=11)

        def draws(*labels):
            inj = FaultInjector(cfg, *labels)
            out = []
            for _ in range(50):
                try:
                    inj.maybe_fail()
                    out.append(False)
                except MeasurementError:
                    out.append(True)
            return out

        assert draws("job", 1) == draws("job", 1)
        assert draws("job", 1) != draws("job", 2)


class TestWrapSimulate:
    def test_wrapped_clean_when_rate_zero(self, trace):
        inj = FaultInjector(FaultConfig(), "k")
        faulty = inj.wrap_simulate()
        _, st = faulty(table1_config("A"), trace, seed=0)
        _, clean = simulate_and_measure(table1_config("A"), trace, seed=0)
        assert st.cpi == clean.cpi

    def test_every_injected_corruption_is_detectable(self, trace):
        # The contract that makes retries sound: whatever the injector does,
        # the guards catch it (or it raised already).
        cfg = table1_config("A")
        expected = trace.n_instructions
        detected = 0
        for attempt in range(30):
            inj = FaultInjector(FaultConfig.uniform(0.8, seed=2), "det", attempt)
            faulty = inj.wrap_simulate()
            try:
                _, st = faulty(cfg, trace, seed=0)
                ensure_finite_stats(st, expected_instructions=expected)
            except MeasurementError:
                detected += 1
                continue
            assert inj.total_injected == 0, "undetected corruption"
        assert detected > 0  # at 80% total rate some attempts must corrupt
