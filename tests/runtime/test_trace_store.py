"""Worker-resident trace store: digests, registration, payload scaling."""

import pickle

import numpy as np
import pytest

from repro.runtime import trace_store
from repro.runtime.evaluate import EvaluationRequest, EvaluationRuntime, _simulate_job
from repro.runtime.pool import PoolConfig
from repro.sim.params import MachineConfig
from repro.workloads.generators import working_set_addresses
from repro.workloads.trace import Trace


def _trace(n: int = 500, seed: int = 3, name: str = "t") -> Trace:
    return Trace.from_memory_addresses(
        working_set_addresses(n, footprint_bytes=64 * 1024, seed=seed),
        compute_per_access=1, name=name, seed=seed,
    )


@pytest.fixture(autouse=True)
def clean_store():
    trace_store.clear()
    yield
    trace_store.clear()


class TestContentDigest:
    def test_stable_and_cached(self):
        t = _trace()
        d1 = t.content_digest()
        assert d1 == t.content_digest()
        assert len(d1) == 64  # hex sha256

    def test_ignores_name_and_metadata(self):
        a = _trace(name="alpha")
        b = _trace(name="beta")
        b.metadata["note"] = "renamed"
        assert a.content_digest() == b.content_digest()

    def test_sensitive_to_content(self):
        a = _trace(seed=3)
        b = _trace(seed=4)
        assert a.content_digest() != b.content_digest()

    def test_depends_changes_digest(self):
        a = _trace()
        b = Trace(is_mem=a.is_mem.copy(), address=a.address.copy(),
                  is_load=a.is_load.copy(),
                  depends=np.zeros(a.n_instructions, dtype=bool))
        assert a.content_digest() != b.content_digest()


class TestStore:
    def test_register_resolve_roundtrip(self):
        t = _trace()
        digest = trace_store.register(t)
        assert trace_store.is_registered(digest)
        assert trace_store.resolve(digest) is t
        assert trace_store.size() == 1

    def test_resolve_unknown_diagnoses(self):
        with pytest.raises(KeyError, match="not registered"):
            trace_store.resolve("deadbeef" * 8)

    def test_clear(self):
        trace_store.register(_trace())
        trace_store.clear()
        assert trace_store.size() == 0

    def test_simulate_job_accepts_digest_and_trace(self):
        t = _trace()
        config = MachineConfig()
        digest = trace_store.register(t)
        by_digest = _simulate_job(config, digest, 0, True, None, "k")
        by_trace = _simulate_job(config, t, 0, True, None, "k")
        assert by_digest.to_dict() == by_trace.to_dict()


class TestPayloadScaling:
    def test_job_payload_does_not_scale_with_trace_length(self):
        config = MachineConfig()
        payloads = {}
        for n in (500, 8_000):
            t = _trace(n)
            digest_args = pickle.dumps((config, t.content_digest(), 0, True, None, "k"))
            full_args = pickle.dumps((config, t, 0, True, None, "k"))
            payloads[n] = (len(digest_args), len(full_args))
        # Digest payloads are constant-size; pickled traces grow ~linearly.
        assert payloads[500][0] == payloads[8_000][0]
        assert payloads[8_000][1] > 4 * payloads[500][1]
        assert payloads[8_000][0] < payloads[500][1]


class TestRuntimeIntegration:
    def test_inline_runtime_registers_parent_side(self):
        t = _trace()
        rt = EvaluationRuntime(pool=PoolConfig(max_workers=0))
        rt.evaluate(EvaluationRequest(key="k", config=MachineConfig(), trace=t))
        assert trace_store.is_registered(t.content_digest())
        assert rt.counters.simulations == 1

    def test_fork_workers_inherit_registration(self):
        t = _trace()
        rt = EvaluationRuntime(pool=PoolConfig(max_workers=2))
        if rt._pool.effective_start_method() != "fork":
            pytest.skip("platform has no fork start method")
        reqs = [
            EvaluationRequest(key=f"k{i}", config=MachineConfig(), trace=t, seed=i)
            for i in range(3)
        ]
        out = rt.evaluate_many(reqs)
        assert len(out) == 3
        assert rt.counters.simulations == 3
        # Fork inherits the parent store: no per-worker setup shipping.
        assert rt._pool.worker_setup == []

    def test_spawn_workers_receive_setup_messages(self):
        t = _trace(200)
        rt = EvaluationRuntime(
            pool=PoolConfig(max_workers=1, start_method="spawn")
        )
        out = rt.evaluate(
            EvaluationRequest(key="k", config=MachineConfig(), trace=t)
        )
        assert out.to_dict() == _simulate_job(
            MachineConfig(), t, 0, True, None, "k"
        ).to_dict()
        # The spawn path populated the setup list for worker construction.
        assert rt._pool.worker_setup
        fn, args = rt._pool.worker_setup[0]
        assert fn is trace_store.register
        assert args[1] == t.content_digest()
