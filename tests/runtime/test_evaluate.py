"""Tests for the EvaluationRuntime façade (pool + journal + faults)."""

import json

import pytest

from repro.runtime.evaluate import EvaluationRequest, EvaluationRuntime
from repro.runtime.faults import FaultConfig
from repro.runtime.journal import CheckpointJournal
from repro.runtime.pool import PoolConfig, RetryPolicy
from repro.sim.params import table1_config
from repro.sim.stats import HierarchyStats, simulate_and_measure
from repro.workloads.spec import get_benchmark


@pytest.fixture(scope="module")
def trace():
    return get_benchmark("401.bzip2").trace(1500, seed=3)


def _requests(trace, labels="AB"):
    return [
        EvaluationRequest(
            key=f"{label}|{table1_config(label).cache_key()}",
            config=table1_config(label), trace=trace,
        )
        for label in labels
    ]


class TestSerialization:
    def test_hierarchy_stats_round_trip(self, trace):
        _, stats = simulate_and_measure(table1_config("A"), trace, seed=0)
        clone = HierarchyStats.from_dict(json.loads(json.dumps(stats.to_dict())))
        assert clone == stats
        assert clone.lpmr1 == stats.lpmr1


class TestInlineEvaluate:
    def test_single_and_batch_agree(self, trace):
        rt = EvaluationRuntime()
        req = _requests(trace, "A")[0]
        single = rt.evaluate(req)
        batch = EvaluationRuntime().evaluate_many([req])[req.key]
        assert single.cpi == batch.cpi
        assert rt.counters.simulations == 1

    def test_matches_direct_call(self, trace):
        rt = EvaluationRuntime()
        req = _requests(trace, "A")[0]
        stats = rt.evaluate(req)
        _, direct = simulate_and_measure(req.config, trace, seed=0)
        assert stats == direct

    def test_duplicate_requests_deduplicated(self, trace):
        rt = EvaluationRuntime()
        req = _requests(trace, "A")[0]
        out = rt.evaluate_many([req, req])
        assert len(out) == 1 and rt.counters.simulations == 1


class TestJournaling:
    def test_resume_skips_completed_work(self, trace, tmp_path):
        path = tmp_path / "j.jsonl"
        first = EvaluationRuntime(journal=path)
        out1 = first.evaluate_many(_requests(trace))
        assert first.counters.simulations == 2

        second = EvaluationRuntime(journal=path)
        out2 = second.evaluate_many(_requests(trace))
        assert second.counters.simulations == 0
        assert second.counters.journal_hits == 2
        for key in out1:
            assert out2[key] == out1[key]

    def test_partial_journal_runs_only_missing(self, trace, tmp_path):
        path = tmp_path / "j.jsonl"
        EvaluationRuntime(journal=path).evaluate_many(_requests(trace, "A"))

        rt = EvaluationRuntime(journal=path)
        rt.evaluate_many(_requests(trace, "AB"))
        assert rt.counters.journal_hits == 1
        assert rt.counters.simulations == 1

    def test_checkpoints_during_batch_not_after(self, trace, tmp_path):
        # One successful job must reach the journal even when a later job in
        # the same batch exhausts its retries and fails the whole run.  The
        # injector draws per (job key, attempt), so scan for a fault seed
        # that spares the first key and dooms the second deterministically.
        from repro.runtime.errors import MeasurementError
        from repro.runtime.faults import FaultInjector

        def fires(cfg, key):
            try:
                FaultInjector(cfg, key, 1).maybe_fail()
                return False
            except MeasurementError:
                return True

        cfg = next(
            c for c in (FaultConfig(exception_rate=0.5, seed=s) for s in range(100))
            if not fires(c, "good") and fires(c, "doomed")
        )
        path = tmp_path / "j.jsonl"
        rt = EvaluationRuntime(
            pool=PoolConfig(retry=RetryPolicy(max_retries=0)),
            journal=path, faults=cfg,
        )
        with pytest.raises(MeasurementError):
            rt.evaluate_many([
                EvaluationRequest(key="good", config=table1_config("A"), trace=trace),
                EvaluationRequest(key="doomed", config=table1_config("B"), trace=trace),
            ])
        reloaded = CheckpointJournal(path)
        assert "good" in reloaded
        assert "doomed" not in reloaded

    def test_journal_accepts_existing_instance(self, trace, tmp_path):
        journal = CheckpointJournal(tmp_path / "j.jsonl")
        rt = EvaluationRuntime(journal=journal)
        rt.evaluate_many(_requests(trace, "A"))
        assert len(journal) == 1


class TestPooledEvaluate:
    def test_pooled_matches_inline_bit_for_bit(self, trace):
        inline = EvaluationRuntime().evaluate_many(_requests(trace))
        pooled = EvaluationRuntime(
            pool=PoolConfig(max_workers=2, timeout_s=120)
        ).evaluate_many(_requests(trace))
        assert pooled == inline


class TestBatchEvaluate:
    def test_matches_evaluate_many_bit_for_bit(self, trace):
        scalar = EvaluationRuntime().evaluate_many(_requests(trace, "ABC"))
        rt = EvaluationRuntime()
        batch = rt.evaluate_batch(_requests(trace, "ABC"))
        assert batch == scalar
        assert rt.counters.simulations == 3
        assert all(v == "simulated" for v in rt.last_sources.values())

    def test_groups_by_seed_and_warm(self, trace):
        # Mixed (seed, warm) groups dispatch as separate batch jobs but a
        # single call; every result must match its scalar counterpart.
        requests = [
            EvaluationRequest(
                key=f"{label}|s{seed}|w{warm}", config=table1_config(label),
                trace=trace, seed=seed, warm=warm,
            )
            for label in "AB" for seed, warm in [(0, True), (1, False)]
        ]
        out = EvaluationRuntime().evaluate_batch(requests)
        for req in requests:
            _, direct = simulate_and_measure(
                req.config, trace, seed=req.seed, warm=req.warm
            )
            assert out[req.key] == direct

    def test_journal_hits_skip_simulation(self, trace, tmp_path):
        path = tmp_path / "j.jsonl"
        EvaluationRuntime(journal=path).evaluate_batch(_requests(trace))

        rt = EvaluationRuntime(journal=path)
        rt.evaluate_batch(_requests(trace))
        assert rt.counters.simulations == 0
        assert rt.counters.journal_hits == 2
        assert all(v == "journal" for v in rt.last_sources.values())

    def test_cache_keys_shared_with_scalar_path(self, trace, tmp_path):
        # The batch kernel is bit-identical to the scalar engines, so both
        # paths share one persistent cache namespace: scalar fills, batch
        # recalls (and vice versa).
        cache = tmp_path / "cache"
        EvaluationRuntime(cache=cache).evaluate_many(_requests(trace))
        rt = EvaluationRuntime(cache=cache)
        rt.evaluate_batch(_requests(trace))
        assert rt.counters.simulations == 0
        assert rt.counters.cache_hits == 2

        EvaluationRuntime(cache=cache).evaluate_batch(_requests(trace, "C"))
        rt2 = EvaluationRuntime(cache=cache)
        rt2.evaluate_many(_requests(trace, "C"))
        assert rt2.counters.simulations == 0
        assert rt2.counters.cache_hits == 1

    def test_pooled_batch_matches_inline(self, trace):
        inline = EvaluationRuntime().evaluate_batch(_requests(trace))
        pooled = EvaluationRuntime(
            pool=PoolConfig(max_workers=2, timeout_s=240)
        ).evaluate_batch(_requests(trace))
        assert pooled == inline

    def test_refuses_chaos_layer(self, trace):
        from repro.runtime.errors import ConfigError

        rt = EvaluationRuntime(faults=FaultConfig.uniform(0.1, seed=1))
        with pytest.raises(ConfigError):
            rt.evaluate_batch(_requests(trace, "A"))
        rt = EvaluationRuntime(job_fn=lambda *a, **k: None)
        with pytest.raises(ConfigError):
            rt.evaluate_batch(_requests(trace, "A"))


class TestFaultyEvaluate:
    def test_ten_percent_faults_converge_to_clean_results(self, trace):
        clean = EvaluationRuntime().evaluate_many(_requests(trace, "ABCDE"))
        faulty_rt = EvaluationRuntime(
            pool=PoolConfig(retry=RetryPolicy(max_retries=4, backoff_base=0.01)),
            faults=FaultConfig.uniform(0.10, seed=7),
        )
        faulty = faulty_rt.evaluate_many(_requests(trace, "ABCDE"))
        assert faulty == clean

    def test_retries_redraw_fault_randomness(self, trace):
        # With per-(job, attempt) injector seeding, a high fault rate still
        # converges given enough retries: attempts are independent draws.
        rt = EvaluationRuntime(
            pool=PoolConfig(retry=RetryPolicy(max_retries=10, backoff_base=0.001)),
            faults=FaultConfig.uniform(0.6, seed=3),
        )
        out = rt.evaluate_many(_requests(trace, "AB"))
        _, direct = simulate_and_measure(table1_config("A"), trace, seed=0)
        assert out[_requests(trace, "A")[0].key] == direct
        assert rt.counters.retries > 0
