"""Tests for the exception taxonomy and where the library raises it."""

import pytest

from repro.runtime.errors import (
    ConfigError,
    EvaluationTimeout,
    MeasurementError,
    ReproError,
    WorkerCrashed,
    is_retryable,
)


class TestTaxonomy:
    def test_all_rooted_at_repro_error(self):
        for exc in (ConfigError, MeasurementError, EvaluationTimeout, WorkerCrashed):
            assert issubclass(exc, ReproError)

    def test_config_error_is_value_error(self):
        # Back-compat: callers catching ValueError keep working.
        assert issubclass(ConfigError, ValueError)

    def test_timeout_is_timeout_error(self):
        assert issubclass(EvaluationTimeout, TimeoutError)

    def test_measurement_and_crash_are_runtime_errors(self):
        assert issubclass(MeasurementError, RuntimeError)
        assert issubclass(WorkerCrashed, RuntimeError)

    def test_repro_error_catches_everything(self):
        with pytest.raises(ReproError):
            raise ConfigError("x")
        with pytest.raises(ReproError):
            raise EvaluationTimeout("x")


class TestRetryability:
    def test_transient_failures_are_retryable(self):
        for exc in (MeasurementError("x"), EvaluationTimeout("x"), WorkerCrashed("x")):
            assert is_retryable(exc)

    def test_deterministic_rejections_are_not(self):
        assert not is_retryable(ConfigError("bad knob"))

    def test_contract_violation_is_not_retryable(self):
        from repro.lint.contracts import ContractViolation

        # A broken identity rebreaks on every retry; the flag must override
        # the MeasurementError default it inherits from.
        assert issubclass(ContractViolation, MeasurementError)
        assert not is_retryable(ContractViolation("Eq. 2 broken"))

    def test_unknown_errors_get_benefit_of_the_doubt(self):
        assert is_retryable(OSError("flaky disk"))
        assert is_retryable(ValueError("who knows"))


class TestRaiseSites:
    def test_unknown_table1_label(self):
        from repro.sim.params import table1_config

        with pytest.raises(ConfigError, match="A..E"):
            table1_config("Z")
        with pytest.raises(ValueError):  # old contract still honoured
            table1_config("Z")

    def test_reconfigure_geometry_change(self):
        from repro.sim.engine import HierarchySimulator
        from repro.sim.params import DEFAULT_MACHINE

        sim = HierarchySimulator(DEFAULT_MACHINE)
        with pytest.raises(ConfigError):
            sim.reconfigure(DEFAULT_MACHINE.with_knobs(l1_size_bytes=64 * 1024))

    def test_design_space_off_ladder_point(self):
        from repro.reconfig.space import DesignPoint, DesignSpace

        space = DesignSpace()
        bad = DesignPoint(issue_width=3, iw_size=16, rob_size=16,
                          l1_ports=1, mshr_count=2, l2_banks=2)
        with pytest.raises(ConfigError):
            space.validate(bad)

    def test_design_space_bad_ladder(self):
        from repro.reconfig.space import DEFAULT_LADDERS, DesignSpace

        ladders = dict(DEFAULT_LADDERS)
        ladders["issue_width"] = (4, 2)
        with pytest.raises(ConfigError, match="ascending"):
            DesignSpace(ladders=ladders)
