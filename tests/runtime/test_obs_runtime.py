"""Observability integration: pool/runtime counters under fault injection.

The acceptance property: metrics recorded *inside* workers (fault
injections fire injector-side) ship back with results and merge into the
parent registry so the totals match the runtime's own bookkeeping exactly
— inline and across worker processes, which must agree with each other
because the fault RNG is seeded per (job, attempt).
"""

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime.evaluate import EvaluationRequest, EvaluationRuntime
from repro.runtime.faults import FaultConfig
from repro.runtime.pool import PoolConfig, RetryPolicy
from repro.sim.params import table1_config
from repro.workloads.spec import get_benchmark

FAULT_RATE = 0.6
FAULT_SEED = 1
FAST_RETRY = RetryPolicy(max_retries=6, backoff_base=0.001, backoff_jitter=0.0)


@pytest.fixture(scope="module")
def trace():
    return get_benchmark("401.bzip2").trace(1200, seed=3)


@pytest.fixture(autouse=True)
def metrics_on():
    obs_metrics.get_registry().reset()
    obs_metrics.set_metrics_enabled(True)
    yield
    obs_metrics.set_metrics_enabled(False)
    obs_metrics.get_registry().reset()
    obs_trace.configure_tracing(None)


def _requests(trace, labels="ABC"):
    return [
        EvaluationRequest(
            key=f"{label}|{table1_config(label).cache_key()}",
            config=table1_config(label), trace=trace,
        )
        for label in labels
    ]


def _faulty_runtime(workers=0):
    return EvaluationRuntime(
        pool=PoolConfig(max_workers=workers, retry=FAST_RETRY),
        faults=FaultConfig.uniform(FAULT_RATE, seed=FAULT_SEED),
    )


def _counters():
    return obs_metrics.get_registry().snapshot()["counters"]


class TestInlineFaultCounters:
    def test_retry_counter_matches_runtime_exactly(self, trace):
        rt = _faulty_runtime()
        rt.evaluate_many(_requests(trace))
        counters = _counters()
        assert rt.counters.retries > 0, "fault rate must actually trigger retries"
        assert counters["pool.retries"] == rt.counters.retries
        # Every attempt that failed was retried (jobs all succeed eventually).
        assert counters["pool.failed_attempts"] == rt.counters.retries
        assert counters["pool.jobs_ok"] == len(_requests(trace))
        assert "pool.jobs_failed" not in counters

    def test_fault_kind_counters_sum_to_total(self, trace):
        rt = _faulty_runtime()
        rt.evaluate_many(_requests(trace))
        counters = _counters()
        total = counters["runtime.faults_injected"]
        by_kind = sum(
            v for k, v in counters.items() if k.startswith("runtime.faults.")
        )
        assert total > 0
        assert by_kind == total
        # Each failed attempt was caused by at least one injected fault.
        assert total >= counters["pool.failed_attempts"]

    def test_request_accounting(self, trace):
        rt = _faulty_runtime()
        reqs = _requests(trace)
        rt.evaluate_many(reqs)
        counters = _counters()
        assert counters["runtime.requests"] == len(reqs)
        assert counters["runtime.simulations"] == rt.counters.simulations == len(reqs)
        assert counters["runtime.journal_hits"] == 0


class TestWorkerSnapshotMerge:
    def test_worker_counters_match_inline_exactly(self, trace):
        """Fault RNG is seeded per (job, attempt): worker-shipped snapshots
        must reproduce the inline totals bit-for-bit."""
        reqs = _requests(trace)
        inline_rt = _faulty_runtime(workers=0)
        inline_rt.evaluate_many(reqs)
        inline = _counters()

        obs_metrics.get_registry().reset()
        worker_rt = _faulty_runtime(workers=2)
        worker_rt.evaluate_many(reqs)
        merged = _counters()

        assert worker_rt.counters.retries == inline_rt.counters.retries
        for key in (
            "pool.retries", "pool.failed_attempts", "pool.jobs_ok",
            "runtime.faults_injected", "runtime.requests",
            "runtime.simulations",
        ):
            assert merged.get(key) == inline.get(key), key
        kinds = {k for k in (*merged, *inline) if k.startswith("runtime.faults.")}
        for key in kinds:
            assert merged.get(key) == inline.get(key), key

    def test_fault_free_pool_ships_sim_counters(self, trace):
        rt = EvaluationRuntime(pool=PoolConfig(max_workers=2, retry=FAST_RETRY))
        reqs = _requests(trace, "AB")
        rt.evaluate_many(reqs)
        counters = _counters()
        # Simulation metrics are recorded worker-side; their arrival proves
        # the snapshot hand-off (engine runs in the children only).
        assert counters["sim.runs"] >= 2 * len(reqs)  # perfect + real run each
        assert counters["sim.l1.accesses"] > 0
        assert counters["pool.jobs_ok"] == len(reqs)
        assert "pool.retries" not in counters

    def test_worker_spans_interleave_into_one_trace(self, trace, tmp_path):
        path = tmp_path / "pool.jsonl"
        obs_trace.configure_tracing(path)
        rt = EvaluationRuntime(pool=PoolConfig(max_workers=2, retry=FAST_RETRY))
        reqs = _requests(trace, "AB")
        rt.evaluate_many(reqs)
        obs_trace.configure_tracing(None)
        records = list(obs_trace.read_trace(path))
        attempts = [r for r in records if r["name"] == "pool.attempt"]
        jobs = [r for r in records if r["name"] == "pool.job"]
        assert len(attempts) == len(reqs)  # no faults: one attempt per job
        assert {r["attrs"]["key"] for r in attempts} == {r.key for r in reqs}
        assert len(jobs) == len(reqs)
        parent_pid = next(
            r["pid"] for r in records if r["name"] == "runtime.evaluate_many"
        )
        # Attempts ran in forked children, supervision events in the parent.
        assert all(r["pid"] != parent_pid for r in attempts)
        assert all(r["pid"] == parent_pid for r in jobs)
