"""Persistent evaluation cache: keys, storage, runtime and explorer reuse."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.evalcache import EvaluationCache, evaluation_cache_key
from repro.runtime.evaluate import EvaluationRequest, EvaluationRuntime
from repro.runtime.pool import PoolConfig
from repro.sim.params import MachineConfig
from repro.workloads.generators import working_set_addresses
from repro.workloads.trace import Trace


def _trace(n: int = 400, seed: int = 3, name: str = "t") -> Trace:
    return Trace.from_memory_addresses(
        working_set_addresses(n, footprint_bytes=64 * 1024, seed=seed),
        compute_per_access=1, name=name, seed=seed,
    )


class TestKeyDerivation:
    def test_key_ignores_trace_name(self):
        cfg = MachineConfig()
        a = evaluation_cache_key(_trace(name="x"), cfg, 0, True)
        b = evaluation_cache_key(_trace(name="y"), cfg, 0, True)
        assert a == b

    @pytest.mark.parametrize("mutate", [
        lambda t, c, s, w: (_trace(seed=9), c, s, w),
        lambda t, c, s, w: (t, c.with_knobs(mshr_count=8), s, w),
        lambda t, c, s, w: (t, c, s + 1, w),
        lambda t, c, s, w: (t, c, s, not w),
    ])
    def test_key_sensitive_to_each_component(self, mutate):
        base = (_trace(), MachineConfig(), 0, True)
        assert evaluation_cache_key(*base) != evaluation_cache_key(*mutate(*base))

    def test_key_includes_engine_version(self, monkeypatch):
        import repro.sim.engine as engine

        base = evaluation_cache_key(_trace(), MachineConfig(), 0, True)
        monkeypatch.setattr(engine, "ENGINE_VERSION", engine.ENGINE_VERSION + 1)
        assert evaluation_cache_key(_trace(), MachineConfig(), 0, True) != base


class TestStorage:
    def test_roundtrip_and_counters(self, tmp_path):
        cache = EvaluationCache(tmp_path / "c")
        assert cache.get("ab" * 32) is None
        assert cache.misses == 1
        cache.put("ab" * 32, {"x": 1.5})
        assert ("ab" * 32) in cache
        assert cache.get("ab" * 32) == {"x": 1.5}
        assert cache.hits == 1
        assert cache.bytes_written > 0 and cache.bytes_read > 0
        assert len(cache) == 1

    def test_engine_version_bump_invalidates(self, tmp_path, monkeypatch):
        import repro.sim.engine as engine

        cache = EvaluationCache(tmp_path / "c")
        cache.put("cd" * 32, {"x": 1.0})
        monkeypatch.setattr(engine, "ENGINE_VERSION", engine.ENGINE_VERSION + 1)
        assert cache.get("cd" * 32) is None  # stale entry is a miss

    def test_torn_entry_is_a_miss(self, tmp_path):
        cache = EvaluationCache(tmp_path / "c")
        key = "ef" * 32
        cache.put(key, {"x": 1.0})
        cache._path(key).write_text('{"engine_version"')  # simulate torn write
        assert cache.get(key) is None

    def test_entries_record_version(self, tmp_path):
        from repro.sim.engine import ENGINE_VERSION

        cache = EvaluationCache(tmp_path / "c")
        key = "01" * 32
        cache.put(key, {"x": 2.0})
        entry = json.loads(cache._path(key).read_text())
        assert entry["engine_version"] == ENGINE_VERSION


class TestCorruptQuarantine:
    """Damaged shards are moved aside, counted, and never served."""

    def test_torn_shard_is_quarantined_to_corrupt_sibling(self, tmp_path):
        cache = EvaluationCache(tmp_path / "c")
        key = "ab" * 32
        cache.put(key, {"x": 1.0})
        path = cache._path(key)
        path.write_text('{"engine_version": 3, "stats"')  # truncated JSON
        assert cache.get(key) is None
        assert cache.quarantined == 1
        assert not path.exists()
        assert path.with_name(path.name + ".corrupt").exists()
        # The quarantined shard no longer counts as a stored entry.
        assert key not in cache and len(cache) == 0

    def test_digest_mismatch_is_quarantined(self, tmp_path):
        cache = EvaluationCache(tmp_path / "c")
        key = "cd" * 32
        cache.put(key, {"x": 1.0})
        path = cache._path(key)
        entry = json.loads(path.read_text())
        entry["stats"]["x"] = 2.0  # silent bit-flip: digest no longer matches
        path.write_text(json.dumps(entry))
        assert cache.get(key) is None
        assert cache.quarantined == 1
        assert path.with_name(path.name + ".corrupt").exists()

    def test_binary_garbage_is_quarantined(self, tmp_path):
        cache = EvaluationCache(tmp_path / "c")
        key = "ee" * 32
        cache.put(key, {"x": 1.0})
        cache._path(key).write_bytes(b"\xff\xfe\x00garbage")
        assert cache.get(key) is None
        assert cache.quarantined == 1

    def test_pre_digest_entries_still_served(self, tmp_path):
        """Backward compat: entries written before the sha field existed."""
        from repro.sim.engine import ENGINE_VERSION

        cache = EvaluationCache(tmp_path / "c")
        key = "fa" * 32
        path = cache._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(
            {"engine_version": ENGINE_VERSION, "stats": {"x": 3.0}}
        ))
        assert cache.get(key) == {"x": 3.0}
        assert cache.quarantined == 0

    def test_quarantine_counts_in_obs_registry(self, tmp_path):
        from repro.obs import metrics as obs_metrics

        cache = EvaluationCache(tmp_path / "c")
        key = "bb" * 32
        cache.put(key, {"x": 1.0})
        cache._path(key).write_text("{torn")
        obs_metrics.set_metrics_enabled(True)
        try:
            obs_metrics.get_registry().reset()
            assert cache.get(key) is None
            snap = obs_metrics.get_registry().snapshot_and_reset()
        finally:
            obs_metrics.set_metrics_enabled(False)
        assert snap["counters"]["evalcache.corrupt_quarantined"] == 1
        assert snap["counters"]["evalcache.corrupt.torn"] == 1

    def test_wrong_version_is_not_quarantined(self, tmp_path, monkeypatch):
        """Stale-but-intact entries stay on disk for auditing."""
        import repro.sim.engine as engine

        cache = EvaluationCache(tmp_path / "c")
        key = "dd" * 32
        cache.put(key, {"x": 1.0})
        monkeypatch.setattr(engine, "ENGINE_VERSION", engine.ENGINE_VERSION + 1)
        assert cache.get(key) is None
        assert cache.quarantined == 0
        assert cache._path(key).exists()

    def test_corruption_mid_run_recomputes_and_repairs(self, tmp_path):
        """End to end: a corrupted shard is re-simulated, re-cached, and the
        recomputed entry is bit-identical to the original measurement."""
        trace = _trace()
        req = EvaluationRequest(key="k", config=MachineConfig(), trace=trace)
        first = EvaluationRuntime(pool=PoolConfig(max_workers=0),
                                  cache=tmp_path / "c")
        clean = first.evaluate(req)
        ckey = evaluation_cache_key(trace, req.config, req.seed, req.warm)
        shard = first.cache._path(ckey)
        shard.write_text('{"engine_')  # chaos: torn shard on disk

        second = EvaluationRuntime(pool=PoolConfig(max_workers=0),
                                   cache=tmp_path / "c")
        recomputed = second.evaluate(req)
        assert second.counters.simulations == 1  # treated as a miss
        assert second.cache.quarantined == 1
        assert recomputed.to_dict() == clean.to_dict()
        # The fresh result was re-cached; a third run hits again.
        third = EvaluationRuntime(pool=PoolConfig(max_workers=0),
                                  cache=tmp_path / "c")
        third.evaluate(req)
        assert third.counters.cache_hits == 1


class TestRuntimeIntegration:
    def test_second_run_hits_cache_with_zero_simulations(self, tmp_path):
        trace = _trace()
        reqs = [
            EvaluationRequest(key=f"k{i}", config=MachineConfig(), trace=trace, seed=i)
            for i in range(3)
        ]
        first = EvaluationRuntime(pool=PoolConfig(max_workers=0),
                                  cache=tmp_path / "c")
        out1 = first.evaluate_many(reqs)
        assert first.counters.simulations == 3

        second = EvaluationRuntime(pool=PoolConfig(max_workers=0),
                                   cache=tmp_path / "c")
        out2 = second.evaluate_many(reqs)
        assert second.counters.simulations == 0
        assert second.counters.cache_hits == 3
        assert second.last_sources == {f"k{i}": "cache" for i in range(3)}
        for key in out1:
            assert out1[key].to_dict() == out2[key].to_dict()

    def test_cache_hits_are_rejournaled(self, tmp_path):
        trace = _trace()
        req = EvaluationRequest(key="k", config=MachineConfig(), trace=trace)
        EvaluationRuntime(pool=PoolConfig(max_workers=0),
                          cache=tmp_path / "c").evaluate(req)
        rt = EvaluationRuntime(pool=PoolConfig(max_workers=0),
                               cache=tmp_path / "c",
                               journal=tmp_path / "j.jsonl")
        rt.evaluate(req)
        assert rt.counters.cache_hits == 1
        assert req.key in rt.journal  # cache hit landed in the journal
        rt.evaluate_many([req])
        assert rt.counters.journal_hits >= 1

    def test_journal_takes_precedence_over_cache(self, tmp_path):
        trace = _trace()
        req = EvaluationRequest(key="k", config=MachineConfig(), trace=trace)
        rt = EvaluationRuntime(pool=PoolConfig(max_workers=0),
                               cache=tmp_path / "c",
                               journal=tmp_path / "j.jsonl")
        rt.evaluate(req)
        rt2 = EvaluationRuntime(pool=PoolConfig(max_workers=0),
                                cache=tmp_path / "c",
                                journal=tmp_path / "j.jsonl")
        rt2.evaluate(req)
        assert rt2.counters.journal_hits == 1
        assert rt2.counters.cache_hits == 0
        assert rt2.last_sources["k"] == "journal"


class TestExplorerReuse:
    def test_repeat_exploration_spends_zero_simulations(self, tmp_path):
        from repro.reconfig.explorer import GreedyReconfigBackend
        from repro.reconfig.space import DesignSpace

        trace = _trace(800)
        space = DesignSpace()

        def explore(cache_dir):
            rt = EvaluationRuntime(pool=PoolConfig(max_workers=0),
                                   cache=cache_dir)
            backend = GreedyReconfigBackend(space, trace, seed=1, runtime=rt)
            backend.measure()
            backend.optimize(l1=True, l2=True)
            report = backend.measure()
            return backend, report

        first, report1 = explore(tmp_path / "c")
        assert first.log.evaluations > 0
        assert first.log.cached == 0

        second, report2 = explore(tmp_path / "c")
        assert second.log.evaluations == 0  # zero redundant simulations
        assert second.log.cached == first.log.evaluations
        assert report2.lpmr1 == report1.lpmr1


class TestHypothesisByteIdentical:
    @given(
        n=st.integers(min_value=50, max_value=300),
        seed=st.integers(min_value=0, max_value=2**16),
        mshr=st.sampled_from([2, 4, 8]),
        warm=st.booleans(),
    )
    @settings(max_examples=12, deadline=None)
    def test_cache_hit_returns_byte_identical_stats(self, tmp_path_factory,
                                                    n, seed, mshr, warm):
        trace = _trace(n, seed=seed)
        config = MachineConfig().with_knobs(mshr_count=mshr)
        cache_dir = tmp_path_factory.mktemp("evalcache")
        req = EvaluationRequest(key="k", config=config, trace=trace,
                                seed=0, warm=warm)
        fresh = EvaluationRuntime(pool=PoolConfig(max_workers=0),
                                  cache=cache_dir).evaluate(req)
        recalled_rt = EvaluationRuntime(pool=PoolConfig(max_workers=0),
                                        cache=cache_dir)
        recalled = recalled_rt.evaluate(req)
        assert recalled_rt.counters.cache_hits == 1
        assert recalled.to_dict() == fresh.to_dict()
