"""Tests for the JSONL checkpoint journal."""

from repro.runtime.journal import CheckpointJournal


class TestRoundTrip:
    def test_put_get_contains_len(self, tmp_path):
        j = CheckpointJournal(tmp_path / "j.jsonl")
        assert len(j) == 0 and "a" not in j
        j.put("a", {"x": 1.5})
        j.put("b", [1, 2, 3])
        assert "a" in j and len(j) == 2
        assert j.get("a") == {"x": 1.5}
        assert j.get("b") == [1, 2, 3]
        assert sorted(j.keys()) == ["a", "b"]

    def test_persists_across_instances(self, tmp_path):
        path = tmp_path / "j.jsonl"
        CheckpointJournal(path).put("k", {"cpi": 2.0})
        reloaded = CheckpointJournal(path)
        assert reloaded.get("k") == {"cpi": 2.0}
        assert reloaded.dropped_lines == 0

    def test_last_writer_wins(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = CheckpointJournal(path)
        j.put("k", 1)
        j.put("k", 2)
        assert j.get("k") == 2
        assert CheckpointJournal(path).get("k") == 2

    def test_missing_file_is_empty(self, tmp_path):
        assert len(CheckpointJournal(tmp_path / "nope.jsonl")) == 0


class TestCrashTolerance:
    def test_torn_tail_is_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = CheckpointJournal(path)
        j.put("a", 1)
        j.put("b", 2)
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"key": "c", "val')  # killed mid-write
        reloaded = CheckpointJournal(path)
        assert sorted(reloaded.keys()) == ["a", "b"]
        assert reloaded.dropped_lines == 1

    def test_malformed_entries_are_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"no_key": true}\n[1,2,3]\n{"key":"a","value":7}\n')
        j = CheckpointJournal(path)
        assert j.get("a") == 7
        assert j.dropped_lines == 2

    def test_writable_after_torn_tail(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"key": "a", "value": 1}\n{"key": "b"')
        j = CheckpointJournal(path)
        j.put("c", 3)
        reloaded = CheckpointJournal(path)
        assert "a" in reloaded and "c" in reloaded
