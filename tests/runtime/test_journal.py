"""Tests for the JSONL checkpoint journal."""

from repro.runtime.journal import CheckpointJournal


class TestRoundTrip:
    def test_put_get_contains_len(self, tmp_path):
        j = CheckpointJournal(tmp_path / "j.jsonl")
        assert len(j) == 0 and "a" not in j
        j.put("a", {"x": 1.5})
        j.put("b", [1, 2, 3])
        assert "a" in j and len(j) == 2
        assert j.get("a") == {"x": 1.5}
        assert j.get("b") == [1, 2, 3]
        assert sorted(j.keys()) == ["a", "b"]

    def test_persists_across_instances(self, tmp_path):
        path = tmp_path / "j.jsonl"
        CheckpointJournal(path).put("k", {"cpi": 2.0})
        reloaded = CheckpointJournal(path)
        assert reloaded.get("k") == {"cpi": 2.0}
        assert reloaded.dropped_lines == 0

    def test_last_writer_wins(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = CheckpointJournal(path)
        j.put("k", 1)
        j.put("k", 2)
        assert j.get("k") == 2
        assert CheckpointJournal(path).get("k") == 2

    def test_missing_file_is_empty(self, tmp_path):
        assert len(CheckpointJournal(tmp_path / "nope.jsonl")) == 0


class TestCrashTolerance:
    def test_torn_tail_is_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        j = CheckpointJournal(path)
        j.put("a", 1)
        j.put("b", 2)
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"key": "c", "val')  # killed mid-write
        reloaded = CheckpointJournal(path)
        assert sorted(reloaded.keys()) == ["a", "b"]
        assert reloaded.dropped_lines == 1

    def test_malformed_entries_are_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"no_key": true}\n[1,2,3]\n{"key":"a","value":7}\n')
        j = CheckpointJournal(path)
        assert j.get("a") == 7
        assert j.dropped_lines == 2

    def test_writable_after_torn_tail(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"key": "a", "value": 1}\n{"key": "b"')
        j = CheckpointJournal(path)
        j.put("c", 3)
        reloaded = CheckpointJournal(path)
        assert "a" in reloaded and "c" in reloaded


class TestEveryByteOffsetTruncation:
    """A crash can cut the file at *any* byte; resume must survive them all.

    For every truncation point inside the final record the journal must
    reload without raising, keep every fully-written earlier record with
    its exact value, and either drop the torn final record or (only when
    the cut lands at the record's very end) recover it intact.
    """

    def _journal_with_entries(self, path):
        import json

        j = CheckpointJournal(path)
        j.put("first", {"cpi": 2.5, "label": "config-A"})
        j.put("second", [1, 2, 3])
        # Append the final record raw with ensure_ascii=False (as a foreign
        # writer might): the line contains real multi-byte UTF-8, so a
        # truncation can land *inside* a character — which must read as a
        # torn tail, not a decode crash.
        line = json.dumps(
            {"key": "last", "value": {"note": "café → résumé", "x": 1.25}},
            separators=(",", ":"), ensure_ascii=False,
        )
        with path.open("ab") as fh:
            fh.write(line.encode("utf-8") + b"\n")
        return path.read_bytes()

    def test_truncate_at_every_byte_of_last_record(self, tmp_path):
        full = self._journal_with_entries(tmp_path / "full.jsonl")
        lines = full.splitlines(keepends=True)
        last_start = len(full) - len(lines[-1])

        for cut in range(last_start, len(full) + 1):
            path = tmp_path / f"cut_{cut}.jsonl"
            path.write_bytes(full[:cut])
            j = CheckpointJournal(path)  # must never raise
            assert j.get("first") == {"cpi": 2.5, "label": "config-A"}
            assert j.get("second") == [1, 2, 3]
            if "last" in j:  # only recoverable when the record is complete
                assert j.get("last") == {"note": "café → résumé",
                                         "x": 1.25}
                assert cut >= len(full) - 1  # full record, newline optional
            else:
                assert j.dropped_lines <= 1

    def test_resume_after_any_truncation_is_appendable(self, tmp_path):
        """After any cut, the next put() starts a fresh line: the journal
        repairs itself and the new entry survives another reload."""
        full = self._journal_with_entries(tmp_path / "full.jsonl")
        lines = full.splitlines(keepends=True)
        last_start = len(full) - len(lines[-1])

        # Sample the interesting offsets: record start, +1, an offset inside
        # the multi-byte character, record end - 1, and record end.
        note = '"note"'.encode("utf-8")
        inside_utf8 = full.index("café".encode("utf-8"), last_start) + 4
        offsets = {last_start, last_start + 1, inside_utf8,
                   len(full) - 1, len(full)}
        assert full.index(note, last_start) >= last_start
        for cut in offsets:
            path = tmp_path / f"resume_{cut}.jsonl"
            path.write_bytes(full[:cut])
            j = CheckpointJournal(path)
            j.put("recovered", {"after": cut})
            reloaded = CheckpointJournal(path)
            assert reloaded.get("recovered") == {"after": cut}
            assert reloaded.get("first") == {"cpi": 2.5, "label": "config-A"}
            # At most the one torn line is lost, and a torn "last" is never
            # resurrected with a wrong value.
            assert reloaded.dropped_lines <= 1
            if "last" in reloaded:
                assert reloaded.get("last") == {"note": "café → résumé",
                                                "x": 1.25}
