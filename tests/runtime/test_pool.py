"""Tests for the supervised evaluation pool.

The worker-side callables live at module level so they pickle across
process boundaries.  Cross-process coordination uses marker files under
``tmp_path`` (create-on-first-attempt), which works for every start method.
"""

import os
import random
import time

import pytest

from repro.runtime.errors import (
    ConfigError,
    EvaluationTimeout,
    MeasurementError,
    WorkerCrashed,
)
from repro.runtime.pool import EvaluationPool, Job, JobResult, PoolConfig, RetryPolicy


def _square(x):
    return x * x


def _boom():
    raise MeasurementError("always fails")


def _bad_config():
    raise ConfigError("knob off its ladder")


def _broken_contract():
    from repro.lint.contracts import ContractViolation

    raise ContractViolation("Eq. 2 broken")


def _interrupt():
    raise KeyboardInterrupt


def _fail_until_attempt(threshold, _attempt=1):
    if _attempt < threshold:
        raise MeasurementError(f"attempt {_attempt} too early")
    return _attempt


def _sleep_first_attempt(marker_path, value):
    if not os.path.exists(marker_path):
        with open(marker_path, "w") as fh:
            fh.write("seen")
        time.sleep(30.0)  # first attempt hangs; supervisor must kill it
    return value


def _crash_first_attempt(marker_path, value):
    if not os.path.exists(marker_path):
        with open(marker_path, "w") as fh:
            fh.write("seen")
        os._exit(3)  # hard kill: no exception, no cleanup
    return value


FAST_RETRY = RetryPolicy(max_retries=2, backoff_base=0.01, backoff_jitter=0.0)


class TestRetryPolicy:
    def test_delay_grows_exponentially(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, backoff_jitter=0.0)
        rng = random.Random(0)
        assert policy.delay(1, rng) == pytest.approx(0.1)
        assert policy.delay(2, rng) == pytest.approx(0.2)
        assert policy.delay(3, rng) == pytest.approx(0.4)

    def test_jitter_bounds(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=1.0, backoff_jitter=0.5)
        rng = random.Random(123)
        for _ in range(100):
            assert 0.1 <= policy.delay(1, rng) <= 0.15

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)


class TestInlineMode:
    def test_success(self):
        pool = EvaluationPool(PoolConfig(max_workers=0))
        results = pool.run([Job("a", _square, (3,)), Job("b", _square, (4,))])
        assert results["a"].value == 9 and results["b"].value == 16
        assert all(r.ok and r.attempts == 1 for r in results.values())

    def test_retry_until_success(self):
        pool = EvaluationPool(PoolConfig(retry=FAST_RETRY))
        results = pool.run([
            Job("j", _fail_until_attempt, (3,), pass_attempt=True)
        ])
        r = results["j"]
        assert r.ok and r.value == 3
        assert pool.retries == 2
        assert r.waited_s > 0.0

    def test_exhausted_retries_raise_last_error(self):
        pool = EvaluationPool(PoolConfig(retry=FAST_RETRY))
        with pytest.raises(MeasurementError, match="always fails"):
            pool.run([Job("j", _boom)])

    def test_on_error_keep_returns_failure(self):
        pool = EvaluationPool(PoolConfig(retry=FAST_RETRY))
        results = pool.run([Job("j", _boom), Job("k", _square, (2,))],
                           on_error="keep")
        assert not results["j"].ok
        assert isinstance(results["j"].error, MeasurementError)
        assert results["k"].value == 4

    def test_duplicate_keys_rejected(self):
        pool = EvaluationPool()
        with pytest.raises(ValueError, match="duplicate"):
            pool.run([Job("j", _square, (1,)), Job("j", _square, (2,))])

    def test_bad_on_error_rejected(self):
        with pytest.raises(ValueError):
            EvaluationPool().run([], on_error="explode")

    def test_on_result_fires_per_terminal_job(self):
        seen: list[JobResult] = []
        pool = EvaluationPool(PoolConfig(retry=FAST_RETRY))
        pool.run([Job("a", _square, (2,)), Job("b", _boom)],
                 on_error="keep", on_result=seen.append)
        assert sorted(r.key for r in seen) == ["a", "b"]
        by_key = {r.key: r for r in seen}
        assert by_key["a"].ok and not by_key["b"].ok


class TestNonRetryableTaxonomy:
    """Deterministic taxonomy errors must fail fast with their class intact."""

    def test_inline_config_error_fails_fast(self):
        pool = EvaluationPool(PoolConfig(retry=FAST_RETRY))
        results = pool.run([Job("j", _bad_config)], on_error="keep")
        r = results["j"]
        assert isinstance(r.error, ConfigError)
        assert r.attempts == 1  # no retry budget burned on a deterministic error
        assert pool.retries == 0

    def test_inline_config_error_raises_with_taxonomy(self):
        pool = EvaluationPool(PoolConfig(retry=FAST_RETRY))
        with pytest.raises(ConfigError, match="knob off its ladder"):
            pool.run([Job("j", _bad_config)])

    def test_inline_contract_violation_fails_fast(self):
        from repro.lint.contracts import ContractViolation

        pool = EvaluationPool(PoolConfig(retry=FAST_RETRY))
        results = pool.run([Job("j", _broken_contract)], on_error="keep")
        r = results["j"]
        assert isinstance(r.error, ContractViolation)
        assert r.attempts == 1
        assert pool.retries == 0

    def test_supervised_config_error_fails_fast(self):
        pool = EvaluationPool(PoolConfig(max_workers=1, retry=FAST_RETRY))
        results = pool.run(
            [Job("j", _bad_config), Job("k", _square, (3,))], on_error="keep"
        )
        assert isinstance(results["j"].error, ConfigError)
        assert results["j"].attempts == 1
        assert pool.retries == 0
        assert results["k"].value == 9  # the batch keeps going

    def test_retryable_errors_still_burn_retries(self):
        pool = EvaluationPool(PoolConfig(retry=FAST_RETRY))
        results = pool.run(
            [Job("j", _fail_until_attempt, (2,), pass_attempt=True)]
        )
        assert results["j"].ok and pool.retries == 1

    def test_inline_keyboard_interrupt_propagates(self):
        pool = EvaluationPool(PoolConfig(retry=FAST_RETRY))
        with pytest.raises(KeyboardInterrupt):
            pool.run([Job("j", _interrupt)])
        assert pool.retries == 0


class TestSupervisedMode:
    def test_parallel_success(self):
        pool = EvaluationPool(PoolConfig(max_workers=2, retry=FAST_RETRY))
        jobs = [Job(f"j{i}", _square, (i,)) for i in range(6)]
        results = pool.run(jobs)
        assert [results[f"j{i}"].value for i in range(6)] == [i * i for i in range(6)]

    def test_timeout_kills_and_retry_succeeds(self, tmp_path):
        marker = str(tmp_path / "marker")
        pool = EvaluationPool(
            PoolConfig(max_workers=1, timeout_s=0.5, retry=FAST_RETRY)
        )
        results = pool.run([Job("j", _sleep_first_attempt, (marker, 42))])
        r = results["j"]
        assert r.ok and r.value == 42
        assert r.timeouts == 1
        assert pool.timeouts == 1
        assert pool.worker_restarts >= 1

    def test_timeout_exhaustion_raises_evaluation_timeout(self, tmp_path):
        pool = EvaluationPool(PoolConfig(
            max_workers=1, timeout_s=0.3,
            retry=RetryPolicy(max_retries=1, backoff_base=0.01, backoff_jitter=0.0),
        ))
        # No marker file: every attempt hangs and is killed.
        missing = str(tmp_path / "never-created" / "marker")
        with pytest.raises(EvaluationTimeout):
            pool.run([Job("j", time.sleep, (30.0,), {})])
        assert pool.timeouts == 2  # initial attempt + one retry
        _ = missing

    def test_crashed_worker_is_replaced(self, tmp_path):
        marker = str(tmp_path / "marker")
        pool = EvaluationPool(PoolConfig(max_workers=2, retry=FAST_RETRY))
        jobs = [Job("crash", _crash_first_attempt, (marker, 7))] + [
            Job(f"ok{i}", _square, (i,)) for i in range(3)
        ]
        results = pool.run(jobs)
        assert results["crash"].ok and results["crash"].value == 7
        assert results["crash"].crashes == 1
        assert pool.worker_restarts >= 1
        assert all(results[f"ok{i}"].value == i * i for i in range(3))

    def test_crash_exhaustion_reports_worker_crashed(self, tmp_path):
        pool = EvaluationPool(PoolConfig(
            max_workers=1,
            retry=RetryPolicy(max_retries=1, backoff_base=0.01, backoff_jitter=0.0),
        ))
        results = pool.run([Job("j", os._exit, (5,))], on_error="keep")
        assert isinstance(results["j"].error, WorkerCrashed)
        assert results["j"].crashes == 2

    def test_counters_accumulate_across_runs(self):
        pool = EvaluationPool(PoolConfig(retry=FAST_RETRY))
        pool.run([Job("a", _fail_until_attempt, (2,), pass_attempt=True)])
        pool.run([Job("b", _fail_until_attempt, (2,), pass_attempt=True)])
        assert pool.retries == 2
