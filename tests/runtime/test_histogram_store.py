"""HistogramStore: round-trips, version discipline, corruption quarantine."""

import json

import numpy as np
import pytest

from repro.runtime.histogram_store import (
    HistogramStore,
    cached_locality_profile,
    histogram_cache_key,
)
from repro.workloads.locality import HISTOGRAM_VERSION, profile_trace
from repro.workloads.trace import Trace


@pytest.fixture
def trace():
    rng = np.random.default_rng(11)
    addrs = rng.integers(0, 256, 400) * 64
    return Trace.from_memory_addresses(
        addrs, compute_per_access=2, load_fraction=0.7, name="hs", seed=11
    )


class TestKeying:
    def test_key_dimensions(self, trace):
        digest = trace.content_digest()
        base = histogram_cache_key(digest, 64, True)
        assert base != histogram_cache_key(digest, 128, True)
        assert base != histogram_cache_key(digest, 64, False)
        assert base != histogram_cache_key("other", 64, True)
        assert base == histogram_cache_key(digest, 64, True)


class TestStore:
    def test_round_trip(self, tmp_path, trace):
        store = HistogramStore(tmp_path / "hist")
        profile = profile_trace(trace)
        key = histogram_cache_key(trace.content_digest(), 64, True)
        assert store.get(key) is None
        store.put(key, profile)
        assert key in store
        assert len(store) == 1
        again = store.get(key)
        assert again is not None
        assert again.trace_digest == profile.trace_digest
        assert np.array_equal(again.histogram.counts, profile.histogram.counts)
        for capacity in (1, 16, 256):
            assert again.histogram.miss_fraction(capacity) == (
                profile.histogram.miss_fraction(capacity)
            )
        assert store.hits == 1 and store.misses == 1

    def test_version_mismatch_is_a_miss(self, tmp_path, trace):
        store = HistogramStore(tmp_path / "hist")
        profile = profile_trace(trace)
        key = histogram_cache_key(trace.content_digest(), 64, True)
        store.put(key, profile)
        path = store._path(key)
        entry = json.loads(path.read_text())
        entry["histogram_version"] = HISTOGRAM_VERSION + 1
        path.write_text(json.dumps(entry))
        assert store.get(key) is None
        assert path.exists(), "stale versions stay on disk for auditing"

    def test_torn_shard_is_quarantined(self, tmp_path, trace):
        store = HistogramStore(tmp_path / "hist")
        profile = profile_trace(trace)
        key = histogram_cache_key(trace.content_digest(), 64, True)
        store.put(key, profile)
        path = store._path(key)
        path.write_text('{"histogram_version": 1, "profile": {tor')
        assert store.get(key) is None
        assert store.quarantined == 1
        assert not path.exists()
        assert path.with_name(path.name + ".corrupt").exists()
        # A re-put heals the shard.
        store.put(key, profile)
        assert store.get(key) is not None

    def test_malformed_payload_is_quarantined(self, tmp_path, trace):
        store = HistogramStore(tmp_path / "hist")
        key = histogram_cache_key(trace.content_digest(), 64, True)
        path = store._path(key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"histogram_version": HISTOGRAM_VERSION,
                                    "profile": {"nope": 1}}))
        assert store.get(key) is None
        assert store.quarantined == 1


class TestCachedLocalityProfile:
    def test_no_store_is_pure_profiling(self, trace):
        profile = cached_locality_profile(trace)
        assert profile.trace_digest == trace.content_digest()

    def test_store_path_computes_once(self, tmp_path, trace):
        root = tmp_path / "hist"
        first = cached_locality_profile(trace, store=root)
        store = HistogramStore(root)
        assert len(store) == 1
        second = cached_locality_profile(trace, store=store)
        assert store.hits == 1
        assert np.array_equal(
            first.histogram.counts, second.histogram.counts
        )

    def test_distinct_settings_get_distinct_entries(self, tmp_path, trace):
        store = HistogramStore(tmp_path / "hist")
        cached_locality_profile(trace, store=store)
        cached_locality_profile(trace, line_bytes=128, store=store)
        cached_locality_profile(trace, warm=False, store=store)
        assert len(store) == 3
