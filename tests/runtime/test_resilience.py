"""Acceptance tests: resumable exploration and fault-tolerant control loops.

These are the PR's end-to-end guarantees:

* a killed exploration resumes from its checkpoint journal, lands on the
  same final design point, and re-evaluates nothing;
* a walk with 10% injected measurement faults completes and reaches the
  same final case classification as the fault-free walk;
* the online controller under 10% fault injection never acts on a
  non-finite report and finishes on a valid configuration.
"""

import pytest

from repro.core.algorithm import LPMAlgorithm
from repro.core.online import OnlineLPMController
from repro.reconfig.explorer import GreedyReconfigBackend, LadderBackend
from repro.reconfig.space import DesignSpace
from repro.runtime.evaluate import EvaluationRuntime
from repro.runtime.faults import FaultConfig, FaultInjector
from repro.runtime.journal import CheckpointJournal
from repro.runtime.pool import PoolConfig, RetryPolicy
from repro.sim.params import table1_config
from repro.workloads.spec import get_benchmark

DELTA = 150.0


@pytest.fixture(scope="module")
def trace():
    return get_benchmark("410.bwaves").trace(6000, seed=7)


def _greedy_walk(trace, journal_path):
    runtime = EvaluationRuntime(journal=journal_path)
    backend = GreedyReconfigBackend(DesignSpace(), trace, runtime=runtime)
    algo = LPMAlgorithm(delta_percent=DELTA, delta_slack_fraction=0.5, max_steps=6)
    result = algo.run(backend)
    return backend, runtime, result


class TestExplorationResume:
    def test_killed_exploration_resumes_without_duplicates(self, trace, tmp_path):
        path = tmp_path / "explore.jsonl"
        backend1, runtime1, result1 = _greedy_walk(trace, path)
        total = runtime1.counters.simulations
        assert total > 0 and backend1.log.evaluations == total

        # Simulate a kill partway through: keep only the first K journal
        # lines, as if the process died mid-run.
        keep = max(1, total // 2)
        lines = path.read_text().splitlines(keepends=True)
        assert len(lines) == total
        path.write_text("".join(lines[:keep]))

        backend2, runtime2, result2 = _greedy_walk(trace, path)
        assert backend2.point == backend1.point  # same final design point
        assert result2.status == result1.status
        assert runtime2.counters.journal_hits == keep
        assert runtime2.counters.simulations == total - keep
        assert backend2.log.evaluations == total - keep  # zero duplicates

    def test_untouched_journal_resumes_for_free(self, trace, tmp_path):
        path = tmp_path / "explore.jsonl"
        backend1, _, _ = _greedy_walk(trace, path)
        backend2, runtime2, _ = _greedy_walk(trace, path)
        assert backend2.point == backend1.point
        assert runtime2.counters.simulations == 0
        assert backend2.log.evaluations == 0

    def test_journal_reused_across_pool_modes(self, trace, tmp_path):
        path = tmp_path / "explore.jsonl"
        inline_runtime = EvaluationRuntime(journal=path)
        backend = GreedyReconfigBackend(DesignSpace(), trace, runtime=inline_runtime)
        algo = LPMAlgorithm(delta_percent=DELTA, delta_slack_fraction=0.5, max_steps=3)
        algo.run(backend)
        assert len(CheckpointJournal(path)) == inline_runtime.counters.simulations

        pooled_runtime = EvaluationRuntime(
            pool=PoolConfig(max_workers=2, timeout_s=120), journal=path
        )
        backend2 = GreedyReconfigBackend(DesignSpace(), trace, runtime=pooled_runtime)
        algo.run(backend2)
        assert pooled_runtime.counters.simulations == 0  # all from the journal


def _ladder_walk(trace, runtime=None):
    backend = LadderBackend(
        [table1_config(c) for c in "ABCD"], trace,
        deprovision_configs=[table1_config("E")],
        runtime=runtime,
    )
    algo = LPMAlgorithm(delta_percent=DELTA, delta_slack_fraction=0.5, max_steps=10)
    return backend, algo.run(backend)


class TestFaultInjectedWalk:
    def test_ten_percent_faults_reach_fault_free_classification(self, trace):
        _, clean = _ladder_walk(trace)
        runtime = EvaluationRuntime(
            pool=PoolConfig(retry=RetryPolicy(max_retries=4, backoff_base=0.01)),
            faults=FaultConfig.uniform(0.10, seed=11),
        )
        backend, faulty = _ladder_walk(trace, runtime=runtime)
        assert faulty.status == clean.status
        assert faulty.final_case == clean.final_case
        assert [s.case for s in faulty.steps] == [s.case for s in clean.steps]
        assert backend.current.name == _ladder_walk(trace)[0].current.name

    def test_faulty_walk_reports_match_clean(self, trace):
        _, clean = _ladder_walk(trace)
        runtime = EvaluationRuntime(
            pool=PoolConfig(retry=RetryPolicy(max_retries=4, backoff_base=0.01)),
            faults=FaultConfig.uniform(0.10, seed=5),
        )
        _, faulty = _ladder_walk(trace, runtime=runtime)
        # Deterministic simulation + guarded retries: the surviving
        # measurements are bit-identical, not merely close.
        assert faulty.final_report.lpmr1 == clean.final_report.lpmr1


class TestFaultInjectedOnlineController:
    def _run(self, trace, injector=None, **kwargs):
        controller = OnlineLPMController(
            DesignSpace(),
            interval_instructions=4000,
            delta_percent=DELTA,
            fault_injector=injector,
            seed=0,
            **kwargs,
        )
        return controller, controller.run(trace)

    def test_ten_percent_faults_never_poison_the_controller(self, trace):
        injector = FaultInjector(FaultConfig.uniform(0.10, seed=13), "online")
        controller, result = self._run(trace, injector)
        # Whatever was injected, every surviving interval record is from a
        # validated report and the final configuration is a legal point.
        DesignSpace().validate(controller.point)
        for record in result.intervals:
            assert record.report.lpmr1 == record.report.lpmr1  # not NaN
        assert result.rejected_intervals + len(result.intervals) > 0

    def test_rejected_intervals_are_counted_and_skipped(self, trace):
        injector = FaultInjector(FaultConfig(exception_rate=1.0), "online")
        controller, result = self._run(trace, injector)
        assert result.intervals == []
        assert result.rejected_intervals > 0
        assert result.reconfigurations == 0
        assert controller.point == DesignSpace().minimum_point()  # held last-good
        assert result.mean_hardware_cost == 0.0  # degenerate run, no crash
        assert result.total_cycles > 0  # the intervals still executed

    def test_fault_free_run_unchanged_by_zero_rate_injector(self, trace):
        _, clean = self._run(trace, None)
        injector = FaultInjector(FaultConfig(), "online")
        _, with_injector = self._run(trace, injector)
        assert with_injector.cases() == clean.cases()
        assert with_injector.total_cycles == clean.total_cycles


class TestRuntimeBackedHelpers:
    def test_profile_benchmarks_through_runtime(self, tmp_path):
        from repro.sched.nuca import NUCAMachine, profile_benchmarks

        machine = NUCAMachine()
        benchmarks = [get_benchmark(n) for n in ("401.bzip2", "429.mcf")]
        plain = profile_benchmarks(machine, benchmarks, n_mem=800, seed=1)

        path = tmp_path / "profiles.jsonl"
        runtime = EvaluationRuntime(journal=path)
        via_runtime = profile_benchmarks(
            machine, benchmarks, n_mem=800, seed=1, runtime=runtime
        )
        assert via_runtime.stats == plain.stats
        grid = len(benchmarks) * len(machine.distinct_l1_sizes)
        assert runtime.counters.simulations == grid

        resumed_rt = EvaluationRuntime(journal=path)
        resumed = profile_benchmarks(
            machine, benchmarks, n_mem=800, seed=1, runtime=resumed_rt
        )
        assert resumed.stats == plain.stats
        assert resumed_rt.counters.simulations == 0
        assert resumed_rt.counters.journal_hits == grid

    def test_sweep_configs_through_runtime(self):
        from repro.analysis.sweep import sweep_configs

        trace = get_benchmark("401.bzip2").trace(800, seed=2)
        configs = [table1_config(c) for c in "AB"]
        plain = sweep_configs(configs, trace, seed=0)
        pooled = sweep_configs(
            configs, trace, seed=0,
            runtime=EvaluationRuntime(pool=PoolConfig(max_workers=2, timeout_s=120)),
        )
        assert pooled.labels == plain.labels
        assert pooled.stats == plain.stats
