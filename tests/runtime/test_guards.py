"""Tests for the measurement-validation guards."""

import math
from dataclasses import replace

import pytest

from repro.core.analyzer import measure_layer
from repro.core.lpm import LPMRReport
from repro.runtime.errors import MeasurementError
from repro.runtime.guards import checked_report, ensure_finite_report, ensure_finite_stats
from repro.sim.params import table1_config
from repro.sim.stats import simulate_and_measure
from repro.workloads.spec import get_benchmark


@pytest.fixture(scope="module")
def stats():
    trace = get_benchmark("401.bzip2").trace(1500, seed=3)
    _, st = simulate_and_measure(table1_config("A"), trace, seed=0)
    return st


class TestEnsureFiniteStats:
    def test_clean_measurement_passes_through(self, stats):
        assert ensure_finite_stats(stats) is stats

    def test_expected_instruction_count_accepted(self, stats):
        ensure_finite_stats(stats, expected_instructions=stats.n_instructions)

    @pytest.mark.parametrize("field", ["cpi", "cpi_exe", "f_mem"])
    @pytest.mark.parametrize("poison", [math.nan, math.inf, -math.inf])
    def test_nonfinite_scalar_rejected(self, stats, field, poison):
        with pytest.raises(MeasurementError, match="non-finite"):
            ensure_finite_stats(replace(stats, **{field: poison}))

    def test_dropped_l1_intervals_rejected(self, stats):
        empty = replace(stats, l1=measure_layer([], [], [], []))
        with pytest.raises(MeasurementError, match="empty L1"):
            ensure_finite_stats(empty)

    def test_truncated_measurement_rejected(self, stats):
        with pytest.raises(MeasurementError, match="truncated"):
            ensure_finite_stats(
                stats, expected_instructions=stats.n_instructions + 1000
            )


class TestReportGuards:
    def test_checked_report_returns_report(self, stats):
        report = checked_report(stats, expected_instructions=stats.n_instructions)
        assert isinstance(report, LPMRReport)
        assert math.isfinite(report.lpmr1)

    def test_checked_report_rejects_poison(self, stats):
        with pytest.raises(MeasurementError):
            checked_report(replace(stats, cpi_exe=math.nan))

    def test_ensure_finite_report_rejects_nan(self, stats):
        report = stats.lpmr_report()
        bad = replace(report, camat2=math.inf)
        with pytest.raises(MeasurementError):
            ensure_finite_report(bad)

    def test_ensure_finite_report_accepts_clean(self, stats):
        report = stats.lpmr_report()
        assert ensure_finite_report(report) is report
