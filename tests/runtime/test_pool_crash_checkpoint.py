"""Death mid-checkpoint: the window between result arrival and journal flush.

The supervised pool checkpoints each job the moment its result arrives
(``on_result`` → ``CheckpointJournal.put``).  Two processes can die inside
that window:

* the **supervisor** — SIGKILLed after a worker has sent a result but
  before the journal line for it is flushed.  The result is lost with the
  process; on resume, exactly the unjournaled jobs must be recomputed and
  every journaled one replayed from disk;
* a **worker** — SIGKILLed mid-job.  The supervisor charges a
  ``WorkerCrashed`` attempt, replaces the worker, and the retried job's
  result still lands in the journal exactly once.

Both are integration tests against real processes and real SIGKILL, not
monkeypatched stand-ins.
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

from repro.runtime.evaluate import EvaluationRequest, EvaluationRuntime
from repro.runtime.journal import CheckpointJournal
from repro.runtime.pool import PoolConfig, RetryPolicy
from repro.sim.params import MachineConfig
from repro.workloads.generators import working_set_addresses
from repro.workloads.trace import Trace

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

TRACE_ACCESSES = 300
TRACE_SEED = 11
N_JOBS = 4

#: The supervisor-side script: run a 4-job pooled batch whose journal
#: SIGKILLs the *whole process* right before flushing the final job's
#: entry — i.e. after the worker already sent the result over its pipe.
#: argv: <journal_path>
KILLED_RUN_SCRIPT = """
import os, signal, sys
from repro.runtime.evaluate import EvaluationRequest, EvaluationRuntime
from repro.runtime.journal import CheckpointJournal
from repro.runtime.pool import PoolConfig
from repro.sim.params import MachineConfig
from repro.workloads.generators import working_set_addresses
from repro.workloads.trace import Trace

TRACE_ACCESSES = {accesses}
TRACE_SEED = {seed}
N_JOBS = {n_jobs}


class DyingJournal(CheckpointJournal):
    def put(self, key, value):
        if key == "job-" + str(N_JOBS - 1):
            # The worker's result for this job has been received (we are in
            # the on_result checkpoint callback) but not yet flushed: this
            # is precisely the crash window under test.
            os.kill(os.getpid(), signal.SIGKILL)
        super().put(key, value)


trace = Trace.from_memory_addresses(
    working_set_addresses(TRACE_ACCESSES, footprint_bytes=64 * 1024,
                          seed=TRACE_SEED),
    compute_per_access=1, name="ckpt", seed=TRACE_SEED,
)
requests = [
    EvaluationRequest(key="job-" + str(i), config=MachineConfig(),
                      trace=trace, seed=i)
    for i in range(N_JOBS)
]
runtime = EvaluationRuntime(
    pool=PoolConfig(max_workers=1, timeout_s=120),
    journal=DyingJournal(sys.argv[1]),
)
runtime.evaluate_many(requests)
raise SystemExit("unreachable: the journal must have killed this process")
"""


def _trace():
    return Trace.from_memory_addresses(
        working_set_addresses(TRACE_ACCESSES, footprint_bytes=64 * 1024,
                              seed=TRACE_SEED),
        compute_per_access=1, name="ckpt", seed=TRACE_SEED,
    )


def _requests(trace):
    return [
        EvaluationRequest(key=f"job-{i}", config=MachineConfig(),
                          trace=trace, seed=i)
        for i in range(N_JOBS)
    ]


class TestSupervisorDeathMidCheckpoint:
    def test_sigkill_between_result_send_and_journal_flush(self, tmp_path):
        journal_path = tmp_path / "ckpt.jsonl"
        script = KILLED_RUN_SCRIPT.format(
            accesses=TRACE_ACCESSES, seed=TRACE_SEED, n_jobs=N_JOBS
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
        # Capture into files, not pipes: the forked pool worker inherits the
        # supervisor's stdout/stderr, so after the SIGKILL a pipe would stay
        # open until the orphaned worker noticed — run() would block on EOF.
        stderr_path = tmp_path / "stderr.txt"
        with stderr_path.open("wb") as stderr_fh:
            proc = subprocess.run(
                [sys.executable, "-c", script, str(journal_path)],
                stdout=subprocess.DEVNULL, stderr=stderr_fh,
                env=env, timeout=300,
            )
        # The run died by SIGKILL, not by finishing or erroring out.
        assert proc.returncode == -signal.SIGKILL, stderr_path.read_text()

        # With one worker, jobs complete in submission order: every job but
        # the last was flushed before the kill; the last one's result died
        # with the supervisor.
        survived = CheckpointJournal(journal_path)
        assert sorted(survived.keys()) == [f"job-{i}" for i in range(N_JOBS - 1)]
        assert survived.dropped_lines == 0  # each line was flushed whole

        # Exact resume: only the lost job is recomputed.
        trace = _trace()
        resumed = EvaluationRuntime(
            pool=PoolConfig(max_workers=1, timeout_s=120), journal=journal_path
        )
        out = resumed.evaluate_many(_requests(trace))
        assert resumed.counters.journal_hits == N_JOBS - 1
        assert resumed.counters.simulations == 1
        assert resumed.last_sources[f"job-{N_JOBS - 1}"] == "simulated"

        # And the recomputed batch is bit-identical to a clean direct run.
        clean = EvaluationRuntime().evaluate_many(_requests(trace))
        for key in clean:
            assert out[key].to_dict() == clean[key].to_dict(), key


def _kill_worker_once(marker_path, config, trace, seed):
    """Worker-side job body: SIGKILL this worker on the first attempt."""
    from pathlib import Path

    from repro.sim.stats import simulate_and_measure

    marker = Path(marker_path)
    if not marker.exists():
        marker.write_text("died once")
        os.kill(os.getpid(), signal.SIGKILL)
    _, stats = simulate_and_measure(config, trace, seed=seed)
    return stats


def _plain_simulate(config, trace, seed):
    from repro.sim.stats import simulate_and_measure

    _, stats = simulate_and_measure(config, trace, seed=seed)
    return stats


class TestWorkerDeathMidJob:
    def test_sigkilled_worker_retries_and_journals_exactly_once(self, tmp_path):
        from repro.runtime.pool import EvaluationPool, Job

        journal = CheckpointJournal(tmp_path / "worker.jsonl")
        trace = _trace()
        marker = tmp_path / "died.marker"
        pool = EvaluationPool(PoolConfig(
            max_workers=2, timeout_s=120,
            retry=RetryPolicy(max_retries=2, backoff_base=0.01),
        ))
        jobs = [
            Job(key="victim", fn=_kill_worker_once,
                args=(str(marker), MachineConfig(), trace, 0)),
            Job(key="bystander", fn=_plain_simulate,
                args=(MachineConfig(), trace, 1)),
        ]

        def checkpoint(result):
            if result.ok:
                journal.put(result.key, result.value.to_dict())

        results = pool.run(jobs, on_result=checkpoint)
        assert results["victim"].ok and results["bystander"].ok
        assert results["victim"].crashes == 1
        assert pool.worker_restarts == 1

        # Exactly one journal line per job — the crashed attempt did not
        # checkpoint anything, the retry checkpointed once.
        reloaded = CheckpointJournal(journal.path)
        assert sorted(reloaded.keys()) == ["bystander", "victim"]
        lines = [ln for ln in journal.path.read_text().splitlines() if ln]
        assert len(lines) == 2

        # A resumed runtime replays both from the journal: zero simulations.
        resumed = EvaluationRuntime(journal=journal.path)
        out = resumed.evaluate_many([
            EvaluationRequest(key="victim", config=MachineConfig(),
                              trace=trace, seed=0),
            EvaluationRequest(key="bystander", config=MachineConfig(),
                              trace=trace, seed=1),
        ])
        assert resumed.counters.simulations == 0
        clean = EvaluationRuntime().evaluate_many([
            EvaluationRequest(key="victim", config=MachineConfig(),
                              trace=trace, seed=0),
            EvaluationRequest(key="bystander", config=MachineConfig(),
                              trace=trace, seed=1),
        ])
        for key in clean:
            assert out[key].to_dict() == clean[key].to_dict(), key
