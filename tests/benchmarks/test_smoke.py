"""Smoke-run every ``benchmarks/bench_*.py`` experiment at reduced scale.

The experiment-regeneration benches are the repo's executable record of
the paper's tables and figures, but at full scale they take minutes —
so they only ran when someone remembered to.  This suite executes every
bench function on shrunken inputs (small traces, few seeds) inside the
tier-1 run:

* bench modules are loaded under throwaway names and their module-level
  scale constants (``N_ACCESSES`` etc.) are dialed down after import;
* the pytest-benchmark ``benchmark`` fixture is replaced by a stub that
  just calls the measured function once, and ``artifact`` by a writer
  into ``tmp_path`` (the real ``benchmarks/output/`` is never touched);
* any exception is a failure, with one exception: benches listed in
  :data:`ASSERT_TOLERANT` assert quantitative acceptance thresholds that
  only hold at full scale, so for those — and only those — a clean
  ``AssertionError`` is tolerated.  Crashes still fail everywhere.
"""

import ast
import importlib.util
import sys
from pathlib import Path

import pytest

from repro.sched import NUCAMachine, profile_benchmarks
from repro.workloads.spec import SELECTED_16, get_benchmark

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"

#: Reduced values for the bench modules' scale constants (applied only
#: when smaller than the module's own value).
SCALE_DOWN = {
    "N_ACCESSES": 2_000,
    "N_BURSTS": 4_000,
    "BENCH_ACCESSES": 1_200,
    "N_RANDOM_SEEDS": 2,
    "INTERVAL": 1_500,
}
#: Reduced shared-fixture sizes (conftest uses 60_000 / 20_000).
SMOKE_BWAVES_ACCESSES = 4_000
SMOKE_NUCA_ACCESSES = 1_200

#: Benches whose asserts encode full-scale quantitative acceptance
#: thresholds (model error bounds, adaptation win margins, ladder
#: trajectories) that legitimately do not hold on tiny inputs.  Each
#: still must *run* without raising anything but AssertionError.
ASSERT_TOLERANT = {
    "bench_ablation_bypass",
    "bench_ablation_mshr",
    "bench_ablation_overlap",
    "bench_ablation_prefetch",
    "bench_algorithm_walk",
    "bench_fig6_apc1",
    "bench_fig7_apc2",
    "bench_fig8_hsp",
    "bench_model_validation",
    "bench_online_adaptation",
    "bench_partition",
    "bench_surrogate_speedup",
    "bench_table1_lpmr_configs",
    "bench_three_level",
    "bench_timed_corun",
}


def _discover():
    """(path, test name, fixture params) per bench test, via AST only —
    collection must not import (and thus execute) the bench modules."""
    cases = []
    for path in sorted(BENCH_DIR.glob("bench_*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in tree.body:
            if isinstance(node, ast.FunctionDef) and node.name.startswith("test_"):
                params = tuple(a.arg for a in node.args.args)
                cases.append(pytest.param(
                    path, node.name, params, id=f"{path.stem}::{node.name}",
                ))
    return cases


CASES = _discover()


def test_every_bench_module_is_covered():
    covered = {case.values[0].stem for case in CASES}
    on_disk = {p.stem for p in BENCH_DIR.glob("bench_*.py")}
    assert covered == on_disk and len(on_disk) >= 18
    assert ASSERT_TOLERANT <= on_disk, "tolerance list names unknown benches"


class StubBenchmark:
    """Drop-in for pytest-benchmark's fixture: run once, no statistics."""

    def __init__(self):
        self.extra_info = {}

    def __call__(self, fn, *args, **kwargs):
        return fn(*args, **kwargs)

    def pedantic(self, fn, args=(), kwargs=None, rounds=1, iterations=1,
                 warmup_rounds=0):
        return fn(*args, **(kwargs or {}))


_MODULE_CACHE = {}


def _load_scaled(path: Path):
    module = _MODULE_CACHE.get(path)
    if module is None:
        spec = importlib.util.spec_from_file_location(f"smoke_{path.stem}", path)
        module = importlib.util.module_from_spec(spec)
        sys.modules[spec.name] = module
        spec.loader.exec_module(module)
        for name, small in SCALE_DOWN.items():
            if hasattr(module, name) and getattr(module, name) > small:
                setattr(module, name, small)
        _MODULE_CACHE[path] = module
    return module


@pytest.fixture(scope="module")
def smoke_bwaves_trace():
    return get_benchmark("410.bwaves").trace(SMOKE_BWAVES_ACCESSES, seed=7)


@pytest.fixture(scope="module")
def smoke_nuca_machine():
    return NUCAMachine()


@pytest.fixture(scope="module")
def smoke_nuca_db(smoke_nuca_machine):
    profiles = [get_benchmark(name) for name in SELECTED_16]
    return profile_benchmarks(
        smoke_nuca_machine, profiles, n_mem=SMOKE_NUCA_ACCESSES, seed=3
    )


@pytest.mark.parametrize("path,name,params", CASES)
def test_bench_smoke(path, name, params, tmp_path,
                     smoke_bwaves_trace, smoke_nuca_machine, smoke_nuca_db):
    module = _load_scaled(path)
    fn = getattr(module, name)
    artifacts = {}

    def artifact(artifact_name, text):
        artifacts[artifact_name] = text
        (tmp_path / f"{artifact_name}.txt").write_text(text + "\n")

    available = {
        "benchmark": StubBenchmark(),
        "artifact": artifact,
        "bwaves_trace": smoke_bwaves_trace,
        "nuca_machine": smoke_nuca_machine,
        "nuca_db": smoke_nuca_db,
        "tmp_path": tmp_path,
    }
    missing = [p for p in params if p not in available]
    assert not missing, (
        f"{path.stem}.{name} wants fixtures {missing} the smoke harness "
        "does not provide; extend tests/benchmarks/test_smoke.py"
    )
    try:
        fn(**{p: available[p] for p in params})
    except AssertionError:
        if path.stem not in ASSERT_TOLERANT:
            raise
    # Whatever happened to the asserts, every artifact the bench produced
    # must be real rendered text (the pipeline itself worked end to end).
    for artifact_name, text in artifacts.items():
        assert text.strip(), f"empty artifact {artifact_name!r}"
