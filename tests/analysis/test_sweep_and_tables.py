"""Tests for sweep helpers and paper-layout table rendering."""

import pytest

from repro.analysis.sweep import sweep_configs, sweep_l1_sizes
from repro.analysis.tables import apc_sweep_text, hsp_text, stall_walk_text, table1_text
from repro.core.report import render_table
from repro.sim.params import DEFAULT_MACHINE, table1_config
from repro.workloads.spec import get_benchmark

KB = 1024


@pytest.fixture(scope="module")
def trace():
    return get_benchmark("401.bzip2").trace(3000, seed=1)


class TestSweeps:
    def test_sweep_configs(self, trace):
        configs = [table1_config("A"), table1_config("B")]
        result = sweep_configs(configs, trace, seed=1)
        assert result.labels == ["A", "B"]
        assert len(result) == 2
        assert all(v >= 0 for v in result.series("lpmr1"))

    def test_sweep_l1_sizes(self, trace):
        result = sweep_l1_sizes(DEFAULT_MACHINE, trace, [4 * KB, 64 * KB], seed=1)
        assert result.labels == ["L1-4KB", "L1-64KB"]
        apc1 = result.series("apc1")
        assert len(apc1) == 2

    def test_layer_series(self, trace):
        result = sweep_l1_sizes(DEFAULT_MACHINE, trace, [4 * KB], seed=1)
        mr = result.layer_series("l1", "miss_rate")
        assert 0.0 <= mr[0] <= 1.0


class TestSweepEngines:
    """The engine knob changes how a sweep runs, never what it measures."""

    def test_all_engines_agree(self, trace):
        configs = [table1_config("A"), table1_config("C")]
        per_engine = {
            engine: sweep_configs(configs, trace, seed=1, engine=engine)
            for engine in ("auto", "batch", "scalar")
        }
        base = per_engine["scalar"]
        for engine in ("auto", "batch"):
            assert per_engine[engine].labels == base.labels
            assert per_engine[engine].stats == base.stats

    def test_unknown_engine_rejected(self, trace):
        with pytest.raises(ValueError):
            sweep_configs([table1_config("A")], trace, engine="turbo")

    def test_engine_batch_rejects_ineligible(self, trace):
        import dataclasses

        from repro.runtime.errors import ConfigError
        from repro.sim.prefetch import PrefetchConfig

        bad = dataclasses.replace(
            DEFAULT_MACHINE, prefetch=PrefetchConfig(), name="prefetching"
        )
        with pytest.raises(ConfigError):
            sweep_configs([table1_config("A"), bad], trace, engine="batch")
        # "auto" degrades that lane to the scalar path instead.
        result = sweep_configs([table1_config("A"), bad], trace, seed=1)
        assert result.labels == ["A", "prefetching"]

    def test_runtime_sweep_uses_batch_path(self, trace):
        from repro.runtime.evaluate import EvaluationRuntime

        rt = EvaluationRuntime()
        configs = [table1_config("A"), table1_config("C")]
        via_runtime = sweep_configs(configs, trace, seed=1, runtime=rt)
        assert rt.counters.simulations == 2
        inline = sweep_configs(configs, trace, seed=1)
        assert via_runtime.stats == inline.stats


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table(["a", "bb"], [[1, 2.5], [3, 4.25]])
        lines = text.splitlines()
        assert "a" in lines[0] and "bb" in lines[0]
        assert "-+-" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        text = render_table(["x"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        text = render_table(["a"], [])
        assert "a" in text


class TestExperimentTables:
    def test_table1_text(self, trace):
        configs = [table1_config("A"), table1_config("B")]
        result = sweep_configs(configs, trace, seed=1)
        text = table1_text(configs, result.stats)
        assert "Pipeline issue width" in text
        assert "LPMR1" in text and "LPMR3" in text
        assert " A " in text.splitlines()[0]

    def test_table1_text_mismatch(self, trace):
        with pytest.raises(ValueError):
            table1_text([table1_config("A")], [])

    def test_apc_sweep_text(self):
        values = {("x", 4): 0.5, ("x", 16): 0.6}
        text = apc_sweep_text("APC1", ["x"], [4, 16], values)
        assert "APC1" in text
        assert "4 KB" in text and "16 KB" in text
        assert "0.5" in text

    def test_hsp_text(self):
        text = hsp_text({"Random": 0.7986, "NUCA-SA (fg)": 0.9106})
        assert "Random" in text
        assert "0.7986" in text

    def test_stall_walk_text(self, trace):
        result = sweep_configs([table1_config("A")], trace, seed=1)
        text = stall_walk_text(result)
        assert "stall % of CPI_exe" in text


class TestCsvExport:
    def test_sweep_to_csv_roundtrip(self, trace):
        import csv
        import io

        from repro.analysis.export import stats_fieldnames, sweep_to_csv

        result = sweep_l1_sizes(DEFAULT_MACHINE, trace, [4 * KB, 64 * KB], seed=1)
        text = sweep_to_csv(result)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 2
        assert rows[0]["label"] == "L1-4KB"
        assert set(rows[0]) == set(stats_fieldnames())
        assert float(rows[0]["l1_camat"]) > 0

    def test_write_sweep_csv(self, trace, tmp_path):
        from repro.analysis.export import write_sweep_csv

        result = sweep_l1_sizes(DEFAULT_MACHINE, trace, [4 * KB], seed=1)
        path = tmp_path / "sweep.csv"
        write_sweep_csv(result, str(path))
        content = path.read_text()
        assert content.startswith("label,")
        assert "L1-4KB" in content

    def test_rows_to_csv(self):
        from repro.analysis.export import rows_to_csv

        text = rows_to_csv(["a", "b"], [[1, 2], [3, 4]])
        assert text.splitlines()[0] == "a,b"
        assert text.splitlines()[2] == "3,4"
