"""Tier-0 surrogate: contracts, ranking, frontier selection, multi-fidelity.

Three layers of guarantees:

* the predictor's output satisfies the same Eq. 9-11 contracts as the
  engine's measured reports (checked live under ``runtime_checks``);
* frontier selection never drops a configuration the engine could still
  distinguish (Pareto-maximal tie handling);
* the multi-fidelity sweep on the CI gate slice reaches the engine-only
  optimum with >= 20x fewer engine simulations — the PR's acceptance
  criterion, asserted, not documented.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.surrogate import (
    SurrogatePrediction,
    predict,
    predict_many,
    select_frontier,
    validate_trace,
)
from repro.analysis.sweep import sweep_configs
from repro.lint.contracts import runtime_checks
from repro.obs import metrics as obs_metrics
from repro.runtime.errors import ConfigError
from repro.sim import DEFAULT_MACHINE
from repro.workloads.generators import working_set_addresses
from repro.workloads.locality import profile_trace
from repro.workloads.spec import get_benchmark
from repro.workloads.trace import Trace

KB = 1024


@pytest.fixture(scope="module")
def gcc_profile():
    trace = get_benchmark("403.gcc").trace(4_000, seed=3)
    return profile_trace(trace)


@st.composite
def random_machine(draw):
    return DEFAULT_MACHINE.with_knobs(
        issue_width=draw(st.sampled_from([1, 2, 4, 8])),
        iw_size=draw(st.sampled_from([2, 8, 32, 128])),
        rob_size=draw(st.sampled_from([4, 16, 64, 256])),
        l1_ports=draw(st.sampled_from([1, 2, 4])),
        mshr_count=draw(st.sampled_from([1, 4, 16])),
        l2_banks=draw(st.sampled_from([2, 8])),
        l1_size_bytes=draw(st.sampled_from([4 * KB, 16 * KB, 64 * KB])),
    )


class TestPredictionContracts:
    @given(random_machine())
    @settings(max_examples=40, deadline=None)
    def test_bounds_and_contracts(self, gcc_profile, machine):
        with runtime_checks():
            pred = predict(gcc_profile, machine)
            pred.lpmr_report()  # Eq. 9-11 contracts re-checked on the report
        assert 0.0 <= pred.mr1 <= 1.0
        assert 0.0 <= pred.mr2 <= 1.0
        assert 0.0 <= pred.overlap_ratio_cm < 1.0
        assert 0.0 <= pred.eta_combined <= 1.0
        assert pred.cpi >= pred.cpi_exe > 0.0
        for name in ("lpmr1", "lpmr2", "lpmr3", "camat1", "camat2", "camat3",
                     "cpi", "ipc", "apc1", "apc2"):
            assert math.isfinite(getattr(pred, name)), name

    @given(random_machine())
    @settings(max_examples=40, deadline=None)
    def test_lpmr_defining_ratios(self, gcc_profile, machine):
        """Eq. 9-11 hold exactly on the predicted quantities."""
        p = predict(gcc_profile, machine)
        assert p.lpmr1 == pytest.approx(p.camat1 * p.f_mem / p.cpi_exe)
        assert p.lpmr2 == pytest.approx(p.camat2 * p.f_mem * p.mr1 / p.cpi_exe)
        assert p.lpmr3 == pytest.approx(
            p.camat3 * p.f_mem * p.mr1 * p.mr2 / p.cpi_exe
        )

    def test_mr1_monotone_in_l1_size(self, gcc_profile):
        sizes = [2 * KB, 4 * KB, 8 * KB, 16 * KB, 32 * KB, 64 * KB, 128 * KB]
        mrs = [
            predict(gcc_profile, DEFAULT_MACHINE.with_knobs(l1_size_bytes=s)).mr1
            for s in sizes
        ]
        assert all(a >= b for a, b in zip(mrs, mrs[1:]))

    def test_line_size_mismatch_raises(self):
        trace = get_benchmark("403.gcc").trace(500, seed=3)
        profile_128 = profile_trace(trace, line_bytes=128)
        with pytest.raises(ConfigError):
            predict(profile_128, DEFAULT_MACHINE.with_knobs())

    def test_l3_configs_are_rejected(self, gcc_profile):
        from dataclasses import replace

        from repro.sim.params import CacheGeometry

        config = replace(
            DEFAULT_MACHINE.with_knobs(),
            l3=CacheGeometry(size_bytes=1024 * KB, line_bytes=64,
                             associativity=16),
        )
        with pytest.raises(ConfigError):
            predict(gcc_profile, config)


def _pred(cpi, resources=(), score=0.0, name=""):
    """Hand-built prediction with only ranking-relevant fields."""
    return SurrogatePrediction(
        lpmr1=cpi, lpmr2=0.1, lpmr3=0.01, camat1=1.0, camat2=1.0, camat3=1.0,
        mr1=0.1, mr2=0.1, f_mem=0.3, cpi_exe=0.25, cpi=cpi,
        overlap_ratio_cm=0.5, eta_combined=0.5, hit_time1=3.0,
        hit_concurrency1=1.0, config_name=name,
        resource_score=score, resources=resources,
    )


class TestSelectFrontier:
    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            select_frontier([_pred(1.0)], top_k=0)
        with pytest.raises(ValueError):
            select_frontier([_pred(1.0)], margin=-0.1)
        assert select_frontier([]) == []

    def test_top_k_and_margin_union(self):
        preds = [_pred(1.0), _pred(1.04), _pred(2.0), _pred(3.0)]
        assert select_frontier(preds, top_k=1, margin=0.0) == [0]
        # margin pulls in the near-tie even past top_k.
        assert select_frontier(preds, top_k=1, margin=0.05) == [0, 1]
        assert select_frontier(preds, top_k=3, margin=0.0) == [0, 1, 2]

    def test_tie_class_with_dominating_member_costs_one(self):
        # A saturated-knob subgrid: (4,64,...) dominates both others.
        preds = [
            _pred(1.0, resources=(2, 32, 64, 1, 4, 4)),
            _pred(1.0, resources=(4, 32, 64, 1, 4, 4)),
            _pred(1.0, resources=(4, 64, 64, 1, 4, 4)),
        ]
        assert select_frontier(preds, top_k=1, margin=0.0) == [2]

    def test_tie_class_antichain_escalates_every_member(self):
        # Single-knob upgrades of a common base: mutually incomparable, so
        # the engine could still tell them apart — none may be dropped.
        preds = [
            _pred(1.0, resources=(4, 64, 32, 1, 4, 4)),
            _pred(1.0, resources=(2, 128, 32, 1, 4, 4)),
            _pred(1.0, resources=(2, 64, 64, 1, 4, 4)),
            _pred(2.0, resources=(2, 64, 32, 1, 4, 4)),
        ]
        assert select_frontier(preds, top_k=1, margin=0.0) == [0, 1, 2]

    def test_fallback_to_resource_score_without_knob_vectors(self):
        preds = [_pred(1.0, score=1.0), _pred(1.0, score=3.0), _pred(1.0, score=2.0)]
        assert select_frontier(preds, top_k=1, margin=0.0) == [1]

    def test_objective_selects_the_ranked_quantity(self):
        a = _pred(1.0)
        b = SurrogatePrediction(
            lpmr1=0.1, lpmr2=0.1, lpmr3=0.01, camat1=1.0, camat2=1.0,
            camat3=1.0, mr1=0.1, mr2=0.1, f_mem=0.3, cpi_exe=0.25, cpi=2.0,
            overlap_ratio_cm=0.5, eta_combined=0.5, hit_time1=3.0,
            hit_concurrency1=1.0,
        )
        assert select_frontier([a, b], top_k=1, margin=0.0) == [0]
        assert select_frontier([a, b], top_k=1, margin=0.0,
                               objective="lpmr1") == [1]


def _gate_trace(accesses=4_000):
    addrs = working_set_addresses(accesses, footprint_bytes=12 * KB, seed=7)
    return Trace.from_memory_addresses(
        addrs, compute_per_access=8, load_fraction=0.7,
        name="lpm-batch-gate", seed=7,
    )


def _gate_slice(n=64):
    return [
        DEFAULT_MACHINE.with_knobs(issue_width=iw, iw_size=w, rob_size=rob,
                                   name=f"c{iw}-{w}-{rob}")
        for iw in (2, 4, 6, 8)
        for w in (32, 64, 96, 128)
        for rob in (48, 96, 128, 192)
    ][:n]


class TestSweepFidelities:
    def test_rejects_unknown_fidelity(self):
        with pytest.raises(ValueError):
            sweep_configs([], _gate_trace(200), fidelity="psychic")

    def test_surrogate_mode_never_simulates(self):
        configs = _gate_slice(6)
        result = sweep_configs(configs, _gate_trace(600), fidelity="surrogate")
        assert result.n_predicted == len(configs)
        assert result.n_simulated == 0
        assert all(isinstance(s, SurrogatePrediction) for s in result.stats)
        # Ranking-facing series work on prediction rows.
        assert len(result.series("cpi")) == len(configs)

    def test_multi_mode_source_accounting(self):
        configs = _gate_slice(16)
        result = sweep_configs(configs, _gate_trace(1_000), fidelity="multi",
                               top_k=2, margin=0.0)
        assert len(result) == len(configs)
        assert result.n_simulated >= 1
        assert result.n_predicted >= 1
        assert result.n_simulated + result.n_predicted == len(configs)
        assert set(result.sources) <= {"simulated", "cached", "predicted"}

    def test_multi_mode_counters(self):
        configs = _gate_slice(16)
        obs_metrics.set_metrics_enabled(True)
        try:
            obs_metrics.get_registry().snapshot_and_reset()
            sweep_configs(configs, _gate_trace(1_000), fidelity="multi",
                          top_k=2, margin=0.0)
            snap = obs_metrics.get_registry().snapshot_and_reset()
        finally:
            obs_metrics.set_metrics_enabled(False)
        counters = snap["counters"]
        assert counters["surrogate.predict"] == len(configs)
        assert counters["surrogate.escalated"] >= 1
        assert (counters["surrogate.escalated"]
                + counters["surrogate.pruned"]) == len(configs)

    def test_acceptance_gate_slice_reduction_and_agreement(self):
        """>= 20x fewer engine sims AND the frontier contains the optimum."""
        configs = _gate_slice(64)
        trace = _gate_trace(4_000)
        full = sweep_configs(configs, trace, seed=0, fidelity="engine")
        multi = sweep_configs(configs, trace, seed=0, fidelity="multi",
                              top_k=8, margin=0.05)
        engine_best = min(s.cpi for s in full.stats)
        escalated = [
            s for s, src in zip(multi.stats, multi.sources)
            if src != "predicted"
        ]
        assert len(configs) / len(escalated) >= 20.0
        assert min(s.cpi for s in escalated) == engine_best


class TestValidationHarness:
    def test_validate_trace_rows_are_finite(self):
        trace = get_benchmark("403.gcc").trace(3_000, seed=3)
        row = validate_trace(trace, seed=0)
        assert row.name == trace.name
        for name in ("mr1_error", "mr2_error", "camat1_error",
                     "lpmr1_error", "cpi_error"):
            value = getattr(row, name)
            assert math.isfinite(value) and value >= 0.0
        assert 0.0 <= row.mr1_pred <= 1.0

    def test_validation_report_renders_and_serializes(self):
        from repro.analysis import format_validation_report, validate_benchmarks

        report = validate_benchmarks(["403.gcc", "429.mcf"], n_accesses=2_000,
                                     seed=3)
        text = format_validation_report(report)
        assert "403.gcc" in text and "429.mcf" in text
        payload = report.to_dict()
        assert len(payload["rows"]) == 2
        assert math.isfinite(payload["mean_cpi_error"])


class TestPredictMany:
    def test_matches_scalar_predict(self, gcc_profile):
        configs = _gate_slice(5)
        many = predict_many(gcc_profile, configs)
        for config, got in zip(configs, many):
            assert got == predict(gcc_profile, config)
