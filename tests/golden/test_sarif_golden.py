"""Golden SARIF snapshots of ``lint --program`` runs over seeded fixtures.

Pins the exact SARIF 2.1.0 documents the CI pipeline uploads, so format
drift (rule metadata, location shape, baseline states) shows up as a
reviewable diff.  Refresh, like the CLI goldens, with::

    PYTHONPATH=src python -m pytest tests/golden --update-goldens
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint.sarif import validate_sarif

GOLDEN_DIR = Path(__file__).resolve().parent
REPO_ROOT = GOLDEN_DIR.parents[1]
FIXTURES = Path("tests") / "lint" / "fixtures"

#: name -> (fixture path, comma-joined rule selection).
CASES = {
    "lint_program_race_bad": (
        FIXTURES / "program" / "race_bad",
        "RACE001,RACE002",
    ),
    # The whole async fixture tree: every ASYNC rule plus RACE003 fires
    # once (the *_clean packages contribute nothing), pinning the async
    # tier's SARIF rendering end to end.
    "lint_program_async_bad": (
        FIXTURES / "async",
        "ASYNC001,ASYNC002,ASYNC003,ASYNC004,RACE003",
    ),
    # The whole value fixture tree under the interval/unit rules: each
    # seeded package fires exactly its rule (the *_clean twins stay
    # quiet), pinning the detail -> SARIF properties rendering.  DRIFT001
    # gets its own case over one package pair because its readings merge
    # across every matching module in the analyzed tree.
    "lint_program_value_bad": (
        FIXTURES / "value",
        "VAL001,VAL002,UNIT001",
    ),
    "lint_program_drift_bad": (
        FIXTURES / "value" / "drift_bad",
        "DRIFT001",
    ),
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_program_sarif_golden(name, capsys, request, monkeypatch):
    monkeypatch.chdir(REPO_ROOT)  # fixture paths and baseline are repo-relative
    fixture, rules = CASES[name]
    code = main([
        "lint", "--program", "--format", "sarif",
        "--rules", rules, str(fixture),
    ])
    out = capsys.readouterr().out
    assert code == 1  # the seeded fixtures must gate
    doc = json.loads(out)
    assert validate_sarif(doc) == []

    golden_path = GOLDEN_DIR / f"{name}.sarif.json"
    normalized = json.dumps(doc, indent=2, sort_keys=True) + "\n"
    if request.config.getoption("--update-goldens"):
        golden_path.write_text(normalized, encoding="utf-8")
        return
    assert golden_path.exists(), (
        f"missing golden {golden_path.name}; create it with "
        "pytest tests/golden --update-goldens"
    )
    expected = golden_path.read_text(encoding="utf-8")
    assert normalized == expected, (
        f"SARIF output drifted from {golden_path.name}; if the change is "
        "intended, refresh with pytest tests/golden --update-goldens"
    )
