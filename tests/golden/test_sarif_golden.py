"""Golden SARIF snapshot of a ``lint --program`` run over a seeded fixture.

Pins the exact SARIF 2.1.0 document the CI pipeline uploads, so format
drift (rule metadata, location shape, baseline states) shows up as a
reviewable diff.  Refresh, like the CLI goldens, with::

    PYTHONPATH=src python -m pytest tests/golden --update-goldens
"""

import json
from pathlib import Path

from repro.cli import main
from repro.lint.sarif import validate_sarif

GOLDEN_DIR = Path(__file__).resolve().parent
REPO_ROOT = GOLDEN_DIR.parents[1]
GOLDEN_PATH = GOLDEN_DIR / "lint_program_race_bad.sarif.json"
FIXTURE = Path("tests") / "lint" / "fixtures" / "program" / "race_bad"


def test_program_sarif_golden(capsys, request, monkeypatch):
    monkeypatch.chdir(REPO_ROOT)  # fixture paths and baseline are repo-relative
    code = main([
        "lint", "--program", "--format", "sarif",
        "--rules", "RACE001,RACE002", str(FIXTURE),
    ])
    out = capsys.readouterr().out
    assert code == 1  # the seeded fixture must gate
    doc = json.loads(out)
    assert validate_sarif(doc) == []

    normalized = json.dumps(doc, indent=2, sort_keys=True) + "\n"
    if request.config.getoption("--update-goldens"):
        GOLDEN_PATH.write_text(normalized, encoding="utf-8")
        return
    assert GOLDEN_PATH.exists(), (
        f"missing golden {GOLDEN_PATH.name}; create it with "
        "pytest tests/golden --update-goldens"
    )
    expected = GOLDEN_PATH.read_text(encoding="utf-8")
    assert normalized == expected, (
        f"SARIF output drifted from {GOLDEN_PATH.name}; if the change is "
        "intended, refresh with pytest tests/golden --update-goldens"
    )
