"""Golden snapshots of the CLI's user-facing output.

Every case runs ``repro.cli.main`` in-process with fixed seeds, normalizes
the nondeterministic fragments (absolute paths, wall-clock timings) and
diffs against the committed snapshot in this directory.  A deliberate
output change is recorded with::

    PYTHONPATH=src python -m pytest tests/golden --update-goldens

and the rewritten ``.txt`` files reviewed in the diff like any other code.
"""

import re
from pathlib import Path

import pytest

from repro.cli import main

GOLDEN_DIR = Path(__file__).resolve().parent

CASES = {
    "simulate_bwaves_A": [
        "simulate", "--benchmark", "410.bwaves", "--config", "A",
        "--accesses", "4000", "--seed", "7",
    ],
    "simulate_gcc_default_metrics_text": [
        "simulate", "--benchmark", "403.gcc", "--config", "default",
        "--accesses", "3000", "--seed", "7", "--metrics", "text",
    ],
    "walk_bwaves": [
        "walk", "--benchmark", "410.bwaves", "--accesses", "4000",
        "--seed", "7",
    ],
    "walk_bwaves_metrics_json": [
        "walk", "--benchmark", "410.bwaves", "--accesses", "4000",
        "--seed", "7", "--metrics", "json",
    ],
    "diagnose_mcf_A": [
        "diagnose", "--benchmark", "429.mcf", "--config", "A",
        "--accesses", "3000", "--seed", "7",
    ],
    "sweep_gcc_engine_batch": [
        "sweep", "--benchmark", "403.gcc", "--accesses", "3000",
        "--seed", "7", "--engine", "batch",
    ],
    "benchmarks_listing": ["benchmarks"],
    "lint_list_rules": ["lint", "--list-rules"],
}

#: (pattern, replacement) applied to captured and stored text alike, so
#: snapshots are stable across machines and runs.
_NORMALIZERS = (
    (re.compile(r"(/[\w.\-]+)+/(repo|tmp|pytest-[\w\-]+)[\w./\-]*"), "<PATH>"),
    (re.compile(r"\b\d+\.\d+ ?(s|ms|us|µs)\b"), "<TIME>"),
)


def _normalize(text: str) -> str:
    for pattern, replacement in _NORMALIZERS:
        text = pattern.sub(replacement, text)
    # Trailing-whitespace differences are invisible in review; strip them.
    return "\n".join(line.rstrip() for line in text.splitlines()) + "\n"


@pytest.mark.parametrize("name", sorted(CASES))
def test_cli_golden(name, capsys, request):
    code = main(CASES[name])
    out = _normalize(capsys.readouterr().out)
    assert code == 0
    golden_path = GOLDEN_DIR / f"{name}.txt"
    if request.config.getoption("--update-goldens"):
        golden_path.write_text(out, encoding="utf-8")
        return
    assert golden_path.exists(), (
        f"missing golden {golden_path.name}; create it with "
        "pytest tests/golden --update-goldens"
    )
    expected = _normalize(golden_path.read_text(encoding="utf-8"))
    assert out == expected, (
        f"CLI output drifted from {golden_path.name}; if the change is "
        "intended, refresh with pytest tests/golden --update-goldens"
    )


def test_goldens_have_no_orphans():
    """Every committed snapshot corresponds to a live case (and vice versa
    the parametrized test above guarantees every case has a snapshot)."""
    on_disk = {p.stem for p in GOLDEN_DIR.glob("*.txt")}
    assert on_disk == set(CASES), (
        f"orphaned goldens: {on_disk - set(CASES)}; "
        f"missing goldens: {set(CASES) - on_disk}"
    )
