"""Tracing core: no-op fast path, nesting, JSONL export, thread/fork safety."""

import json
import threading
from multiprocessing import get_context

from repro.obs import trace as obs_trace
from repro.obs.trace import (
    NOOP_SPAN,
    Tracer,
    configure_tracing,
    event,
    read_trace,
    span,
    tracing_enabled,
)


class TestDisabledFastPath:
    def test_disabled_by_default(self):
        assert not tracing_enabled()

    def test_span_returns_shared_noop_singleton(self):
        assert span("anything", key=1) is NOOP_SPAN
        assert span("other") is NOOP_SPAN

    def test_noop_span_is_inert(self):
        with span("x", a=1) as sp:
            sp.set(b=2)  # must not raise and must not record anything

    def test_event_is_dropped(self, tmp_path):
        event("nothing", x=1)  # no tracer installed; silently dropped


class TestSpanRecording:
    def test_span_record_shape(self, tmp_path):
        path = tmp_path / "t.jsonl"
        configure_tracing(path)
        with span("work", label="A") as sp:
            sp.set(result=42)
        records = list(read_trace(path))
        assert len(records) == 1
        (rec,) = records
        assert rec["kind"] == "span"
        assert rec["name"] == "work"
        assert rec["parent_id"] is None
        assert rec["duration_s"] >= 0.0
        assert rec["attrs"] == {"label": "A", "result": 42}

    def test_nesting_records_parent_id(self, tmp_path):
        path = tmp_path / "t.jsonl"
        configure_tracing(path)
        with span("outer") as outer:
            with span("inner"):
                pass
        by_name = {r["name"]: r for r in read_trace(path)}
        assert by_name["inner"]["parent_id"] == outer.span_id
        assert by_name["outer"]["parent_id"] is None
        # Inner exits (and is emitted) first; ids are unique.
        assert by_name["inner"]["span_id"] != by_name["outer"]["span_id"]

    def test_exception_recorded_and_propagated(self, tmp_path):
        path = tmp_path / "t.jsonl"
        configure_tracing(path)
        try:
            with span("failing"):
                raise ValueError("boom")
        except ValueError:
            pass
        (rec,) = read_trace(path)
        assert rec["error"] == "ValueError"

    def test_event_nests_under_open_span(self, tmp_path):
        path = tmp_path / "t.jsonl"
        configure_tracing(path)
        with span("parent") as sp:
            event("tick", n=1)
        records = list(read_trace(path))
        ev = next(r for r in records if r["kind"] == "event")
        assert ev["parent_id"] == sp.span_id
        assert ev["duration_s"] == 0.0
        assert ev["attrs"] == {"n": 1}

    def test_configure_none_disables(self, tmp_path):
        configure_tracing(tmp_path / "t.jsonl")
        assert tracing_enabled()
        configure_tracing(None)
        assert not tracing_enabled()
        assert span("x") is NOOP_SPAN


class TestConcurrency:
    def test_threads_interleave_at_line_granularity(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(path)

        def emit(tid):
            for i in range(25):
                with tracer.span("thread-span", tid=tid, i=i):
                    pass

        threads = [threading.Thread(target=emit, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        tracer.close()
        records = list(read_trace(path))
        assert len(records) == 100
        # Every line parsed as a full record (no torn lines), each with a
        # top-level span: stacks are thread-local, so no cross-thread parents.
        assert all(r["parent_id"] is None for r in records)
        assert len({r["span_id"] for r in records}) == 100

    def test_forked_child_spans_land_in_same_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        configure_tracing(path)
        with span("parent-before-fork"):
            pass
        ctx = get_context("fork")
        proc = ctx.Process(target=_child_emit)
        proc.start()
        proc.join(timeout=10.0)
        assert proc.exitcode == 0
        with span("parent-after-fork"):
            pass
        records = list(read_trace(path))
        names = {r["name"] for r in records}
        assert names == {"parent-before-fork", "child-span", "parent-after-fork"}
        assert len({r["pid"] for r in records}) == 2


def _child_emit():
    with obs_trace.span("child-span"):
        pass


class TestReadTrace:
    def test_torn_tail_is_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        good = json.dumps({"kind": "span", "name": "ok"})
        path.write_text(good + "\n" + '{"kind": "span", "name": "torn', encoding="utf-8")
        records = list(read_trace(path))
        assert [r["name"] for r in records] == ["ok"]

    def test_blank_lines_and_non_dicts_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('\n[1, 2]\n{"kind": "event", "name": "e"}\n', encoding="utf-8")
        assert [r["name"] for r in read_trace(path)] == ["e"]
