"""Unit tests for the metrics registry and its snapshot/merge semantics."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    EMPTY_SNAPSHOT,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_metrics_json,
    format_metrics_text,
    get_registry,
    merge_snapshots,
    metrics_enabled,
    set_metrics_enabled,
)
from repro.runtime.errors import ConfigError


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_counter_rejects_negative(self):
        with pytest.raises(ConfigError):
            Counter().inc(-1)

    def test_gauge_set_and_set_max(self):
        g = Gauge()
        g.set(3.0)
        g.set(1.5)
        assert g.value == 1.5
        g.set_max(1.0)
        assert g.value == 1.5
        g.set_max(4.0)
        assert g.value == 4.0

    def test_histogram_buckets_and_conservation(self):
        h = Histogram(bounds=(1.0, 2.0))
        for v in (0.5, 1.0, 1.5, 100.0):
            h.observe(v)
        # bisect_left: values strictly below a bound land in its bucket,
        # values equal to a bound land in that bound's bucket too.
        assert sum(h.counts) == h.total == 4
        assert h.counts[-1] == 1  # the unbounded overflow bucket
        assert h.mean == pytest.approx((0.5 + 1.0 + 1.5 + 100.0) / 4)

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ConfigError):
            Histogram(bounds=())
        with pytest.raises(ConfigError):
            Histogram(bounds=(2.0, 1.0))


class TestRegistry:
    def test_create_on_demand_and_identity(self):
        reg = MetricsRegistry()
        assert reg.is_empty()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")
        assert not reg.is_empty()

    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.25)
        reg.histogram("h").observe(0.5)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 1.25}
        assert snap["histograms"]["h"]["total"] == 1

    def test_empty_snapshot_constant_matches_fresh_registry(self):
        assert MetricsRegistry().snapshot() == EMPTY_SNAPSHOT

    def test_merge_folds_worker_snapshot(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        a.gauge("g").set(3.0)
        a.histogram("h").observe(0.5)
        b.counter("c").inc(3)
        b.counter("only_b").inc(1)
        b.gauge("g").set(2.0)
        b.histogram("h").observe(5.0)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"] == {"c": 5, "only_b": 1}
        assert snap["gauges"]["g"] == 3.0  # max wins
        assert snap["histograms"]["h"]["total"] == 2

    def test_merge_rejects_mismatched_histogram_bounds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", bounds=(1.0, 2.0)).observe(0.5)
        b.histogram("h", bounds=(1.0, 3.0)).observe(0.5)
        with pytest.raises(ConfigError):
            a.merge(b.snapshot())

    def test_snapshot_and_reset_hand_off(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(4)
        snap = reg.snapshot_and_reset()
        assert snap["counters"] == {"c": 4}
        assert reg.is_empty()
        assert reg.snapshot() == EMPTY_SNAPSHOT

    def test_merge_snapshots_pure_helper(self):
        a = {"counters": {"x": 1}, "gauges": {}, "histograms": {}}
        b = {"counters": {"x": 2}, "gauges": {}, "histograms": {}}
        merged = merge_snapshots(a, b)
        assert merged["counters"] == {"x": 3}
        # Inputs are untouched (merge is pure over snapshots).
        assert a["counters"] == {"x": 1} and b["counters"] == {"x": 2}


class TestSwitchboard:
    def test_disabled_by_default(self):
        assert not metrics_enabled()

    def test_toggle(self):
        set_metrics_enabled(True)
        assert metrics_enabled()
        set_metrics_enabled(False)
        assert not metrics_enabled()

    def test_global_registry_is_a_singleton(self):
        assert get_registry() is get_registry()


class TestReporters:
    def test_text_format_lists_all_kinds(self):
        reg = MetricsRegistry()
        reg.counter("sim.runs").inc(3)
        reg.gauge("sim.l1.mshr_peak").set_max(7)
        reg.histogram("lpm.lpmr1").observe(1.5)
        text = format_metrics_text(reg.snapshot())
        assert "counter   sim.runs" in text
        assert "gauge     sim.l1.mshr_peak" in text
        assert "histogram lpm.lpmr1" in text and "n=1" in text

    def test_text_format_empty(self):
        assert "(no metrics recorded)" in format_metrics_text(EMPTY_SNAPSHOT)

    def test_json_format_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        assert json.loads(format_metrics_json(reg.snapshot())) == reg.snapshot()
