"""Acceptance: a full LPM walk is reconstructable from the trace alone.

``repro walk --trace`` writes one ``lpm.step`` span per Fig. 3 iteration
carrying the complete decision state (LPMR1/LPMR2, thresholds, case,
config label, Δ-slack).  These tests replay the identical walk in-process
and require the JSONL file to reproduce it exactly — the Table I A→E
ladder, case classifications and all.
"""

import pytest

from repro.cli import main
from repro.core.algorithm import LPMAlgorithm
from repro.obs.trace import read_trace
from repro.reconfig.explorer import LadderBackend
from repro.sim.params import table1_config
from repro.workloads.spec import get_benchmark

ACCESSES = 6000
SEED = 7
DELTA = 140.0


def _reference_walk():
    """The same walk ``_cmd_walk`` runs, executed directly (no tracing)."""
    trace = get_benchmark("410.bwaves").trace(ACCESSES, seed=SEED)
    backend = LadderBackend(
        [table1_config(c) for c in "ABCD"], trace,
        deprovision_configs=[table1_config("E")],
    )
    algo = LPMAlgorithm(delta_percent=DELTA, delta_slack_fraction=0.5, max_steps=10)
    return algo.run(backend)


@pytest.fixture(scope="module")
def walk_steps(tmp_path_factory):
    path = tmp_path_factory.mktemp("trace") / "walk.jsonl"
    code = main([
        "walk", "--benchmark", "410.bwaves",
        "--accesses", str(ACCESSES), "--seed", str(SEED),
        "--delta", str(DELTA), "--trace", str(path),
    ])
    assert code == 0
    records = list(read_trace(path))
    steps = sorted(
        (r for r in records if r.get("name") == "lpm.step"),
        key=lambda r: r["attrs"]["index"],
    )
    return records, steps


class TestWalkReconstruction:
    def test_one_span_per_iteration(self, walk_steps):
        _, steps = walk_steps
        reference = _reference_walk()
        assert len(steps) == len(reference.steps)
        assert [s["attrs"]["index"] for s in steps] == list(range(len(steps)))

    def test_case_sequence_matches_reference(self, walk_steps):
        _, steps = walk_steps
        reference = _reference_walk()
        reconstructed = [(s["attrs"]["config"], s["attrs"]["case"]) for s in steps]
        expected = [(s.config_label, s.case.value) for s in reference.steps]
        assert reconstructed == expected
        # The walk must actually traverse the ladder (A -> ... -> matched/end).
        assert reconstructed[0][0].startswith("A")

    def test_decision_state_is_complete_and_exact(self, walk_steps):
        _, steps = walk_steps
        reference = _reference_walk()
        for span, ref in zip(steps, reference.steps):
            attrs = span["attrs"]
            assert attrs["lpmr1"] == pytest.approx(ref.report.lpmr1)
            assert attrs["lpmr2"] == pytest.approx(ref.report.lpmr2)
            assert attrs["t1"] == pytest.approx(ref.thresholds.t1)
            assert attrs["t2"] == pytest.approx(ref.thresholds.t2)
            assert attrs["acted"] == ref.action_taken
            assert attrs["delta_slack"] == pytest.approx(
                ref.thresholds.t1 * 0.5
            )
            assert attrs["stall_predicted"] == pytest.approx(
                ref.report.predicted_stall_per_instruction()
            )

    def test_simulations_nest_under_their_iteration(self, walk_steps):
        records, steps = walk_steps
        # Ladder measurements run through the batch kernel (sim.run_batch);
        # scalar-engine fallbacks would appear as sim.run.
        sim_runs = [r for r in records
                    if r.get("name") in ("sim.run", "sim.run_batch")]
        assert sim_runs, "walk must trace its simulations"
        step_ids = {s["span_id"] for s in steps}
        # Every measurement simulation belongs to exactly one LPM iteration.
        assert all(r["parent_id"] in step_ids for r in sim_runs)

    def test_durations_are_monotonic_clock_sane(self, walk_steps):
        records, _ = walk_steps
        assert all(r["duration_s"] >= 0.0 for r in records)
        assert all(r["t_start_s"] >= 0.0 for r in records)
