"""Shared obs-state hygiene: every test leaves observability disabled."""

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.obs import trace as obs_trace


@pytest.fixture(autouse=True)
def reset_obs_state():
    yield
    obs_trace.configure_tracing(None)
    obs_metrics.set_metrics_enabled(False)
    obs_metrics.get_registry().reset()
    obs_profile.set_profiling_enabled(False)
