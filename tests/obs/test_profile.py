"""Profiling hooks: phase timings, equivalence with the untimed pipeline."""

import json

import pytest

from repro.obs.profile import (
    ProfileReport,
    format_profile_report,
    profile_run,
    profiling_enabled,
    set_profiling_enabled,
)
from repro.sim.params import table1_config
from repro.sim.stats import simulate_and_measure
from repro.workloads.spec import get_benchmark

PHASES = ("warmup", "cpi_exe", "issue_loop", "fill_drain", "analysis")


@pytest.fixture(scope="module")
def trace():
    return get_benchmark("403.gcc").trace(2000, seed=7)


class TestProfileRun:
    def test_stats_match_untimed_pipeline(self, trace):
        config = table1_config("A")
        stats, report = profile_run(config, trace, seed=0)
        _, direct = simulate_and_measure(config, trace, seed=0)
        assert stats == direct  # timing must not perturb the measurement
        assert report.n_instructions == trace.n_instructions

    def test_all_phases_timed(self, trace):
        _, report = profile_run(table1_config("A"), trace, seed=0)
        assert set(report.phases) == set(PHASES)
        assert all(t >= 0.0 for t in report.phases.values())
        assert report.phases["issue_loop"] > 0.0
        assert report.total_s == pytest.approx(sum(report.phases.values()))
        assert report.us_per_instruction > 0.0
        assert sum(report.phase_share(p) for p in PHASES) == pytest.approx(1.0)

    def test_rounds_keep_minimum(self, trace):
        _, one = profile_run(table1_config("A"), trace, seed=0, rounds=1)
        _, three = profile_run(table1_config("A"), trace, seed=0, rounds=3)
        assert three.rounds == 3
        # Best-of-three can only improve on any single observed round.
        assert three.phases["issue_loop"] <= max(one.phases["issue_loop"] * 5, 1.0)

    def test_rejects_zero_rounds(self, trace):
        with pytest.raises(ValueError):
            profile_run(table1_config("A"), trace, rounds=0)

    def test_profiling_flag_restored(self, trace):
        assert not profiling_enabled()
        profile_run(table1_config("A"), trace, seed=0)
        assert not profiling_enabled()

    def test_engine_skips_phase_stats_when_disabled(self, trace):
        result, _ = simulate_and_measure(table1_config("A"), trace, seed=0)
        assert "phase_issue_loop_s" not in result.component_stats

    def test_engine_records_phase_stats_when_enabled(self, trace):
        from repro.sim.engine import HierarchySimulator

        set_profiling_enabled(True)
        try:
            result = HierarchySimulator(table1_config("A"), seed=0).run(trace)
        finally:
            set_profiling_enabled(False)
        assert result.component_stats["phase_issue_loop_s"] > 0.0
        assert result.component_stats["phase_fill_drain_s"] >= 0.0


class TestReport:
    def test_to_dict_json_round_trips(self, trace):
        _, report = profile_run(table1_config("A"), trace, seed=0)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["trace_name"] == report.trace_name
        assert payload["phases_s"].keys() == report.phases.keys()
        assert payload["us_per_instruction"] == pytest.approx(
            report.us_per_instruction
        )

    def test_format_lists_every_phase(self, trace):
        _, report = profile_run(table1_config("A"), trace, seed=0)
        text = format_profile_report(report)
        for phase in PHASES:
            assert phase in text
        assert "us/instruction" in text

    def test_empty_report_degrades_gracefully(self):
        report = ProfileReport("t", "c", n_instructions=0, n_accesses=0)
        assert report.total_s == 0.0
        assert report.us_per_instruction == 0.0
        assert report.instructions_per_s == 0.0
        assert report.phase_share("issue_loop") == 0.0
