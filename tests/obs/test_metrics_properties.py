"""Property tests: snapshot merge is a commutative monoid.

The evaluation pool merges worker snapshots in arrival order, after
retries and crashes have reordered and duplicated work arbitrarily.  The
parent-side totals are only trustworthy if merge is associative and
commutative with :data:`EMPTY_SNAPSHOT` as identity, if histogram counts
are conserved, and if counters never decrease under merge — exactly the
properties generated here.  All merges run under the repo's
:func:`~repro.lint.contracts.runtime_checks` so any contract-decorated
code touched along the way self-verifies too.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint.contracts import runtime_checks
from repro.obs.metrics import DEFAULT_BUCKETS, EMPTY_SNAPSHOT, merge_snapshots

_names = st.text(alphabet="abcxyz._", min_size=1, max_size=8)
_counter_values = st.integers(min_value=0, max_value=10**9)
#: Gauges here are non-negative watermarks (peak occupancy etc.); merge by
#: max means a fresh registry's 0.0 is their identity element.
_gauge_values = st.floats(min_value=0.0, max_value=1e9, allow_nan=False)


@st.composite
def _histogram_snapshots(draw):
    n_buckets = len(DEFAULT_BUCKETS) + 1
    counts = draw(st.lists(
        st.integers(min_value=0, max_value=1000),
        min_size=n_buckets, max_size=n_buckets,
    ))
    total = sum(counts)
    value_sum = draw(st.floats(min_value=-1e9, max_value=1e9, allow_nan=False))
    return {
        "bounds": list(DEFAULT_BUCKETS),
        "counts": counts,
        "total": total,
        "sum": value_sum,
    }


_snapshots = st.fixed_dictionaries({
    "counters": st.dictionaries(_names, _counter_values, max_size=4),
    "gauges": st.dictionaries(_names, _gauge_values, max_size=4),
    "histograms": st.dictionaries(_names, _histogram_snapshots(), max_size=3),
})


def _assert_equivalent(a: dict, b: dict) -> None:
    """Snapshot equality, with float tolerance on histogram sums only.

    Counter addition and bucket-count addition are exact integer ops and
    gauge merge is ``max`` (exact), so those compare with ``==``; histogram
    ``sum`` is float addition, where regrouping legitimately changes the
    rounding by ~1 ulp.
    """
    assert a["counters"] == b["counters"]
    assert a["gauges"] == b["gauges"]
    assert a["histograms"].keys() == b["histograms"].keys()
    for name, ha in a["histograms"].items():
        hb = b["histograms"][name]
        assert ha["bounds"] == hb["bounds"]
        assert ha["counts"] == hb["counts"]
        assert ha["total"] == hb["total"]
        assert math.isclose(ha["sum"], hb["sum"], rel_tol=1e-9, abs_tol=1e-6)


@settings(max_examples=75)
@given(a=_snapshots, b=_snapshots, c=_snapshots)
def test_merge_is_associative(a, b, c):
    with runtime_checks():
        left = merge_snapshots(merge_snapshots(a, b), c)
        right = merge_snapshots(a, merge_snapshots(b, c))
        flat = merge_snapshots(a, b, c)
    _assert_equivalent(left, right)
    _assert_equivalent(left, flat)


@settings(max_examples=75)
@given(a=_snapshots, b=_snapshots)
def test_merge_is_commutative(a, b):
    with runtime_checks():
        _assert_equivalent(merge_snapshots(a, b), merge_snapshots(b, a))


@settings(max_examples=75)
@given(a=_snapshots)
def test_empty_snapshot_is_identity(a):
    with runtime_checks():
        canonical = merge_snapshots(a)
        left = merge_snapshots(EMPTY_SNAPSHOT, a)
        right = merge_snapshots(a, EMPTY_SNAPSHOT)
    assert left == canonical
    assert right == canonical
    # And the identity is idempotent on itself.
    assert merge_snapshots(EMPTY_SNAPSHOT, EMPTY_SNAPSHOT) == EMPTY_SNAPSHOT


@settings(max_examples=75)
@given(snaps=st.lists(_snapshots, min_size=1, max_size=4))
def test_histogram_counts_are_conserved(snaps):
    with runtime_checks():
        merged = merge_snapshots(*snaps)
    for name, hist in merged["histograms"].items():
        expected_total = sum(
            s["histograms"][name]["total"]
            for s in snaps if name in s["histograms"]
        )
        assert hist["total"] == expected_total
        assert sum(hist["counts"]) == hist["total"]


@settings(max_examples=75)
@given(a=_snapshots, b=_snapshots)
def test_counters_are_monotone_under_merge(a, b):
    with runtime_checks():
        merged = merge_snapshots(a, b)
    for source in (a, b):
        for name, value in source["counters"].items():
            assert merged["counters"][name] >= value
