"""Unit and property tests for the multiprogram metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched.metrics import (
    fairness_index,
    harmonic_weighted_speedup,
    slowdowns,
    weighted_speedup,
)


class TestHsp:
    def test_no_interference_is_one(self):
        assert harmonic_weighted_speedup([1.0, 2.0], [1.0, 2.0]) == pytest.approx(1.0)

    def test_uniform_halving(self):
        assert harmonic_weighted_speedup([2.0, 2.0], [1.0, 1.0]) == pytest.approx(0.5)

    def test_single_starved_app_dominates(self):
        # One app at 10% speed drags Hsp far below the arithmetic mean.
        hsp = harmonic_weighted_speedup([1.0] * 4, [1.0, 1.0, 1.0, 0.1])
        assert hsp < 0.4

    def test_rejects_zero_ipc(self):
        with pytest.raises(ValueError):
            harmonic_weighted_speedup([1.0], [0.0])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            harmonic_weighted_speedup([1.0, 2.0], [1.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            harmonic_weighted_speedup([], [])

    @given(st.lists(st.floats(min_value=0.01, max_value=10), min_size=1, max_size=16))
    @settings(max_examples=60, deadline=None)
    def test_bounded_by_one_when_shared_slower(self, alone):
        shared = [a * 0.8 for a in alone]
        assert harmonic_weighted_speedup(alone, shared) <= 1.0 + 1e-9

    @given(st.lists(st.tuples(
        st.floats(min_value=0.1, max_value=10),
        st.floats(min_value=0.5, max_value=1.0),
    ), min_size=2, max_size=16))
    @settings(max_examples=60, deadline=None)
    def test_harmonic_below_arithmetic(self, pairs):
        alone = [a for a, _ in pairs]
        shared = [a * f for a, f in pairs]
        hsp = harmonic_weighted_speedup(alone, shared)
        ws_mean = weighted_speedup(alone, shared) / len(pairs)
        assert hsp <= ws_mean + 1e-9


class TestOtherMetrics:
    def test_slowdowns(self):
        assert slowdowns([2.0], [1.0]) == [pytest.approx(2.0)]

    def test_weighted_speedup(self):
        assert weighted_speedup([1.0, 2.0], [0.5, 1.0]) == pytest.approx(1.0)

    def test_fairness_perfect(self):
        assert fairness_index([1.0, 2.0], [0.5, 1.0]) == pytest.approx(1.0)

    def test_fairness_skewed(self):
        assert fairness_index([1.0, 1.0], [1.0, 0.5]) == pytest.approx(0.5)
