"""Tests for the Fig. 5 NUCA machine model and profiling database."""

import pytest

from repro.sched.contention import L2ContentionModel
from repro.sched.nuca import BenchmarkProfileDB, CoreGroup, NUCAMachine, profile_benchmarks
from repro.workloads.spec import get_benchmark

KB = 1024


@pytest.fixture(scope="module")
def machine():
    return NUCAMachine()


@pytest.fixture(scope="module")
def small_db(machine):
    profiles = [get_benchmark(n) for n in ("401.bzip2", "403.gcc", "433.milc")]
    return profile_benchmarks(machine, profiles, n_mem=14000, seed=2)


class TestMachine:
    def test_default_fig5_shape(self, machine):
        assert machine.n_cores == 16
        assert machine.distinct_l1_sizes == (4 * KB, 16 * KB, 32 * KB, 64 * KB)
        assert len(machine.core_l1_sizes) == 16
        assert machine.core_l1_sizes[:4] == (4 * KB,) * 4

    def test_mapping_space_is_paper_number(self, machine):
        # 16!/(4!)^4 = 63,063,000 — quoted verbatim in Section V-B.
        assert machine.mapping_space_size() == 63_063_000

    def test_config_for_l1(self, machine):
        cfg = machine.config_for_l1(16 * KB)
        assert cfg.l1.size_bytes == 16 * KB

    def test_rejects_empty_groups(self):
        with pytest.raises(ValueError):
            NUCAMachine(groups=())

    def test_core_group_validation(self):
        with pytest.raises(ValueError):
            CoreGroup(l1_size_bytes=512, n_cores=4)
        with pytest.raises(ValueError):
            CoreGroup(l1_size_bytes=4 * KB, n_cores=0)

    def test_custom_small_machine(self):
        m = NUCAMachine(groups=(CoreGroup(4 * KB, 2), CoreGroup(64 * KB, 2)))
        assert m.n_cores == 4
        assert m.mapping_space_size() == 6


class TestProfileDB:
    def test_every_pair_profiled(self, small_db, machine):
        assert len(small_db.stats) == 3 * len(machine.distinct_l1_sizes)

    def test_get_and_accessors(self, small_db):
        st = small_db.get("403.gcc", 4 * KB)
        assert st.apc1 > 0
        assert small_db.apc1("403.gcc", 4 * KB) == st.apc1
        assert small_db.apc2("403.gcc", 4 * KB) == st.apc2
        assert small_db.ipc("403.gcc", 4 * KB) == st.ipc

    def test_missing_pair_raises(self, small_db):
        with pytest.raises(KeyError):
            small_db.get("429.mcf", 4 * KB)

    def test_benchmarks_listing(self, small_db):
        assert small_db.benchmarks() == ["401.bzip2", "403.gcc", "433.milc"]

    def test_gcc_gains_with_l1_size(self, small_db):
        # The Fig. 6 fact: 403.gcc keeps improving up to 64 KB.
        apc = [small_db.apc1("403.gcc", s) for s in (4 * KB, 16 * KB, 32 * KB, 64 * KB)]
        assert apc[-1] > apc[0]
        assert apc == sorted(apc)

    def test_milc_insensitive_to_l1_size(self, small_db):
        apc = [small_db.apc1("433.milc", s) for s in (4 * KB, 64 * KB)]
        assert abs(apc[1] - apc[0]) / apc[0] < 0.10


class TestContentionModel:
    def test_capacity_positive(self, machine):
        model = L2ContentionModel(machine)
        assert model.l2_capacity > 0

    def test_utilization_additive(self, small_db, machine):
        model = L2ContentionModel(machine)
        one = model.utilization([("403.gcc", 4 * KB)], small_db)
        two = model.utilization([("403.gcc", 4 * KB)] * 2, small_db)
        assert two == pytest.approx(2 * one)

    def test_co_run_slows_everyone(self, small_db, machine):
        model = L2ContentionModel(machine)
        assigned = [("403.gcc", 4 * KB), ("433.milc", 4 * KB)] * 8
        outcomes = model.co_run(assigned, small_db)
        assert len(outcomes) == 16
        for o in outcomes:
            assert o.ipc_shared <= o.ipc_alone + 1e-9
            assert o.slowdown >= 1.0 - 1e-9

    def test_more_corunners_more_slowdown(self, small_db, machine):
        model = L2ContentionModel(machine)
        light = model.co_run([("403.gcc", 64 * KB)], small_db)[0]
        heavy_assign = [("403.gcc", 64 * KB)] + [("433.milc", 4 * KB)] * 15
        heavy = model.co_run(heavy_assign, small_db)[0]
        assert heavy.ipc_shared < light.ipc_shared

    def test_empty_assignment_rejected(self, small_db, machine):
        with pytest.raises(ValueError):
            L2ContentionModel(machine).co_run([], small_db)
