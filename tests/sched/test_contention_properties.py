"""Property-style tests for the shared-L2 contention model."""

import itertools

import pytest

from repro.sched.contention import L2ContentionModel
from repro.sched.nuca import NUCAMachine, profile_benchmarks
from repro.workloads.spec import get_benchmark

KB = 1024
NAMES = ("401.bzip2", "403.gcc", "433.milc")
SIZES = (4 * KB, 16 * KB, 32 * KB, 64 * KB)


@pytest.fixture(scope="module")
def machine():
    return NUCAMachine()


@pytest.fixture(scope="module")
def db(machine):
    return profile_benchmarks(
        machine, [get_benchmark(n) for n in NAMES], n_mem=6000, seed=2
    )


def _assignments():
    """A spread of co-run assignments: singletons, pairs, and dense mixes."""
    cases = []
    for name, size in itertools.product(NAMES, (4 * KB, 64 * KB)):
        cases.append([(name, size)])
    cases.append([(n, 16 * KB) for n in NAMES] * 2)
    cases.append([("403.gcc", 4 * KB)] * 16)
    cases.append([(n, s) for n, s in zip(NAMES * 6, itertools.cycle(SIZES))][:16])
    return cases


class TestContentionProperties:
    @pytest.mark.parametrize("assigned", _assignments())
    def test_shared_never_faster_than_alone(self, assigned, db, machine):
        model = L2ContentionModel(machine)
        for o in model.co_run(assigned, db):
            assert o.ipc_shared <= o.ipc_alone + 1e-9
            assert o.extra_stall_per_instruction >= 0.0
            assert o.slowdown >= 1.0 - 1e-9

    @pytest.mark.parametrize("assigned", _assignments())
    def test_utilization_non_negative_and_additive(self, assigned, db, machine):
        model = L2ContentionModel(machine)
        total = model.utilization(assigned, db)
        parts = sum(model.utilization([a], db) for a in assigned)
        assert total == pytest.approx(parts)
        assert total >= 0.0

    def test_utilization_monotone_in_corunners(self, db, machine):
        model = L2ContentionModel(machine)
        base = [("403.gcc", 4 * KB)]
        assert model.utilization(base + [("433.milc", 4 * KB)], db) > \
            model.utilization(base, db)

    def test_slowdown_monotone_in_aggregate_demand(self, db, machine):
        model = L2ContentionModel(machine)
        victim = ("403.gcc", 64 * KB)
        light = model.co_run([victim, ("401.bzip2", 64 * KB)], db)[0]
        heavy = model.co_run([victim] + [("433.milc", 4 * KB)] * 8, db)[0]
        assert heavy.ipc_shared <= light.ipc_shared + 1e-12

    def test_bigger_l1_lowers_own_l2_demand(self, db, machine):
        model = L2ContentionModel(machine)
        assert model.utilization([("403.gcc", 64 * KB)], db) < \
            model.utilization([("403.gcc", 4 * KB)], db)

    def test_saturation_is_capped(self, db, machine):
        model = L2ContentionModel(machine)
        # A wildly oversubscribed assignment must still produce finite,
        # positive shared IPCs (the rho/inflation caps).
        assigned = [("403.gcc", 4 * KB)] * 16 + [("433.milc", 4 * KB)] * 16
        outcomes = model.co_run(assigned, db)
        for o in outcomes:
            assert o.ipc_shared > 0.0
