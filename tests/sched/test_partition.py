"""Tests for memory parallelism partitioning of the shared L2."""

import pytest

from repro.sched.metrics import harmonic_weighted_speedup
from repro.sched.nuca import NUCAMachine, profile_benchmarks
from repro.sched.partition import (
    co_run_partitioned,
    demand_proportional_shares,
    equal_shares,
    lpm_guided_shares,
)
from repro.workloads.spec import get_benchmark

KB = 1024


@pytest.fixture(scope="module")
def machine():
    return NUCAMachine()


@pytest.fixture(scope="module")
def db(machine):
    names = ("403.gcc", "433.milc", "401.bzip2", "429.mcf")
    return profile_benchmarks(
        machine, [get_benchmark(n) for n in names], n_mem=10000, seed=3
    )


@pytest.fixture(scope="module")
def assigned(machine):
    # A skewed mix: bandwidth-hungry gcc/milc next to light bzip2/mcf,
    # replicated across the sixteen cores.
    apps = ["403.gcc", "433.milc", "401.bzip2", "429.mcf"] * 4
    return list(zip(apps, machine.core_l1_sizes))


class TestShareFunctions:
    def test_equal_shares(self):
        s = equal_shares(4)
        assert s == [0.25] * 4
        with pytest.raises(ValueError):
            equal_shares(0)

    def test_demand_proportional_sums_to_one(self, assigned, db, machine):
        s = demand_proportional_shares(assigned, db, machine)
        assert sum(s) == pytest.approx(1.0)
        assert all(x >= 0 for x in s)

    def test_lpm_guided_sums_to_one(self, assigned, db, machine):
        s = lpm_guided_shares(assigned, db, machine)
        assert sum(s) == pytest.approx(1.0)
        assert all(x > 0 for x in s)

    def test_lpm_guided_covers_demand(self, assigned, db, machine):
        from repro.sched.contention import L2ContentionModel

        model = L2ContentionModel(machine)
        shares = lpm_guided_shares(assigned, db, machine)
        for (bench, size), share in zip(assigned, shares):
            demand = model._l2_rate(db.get(bench, size))
            assert share * model.l2_capacity >= demand * 0.999

    def test_heavy_apps_get_bigger_slices(self, assigned, db, machine):
        shares = lpm_guided_shares(assigned, db, machine)
        by_app = dict()
        for (bench, _), share in zip(assigned, shares):
            by_app.setdefault(bench, []).append(share)
        # gcc's demand dwarfs bzip2's at the profiled sizes.
        assert min(by_app["403.gcc"]) > max(by_app["401.bzip2"])


class TestPartitionedCoRun:
    def test_default_uses_lpm_guided(self, assigned, db, machine):
        outcomes = co_run_partitioned(assigned, db, machine)
        assert len(outcomes) == len(assigned)
        for o in outcomes:
            assert 0 < o.ipc_shared <= o.ipc_alone + 1e-9

    def test_share_validation(self, assigned, db, machine):
        with pytest.raises(ValueError):
            co_run_partitioned(assigned, db, machine, shares=[1.0])
        bad = [0.5] + [0.5 / (len(assigned) - 1)] * (len(assigned) - 1)
        bad[0] = -0.5
        with pytest.raises(ValueError):
            co_run_partitioned(assigned, db, machine, shares=bad)
        with pytest.raises(ValueError):
            co_run_partitioned([], db, machine)

    def test_lpm_guided_beats_equal_shares(self, assigned, db, machine):
        alone = [db.ipc(b, s) for b, s in assigned]
        guided = co_run_partitioned(assigned, db, machine)
        equal = co_run_partitioned(
            assigned, db, machine, shares=equal_shares(len(assigned))
        )
        hsp_guided = harmonic_weighted_speedup(alone, [o.ipc_shared for o in guided])
        hsp_equal = harmonic_weighted_speedup(alone, [o.ipc_shared for o in equal])
        assert hsp_guided >= hsp_equal - 1e-9

    def test_starving_a_heavy_app_hurts(self, assigned, db, machine):
        n = len(assigned)
        # Squeeze the first (gcc) slice to near its demand floor.
        squeezed = [0.002] + [(1 - 0.002) / (n - 1)] * (n - 1)
        outcomes = co_run_partitioned(assigned, db, machine, shares=squeezed)
        fair = co_run_partitioned(assigned, db, machine)
        assert outcomes[0].ipc_shared < fair[0].ipc_shared
