"""Tests for the scheduling policies, including Fig. 8's ordering facts."""

import pytest

from repro.sched.nuca import CoreGroup, NUCAMachine, profile_benchmarks
from repro.sched.policies import (
    Schedule,
    evaluate_schedule,
    exhaustive_schedule,
    nuca_sa,
    random_schedule,
    round_robin_schedule,
)
from repro.workloads.spec import SELECTED_16, get_benchmark

KB = 1024


@pytest.fixture(scope="module")
def machine():
    return NUCAMachine()


@pytest.fixture(scope="module")
def db(machine):
    profiles = [get_benchmark(n) for n in SELECTED_16]
    return profile_benchmarks(machine, profiles, n_mem=6000, seed=3)


@pytest.fixture(scope="module")
def apps():
    return list(SELECTED_16)


class TestBaselines:
    def test_random_is_permutation(self, apps, machine):
        s = random_schedule(apps, machine, seed=0)
        assert sorted(s.apps) == sorted(apps)
        assert s.policy == "random"

    def test_random_deterministic_per_seed(self, apps, machine):
        assert random_schedule(apps, machine, seed=4).apps == \
            random_schedule(apps, machine, seed=4).apps

    def test_round_robin_preserves_order(self, apps, machine):
        s = round_robin_schedule(apps, machine)
        assert s.apps == tuple(apps)

    def test_wrong_app_count_rejected(self, machine):
        with pytest.raises(ValueError):
            round_robin_schedule(["401.bzip2"], machine)


class TestNucaSA:
    def test_is_permutation(self, apps, machine, db):
        s = nuca_sa(apps, machine, db, grain="fine")
        assert sorted(s.apps) == sorted(apps)

    def test_grain_labels(self, apps, machine, db):
        assert nuca_sa(apps, machine, db, grain="fine").policy == "nuca-sa-fg"
        assert nuca_sa(apps, machine, db, grain="coarse").policy == "nuca-sa-cg"

    def test_unknown_grain(self, apps, machine, db):
        with pytest.raises(ValueError):
            nuca_sa(apps, machine, db, grain="medium")

    def test_fig8_ordering(self, apps, machine, db):
        """The paper's headline: NUCA-SA(fg) >= NUCA-SA(cg) > both baselines."""
        ev_fg = evaluate_schedule(nuca_sa(apps, machine, db, grain="fine"), db, machine)
        ev_cg = evaluate_schedule(nuca_sa(apps, machine, db, grain="coarse"), db, machine)
        ev_rr = evaluate_schedule(round_robin_schedule(apps, machine), db, machine)
        ev_rand = evaluate_schedule(random_schedule(apps, machine, seed=0), db, machine)
        assert ev_fg.hsp >= ev_cg.hsp - 1e-9
        assert ev_cg.hsp > ev_rr.hsp
        assert ev_cg.hsp > ev_rand.hsp

    def test_fg_improvement_magnitude(self, apps, machine, db):
        """Improvement over Random lands in the paper's ~10-15% band."""
        import numpy as np

        ev_fg = evaluate_schedule(nuca_sa(apps, machine, db, grain="fine"), db, machine)
        rand = np.mean([
            evaluate_schedule(random_schedule(apps, machine, seed=s), db, machine).hsp
            for s in range(5)
        ])
        improvement = ev_fg.hsp / rand - 1.0
        assert 0.04 < improvement < 0.30

    def test_sensitive_apps_get_big_caches(self, apps, machine, db):
        """gcc (needs 64 KB) must not land on a 4 KB core under NUCA-SA."""
        s = nuca_sa(apps, machine, db, grain="fine")
        assigned = dict(s.assigned_sizes(machine))
        assert assigned["403.gcc"] >= 32 * KB
        # bzip2 is content with any size, so it should cede big caches.
        assert assigned["401.bzip2"] <= 32 * KB


class TestEvaluation:
    def test_evaluation_fields(self, apps, machine, db):
        ev = evaluate_schedule(round_robin_schedule(apps, machine), db, machine)
        assert 0 < ev.hsp <= 1.0
        assert ev.ws > 0
        assert 0 < ev.fairness <= 1.0
        assert ev.l2_utilization > 0
        assert len(ev.outcomes) == 16

    def test_schedule_size_mismatch(self, machine, db):
        bad = Schedule(apps=("401.bzip2",) * 4, policy="x")
        with pytest.raises(ValueError):
            evaluate_schedule(bad, db, machine)


class TestExhaustiveValidation:
    @pytest.fixture(scope="class")
    def tiny(self):
        machine = NUCAMachine(groups=(CoreGroup(4 * KB, 2), CoreGroup(64 * KB, 2)))
        names = ["401.bzip2", "403.gcc", "416.gamess", "433.milc"]
        profiles = [get_benchmark(n) for n in names]
        db = profile_benchmarks(machine, profiles, n_mem=14000, seed=5)
        return machine, db, names

    def test_exhaustive_beats_or_matches_everything(self, tiny):
        machine, db, names = tiny
        _, best = exhaustive_schedule(names, machine, db)
        for seed in range(4):
            ev = evaluate_schedule(random_schedule(names, machine, seed=seed), db, machine)
            assert best.hsp >= ev.hsp - 1e-9

    def test_nuca_sa_near_optimal_on_tiny_instance(self, tiny):
        machine, db, names = tiny
        _, best = exhaustive_schedule(names, machine, db)
        ev = evaluate_schedule(nuca_sa(names, machine, db, grain="fine"), db, machine)
        assert ev.hsp >= 0.97 * best.hsp

    def test_exhaustive_refuses_huge_spaces(self, apps, machine, db):
        with pytest.raises(ValueError):
            exhaustive_schedule(apps, machine, db, limit=1000)
