"""Build a CAMATStack from simulator measurements (the Eq. 4 chain).

MODEL.md section 4: the recursion is exact in the *hierarchical view*,
where each lower layer's activity intervals are the layer above's miss
intervals.  This test constructs that view for L1/L2 from real simulator
records, derives the consistent etas, and checks the stack's recursive
top-level C-AMAT against the direct measurement.
"""

import numpy as np
import pytest

from repro.core.analyzer import measure_layer
from repro.core.camat import CAMATStack
from repro.sim import DEFAULT_MACHINE, HierarchySimulator
from repro.workloads.spec import get_benchmark


@pytest.fixture(scope="module")
def records():
    trace = get_benchmark("403.gcc").trace(8000, seed=5)
    sim = HierarchySimulator(DEFAULT_MACHINE, seed=0)
    res = sim.run(trace)
    return res.accesses


def hierarchical_layers(acc):
    """(L1 measurement, hierarchical-view L2 measurement) from records."""
    l1 = measure_layer(acc.l1_hit_start, acc.l1_hit_end,
                       acc.l1_miss_start, acc.l1_miss_end)
    miss = acc.l1_is_miss
    n_miss = int(miss.sum())
    lower = measure_layer(
        acc.l1_miss_start[miss], acc.l1_miss_end[miss],
        np.zeros(n_miss, np.int64), np.zeros(n_miss, np.int64),
    )
    return l1, lower


class TestStackFromSim:
    def test_two_level_stack_recursion_matches_direct(self, records):
        l1, lower = hierarchical_layers(records)
        eta1 = l1.eta  # (pAMP1/AMP1)*(Cm1/C_M1)
        stack = CAMATStack(
            layers=(l1.camat_params, lower.camat_params),
            miss_rates=(l1.miss_rate, 0.0),
            etas=(eta1,),
        )
        assert stack.top_camat() == pytest.approx(l1.camat, rel=1e-9)

    def test_lower_layer_camat_is_amp_over_cm(self, records):
        l1, lower = hierarchical_layers(records)
        assert lower.camat == pytest.approx(
            l1.avg_miss_penalty / l1.miss_concurrency, rel=1e-9
        )

    def test_stack_depth_and_validation(self, records):
        l1, lower = hierarchical_layers(records)
        stack = CAMATStack(
            layers=(l1.camat_params, lower.camat_params),
            miss_rates=(l1.miss_rate, 0.0),
            etas=(l1.eta,),
        )
        assert stack.depth == 2
        assert stack.recursive_camat_of(1) == pytest.approx(lower.camat_params.value)
