"""End-to-end integration tests: workload -> simulator -> analyzer -> LPM.

These exercise the full pipeline the way the benchmark harness does, and
pin down the cross-module invariants the paper's evaluation relies on.
"""

import numpy as np
import pytest

from repro.core.algorithm import LPMAlgorithm, LPMStatus
from repro.core.analyzer import measure_layer
from repro.reconfig.explorer import LadderBackend
from repro.sim import DEFAULT_MACHINE, simulate_and_measure, table1_config
from repro.workloads.spec import get_benchmark


@pytest.fixture(scope="module")
def bwaves():
    return get_benchmark("410.bwaves").trace(15000, seed=7)


@pytest.fixture(scope="module")
def table1_stats(bwaves):
    out = {}
    for label in "ABCDE":
        _, st = simulate_and_measure(table1_config(label), bwaves, seed=0)
        out[label] = st
    return out


class TestTable1Shape:
    """The Table I reproduction facts (E2) at test scale."""

    def test_lpmr1_falls_from_a_to_d(self, table1_stats):
        assert table1_stats["A"].lpmr1 > table1_stats["B"].lpmr1
        assert table1_stats["B"].lpmr1 >= table1_stats["C"].lpmr1 * 0.95
        assert table1_stats["C"].lpmr1 > table1_stats["D"].lpmr1

    def test_d_is_the_best_configuration(self, table1_stats):
        d = table1_stats["D"].lpmr1
        for label in "ABCE":
            assert table1_stats[label].lpmr1 >= d

    def test_e_slightly_above_d(self, table1_stats):
        # E trims IW/ROB from D: slightly worse matching, cheaper hardware.
        assert table1_stats["E"].lpmr1 > table1_stats["D"].lpmr1
        assert table1_stats["E"].lpmr1 < table1_stats["A"].lpmr1

    def test_stall_tracks_lpmr1(self, table1_stats):
        stalls = {k: v.stall_fraction_of_compute for k, v in table1_stats.items()}
        lpmrs = {k: v.lpmr1 for k, v in table1_stats.items()}
        order_by_stall = sorted(stalls, key=stalls.get)
        order_by_lpmr = sorted(lpmrs, key=lpmrs.get)
        assert order_by_stall == order_by_lpmr

    def test_lpmr2_not_below_lpmr3(self, table1_stats):
        # Request rates thin out down the hierarchy, and layer supply rates
        # shrink too; in our machine LPMR2 >= LPMR3 throughout the walk.
        for st in table1_stats.values():
            assert st.lpmr2 >= st.lpmr3 * 0.9


class TestAnalyzerSimConsistency:
    def test_l1_analysis_matches_record_counts(self, bwaves):
        res, st = simulate_and_measure(DEFAULT_MACHINE, bwaves, seed=0)
        acc = res.accesses
        assert st.l1.accesses == acc.n_accesses
        assert st.l1.miss_count == acc.l1_miss_count
        assert st.l2.accesses == acc.n_l2_accesses
        assert st.mem.accesses == acc.n_mem_accesses

    def test_camat_identity_holds_on_sim_output(self, bwaves):
        res, st = simulate_and_measure(DEFAULT_MACHINE, bwaves, seed=0)
        assert st.l1.camat_model == pytest.approx(st.l1.camat, rel=1e-9)
        if st.l2.accesses:
            assert st.l2.camat_model == pytest.approx(st.l2.camat, rel=1e-9)

    def test_pure_misses_do_not_exceed_misses_at_every_layer(self, bwaves):
        _, st = simulate_and_measure(DEFAULT_MACHINE, bwaves, seed=0)
        for layer in (st.l1, st.l2):
            assert layer.pure_miss_count <= layer.miss_count

    def test_eq4_identity_under_hierarchical_view(self, bwaves):
        """Eq. (4) holds exactly when C-AMAT2 is defined over the L1 miss
        intervals (the hierarchical view of DESIGN.md section 5)."""
        res, st = simulate_and_measure(DEFAULT_MACHINE, bwaves, seed=0)
        acc = res.accesses
        miss = acc.l1_is_miss
        if not miss.any():
            pytest.skip("no misses")
        # Treat the L1 miss intervals as the lower layer's access activity.
        lower = measure_layer(
            acc.l1_miss_start[miss], acc.l1_miss_end[miss],
            np.zeros(int(miss.sum()), np.int64), np.zeros(int(miss.sum()), np.int64),
        )
        l1 = st.l1
        eta1 = (l1.pure_miss_penalty / l1.avg_miss_penalty) * (
            l1.miss_concurrency / l1.pure_miss_concurrency
        )
        # C-AMAT2 (hierarchical view) = AMP1 / Cm1.
        camat2_view = l1.avg_miss_penalty / l1.miss_concurrency
        assert lower.camat == pytest.approx(camat2_view, rel=1e-9)
        recursive = l1.hit_time / l1.hit_concurrency + l1.pure_miss_rate * eta1 * camat2_view
        assert recursive == pytest.approx(l1.camat, rel=1e-9)


class TestAlgorithmOverSimulator:
    def test_full_table1_walk_with_substrate_thresholds(self, bwaves):
        backend = LadderBackend(
            [table1_config(c) for c in "ABCD"], bwaves,
            deprovision_configs=[table1_config("E")],
        )
        algo = LPMAlgorithm(delta_percent=200.0, delta_slack_fraction=0.5, max_steps=10)
        result = algo.run(backend)
        assert result.status in (LPMStatus.MATCHED, LPMStatus.EXHAUSTED)
        assert result.optimization_steps >= 1
        # Matching never worsened along the accepted walk.
        lpmr1s = [s.report.lpmr1 for s in result.steps]
        assert lpmr1s[-1] <= lpmr1s[0]


class TestDeterminismAcrossStack:
    def test_identical_pipelines_identical_reports(self):
        trace = get_benchmark("403.gcc").trace(5000, seed=11)
        _, a = simulate_and_measure(table1_config("C"), trace, seed=2)
        _, b = simulate_and_measure(table1_config("C"), trace, seed=2)
        assert a.lpmr1 == b.lpmr1
        assert a.l1.pure_miss_penalty == b.l1.pure_miss_penalty
        assert a.cpi == b.cpi


class TestWorkloadContractsUnderSim:
    @pytest.mark.parametrize("name", ["401.bzip2", "429.mcf", "433.milc"])
    def test_profiles_run_clean(self, name):
        trace = get_benchmark(name).trace(4000, seed=5)
        res, st = simulate_and_measure(DEFAULT_MACHINE, trace, seed=0)
        assert st.cpi > 0
        assert 0 <= st.overlap_ratio_cm < 1
        assert st.l1.hit_concurrency >= 1.0

    def test_mcf_has_low_concurrency_high_pure_miss_character(self):
        mcf = get_benchmark("429.mcf").trace(6000, seed=5)
        milc = get_benchmark("433.milc").trace(6000, seed=5)
        _, st_mcf = simulate_and_measure(DEFAULT_MACHINE, mcf, seed=0)
        _, st_milc = simulate_and_measure(DEFAULT_MACHINE, milc, seed=0)
        # Pointer chasing: nearly every miss is a pure miss...
        assert st_mcf.l1.pure_miss_count / max(st_mcf.l1.miss_count, 1) > 0.8
        # ...and the streaming code overlaps far better.
        assert st_milc.l1.pure_miss_concurrency > st_mcf.l1.pure_miss_concurrency
