"""Seed robustness of the headline reproduced orderings.

The benchmark harness fixes seeds for exact regeneration; these tests
guard against the calibration having over-fit those seeds: the Table I
configuration ordering and the Fig. 8 policy ordering must hold for
workload seeds the calibration never saw.
"""

import numpy as np
import pytest

from repro.sched import (
    NUCAMachine,
    evaluate_schedule,
    nuca_sa,
    profile_benchmarks,
    random_schedule,
    round_robin_schedule,
)
from repro.sim import simulate_and_measure, table1_config
from repro.workloads.spec import SELECTED_16, get_benchmark


@pytest.mark.parametrize("seed", [1, 42])
def test_table1_ordering_holds_across_seeds(seed):
    trace = get_benchmark("410.bwaves").trace(20000, seed=seed)
    lpmr1 = {}
    for label in "ABCDE":
        _, st = simulate_and_measure(table1_config(label), trace, seed=0)
        lpmr1[label] = st.lpmr1
    assert lpmr1["A"] > lpmr1["B"]
    assert lpmr1["B"] >= lpmr1["C"] * 0.95
    assert lpmr1["C"] > lpmr1["D"]
    assert lpmr1["D"] < lpmr1["E"] < lpmr1["A"]
    assert lpmr1["D"] == min(lpmr1.values())


@pytest.mark.parametrize("seed", [1, 11])
def test_fig8_ordering_holds_across_seeds(seed):
    machine = NUCAMachine()
    db = profile_benchmarks(
        machine, [get_benchmark(n) for n in SELECTED_16], n_mem=8000, seed=seed
    )
    apps = list(SELECTED_16)
    rand = float(np.mean([
        evaluate_schedule(random_schedule(apps, machine, seed=s), db, machine).hsp
        for s in range(4)
    ]))
    rr = evaluate_schedule(round_robin_schedule(apps, machine), db, machine).hsp
    cg = evaluate_schedule(nuca_sa(apps, machine, db, grain="coarse"), db, machine).hsp
    fg = evaluate_schedule(nuca_sa(apps, machine, db, grain="fine"), db, machine).hsp
    assert fg >= cg - 1e-9
    assert cg > rr
    assert cg > rand


@pytest.mark.parametrize("seed", [5, 23])
def test_fig67_per_benchmark_facts_hold_across_seeds(seed):
    machine = NUCAMachine()
    sizes = machine.distinct_l1_sizes
    db = profile_benchmarks(
        machine,
        [get_benchmark(n) for n in ("401.bzip2", "403.gcc", "433.milc")],
        n_mem=14000, seed=seed,
    )
    bzip2 = [db.apc1("401.bzip2", s) for s in sizes]
    gcc = [db.apc1("403.gcc", s) for s in sizes]
    milc = [db.apc1("433.milc", s) for s in sizes]
    # 4 KB suffices; allow a whisker of slack for the short-trace boundary
    # where the stream's touched span hovers near the 64 KB L1 size.
    assert max(bzip2) / min(bzip2) < 1.15
    assert gcc[-1] > 1.10 * gcc[0]              # keeps gaining to 64 KB
    assert max(milc) / min(milc) < 1.10         # streaming, insensitive
    gcc2 = [db.apc2("403.gcc", s) for s in sizes]
    assert all(b <= a + 1e-9 for a, b in zip(gcc2, gcc2[1:]))
