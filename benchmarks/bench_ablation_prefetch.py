"""A3 — ablation: prefetching as a C-AMAT lever (technique-pool member).

The paper frames existing memory optimizations as a "technique pool" whose
deployment LPM should orchestrate.  Hardware stride prefetching is the
canonical pool member: it trades L2/DRAM bandwidth for L1 latency,
attacking pMR (fewer demand pure misses) rather than C_M.  The ablation
runs three workload characters with and without the prefetcher and checks:

* streaming (433.milc): large CPI gain, pMR collapses, high accuracy;
* pointer chase (429.mcf): little gain — dependence chains are
  unpredictable, the paper's "one thing parallelism can't fix";
* LPMR1 moves accordingly, i.e. the LPM measurement correctly attributes
  the technique's effect.
"""

from repro.core import render_table
from repro.sim.params import DEFAULT_MACHINE
from repro.sim.prefetch import PrefetchConfig
from repro.sim.stats import simulate_and_measure
from repro.workloads.spec import get_benchmark

N_ACCESSES = 24_000


def run_ablation():
    base = DEFAULT_MACHINE.with_knobs(mshr_count=8, l1_ports=1,
                                      iw_size=32, rob_size=32)
    pf = base.with_(prefetch=PrefetchConfig(degree=4, distance=2))
    rows = []
    for name in ("433.milc", "410.bwaves", "429.mcf"):
        trace = get_benchmark(name).trace(N_ACCESSES, seed=7)
        _, off = simulate_and_measure(base, trace, seed=0)
        res_on, on = simulate_and_measure(pf, trace, seed=0)
        rows.append((
            name,
            off.cpi, on.cpi,
            off.l1.pure_miss_rate, on.l1.pure_miss_rate,
            off.lpmr1, on.lpmr1,
            res_on.component_stats.get("prefetch_accuracy", 0.0),
        ))
    return rows


def test_ablation_prefetch(benchmark, artifact):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    milc, bwaves, mcf = rows

    # Streaming: big CPI gain, pure misses collapse, accurate prefetches.
    assert milc[2] < 0.80 * milc[1]
    assert milc[4] < 0.3 * milc[3]
    assert milc[7] > 0.5
    # LPMR1 improves where the technique lands.
    assert milc[6] < milc[5]
    # Pointer chase: far smaller relative improvement than streaming (its
    # small strided sub-component is all the prefetcher can catch).
    milc_improvement = milc[1] / milc[2] - 1.0
    mcf_improvement = mcf[1] / mcf[2] - 1.0
    assert mcf_improvement < 0.6 * milc_improvement

    text = render_table(
        ["workload", "CPI off", "CPI on", "pMR off", "pMR on",
         "LPMR1 off", "LPMR1 on", "accuracy"],
        rows, float_fmt="{:.3f}",
        title="A3 — stride prefetching with the LPM measurement attached",
    )
    text += (
        "\n\nPrefetching attacks pMR (locality-style lever) while consuming"
        "\nL2/DRAM bandwidth; LPM's per-layer measurement shows exactly"
        "\nwhere it pays (streams) and where it cannot (dependence chains)."
    )
    artifact("A3_ablation_prefetch", text)
