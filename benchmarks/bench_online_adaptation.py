"""E9 (extension) — online interval-driven LPM vs static configurations.

The paper's algorithm is explicitly an *online* procedure ("called
periodically for each time interval ... to adapt to the dynamic behavior
of the applications") with a 4-cycle hardware reconfiguration cost.  This
bench runs the interval-driven controller on the bwaves-like workload and
compares three executions:

* static on the weakest design point,
* static on the strongest design point (max hardware),
* online adaptation starting from the weakest point.

Asserted facts: adaptation recovers most of the weak-vs-strong performance
gap while using (cycle-weighted) far less hardware than the maximal
machine — the paper's "minimum but enough hardware parallelism ...
avoiding blind hardware overprovision".
"""

from repro.core import render_table
from repro.core.online import OnlineLPMController
from repro.reconfig.space import DesignSpace

INTERVAL = 5_000
DELTA = 60.0


def run_comparison(trace):
    space = DesignSpace()
    static_min = OnlineLPMController(
        space, interval_instructions=INTERVAL, delta_percent=DELTA, seed=0
    ).run(trace, adapt=False)
    static_max = OnlineLPMController(
        space, start=space.maximum_point(),
        interval_instructions=INTERVAL, delta_percent=DELTA, seed=0,
    ).run(trace, adapt=False)
    adaptive = OnlineLPMController(
        space, interval_instructions=INTERVAL, delta_percent=DELTA, seed=0
    ).run(trace)
    return space, static_min, static_max, adaptive


def test_online_adaptation(benchmark, artifact, bwaves_trace):
    trace = bwaves_trace.slice(0, 120_000)
    space, static_min, static_max, adaptive = benchmark.pedantic(
        run_comparison, args=(trace,), rounds=1, iterations=1
    )

    # Adaptation beats the static weakest machine...
    assert adaptive.cpi < static_min.cpi
    # ...recovers a majority of the weak-to-strong gap...
    gap = static_min.cpi - static_max.cpi
    recovered = static_min.cpi - adaptive.cpi
    assert recovered > 0.5 * gap
    # ...while averaging much less hardware than the maximal point.
    assert adaptive.mean_hardware_cost < 0.8 * space.maximum_point().cost()
    assert adaptive.reconfigurations >= 1
    # Reconfiguration overhead is negligible at the paper's 4-cycle cost.
    assert adaptive.reconfiguration_cycles < 0.001 * adaptive.total_cycles

    rows = [
        ("static, weakest point", static_min.cpi,
         static_min.mean_hardware_cost, 0),
        ("static, maximal point", static_max.cpi,
         static_max.mean_hardware_cost, 0),
        ("online LPM (from weakest)", adaptive.cpi,
         adaptive.mean_hardware_cost, adaptive.reconfigurations),
    ]
    text = render_table(
        ["execution", "CPI", "avg hardware cost", "reconfigurations"],
        rows, float_fmt="{:.3f}",
        title="E9 — online interval-driven LPM vs static configurations",
    )
    text += (
        f"\n\ngap recovered by adaptation: {100 * recovered / gap:.0f}%"
        f" of (weakest - maximal), at"
        f" {100 * adaptive.mean_hardware_cost / space.maximum_point().cost():.0f}%"
        f" of the maximal hardware cost"
        f"\nadaptation trajectory (cases per interval): "
        + " ".join(adaptive.cases())
    )
    artifact("E9_online_adaptation", text)
