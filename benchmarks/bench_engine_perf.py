"""Engine throughput benchmark (true timing benchmark, not an experiment).

Measures the simulator's instructions-per-second on a representative
workload so performance regressions in the hot loop are visible.  Both
issue loops are timed — the specialized fast path (what ``engine="auto"``
picks on the default machine) and the reference loop it must match —
so their ratio is tracked alongside absolute throughput.  This is the one
bench where pytest-benchmark's statistics (multiple rounds) are
meaningful.  CI gates the fast/reference ratio via
``python -m repro bench compare`` (see ``baseline_engine_perf.json``).
"""

from repro.sim import DEFAULT_MACHINE, HierarchySimulator
from repro.workloads.spec import get_benchmark

N_ACCESSES = 10_000


def _time_engine(benchmark, engine):
    trace = get_benchmark("403.gcc").trace(N_ACCESSES, seed=1)

    def run():
        sim = HierarchySimulator(DEFAULT_MACHINE, seed=0, engine=engine)
        return sim.run(trace)

    result = benchmark(run)
    assert result.accesses.n_accesses == N_ACCESSES


def test_engine_throughput(benchmark):
    _time_engine(benchmark, "fast")


def test_engine_throughput_reference(benchmark):
    _time_engine(benchmark, "reference")


def test_analyzer_throughput(benchmark):
    trace = get_benchmark("403.gcc").trace(N_ACCESSES, seed=1)
    sim = HierarchySimulator(DEFAULT_MACHINE, seed=0)
    res = sim.run(trace)
    acc = res.accesses

    from repro.core import measure_layer

    def analyze():
        return measure_layer(
            acc.l1_hit_start, acc.l1_hit_end, acc.l1_miss_start, acc.l1_miss_end
        )

    m = benchmark(analyze)
    assert m.accesses == N_ACCESSES
