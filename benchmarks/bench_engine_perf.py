"""Engine throughput benchmark (true timing benchmark, not an experiment).

Measures the simulator's instructions-per-second on a representative
workload so performance regressions in the hot loop are visible.  This is
the one bench where pytest-benchmark's statistics (multiple rounds) are
meaningful.
"""

from repro.sim import DEFAULT_MACHINE, HierarchySimulator
from repro.workloads.spec import get_benchmark

N_ACCESSES = 10_000


def test_engine_throughput(benchmark):
    trace = get_benchmark("403.gcc").trace(N_ACCESSES, seed=1)

    def run():
        sim = HierarchySimulator(DEFAULT_MACHINE, seed=0)
        return sim.run(trace)

    result = benchmark(run)
    assert result.accesses.n_accesses == N_ACCESSES


def test_analyzer_throughput(benchmark):
    trace = get_benchmark("403.gcc").trace(N_ACCESSES, seed=1)
    sim = HierarchySimulator(DEFAULT_MACHINE, seed=0)
    res = sim.run(trace)
    acc = res.accesses

    from repro.core import measure_layer

    def analyze():
        return measure_layer(
            acc.l1_hit_start, acc.l1_hit_end, acc.l1_miss_start, acc.l1_miss_end
        )

    m = benchmark(analyze)
    assert m.accesses == N_ACCESSES
