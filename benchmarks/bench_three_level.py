"""E10 (extension) — three-level hierarchy: the recursion carried one layer down.

Section III: "the extension to additional cache levels is straightforward";
Section II: "C-AMAT can be further extended to the next layer of the memory
hierarchy as well."  This bench exercises both claims concretely:

* the same workload runs on a two-level (L1 + 256 KB LLC) and a
  three-level (L1 + 128 KB L2 + 1 MB L3) machine with identical DRAM;
* every layer of the deeper machine satisfies the Eq. (2)/(3) C-AMAT
  identity, and the matching chain extends to LPMR4 (L3, MM);
* for a mid-size-footprint workload the L3 absorbs traffic that previously
  stalled on DRAM, visibly shrinking the deep matching ratios.
"""

import numpy as np
import pytest

from repro.core import render_table
from repro.sim import CacheGeometry, DEFAULT_MACHINE
from repro.sim.stats import simulate_and_measure
from repro.workloads.trace import Trace

KB = 1024
MB = 1024 * 1024
N_ACCESSES = 20_000


def _mid_footprint_trace():
    rng = np.random.default_rng(3)
    addrs = (rng.integers(0, 4 * MB, N_ACCESSES) >> 6) << 6
    return Trace.from_memory_addresses(addrs, compute_per_access=2, name="4MB-uniform")


def run_comparison():
    trace = _mid_footprint_trace()
    two = DEFAULT_MACHINE
    three = DEFAULT_MACHINE.with_(
        l2=CacheGeometry(128 * KB, associativity=16),
        l3=CacheGeometry(1 * MB, associativity=16),
        name="3-level",
    )
    _, st2 = simulate_and_measure(two, trace, seed=0)
    _, st3 = simulate_and_measure(three, trace, seed=0)
    return st2, st3


def test_three_level(benchmark, artifact):
    st2, st3 = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    # The identity holds at every layer of the deeper machine.
    for layer in (st3.l1, st3.l2, st3.l3):
        assert layer is not None
        if layer.accesses:
            assert layer.camat_model == pytest.approx(layer.camat)
    # The L3 absorbs mid-footprint traffic: less stall than two levels.
    assert st3.stall_per_instruction < st2.stall_per_instruction
    # The chain extends: LPMR4 exists and is the smallest ratio.
    assert st3.lpmr4 > 0.0
    assert st3.lpmr4 <= st3.lpmr3 + 1e-9

    rows = [
        ("2-level (256 KB LLC)", st2.cpi, st2.lpmr1, st2.lpmr2, st2.lpmr3, 0.0),
        ("3-level (128 KB L2 + 1 MB L3)", st3.cpi, st3.lpmr1, st3.lpmr2,
         st3.lpmr3, st3.lpmr4),
    ]
    text = render_table(
        ["machine", "CPI", "LPMR1", "LPMR2", "LPMR3", "LPMR4"],
        rows, float_fmt="{:.3f}",
        title="E10 — extending LPM to a three-level hierarchy (4 MB uniform workload)",
    )
    text += (
        "\n\nThe C-AMAT identity (Eq. 2 = 1/APC) is verified at L1, L2 and"
        "\nL3; the matching chain gains a fourth ratio (L3, MM) exactly as"
        "\nthe paper's 'extension ... is straightforward' remark predicts."
    )
    artifact("E10_three_level", text)
