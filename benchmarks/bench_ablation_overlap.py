"""A2 — ablation: hit-miss overlapping and the pMR-vs-MR gap.

The pure-miss concept is the paper's key analytical device: a miss whose
penalty hides entirely under hit activity costs nothing.  This ablation
varies the hit-activity density (L1 ports and hit fraction) and verifies
the gap between the conventional miss rate MR and the pure miss rate pMR:

* with dense hit traffic and ports to serve it, most misses stop being
  pure (pMR << MR);
* with a port-starved L1, hit phases thin out and pure misses return;
* dependent (pointer-chase) misses are pure regardless of resources.
"""

import numpy as np

from repro.core import render_table
from repro.sim.params import DEFAULT_MACHINE
from repro.sim.stats import simulate_and_measure
from repro.workloads.generators import KernelSpec
from repro.workloads.spec import BenchmarkProfile

MB = 1024 * 1024
KB = 1024


def _profile(miss_weight: float, chase: bool) -> BenchmarkProfile:
    miss_kernel = (
        KernelSpec("chase", miss_weight, 8 * MB)
        if chase
        else KernelSpec("working_set", miss_weight, 8 * MB, burst_length=4)
    )
    return BenchmarkProfile(
        name=f"overlap-{'chase' if chase else 'ws'}-{miss_weight}",
        kernels=(miss_kernel, KernelSpec("working_set", 1 - miss_weight, 4 * KB)),
        compute_per_access=1.0,
        ilp_dependency=0.3,
    )


def run_ablation():
    rows = []
    for label, chase, weight, ports, pipelined in (
        ("independent misses + hot hits, 4 pipelined ports", False, 0.2, 4, True),
        ("independent misses + hot hits, 1 non-pipelined port", False, 0.2, 1, False),
        ("dependent chase + hot hits, 4 pipelined ports", True, 0.2, 4, True),
        ("dependent chase, almost no hits, 4 pipelined ports", True, 0.95, 4, True),
    ):
        trace = _profile(weight, chase).trace(15_000, seed=13)
        cfg = DEFAULT_MACHINE.with_knobs(
            l1_ports=ports, mshr_count=16, iw_size=256, rob_size=256, name=label
        ).with_(l1_pipelined=pipelined)
        _, st = simulate_and_measure(cfg, trace, seed=0)
        mr = st.l1.miss_rate
        pmr = st.l1.pure_miss_rate
        rows.append((label, mr, pmr, pmr / mr if mr else 0.0,
                     st.l1.hit_concurrency,
                     100 * st.stall_fraction_of_compute))
    return rows


def test_ablation_overlap(benchmark, artifact):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    dense, starved, chase_mixed, chase_pure = rows

    # Dense hit traffic hides a large share of misses (pMR well below MR).
    assert dense[3] < 0.8
    # With almost no hit activity to hide under, chase misses are all pure.
    assert chase_pure[3] > 0.9
    # Hit activity hides *cycles* even for dependent chases, but the chase
    # still stalls far harder than the independent-miss case: overlap can
    # mask misses in C-AMAT terms, while the dependence chain still blocks
    # the processor (stall % is the discriminator).
    assert chase_mixed[5] > 2.0 * dense[5]
    # Hit concurrency is higher with more pipelined ports.
    assert dense[4] > starved[4]

    text = render_table(
        ["scenario", "MR1", "pMR1", "pMR/MR", "C_H1", "stall %"],
        rows, float_fmt="{:.3f}",
        title="A2 — hit-miss overlapping: conventional vs pure miss rate",
    )
    text += (
        "\n\nOnly pure misses stall the processor (Section II); the pMR/MR"
        "\ngap is the headroom LPM exploits.  Dependence chains are the one"
        "\nthing hardware parallelism cannot overlap away: even when hit"
        "\nactivity makes chase misses look non-pure, the stall remains."
    )
    artifact("A2_ablation_overlap", text)
