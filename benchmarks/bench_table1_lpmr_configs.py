"""E2 — Table I: LPMRs under configurations with incremental parallelism.

Simulates the bwaves-like workload on the five Table I configurations A-E
and prints the table in the paper's layout (knobs + LPMR1/2/3 per
configuration).  The shape facts asserted are the ones the paper's
narrative rests on:

* LPMR1 and LPMR2 fall substantially from A to D;
* D is the best-matched configuration of the five;
* E (the over-provision trim of D: IW/ROB 128 -> 96) is slightly worse
  than D but far better than A — the "minimal hardware cost" point.
"""

from repro.analysis import table1_text
from repro.analysis.sweep import sweep_configs
from repro.sim.params import table1_config


def run_table1(trace):
    configs = [table1_config(label) for label in "ABCDE"]
    sweep = sweep_configs(configs, trace, seed=0)
    return configs, sweep


def test_table1_lpmr_configs(benchmark, artifact, bwaves_trace):
    configs, sweep = benchmark.pedantic(
        run_table1, args=(bwaves_trace,), rounds=1, iterations=1
    )
    lpmr1 = {c.name: s.lpmr1 for c, s in zip(configs, sweep.stats)}
    lpmr2 = {c.name: s.lpmr2 for c, s in zip(configs, sweep.stats)}

    # Shape facts (paper: 8.1, 6.2, 2.1, 1.2, 1.4 for LPMR1).
    assert lpmr1["A"] > lpmr1["B"] >= lpmr1["C"] * 0.95 > lpmr1["D"] * 0.95
    assert lpmr1["D"] == min(lpmr1.values())
    assert lpmr1["D"] < lpmr1["E"] < lpmr1["A"]
    assert lpmr2["A"] > lpmr2["D"]
    assert lpmr1["A"] / lpmr1["D"] > 1.8  # substantial A->D reduction

    text = table1_text(configs, sweep.stats)
    text += (
        "\n\npaper (Table I) LPMR1: A=8.1 B=6.2 C=2.1 D=1.2 E=1.4"
        "\nreproduced ordering: A > B >= C > D < E with D optimal; the"
        "\nabsolute spread is compressed on the scaled substrate"
        " (see EXPERIMENTS.md E2)."
        f"\nstall %% of CPI_exe per config: "
        + " ".join(
            f"{c.name}={100 * s.stall_fraction_of_compute:.0f}%"
            for c, s in zip(configs, sweep.stats)
        )
    )
    artifact("E2_table1_lpmr_configs", text)
