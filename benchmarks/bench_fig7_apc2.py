"""E5 — Fig. 7: APC2 of applications on cores with different L1 cache sizes.

Regenerates the per-benchmark APC2 (L2 bandwidth demand) series over L1
sizes.  Asserted facts from Section V-B:

* 401.bzip2's APC2 is stable across L1 sizes;
* 403.gcc's APC2 decreases at every size step;
* 429.mcf's APC2 drops mostly at the first size increase (4 -> 16 KB),
  then flattens;
* 416.gamess's larger L1 reduces its L2 bandwidth requirement noticeably;
* 433.milc's APC2 barely reacts to L1 size.
"""

from repro.analysis import apc_sweep_text
from repro.workloads.spec import SELECTED_16

KB = 1024
SIZES_KB = (4, 16, 32, 64)


def collect_apc2(db):
    return {
        (name, kb): db.apc2(name, kb * KB)
        for name in SELECTED_16
        for kb in SIZES_KB
    }


def test_fig7_apc2(benchmark, artifact, nuca_db):
    values = benchmark.pedantic(collect_apc2, args=(nuca_db,), rounds=1, iterations=1)

    def series(name):
        return [values[(name, kb)] for kb in SIZES_KB]

    bzip2, gcc = series("401.bzip2"), series("403.gcc")
    mcf, gamess, milc = series("429.mcf"), series("416.gamess"), series("433.milc")

    # bzip2 stable.
    assert max(bzip2) - min(bzip2) < 0.12 * max(bzip2) + 1e-9
    # gcc decreases at each step.
    assert all(b <= a + 1e-9 for a, b in zip(gcc, gcc[1:]))
    # mcf: the first step contributes the majority of the total drop.
    total_drop = mcf[0] - mcf[-1]
    if total_drop > 1e-9:
        assert (mcf[0] - mcf[1]) / total_drop > 0.4
    # gamess: noticeable reduction.
    assert gamess[-1] < gamess[0]
    # milc: little influence.
    drop = (max(milc) - min(milc)) / max(milc)
    assert drop < 0.25

    text = apc_sweep_text("Fig. 7 — APC2 vs private L1 data cache size",
                          list(SELECTED_16), list(SIZES_KB), values)
    text += (
        "\n\npaper facts reproduced: bzip2 stable; gcc decreases each step;"
        "\nmcf drops mostly at the first increase; gamess reduces noticeably;"
        "\nmilc nearly unaffected."
    )
    artifact("E5_fig7_apc2", text)
