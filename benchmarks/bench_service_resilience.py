"""R2 — the evaluation service's degradation contract under chaos.

The service layer (docs/ROBUSTNESS.md, "Service layer") promises that
faults degrade *loudly and boundedly*: every admitted job reaches a
terminal status, completed results are bit-identical to direct
``sim.engine`` runs, overload and failure answer with explicit statuses
rather than silence, and a drained server's journal replays finished
work on restart.  This bench drives a deterministic fault x load matrix
— seeded worker crashes, worker stalls, torn evalcache shards, journal
tail truncation, client disconnects — through a real localhost server
and asserts that contract cell by cell.

``REPRO_SERVICE_SMOKE=1`` reduces the matrix to two fault classes for
the CI resilience-smoke job.
"""

import asyncio
import os
import time

from repro.runtime.evalcache import evaluation_cache_key
from repro.runtime.evaluate import EvaluationRequest, EvaluationRuntime
from repro.runtime.journal import CheckpointJournal
from repro.runtime.pool import PoolConfig, RetryPolicy
from repro.service import (
    AdmissionConfig,
    ChaosConfig,
    EvaluationServer,
    JobStatus,
    SchedulerConfig,
    ServerConfig,
    ServiceClient,
    StoreChaos,
    make_chaos_job_fn,
)
from repro.sim.params import table1_config
from repro.workloads.spec import get_benchmark

BENCH_ACCESSES = 6_000
SEED = 7
#: Two seeds per Table I label: 8 jobs per matrix cell.
POINTS = [(label, seed) for label in "ABCD" for seed in (0, 1)]
#: Per-job terminal-latency budget — the no-deadlock bound.  Generous on
#: purpose: it gates "finished promptly" vs "wedged", not throughput.
LATENCY_BUDGET_S = 60.0
#: The full fault matrix.  Rates are the service's default chaos levels;
#: every seed is pinned so each cell injects the same damage every run.
#: Worker-side draws key on the job's cache key (which embeds the trace
#: digest), so the crash/stall seeds are chosen to fire at *both* the full
#: 6 000-access trace and the smoke harness's scaled-down one.
CELLS = [
    ("baseline", ChaosConfig(seed=1)),
    ("worker_crash", ChaosConfig(crash_rate=0.2, seed=4)),
    ("worker_stall", ChaosConfig(stall_rate=0.2, stall_s=1.5, seed=3)),
    # Store damage draws once per dispatch round and a short run has few
    # rounds (the first sees empty stores), so these cells run the injector
    # at full rate: every round with substrate to damage tears something.
    ("cache_corrupt", ChaosConfig(cache_corrupt_rate=1.0, seed=5)),
    ("journal_truncate", ChaosConfig(journal_truncate_rate=1.0, seed=7)),
    ("client_disconnect", ChaosConfig(disconnect_rate=1.0, seed=9)),
]
SMOKE_CELLS = ("baseline", "worker_crash")


def _active_cells():
    if os.environ.get("REPRO_SERVICE_SMOKE"):
        return [cell for cell in CELLS if cell[0] in SMOKE_CELLS]
    return CELLS


def _job_id(cell, label, seed):
    return f"{cell}:{label}:{seed}"


def _cell_runtime(name, chaos, tmp_path):
    # The stall cell needs the pool deadline below the stall duration so a
    # stalled worker times out and the job retries instead of serving the
    # full stall.
    stalls = chaos.stall_rate > 0
    return EvaluationRuntime(
        pool=PoolConfig(
            max_workers=2,
            timeout_s=0.5 if stalls else 120.0,
            retry=RetryPolicy(max_retries=4, backoff_base=0.01),
        ),
        journal=tmp_path / f"{name}.jsonl",
        cache=tmp_path / f"{name}.cache",
        job_fn=make_chaos_job_fn(chaos) if chaos.worker_rate > 0 else None,
    )


async def _run_cell(name, chaos, trace, tmp_path):
    runtime = _cell_runtime(name, chaos, tmp_path)
    store_chaos = StoreChaos(chaos, cache=runtime.cache, journal=runtime.journal)
    server = EvaluationServer(
        runtime,
        config=ServerConfig(scheduler=SchedulerConfig(
            max_batch=4, idle_poll_s=0.01,
            admission=AdmissionConfig(max_queued_total=32,
                                      max_queued_per_client=32),
        )),
        store_chaos=store_chaos,
    )
    latencies, statuses, stats_by_job = {}, {}, {}
    async with server:
        loop = asyncio.get_running_loop()
        client = ServiceClient("127.0.0.1", server.port,
                               client_id=f"bench-{name}",
                               timeout_s=LATENCY_BUDGET_S)
        await client.connect()
        digest = await client.register_trace(trace)
        submitted_at = {}
        for label, seed in POINTS:
            job_id = _job_id(name, label, seed)
            submitted_at[job_id] = loop.time()
            reply = await client.submit_with_retry(
                job_id, trace_digest=digest, config={"label": label},
                seed=seed,
            )
            assert reply.get("ok"), (name, job_id, reply)
        if chaos.disconnect_rate > 0:
            # The disconnect cell: the submitting client vanishes without a
            # goodbye (transport abort = RST, the chaos matrix's client
            # death) and an heir collects every result.
            client._writer.transport.abort()
            client._writer = client._reader = None
            client = ServiceClient("127.0.0.1", server.port,
                                   client_id=f"bench-{name}-heir",
                                   timeout_s=LATENCY_BUDGET_S)
            await client.connect()
        for label, seed in POINTS:
            job_id = _job_id(name, label, seed)
            reply = await client.wait(job_id, timeout_s=LATENCY_BUDGET_S)
            latencies[job_id] = loop.time() - submitted_at[job_id]
            statuses[job_id] = reply["status"]
            if reply["status"] == JobStatus.DONE:
                stats_by_job[job_id] = reply["stats"]
        await client.close()
    return {
        "name": name,
        "chaos": chaos,
        "runtime": runtime,
        "store_chaos": store_chaos,
        "latencies": latencies,
        "statuses": statuses,
        "stats": stats_by_job,
    }


def _check_resume(cell, trace, direct):
    """A restarted runtime over the cell's journal replays finished work."""
    runtime = cell["runtime"]
    reloaded = CheckpointJournal(runtime.journal.path)
    resumed = EvaluationRuntime(journal=reloaded)
    requests, points = [], []
    for (label, seed) in POINTS:
        if cell["statuses"][_job_id(cell["name"], label, seed)] != JobStatus.DONE:
            continue
        config = table1_config(label)
        requests.append(EvaluationRequest(
            key=evaluation_cache_key(trace, config, seed, True),
            config=config, trace=trace, seed=seed,
        ))
        points.append((label, seed))
    results = resumed.evaluate_many(requests)
    for request, point in zip(requests, points):
        assert results[request.key].to_dict() == direct[point], (
            cell["name"], point,
        )
    # Tail truncation may legally drop the final record (never more): the
    # resumed run recomputes at most one point per injected truncation.
    assert resumed.counters.simulations <= cell["store_chaos"].journal_truncations, (
        cell["name"], resumed.counters.simulations
    )
    assert reloaded.dropped_lines <= cell["store_chaos"].journal_truncations


def _check_cache_recovery(cell, trace, direct):
    """A fresh runtime over the torn cache quarantines and recomputes."""
    from repro.runtime.evalcache import EvaluationCache

    recovered = EvaluationRuntime(
        cache=EvaluationCache(cell["runtime"].cache.root)
    )
    results = recovered.evaluate_many([
        EvaluationRequest(
            key=evaluation_cache_key(trace, table1_config(label), seed, True),
            config=table1_config(label), trace=trace, seed=seed,
        )
        for label, seed in POINTS
    ])
    assert recovered.cache.quarantined >= 1, cell["name"]
    # Exactly the torn shards recompute; intact ones are cache hits.
    assert recovered.counters.simulations == recovered.cache.quarantined
    for (label, seed) in POINTS:
        key = evaluation_cache_key(trace, table1_config(label), seed, True)
        assert results[key].to_dict() == direct[(label, seed)], (label, seed)


def _percentile(values, fraction):
    ordered = sorted(values)
    return ordered[int(fraction * (len(ordered) - 1))]


def run_matrix(trace, tmp_path):
    cells = [
        asyncio.run(_run_cell(name, chaos, trace, tmp_path))
        for name, chaos in _active_cells()
    ]
    direct = {
        (label, seed): EvaluationRuntime().evaluate(EvaluationRequest(
            key="direct", config=table1_config(label), trace=trace, seed=seed,
        )).to_dict()
        for label, seed in POINTS
    }
    return cells, direct


def test_service_resilience_matrix(benchmark, artifact, tmp_path):
    trace = get_benchmark("410.bwaves").trace(BENCH_ACCESSES, seed=SEED)
    started = time.perf_counter()
    cells, direct = benchmark.pedantic(
        run_matrix, args=(trace, tmp_path), rounds=1, iterations=1
    )
    elapsed = time.perf_counter() - started

    terminal = {JobStatus.DONE, JobStatus.FAILED, JobStatus.CANCELLED}
    done = total = 0
    for cell in cells:
        name = cell["name"]
        # No silent drops: every submitted job answered with a terminal
        # status inside the latency budget (the no-deadlock bound).
        assert len(cell["statuses"]) == len(POINTS), name
        assert all(s in terminal for s in cell["statuses"].values()), name
        assert _percentile(cell["latencies"].values(), 0.99) < LATENCY_BUDGET_S
        total += len(cell["statuses"])
        done += sum(1 for s in cell["statuses"].values() if s == JobStatus.DONE)
        # Correctness under chaos: whatever completed matches the direct
        # engine bit for bit.
        for (label, seed) in POINTS:
            job_id = _job_id(name, label, seed)
            if job_id in cell["stats"]:
                assert cell["stats"][job_id] == direct[(label, seed)], job_id
        _check_resume(cell, trace, direct)
        # The injectors actually fired — a chaos run that injects nothing
        # proves nothing.
        chaos, runtime = cell["chaos"], cell["runtime"]
        if chaos.crash_rate > 0:
            assert runtime.counters.worker_restarts >= 1, name
        if chaos.stall_rate > 0:
            assert runtime.counters.timeouts >= 1, name
        if chaos.cache_corrupt_rate > 0:
            assert cell["store_chaos"].cache_corruptions >= 1, name
            _check_cache_recovery(cell, trace, direct)
        if chaos.journal_truncate_rate > 0:
            assert cell["store_chaos"].journal_truncations >= 1, name

    # The acceptance bar: >= 99% of admitted jobs succeed at the default
    # fault rates (the remainder must still be explicit terminal failures).
    success = done / total
    assert success >= 0.99, f"success rate {success:.1%} below 99%"

    lines = [
        f"{len(cells)}-cell fault matrix, {len(POINTS)} jobs/cell, "
        f"{BENCH_ACCESSES} accesses (410.bwaves, seed {SEED}); "
        f"{elapsed:.1f}s wall",
        "",
        f"{'cell':>18} {'done':>5} {'fail':>5} {'p50 ms':>8} {'p99 ms':>8} "
        f"{'restarts':>8} {'damage':>7}",
    ]
    for cell in cells:
        statuses = list(cell["statuses"].values())
        n_done = sum(1 for s in statuses if s == JobStatus.DONE)
        counters = cell["runtime"].counters
        damage = (cell["store_chaos"].cache_corruptions
                  + cell["store_chaos"].journal_truncations)
        lines.append(
            f"{cell['name']:>18} {n_done:>5} {len(statuses) - n_done:>5} "
            f"{_percentile(cell['latencies'].values(), 0.5) * 1e3:>8.1f} "
            f"{_percentile(cell['latencies'].values(), 0.99) * 1e3:>8.1f} "
            f"{counters.worker_restarts:>8} {damage:>7}"
        )
    lines += [
        "",
        f"{done}/{total} jobs done ({success:.1%}); all completed results "
        "bit-identical to direct engine runs; every journal resumable",
    ]
    artifact("R2_service_resilience", "\n".join(lines))
