"""E3 — Section V-A narrative: the LPM algorithm's guided walk A -> E.

Runs the Fig. 3 algorithm over the Table I ladder at the coarse-grained
and fine-grained stall targets (scaled to this substrate; the paper uses
10% and 1%) and asserts the narrated structure:

* at the coarse target the walk stops before exhausting the ladder
  (the paper: configuration C is "the first scheme [that] meets the
  [coarse] requirement");
* at the fine target the walk continues further down the ladder
  (the paper: configuration D meets the 1% requirement);
* the over-provision trim then selects the cheaper E while keeping the
  fine target (the paper's Case III step).

Also runs the greedy full-space search and reports how few of the
design-space points LPM evaluated (the paper's answer to the 10^6-point
exploration problem).
"""

from repro.core import LPMAlgorithm, LPMStatus, format_run_result
from repro.reconfig import DesignSpace, GreedyReconfigBackend, LadderBackend
from repro.sim.params import table1_config

# Substrate-scaled stall targets (paper: 10% coarse, 1% fine); the ordering
# of which configuration first satisfies each target is the reproduced fact.
DELTA_COARSE = 155.0
DELTA_FINE = 140.0


def run_walks(trace):
    results = {}
    for name, delta in (("coarse", DELTA_COARSE), ("fine", DELTA_FINE)):
        backend = LadderBackend(
            [table1_config(c) for c in "ABCD"], trace,
            deprovision_configs=[table1_config("E")],
        )
        algo = LPMAlgorithm(delta_percent=delta, delta_slack_fraction=0.5,
                            max_steps=10)
        allow_trim = name == "fine"  # the paper's optional Case III step
        results[name] = (algo.run(backend, allow_deprovision=allow_trim), backend)

    space = DesignSpace()
    greedy = GreedyReconfigBackend(space, trace, delta_percent=DELTA_COARSE)
    algo = LPMAlgorithm(delta_percent=DELTA_COARSE, delta_slack_fraction=0.5,
                        max_steps=12)
    greedy_result = algo.run(greedy, allow_deprovision=False)
    return results, (greedy_result, greedy, space)


def test_algorithm_walk(benchmark, artifact, bwaves_trace):
    results, (greedy_result, greedy, space) = benchmark.pedantic(
        run_walks, args=(bwaves_trace,), rounds=1, iterations=1
    )
    coarse_result, coarse_backend = results["coarse"]
    fine_result, fine_backend = results["fine"]

    # The coarse walk stops matched at C — the paper's "first scheme [that]
    # meets the [coarse] requirement" — before the ladder runs out.
    assert coarse_result.status is LPMStatus.MATCHED
    assert coarse_result.final_case.value == "IV"
    assert coarse_result.steps[-1].config_label == "C"
    # The fine walk continues to D, detects over-provision there (Case III),
    # trims to E, and ends matched — the paper's exact narrative.
    assert fine_result.status is LPMStatus.MATCHED
    fine_cases = [(s.config_label, s.case.value) for s in fine_result.steps]
    assert ("D", "III") in fine_cases
    assert fine_result.steps[-1].config_label == "E"
    assert fine_result.final_case.value == "IV"
    # Optimization-phase steps only ever improve LPMR1 (the trim may relax).
    opt_lpmr1s = [s.report.lpmr1 for s in fine_result.steps if s.case.value == "I"]
    assert all(b <= a + 1e-9 for a, b in zip(opt_lpmr1s, opt_lpmr1s[1:]))

    # Guided search touches a vanishing fraction of the space.
    assert greedy.log.evaluations < space.size() * 0.01

    text = "Coarse-grained walk (paper: stops at C with 9.6% stall)\n"
    text += format_run_result(coarse_result)
    text += "\n\nFine-grained walk (paper: continues to D, then trims to E)\n"
    text += format_run_result(fine_result)
    text += "\n\nGreedy full-space search\n"
    text += format_run_result(greedy_result)
    text += (
        f"\n\ndesign space: {space.size():,} points; "
        f"greedy LPM evaluated {greedy.log.evaluations} "
        f"({100 * greedy.log.evaluations / space.size():.3f}%)"
    )
    artifact("E3_algorithm_walk", text)
