"""E7 — Section V: burst detection rate vs measurement interval size.

"For hardware approach ... when the interval size is set to 10 cycles, 96%
of the burst data access patterns can be perceived and processed timely.
When the interval size is set to 20 cycles, 89% ... For software approach,
when the interval size is set to 40 cycles, 73% ..."

The burst timeline (lognormal durations, median ~258 cycles) is calibrated
once in :mod:`repro.workloads.phases`; this bench regenerates the three
operating points plus the surrounding sweep.
"""

import pytest

from repro.core import render_table
from repro.workloads.phases import detection_rate, generate_bursts

N_BURSTS = 50_000
HW_COST = 4    # cycles per reconfiguration operation (paper)
SW_COST = 40   # cycles per scheduling operation (paper)


def run_sweep():
    bursts = generate_bursts(N_BURSTS, seed=0)
    rows = []
    for interval in (5, 10, 20, 40, 80):
        rows.append((
            interval,
            100 * detection_rate(bursts, interval, HW_COST),
            100 * detection_rate(bursts, interval, SW_COST),
        ))
    points = {
        ("hw", 10): detection_rate(bursts, 10, HW_COST),
        ("hw", 20): detection_rate(bursts, 20, HW_COST),
        ("sw", 40): detection_rate(bursts, 40, SW_COST),
    }
    return rows, points


def test_interval_detection(benchmark, artifact):
    rows, points = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    assert points[("hw", 10)] == pytest.approx(0.96, abs=0.03)
    assert points[("hw", 20)] == pytest.approx(0.89, abs=0.03)
    assert points[("sw", 40)] == pytest.approx(0.73, abs=0.03)
    # Monotone: finer intervals always detect at least as much.
    hw = [r[1] for r in rows]
    assert hw == sorted(hw, reverse=True)

    text = render_table(
        ["interval (cycles)", "hw timely % (cost 4)", "sw timely % (cost 40)"],
        rows, float_fmt="{:.1f}",
        title="E7 — burst patterns perceived and processed timely",
    )
    text += (
        f"\n\npaper: 96% @ 10 cycles, 89% @ 20 cycles (hardware);"
        f" 73% @ 40 cycles (software)"
        f"\nmeasured: {100 * points[('hw', 10)]:.1f}%,"
        f" {100 * points[('hw', 20)]:.1f}%, {100 * points[('sw', 40)]:.1f}%"
    )
    artifact("E7_interval_detection", text)
