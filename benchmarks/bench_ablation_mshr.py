"""A1 — ablation: MSHR count vs miss overlap and performance.

DESIGN.md calls out MSHR modelling (primary/secondary coalescing + bounded
registers) as a load-bearing design choice: the pure-miss behaviour the LPM
model optimizes is created by exactly this structure.  The ablation sweeps
the MSHR count on a bursty miss-heavy workload and verifies:

* the average pure miss penalty pAMP — which absorbs the MSHR-full queueing
  delay — shrinks steeply as registers are added;
* C-AMAT1 and end-to-end CPI improve and then saturate once the register
  count covers the workload's intrinsic burst width (the saturated regime
  is what the algorithm's Case III trims);
* the peak MSHR occupancy reported by the engine respects the knob.

Note on C_M semantics: an access whose miss is *queued* behind a full MSHR
file still counts as an outstanding miss in the analyzer (its penalty
interval covers the wait), so severely under-provisioned configurations can
report a high apparent miss concurrency; pAMP is the discriminating
quantity there, which is why it carries the assertions.
"""

from repro.core import render_table
from repro.sim.params import DEFAULT_MACHINE
from repro.sim.stats import simulate_and_measure
from repro.workloads.generators import KernelSpec
from repro.workloads.spec import BenchmarkProfile

MB = 1024 * 1024
MSHR_COUNTS = (1, 2, 4, 8, 16, 32)


def run_ablation():
    profile = BenchmarkProfile(
        name="mshr-ablation",
        kernels=(
            KernelSpec("working_set", 0.7, 8 * MB, burst_length=8),
            KernelSpec("working_set", 0.3, 8 * 1024),
        ),
        compute_per_access=2.0,
        ilp_dependency=0.5,
    )
    trace = profile.trace(20_000, seed=11)
    rows = []
    for count in MSHR_COUNTS:
        cfg = DEFAULT_MACHINE.with_knobs(mshr_count=count, iw_size=128, rob_size=128,
                                         name=f"mshr{count}")
        res, st = simulate_and_measure(cfg, trace, seed=0)
        rows.append((
            count,
            res.component_stats["l1_mshr_peak"],
            st.l1.pure_miss_penalty,
            st.l1.pure_miss_concurrency,
            st.l1.camat,
            st.cpi,
        ))
    return rows


def test_ablation_mshr(benchmark, artifact):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    peak = [r[1] for r in rows]
    pamp = [r[2] for r in rows]
    camat = [r[4] for r in rows]
    cpi = [r[5] for r in rows]

    # The engine honours the register bound.
    for (count, pk, *_ ) in rows:
        assert pk <= count
    # pAMP (absorbing MSHR-full waits) shrinks steeply 1 -> 16.
    assert pamp[4] < 0.6 * pamp[0]
    # Memory performance and end-to-end performance improve...
    assert camat[4] < camat[0]
    assert cpi[4] < cpi[0]
    # ...and saturate: 32 registers buy (almost) nothing over 16.
    assert abs(cpi[5] - cpi[4]) / cpi[4] < 0.10
    assert peak[5] <= 32

    text = render_table(
        ["MSHRs", "peak occupancy", "pAMP1", "C_M1", "C-AMAT1", "CPI"],
        rows, float_fmt="{:.2f}",
        title="A1 — MSHR count vs pure-miss behaviour (bursty miss workload)",
    )
    text += (
        "\n\nNon-blocking-cache registers create the miss-miss overlap the"
        "\npaper's model exploits; beyond the workload's intrinsic burst"
        "\nwidth the extra registers buy nothing (the Case III trim target)."
    )
    artifact("A1_ablation_mshr", text)
