"""E6 — Fig. 8: Hsp of different scheduling schemes on the NUCA CMP.

Regenerates the harmonic-weighted-speedup comparison of Random,
Round-Robin and NUCA-SA (coarse/fine) for the sixteen benchmarks on the
Fig. 5 machine.  Paper values: Random 0.7986, Round Robin 0.8192,
NUCA-SA(cg) 0.8742, NUCA-SA(fg) 0.9106; fg improves on Random by 12.29%
and on Round Robin by 11.16%.

Asserted shape: NUCA-SA(fg) >= NUCA-SA(cg) > {Round Robin, Random}, with
the fg-over-Random improvement inside the paper's ~10-15% band.
"""

import numpy as np

from repro.analysis import hsp_text
from repro.sched import (
    evaluate_schedule,
    nuca_sa,
    random_schedule,
    round_robin_schedule,
)
from repro.workloads.spec import SELECTED_16

N_RANDOM_SEEDS = 8


def run_fig8(machine, db):
    apps = list(SELECTED_16)
    rand = float(np.mean([
        evaluate_schedule(random_schedule(apps, machine, seed=s), db, machine).hsp
        for s in range(N_RANDOM_SEEDS)
    ]))
    rr = evaluate_schedule(round_robin_schedule(apps, machine), db, machine).hsp
    cg = evaluate_schedule(nuca_sa(apps, machine, db, grain="coarse"), db, machine).hsp
    fg = evaluate_schedule(nuca_sa(apps, machine, db, grain="fine"), db, machine).hsp
    return {"Random": rand, "Round Robin": rr, "NUCA-SA (cg)": cg, "NUCA-SA (fg)": fg}


def test_fig8_hsp(benchmark, artifact, nuca_machine, nuca_db):
    results = benchmark.pedantic(
        run_fig8, args=(nuca_machine, nuca_db), rounds=1, iterations=1
    )
    fg, cg = results["NUCA-SA (fg)"], results["NUCA-SA (cg)"]
    rr, rand = results["Round Robin"], results["Random"]

    assert fg >= cg - 1e-9
    assert cg > rr and cg > rand
    improvement_vs_random = fg / rand - 1.0
    improvement_vs_rr = fg / rr - 1.0
    assert 0.05 < improvement_vs_random < 0.25
    assert 0.04 < improvement_vs_rr < 0.25

    paper = {"Random": 0.7986, "Round Robin": 0.8192,
             "NUCA-SA (cg)": 0.8742, "NUCA-SA (fg)": 0.9106}
    text = hsp_text(results)
    text += "\n\npaper values: " + "  ".join(f"{k}={v}" for k, v in paper.items())
    text += (
        f"\n\nNUCA-SA (fg) vs Random:      +{100 * improvement_vs_random:.2f}%"
        f"  (paper +12.29%)"
        f"\nNUCA-SA (fg) vs Round Robin: +{100 * improvement_vs_rr:.2f}%"
        f"  (paper +11.16%)"
    )
    artifact("E6_fig8_hsp", text)
