"""E8 — model validation: Eq. (12)/(13) stall predictions vs measurement.

The paper's optimization rests on the stall-time expressions being
faithful.  This bench sweeps configurations x workloads and compares, per
run:

* Eq. (12): ``stall = CPI_exe * (1 - overlap) * LPMR1`` — exact by the
  measured overlap definition (sanity anchor);
* Eq. (13): the LPMR2 form with the combined eta — a genuine prediction
  (it reconstructs the stall through the L2 layer's matching ratio);
* Eq. (6): the conventional AMAT stall model — shown for contrast; it
  ignores concurrency and overshoots badly on overlapped workloads.
"""

import pytest

from repro.core import render_table
from repro.core.stall import stall_time_amat, stall_time_lpmr2
from repro.sim.params import table1_config
from repro.sim.stats import simulate_and_measure
from repro.workloads.spec import get_benchmark

WORKLOADS = ("410.bwaves", "403.gcc", "433.milc")
CONFIGS = ("A", "C", "D")
N_ACCESSES = 25_000


def run_validation():
    rows = []
    for bench_name in WORKLOADS:
        trace = get_benchmark(bench_name).trace(N_ACCESSES, seed=7)
        for label in CONFIGS:
            _, st = simulate_and_measure(table1_config(label), trace, seed=0)
            measured = st.stall_per_instruction
            report = st.lpmr_report()
            eq12 = report.predicted_stall_per_instruction()
            eq13 = stall_time_lpmr2(
                st.l1.hit_time, st.l1.hit_concurrency, st.f_mem, st.cpi_exe,
                st.eta_combined, st.lpmr2, st.overlap_ratio_cm,
            ) if st.l1.miss_count else 0.0
            eq6 = stall_time_amat(st.f_mem, st.l1.amat)
            rows.append((bench_name, label, measured, eq12, eq13, eq6))
    return rows


def test_model_validation(benchmark, artifact):
    rows = benchmark.pedantic(run_validation, rounds=1, iterations=1)

    for bench_name, label, measured, eq12, eq13, eq6 in rows:
        # Eq. 12 is definitionally tight.
        assert eq12 == pytest.approx(measured, rel=0.02, abs=1e-6)
        if measured > 0.05:
            # Eq. 13 reconstructs stall through the L2 layer within ~40%
            # (it re-derives the L1 miss contribution from LPMR2 and eta).
            assert eq13 == pytest.approx(measured, rel=0.4)
            # The AMAT model ignores hit/miss overlapping: on these
            # concurrency-rich runs it overshoots the true stall.
            assert eq6 > measured

    text = render_table(
        ["workload", "config", "measured stall/instr", "Eq.12", "Eq.13", "Eq.6 (AMAT)"],
        rows, float_fmt="{:.4f}",
        title="E8 — stall-time model validation (cycles per instruction)",
    )
    text += (
        "\n\nEq. 12 matches measurement by construction (the overlap ratio is"
        "\ndefined through Eq. 7); Eq. 13 is a genuine cross-layer prediction;"
        "\nthe concurrency-blind AMAT model (Eq. 6) overshoots throughout."
    )
    artifact("E8_model_validation", text)
