"""Batch-kernel throughput benchmark (true timing benchmark, not an experiment).

Times a design-space sweep both ways — N scalar fast-path simulators
versus one :class:`~repro.sim.batch.BatchHierarchySimulator` stepping all
N configurations per kernel call — on the same compute-heavy synthetic
workload the CI gate uses (``lpm-batch-gate``: 12 KB working set, 8
compute ops per access).  Their ratio is the machine-independent quantity
CI gates via ``python -m repro bench compare --kind batch`` (see
``baseline_batch_perf.json``); this module tracks the same two timings
under pytest-benchmark statistics at reduced scale.
"""

from repro.obs.bench import measure_batch_throughput
from repro.sim import DEFAULT_MACHINE, HierarchySimulator
from repro.sim.batch import BatchHierarchySimulator
from repro.workloads.generators import working_set_addresses
from repro.workloads.trace import Trace

N_ACCESSES = 4_000
N_CONFIGS = 16


def _gate_trace():
    addrs = working_set_addresses(N_ACCESSES, footprint_bytes=12 * 1024, seed=7)
    return Trace.from_memory_addresses(
        addrs, compute_per_access=8, load_fraction=0.7,
        name="lpm-batch-gate", seed=7,
    )


def _knob_slice():
    return [
        DEFAULT_MACHINE.with_knobs(issue_width=iw, iw_size=w, rob_size=rob,
                                   name=f"c{iw}-{w}-{rob}")
        for iw in (2, 4, 6, 8)
        for w in (32, 64, 96, 128)
        for rob in (48, 96, 128, 192)
    ][:N_CONFIGS]


def test_batch_sweep_throughput(benchmark):
    trace = _gate_trace()
    configs = _knob_slice()

    def run():
        sim = BatchHierarchySimulator(configs, seed=0)
        sim.warm_caches(trace)
        return sim.run(trace)

    results = benchmark(run)
    assert len(results) == N_CONFIGS


def test_scalar_sweep_throughput(benchmark):
    trace = _gate_trace()
    configs = _knob_slice()

    def run():
        out = []
        for config in configs:
            sim = HierarchySimulator(config, seed=0, engine="fast")
            sim.warm_caches(trace)
            out.append(sim.run(trace))
        return out

    results = benchmark(run)
    assert len(results) == N_CONFIGS


def test_batch_record_is_bit_identical():
    record = measure_batch_throughput(n_configs=8, accesses=2_000, rounds=1)
    assert record["identical"]
    assert record["speedup"] > 0
