"""E12 (extension) — timed 16-core co-execution validates the Fig. 8 model.

The Fig. 8 comparison (E6) evaluates schedules with an analytic shared-L2
bandwidth model — the same information NUCA-SA itself uses.  This bench
re-evaluates the same four schedules on the *timed* multicore simulator
(`repro.sim.multicore`): sixteen traces co-executing against one shared
L2 (functional contents, banks, MSHRs) and one shared DRAM.

Asserted facts:

* the policy ordering NUCA-SA(fg) >= NUCA-SA(cg) > {Round Robin, Random}
  survives in the ground-truth timed model;
* timed and analytic Hsp agree in rank across all four schedules.

Absolute Hsp is much lower in the timed model: sixteen co-runners share a
scaled 256 KB LLC, so *capacity* contention — which the analytic model
deliberately omits (DESIGN.md) — dominates.  The ordering surviving that
regime change is the strongest validation the substrate can offer.
"""

from repro.core import render_table
from repro.sched.metrics import harmonic_weighted_speedup
from repro.sched.policies import (
    evaluate_schedule,
    nuca_sa,
    random_schedule,
    round_robin_schedule,
)
from repro.sim.multicore import MulticoreSimulator
from repro.sim.stats import simulate_and_measure
from repro.workloads.spec import SELECTED_16, get_benchmark

KB = 1024
N_ACCESSES = 8_000  # per-core trace length for the timed co-runs


def run_study(machine, db):
    traces = {n: get_benchmark(n).trace(N_ACCESSES, seed=3) for n in SELECTED_16}
    alone = {}
    for name in SELECTED_16:
        _, st = simulate_and_measure(
            machine.config_for_l1(64 * KB), traces[name], seed=0
        )
        alone[name] = st.ipc

    apps = list(SELECTED_16)
    schedules = {
        "Random": random_schedule(apps, machine, seed=0),
        "Round Robin": round_robin_schedule(apps, machine),
        "NUCA-SA (cg)": nuca_sa(apps, machine, db, grain="coarse"),
        "NUCA-SA (fg)": nuca_sa(apps, machine, db, grain="fine"),
    }
    rows = []
    for name, schedule in schedules.items():
        assigned = schedule.assigned_sizes(machine)
        configs = [machine.config_for_l1(size) for _, size in assigned]
        co_traces = [traces[app] for app, _ in assigned]
        sim = MulticoreSimulator(configs, seed=0)
        sim.warm_caches(co_traces)
        result = sim.run(co_traces)
        timed = harmonic_weighted_speedup(
            [alone[app] for app, _ in assigned], result.ipcs()
        )
        analytic = evaluate_schedule(schedule, db, machine).hsp
        rows.append((name, analytic, timed))
    return rows


def test_timed_corun(benchmark, artifact, nuca_machine, nuca_db):
    rows = benchmark.pedantic(
        run_study, args=(nuca_machine, nuca_db), rounds=1, iterations=1
    )
    by_name = {name: (analytic, timed) for name, analytic, timed in rows}

    # Ordering survives in the ground-truth timed model.
    assert by_name["NUCA-SA (fg)"][1] >= by_name["NUCA-SA (cg)"][1] - 1e-9
    assert by_name["NUCA-SA (cg)"][1] > by_name["Round Robin"][1]
    assert by_name["NUCA-SA (cg)"][1] > by_name["Random"][1]
    # Rank agreement between analytic and timed evaluations.
    analytic_rank = sorted(by_name, key=lambda k: by_name[k][0])
    timed_rank = sorted(by_name, key=lambda k: by_name[k][1])
    assert analytic_rank == timed_rank

    text = render_table(
        ["schedule", "analytic Hsp (Fig. 8 model)", "timed Hsp (shared-L2 co-run)"],
        rows, float_fmt="{:.4f}",
        title="E12 — timed 16-core co-execution vs the analytic contention model",
    )
    text += (
        "\n\nThe timed model adds shared-LLC *capacity* contention (sixteen"
        "\nworking sets in a scaled 256 KB LLC), depressing absolute Hsp;"
        "\nthe policy ordering and the analytic/timed rank agreement are the"
        "\nreproduced facts."
    )
    artifact("E12_timed_corun", text)
