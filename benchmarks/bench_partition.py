"""E11 (extension) — memory parallelism partition on the shared L2.

The paper's final named future-work mechanism: partition the memory
system's concurrency among co-runners instead of free-for-all sharing.
This bench evaluates the sixteen-benchmark NUCA mix (under the fine-grained
NUCA-SA placement) with:

* pooled sharing (the Fig. 8 contention model — one queue for all),
* an equal 1/16 bandwidth partition,
* the LPM-guided square-root partition (demand + exposure measured per
  application).

Asserted facts: the LPM-guided partition dominates the equal partition,
and its Hsp comes within a few percent of (or exceeds) pooled sharing —
i.e. LPM's measurements recover the pooling efficiency that naive
partitioning throws away, while adding isolation.
"""

from repro.core import render_table
from repro.sched.metrics import harmonic_weighted_speedup
from repro.sched.partition import (
    co_run_partitioned,
    equal_shares,
    lpm_guided_shares,
)
from repro.sched.policies import evaluate_schedule, nuca_sa
from repro.workloads.spec import SELECTED_16


def run_partition_study(machine, db):
    apps = list(SELECTED_16)
    schedule = nuca_sa(apps, machine, db, grain="fine")
    assigned = schedule.assigned_sizes(machine)
    alone = [db.ipc(b, s) for b, s in assigned]

    pooled_ev = evaluate_schedule(schedule, db, machine)
    pooled = pooled_ev.hsp

    equal = harmonic_weighted_speedup(alone, [
        o.ipc_shared
        for o in co_run_partitioned(assigned, db, machine,
                                    shares=equal_shares(len(assigned)))
    ])
    guided = harmonic_weighted_speedup(alone, [
        o.ipc_shared for o in co_run_partitioned(assigned, db, machine)
    ])
    shares = lpm_guided_shares(assigned, db, machine)
    spread = max(shares) / min(shares)
    return {"pooled": pooled, "equal": equal, "lpm": guided, "share_spread": spread}


def test_partition(benchmark, artifact, nuca_machine, nuca_db):
    r = benchmark.pedantic(
        run_partition_study, args=(nuca_machine, nuca_db), rounds=1, iterations=1
    )

    assert r["lpm"] >= r["equal"] - 1e-9
    # LPM-guided partitioning recovers (nearly) the pooled efficiency.
    assert r["lpm"] > 0.95 * r["pooled"]
    # The guided allocation is genuinely non-uniform.
    assert r["share_spread"] > 1.5

    rows = [
        ("pooled sharing (Fig. 8 model)", r["pooled"]),
        ("equal 1/16 partition", r["equal"]),
        ("LPM-guided partition", r["lpm"]),
    ]
    text = render_table(
        ["L2 bandwidth management", "Hsp"], rows, float_fmt="{:.4f}",
        title="E11 — memory parallelism partition (16 benchmarks, NUCA-SA fg placement)",
    )
    text += (
        f"\n\nLPM-guided share spread (max/min): {r['share_spread']:.1f}x"
        "\nThe square-root rule needs exactly what the C-AMAT analyzer"
        "\nmeasures per application — L2 demand and unoverlapped exposure —"
        "\nrealizing the paper's 'memory parallelism partition' future work."
    )
    artifact("E11_partition", text)
