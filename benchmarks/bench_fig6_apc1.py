"""E4 — Fig. 6: APC1 of applications on cores with different L1 data sizes.

Regenerates the per-benchmark APC1 series over private L1 sizes of
4/16/32/64 KB on the Fig. 5 machine.  Asserted facts from the paper's
Section V-B discussion:

* "the optimal private data cache sizes are not all the same": 4 KB is
  large enough for 401.bzip2, while 403.gcc keeps gaining up to 64 KB;
* 433.milc gets little APC1 improvement from larger L1 (streaming);
* 416.gamess improves noticeably with L1 size.
"""

from repro.analysis import apc_sweep_text
from repro.workloads.spec import SELECTED_16

KB = 1024
SIZES_KB = (4, 16, 32, 64)


def collect_apc1(db):
    return {
        (name, kb): db.apc1(name, kb * KB)
        for name in SELECTED_16
        for kb in SIZES_KB
    }


def test_fig6_apc1(benchmark, artifact, nuca_db):
    values = benchmark.pedantic(collect_apc1, args=(nuca_db,), rounds=1, iterations=1)

    def series(name):
        return [values[(name, kb)] for kb in SIZES_KB]

    bzip2, gcc = series("401.bzip2"), series("403.gcc")
    milc, gamess = series("433.milc"), series("416.gamess")

    # bzip2: 4 KB suffices — growing the cache adds almost nothing.
    assert max(bzip2) / bzip2[0] < 1.10
    # gcc: monotone gains through 64 KB, with a real spread.
    assert gcc == sorted(gcc)
    assert gcc[-1] / gcc[0] > 1.10
    # milc: insensitive to L1 size.
    assert max(milc) / min(milc) < 1.10
    # gamess: noticeable improvement.
    assert gamess[-1] > gamess[0]

    text = apc_sweep_text("Fig. 6 — APC1 vs private L1 data cache size",
                          list(SELECTED_16), list(SIZES_KB), values)
    text += (
        "\n\npaper facts reproduced: bzip2 flat from 4 KB; gcc gains up to"
        "\n64 KB; milc insensitive (streaming); gamess improves noticeably."
    )
    artifact("E4_fig6_apc1", text)
