"""E1 — Fig. 1: the worked C-AMAT example of Section II.

Regenerates the paper's five-access demonstration through both analyzer
implementations and checks every number the paper states: AMAT = 3.8,
C-AMAT = 1.6, C_H = 5/2, C_M = 1, pMR = 1/5, pAMP = 2.
"""

import pytest

from repro.core import CAMATAnalyzer, format_layer_measurement, measure_layer

HIT_START = [1, 1, 3, 3, 4]
HIT_END = [4, 4, 6, 6, 7]
MISS_START = [0, 0, 6, 6, 0]
MISS_END = [0, 0, 9, 7, 0]


def run_fig1():
    vectorized = measure_layer(HIT_START, HIT_END, MISS_START, MISS_END)
    streaming = CAMATAnalyzer()
    for access in zip(HIT_START, HIT_END, MISS_START, MISS_END):
        streaming.add_access(*access)
    return vectorized, streaming.run()


def test_fig1_camat_demo(benchmark, artifact):
    vectorized, streamed = benchmark.pedantic(run_fig1, rounds=1, iterations=1)

    assert vectorized.amat == pytest.approx(3.8)
    assert vectorized.camat == pytest.approx(1.6)
    assert vectorized.hit_concurrency == pytest.approx(2.5)
    assert vectorized.pure_miss_concurrency == pytest.approx(1.0)
    assert vectorized.pure_miss_rate == pytest.approx(0.2)
    assert vectorized.pure_miss_penalty == pytest.approx(2.0)
    assert streamed.camat == pytest.approx(vectorized.camat)

    text = format_layer_measurement("Fig. 1 (5 accesses, 2 misses, 1 pure miss)",
                                    vectorized)
    text += (
        "\n\npaper:    AMAT = 3 + 0.4 x 2 = 3.8 cycles/access"
        "\nmeasured: AMAT = {:.2f}"
        "\npaper:    C-AMAT = 3/(5/2) + (1/5) x (2/1) = 1.6 cycles/access"
        "\nmeasured: C-AMAT = {:.2f}  (= {} active cycles / {} accesses)"
    ).format(vectorized.amat, vectorized.camat,
             vectorized.active_cycles, vectorized.accesses)
    artifact("E1_fig1_camat_demo", text)
