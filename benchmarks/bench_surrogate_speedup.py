"""Tier-0 surrogate speedup benchmark (true timing benchmark, not an experiment).

Times the same design-space sweep at two fidelities — every point
simulated by the engine versus surrogate-ranked with only the top-K /
margin frontier escalated (:func:`repro.analysis.sweep.sweep_configs`) —
plus the pure tier-0 ranking throughput (configs/sec through
:func:`repro.analysis.surrogate.predict_many`).  The wall-clock ratio
and the frontier-agreement rate are the quantities CI gates via
``python -m repro bench compare --kind surrogate`` (see
``baseline_surrogate_perf.json``); this module tracks the same timings
under pytest-benchmark statistics at reduced scale.
"""

from repro.analysis.surrogate import predict_many, select_frontier
from repro.analysis.sweep import sweep_configs
from repro.sim import DEFAULT_MACHINE
from repro.workloads.generators import working_set_addresses
from repro.workloads.locality import profile_trace
from repro.workloads.trace import Trace

N_ACCESSES = 4_000
N_CONFIGS = 16
TOP_K = 8
MARGIN = 0.05


def _gate_trace():
    addrs = working_set_addresses(N_ACCESSES, footprint_bytes=12 * 1024, seed=7)
    return Trace.from_memory_addresses(
        addrs, compute_per_access=8, load_fraction=0.7,
        name="lpm-batch-gate", seed=7,
    )


def _knob_slice():
    return [
        DEFAULT_MACHINE.with_knobs(issue_width=iw, iw_size=w, rob_size=rob,
                                   name=f"c{iw}-{w}-{rob}")
        for iw in (2, 4, 6, 8)
        for w in (32, 64, 96, 128)
        for rob in (48, 96, 128, 192)
    ][:N_CONFIGS]


def test_engine_sweep_throughput(benchmark):
    trace = _gate_trace()
    configs = _knob_slice()

    result = benchmark(
        lambda: sweep_configs(configs, trace, seed=0, fidelity="engine")
    )
    assert len(result) == N_CONFIGS
    assert result.n_predicted == 0


def test_multi_fidelity_sweep_throughput(benchmark):
    trace = _gate_trace()
    configs = _knob_slice()

    result = benchmark(
        lambda: sweep_configs(configs, trace, seed=0, fidelity="multi",
                              top_k=TOP_K, margin=MARGIN)
    )
    assert len(result) == N_CONFIGS
    # The frontier attains the engine-only optimum on the gate workload.
    full = sweep_configs(configs, trace, seed=0, fidelity="engine")
    engine_best = min(s.cpi for s in full.stats)
    escalated = [
        s for s, src in zip(result.stats, result.sources) if src != "predicted"
    ]
    assert min(s.cpi for s in escalated) == engine_best


def test_surrogate_ranking_throughput(benchmark):
    trace = _gate_trace()
    configs = _knob_slice()
    profile = profile_trace(trace, line_bytes=configs[0].l1.line_bytes)

    def rank():
        predictions = predict_many(profile, configs)
        return select_frontier(predictions, top_k=TOP_K, margin=MARGIN)

    frontier = benchmark(rank)
    assert 0 < len(frontier) <= N_CONFIGS
