"""Shared fixtures for the experiment-regeneration benchmarks.

Each ``bench_*`` module regenerates one table or figure of the paper (see
DESIGN.md's experiment index).  Heavy inputs — the bwaves trace and the
16-benchmark NUCA profile database — are built once per session here.
Every bench writes its text artifact to ``benchmarks/output/<id>.txt`` so
EXPERIMENTS.md can quote regenerated output verbatim.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.sched import NUCAMachine, profile_benchmarks
from repro.workloads.spec import SELECTED_16, get_benchmark

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

#: Trace length for single-machine experiments; long enough that streaming
#: footprints spill the 64 KB L1 and the 256 KB LLC.
TABLE1_ACCESSES = 60_000
#: Per-(benchmark, L1 size) standalone profiling length for Case Study II.
PROFILE_ACCESSES = 20_000
SEED = 7
NUCA_SEED = 3


def _save_artifact(name: str, text: str) -> None:
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n[saved to benchmarks/output/{name}.txt]")


@pytest.fixture
def artifact():
    """Callable writing one experiment's regenerated text artifact."""
    return _save_artifact


@pytest.fixture(scope="session")
def bwaves_trace():
    """The 410.bwaves-like trace used by Table I and the algorithm walk."""
    return get_benchmark("410.bwaves").trace(TABLE1_ACCESSES, seed=SEED)


@pytest.fixture(scope="session")
def nuca_machine():
    """The Fig. 5 heterogeneous-L1 16-core machine."""
    return NUCAMachine()


@pytest.fixture(scope="session")
def nuca_db(nuca_machine):
    """Standalone profiles of the 16 benchmarks on all four L1 sizes."""
    profiles = [get_benchmark(name) for name in SELECTED_16]
    return profile_benchmarks(
        nuca_machine, profiles, n_mem=PROFILE_ACCESSES, seed=NUCA_SEED
    )
