"""R1 — overhead of the fault-tolerant evaluation runtime.

The supervised runtime (docs/ROBUSTNESS.md) must be cheap enough that
robustness is free to adopt: an inline `EvaluationRuntime` adds only
guard checks on top of a direct `simulate_and_measure` call, journaling
adds one flushed JSONL line per point, and a warm journal replays a
whole batch without simulating at all.  This bench measures each mode on
the same 8-point batch and asserts the contract: identical results in
every mode, small inline overhead, and near-zero resume cost.
"""

import time

from repro.runtime.evaluate import EvaluationRequest, EvaluationRuntime
from repro.runtime.pool import PoolConfig
from repro.sim.params import table1_config
from repro.sim.stats import simulate_and_measure
from repro.workloads.spec import get_benchmark

BENCH_ACCESSES = 4_000
SEED = 7
#: Two seeds per Table I label: 8 distinct evaluation points.
POINTS = [(label, seed) for label in "ABCD" for seed in (0, 1)]


def _requests(trace):
    return [
        EvaluationRequest(
            key=f"{label}|seed={seed}|{table1_config(label).cache_key()}",
            config=table1_config(label), trace=trace, seed=seed,
        )
        for label, seed in POINTS
    ]


def _timed(fn):
    start = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - start


def run_modes(trace, journal_path):
    timings, results = {}, {}

    def direct():
        return {
            req.key: simulate_and_measure(req.config, trace, seed=req.seed)[1]
            for req in _requests(trace)
        }

    results["direct"], timings["direct"] = _timed(direct)
    results["inline"], timings["inline"] = _timed(
        lambda: EvaluationRuntime().evaluate_many(_requests(trace))
    )
    journaled_rt = EvaluationRuntime(journal=journal_path)
    results["journaled"], timings["journaled"] = _timed(
        lambda: journaled_rt.evaluate_many(_requests(trace))
    )
    resumed_rt = EvaluationRuntime(journal=journal_path)
    results["resumed"], timings["resumed"] = _timed(
        lambda: resumed_rt.evaluate_many(_requests(trace))
    )
    pooled_rt = EvaluationRuntime(pool=PoolConfig(max_workers=2, timeout_s=300))
    results["pooled"], timings["pooled"] = _timed(
        lambda: pooled_rt.evaluate_many(_requests(trace))
    )
    return results, timings, resumed_rt


def test_runtime_resilience_overhead(benchmark, artifact, tmp_path):
    trace = get_benchmark("410.bwaves").trace(BENCH_ACCESSES, seed=SEED)
    (results, timings, resumed_rt) = benchmark.pedantic(
        run_modes, args=(trace, tmp_path / "bench.jsonl"), rounds=1, iterations=1
    )[0:3]

    # The contract: every mode returns bit-identical measurements.
    for mode in ("inline", "journaled", "resumed", "pooled"):
        assert results[mode] == results["direct"], mode

    # Inline supervision (guards + bookkeeping) costs a few percent, not a
    # multiple; the bound is generous so CI noise cannot trip it.
    assert timings["inline"] < timings["direct"] * 1.5
    # A warm journal replays without simulating — an order cheaper.
    assert resumed_rt.counters.simulations == 0
    assert timings["resumed"] < timings["direct"] * 0.5

    lines = [f"{len(POINTS)}-point batch, {BENCH_ACCESSES} accesses each "
             f"(410.bwaves, seed {SEED})", ""]
    lines += [f"{mode:>10}: {timings[mode] * 1e3:8.1f} ms "
              f"({timings[mode] / timings['direct']:5.2f}x direct)"
              for mode in ("direct", "inline", "journaled", "resumed", "pooled")]
    lines += ["", "all modes bit-identical to direct simulate_and_measure; "
              "resumed run performed 0 simulations"]
    artifact("R1_runtime_resilience", "\n".join(lines))
