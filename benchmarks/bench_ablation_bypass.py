"""A4 — ablation: selective cache replacement (the paper's future work).

"We also plan to explore various methods to implement LPM, including ...
selective cache replacement" (Section VII).  The stream-bypass policy
implements the mechanism: fills belonging to confirmed streams skip L1
allocation so streaming traffic stops evicting the reusable working set.

The ablation sweeps the working-set share of a mixed (hot set + stream)
workload on a small L1 and checks:

* bypass lowers the conventional miss rate whenever a hot set exists
  (the stream stops thrashing it);
* hit concurrency/C-AMAT improve accordingly and the LPM measurement
  (LPMR1) reflects the gain;
* on a pure stream there is nothing to protect, and bypass is neutral.
"""

from repro.core import render_table
from repro.sim.params import DEFAULT_MACHINE
from repro.sim.prefetch import BypassConfig
from repro.sim.stats import simulate_and_measure
from repro.workloads.generators import KernelSpec
from repro.workloads.spec import BenchmarkProfile

KB = 1024
MB = 1024 * 1024
N_ACCESSES = 20_000


def _trace(ws_weight: float):
    profile = BenchmarkProfile(
        name=f"bypass-mix-{ws_weight}",
        kernels=(
            KernelSpec("working_set", ws_weight, 3 * KB),
            KernelSpec("strided", 1.0 - ws_weight, 2 * MB, stride_bytes=64),
        ),
        compute_per_access=2.0,
    )
    return profile.trace(N_ACCESSES, seed=5)


def run_ablation():
    base = DEFAULT_MACHINE.with_knobs(
        l1_size_bytes=4 * KB, mshr_count=8, iw_size=64, rob_size=64
    )
    with_bypass = base.with_(l1_bypass=BypassConfig())
    rows = []
    for ws_weight in (0.8, 0.6, 0.4, 0.0):
        trace = _trace(ws_weight)
        _, off = simulate_and_measure(base, trace, seed=0)
        res_on, on = simulate_and_measure(with_bypass, trace, seed=0)
        rows.append((
            f"{int(100 * ws_weight)}% hot set",
            off.mr1_conventional, on.mr1_conventional,
            off.l1.camat, on.l1.camat,
            off.lpmr1, on.lpmr1,
            res_on.component_stats["l1_bypass_rate"],
        ))
    return rows


def test_ablation_bypass(benchmark, artifact):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    for label, mr_off, mr_on, camat_off, camat_on, lpmr_off, lpmr_on, rate in rows:
        if label.startswith("0%"):
            # Pure stream: nothing to protect; neutral within noise.
            assert abs(camat_on - camat_off) / camat_off < 0.05
        else:
            assert mr_on < mr_off
            assert camat_on <= camat_off * 1.02
        assert 0.0 <= rate <= 1.0
    # The more hot set there is to protect, the bigger the MR reduction.
    reductions = [off - on for _, off, on, *_ in rows[:3]]
    assert reductions[0] > 0 and reductions[1] > 0

    text = render_table(
        ["workload", "MR1 off", "MR1 on", "C-AMAT1 off", "C-AMAT1 on",
         "LPMR1 off", "LPMR1 on", "bypass rate"],
        rows, float_fmt="{:.3f}",
        title="A4 — selective replacement (stream bypass) on a 4 KB L1",
    )
    text += (
        "\n\nStream fills stop evicting the reusable working set; the LPM"
        "\nmeasurement attributes the gain to the locality side (lower MR1)"
        "\nwith no concurrency cost — a pool technique LPM can deploy when"
        "\nCase I/II diagnoses a locality-bound mismatch."
    )
    artifact("A4_ablation_bypass", text)
