"""Sweep helpers, the tier-0 surrogate, and experiment table rendering."""

from repro.analysis.export import (
    rows_to_csv,
    stats_fieldnames,
    stats_row,
    sweep_to_csv,
    write_sweep_csv,
)
from repro.analysis.surrogate import (
    SurrogatePrediction,
    format_validation_report,
    predict,
    predict_many,
    select_frontier,
    validate_benchmarks,
    validate_trace,
)
from repro.analysis.sweep import SweepResult, sweep_configs, sweep_l1_sizes
from repro.analysis.tables import apc_sweep_text, hsp_text, stall_walk_text, table1_text

__all__ = [
    "SurrogatePrediction",
    "SweepResult",
    "format_validation_report",
    "predict",
    "predict_many",
    "select_frontier",
    "validate_benchmarks",
    "validate_trace",
    "apc_sweep_text",
    "hsp_text",
    "rows_to_csv",
    "stats_fieldnames",
    "stats_row",
    "stall_walk_text",
    "sweep_configs",
    "sweep_l1_sizes",
    "sweep_to_csv",
    "write_sweep_csv",
    "table1_text",
]
