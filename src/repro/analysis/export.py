"""CSV export for measurements and sweeps.

Downstream analysis (spreadsheets, plotting environments the library does
not depend on) consumes flat CSV; these helpers flatten the measurement
objects without losing the per-layer C-AMAT decomposition.
"""

from __future__ import annotations

import csv
import io
from collections.abc import Sequence

from repro.analysis.sweep import SweepResult
from repro.sim.stats import HierarchyStats

__all__ = ["stats_row", "stats_fieldnames", "sweep_to_csv", "write_sweep_csv", "rows_to_csv"]

_LAYER_FIELDS = (
    "accesses", "hit_time", "hit_concurrency", "miss_rate", "avg_miss_penalty",
    "miss_concurrency", "pure_miss_rate", "pure_miss_penalty",
    "pure_miss_concurrency", "apc", "camat", "amat",
)
_TOP_FIELDS = (
    "cpi", "cpi_exe", "f_mem", "overlap_ratio_cm", "eta_combined",
    "lpmr1", "lpmr2", "lpmr3",
    "mr1_conventional", "mr1_request", "mr2_conventional", "mr2_request",
    "stall_per_instruction", "stall_fraction_of_compute", "ipc",
)


def stats_fieldnames() -> list[str]:
    """Column names produced by :func:`stats_row` (label first)."""
    names = ["label", *_TOP_FIELDS]
    for layer in ("l1", "l2", "mem"):
        names.extend(f"{layer}_{f}" for f in _LAYER_FIELDS)
    return names


def stats_row(label: str, stats: HierarchyStats) -> dict[str, object]:
    """Flatten one measurement into a CSV row dict."""
    row: dict[str, object] = {"label": label}
    for f in _TOP_FIELDS:
        row[f] = getattr(stats, f)
    for layer_name in ("l1", "l2", "mem"):
        layer = getattr(stats, layer_name)
        for f in _LAYER_FIELDS:
            row[f"{layer_name}_{f}"] = getattr(layer, f)
    return row


def sweep_to_csv(sweep: SweepResult) -> str:
    """Render a sweep as CSV text (header + one row per point)."""
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=stats_fieldnames())
    writer.writeheader()
    for label, stats in zip(sweep.labels, sweep.stats):
        writer.writerow(stats_row(label, stats))
    return buf.getvalue()


def write_sweep_csv(sweep: SweepResult, path: str) -> None:
    """Write a sweep to *path* as CSV."""
    with open(path, "w", newline="") as fh:
        fh.write(sweep_to_csv(sweep))


def rows_to_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Generic CSV rendering for ad-hoc tables (benches, examples)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow(list(row))
    return buf.getvalue()
