"""Parameter-sweep helpers shared by the benchmark harness and examples."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.sim.params import MachineConfig
from repro.sim.stats import (
    HierarchyStats,
    simulate_and_measure,
    simulate_and_measure_batch,
)
from repro.workloads.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.evaluate import EvaluationRuntime

__all__ = ["SweepResult", "sweep_configs", "sweep_l1_sizes"]


@dataclass
class SweepResult:
    """Labelled measurement series from a one-dimensional sweep."""

    labels: list[str] = field(default_factory=list)
    stats: list[HierarchyStats] = field(default_factory=list)

    def add(self, label: str, stats: HierarchyStats) -> None:
        """Append one sweep point."""
        self.labels.append(label)
        self.stats.append(stats)

    def series(self, attribute: str) -> list[float]:
        """Extract one quantity across the sweep (e.g. ``"lpmr1"``)."""
        return [float(getattr(s, attribute)) for s in self.stats]

    def layer_series(self, layer: str, attribute: str) -> list[float]:
        """Extract a per-layer quantity (e.g. ``("l1", "pure_miss_rate")``)."""
        return [float(getattr(getattr(s, layer), attribute)) for s in self.stats]

    def __len__(self) -> int:
        return len(self.labels)


def sweep_configs(
    configs: "list[MachineConfig]",
    trace: Trace,
    *,
    seed: int = 0,
    warm: bool = True,
    runtime: "EvaluationRuntime | None" = None,
    engine: str = "auto",
) -> SweepResult:
    """Measure one trace across several machine configurations.

    With a *runtime*, the sweep points are evaluated through the supervised
    pool; under ``engine="auto"``/``"batch"`` its pending configs dispatch
    as **one** batch kernel job per trace (:meth:`EvaluationRuntime.
    evaluate_batch`) instead of N scalar jobs.  Without a runtime,
    ``"auto"`` steps every batch-eligible config per kernel call and falls
    back to scalar for the rest; ``"batch"`` raises
    :class:`~repro.runtime.errors.ConfigError` on any ineligible config;
    ``"scalar"`` forces the per-config path.  All engines are bit-identical.
    """
    if engine not in ("auto", "batch", "scalar"):
        raise ValueError(
            f"engine must be 'auto', 'batch' or 'scalar', got {engine!r}"
        )
    result = SweepResult()
    if runtime is not None:
        from repro.runtime.evaluate import EvaluationRequest

        keys = [
            f"{trace.name}|seed={seed}|warm={warm}|{config.cache_key()}"
            for config in configs
        ]
        requests = [
            EvaluationRequest(key=key, config=config, trace=trace,
                              seed=seed, warm=warm)
            for key, config in zip(keys, configs)
        ]
        if engine == "scalar" or (
            engine == "auto"
            and (runtime.faults is not None or runtime.job_fn is not None)
        ):
            # The chaos layer is scalar-only; "auto" degrades gracefully,
            # explicit "batch" lets evaluate_batch() refuse loudly.
            measured = runtime.evaluate_many(requests)
        else:
            measured = runtime.evaluate_batch(requests)
        for key, config in zip(keys, configs):
            result.add(config.name, measured[key])
        return result
    if engine == "scalar":
        for config in configs:
            _, stats = simulate_and_measure(config, trace, seed=seed, warm=warm)
            result.add(config.name, stats)
        return result
    pairs = simulate_and_measure_batch(
        configs, trace, seed=seed, warm=warm,
        require_eligible=engine == "batch",
    )
    for config, (_, stats) in zip(configs, pairs):
        result.add(config.name, stats)
    return result


def sweep_l1_sizes(
    base: MachineConfig,
    trace: Trace,
    l1_sizes: "list[int]",
    *,
    seed: int = 0,
    warm: bool = True,
    runtime: "EvaluationRuntime | None" = None,
    engine: str = "auto",
) -> SweepResult:
    """Measure one trace across private L1 sizes (the Fig. 6/7 sweep)."""
    configs = [
        base.with_knobs(l1_size_bytes=size, name=f"L1-{size // 1024}KB")
        for size in l1_sizes
    ]
    return sweep_configs(configs, trace, seed=seed, warm=warm,
                         runtime=runtime, engine=engine)
