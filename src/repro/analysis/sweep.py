"""Parameter-sweep helpers shared by the benchmark harness and examples.

Sweeps run at one of three fidelities:

* ``"engine"`` — every configuration is simulated (scalar or batch
  kernel, optionally through the supervised runtime).  The default, and
  the only mode that existed before the tier-0 surrogate.
* ``"surrogate"`` — every configuration is *predicted* by
  :mod:`repro.analysis.surrogate`; no simulation at all.  Rows are
  :class:`~repro.analysis.surrogate.SurrogatePrediction` objects, which
  duck-type the ranking-facing quantities of
  :class:`~repro.sim.stats.HierarchyStats` (``cpi``/``ipc``/``lpmr1``/
  ``apc1``/``mr1_conventional``/...), not its per-layer internals.
* ``"multi"`` — the full space is ranked by the surrogate and only the
  top-K / error-margin frontier (:func:`~repro.analysis.surrogate.
  select_frontier`) is escalated to the engine; pruned rows keep their
  predictions.  ``SweepResult.sources`` records per-row provenance and
  the ``surrogate.predict`` / ``surrogate.escalated`` /
  ``surrogate.pruned`` counters and spans make every pruning decision
  reconstructable from the obs trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.sim.params import MachineConfig
from repro.sim.stats import (
    HierarchyStats,
    simulate_and_measure,
    simulate_and_measure_batch,
)
from repro.workloads.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.surrogate import SurrogatePrediction
    from repro.runtime.evaluate import EvaluationRuntime
    from repro.workloads.locality import LocalityProfile

__all__ = ["SweepResult", "sweep_configs", "sweep_l1_sizes"]

FIDELITIES = ("engine", "surrogate", "multi")


@dataclass
class SweepResult:
    """Labelled measurement series from a one-dimensional sweep.

    ``stats`` rows are :class:`HierarchyStats` for engine-measured points
    and :class:`~repro.analysis.surrogate.SurrogatePrediction` for tier-0
    points; ``sources`` tags each row ``"simulated"``, ``"cached"`` or
    ``"predicted"`` so summaries never conflate a prediction with a real
    engine run.
    """

    labels: list[str] = field(default_factory=list)
    stats: "list[HierarchyStats | SurrogatePrediction]" = field(default_factory=list)
    sources: list[str] = field(default_factory=list)

    def add(
        self,
        label: str,
        stats: "HierarchyStats | SurrogatePrediction",
        source: str = "simulated",
    ) -> None:
        """Append one sweep point with its provenance."""
        self.labels.append(label)
        self.stats.append(stats)
        self.sources.append(source)

    def series(self, attribute: str) -> list[float]:
        """Extract one quantity across the sweep (e.g. ``"lpmr1"``)."""
        return [float(getattr(s, attribute)) for s in self.stats]

    def layer_series(self, layer: str, attribute: str) -> list[float]:
        """Extract a per-layer quantity (e.g. ``("l1", "pure_miss_rate")``).

        Only engine rows carry per-layer measurements; a surrogate row
        raises ``AttributeError`` here.
        """
        return [float(getattr(getattr(s, layer), attribute)) for s in self.stats]

    @property
    def n_simulated(self) -> int:
        """Rows produced by a fresh engine run."""
        return sum(1 for s in self.sources if s == "simulated")

    @property
    def n_cached(self) -> int:
        """Rows recalled from a journal or the evaluation cache."""
        return sum(1 for s in self.sources if s == "cached")

    @property
    def n_predicted(self) -> int:
        """Rows carrying a tier-0 prediction instead of a measurement."""
        return sum(1 for s in self.sources if s == "predicted")

    def __len__(self) -> int:
        return len(self.labels)


def _measure_engine(
    configs: "list[MachineConfig]",
    trace: Trace,
    *,
    seed: int,
    warm: bool,
    runtime: "EvaluationRuntime | None",
    engine: str,
) -> "list[tuple[HierarchyStats, str]]":
    """Engine-fidelity measurement of *configs*, with per-row provenance."""
    if runtime is not None:
        from repro.runtime.evaluate import EvaluationRequest

        keys = [
            f"{trace.name}|seed={seed}|warm={warm}|{config.cache_key()}"
            for config in configs
        ]
        requests = [
            EvaluationRequest(key=key, config=config, trace=trace,
                              seed=seed, warm=warm)
            for key, config in zip(keys, configs)
        ]
        if engine == "scalar" or (
            engine == "auto"
            and (runtime.faults is not None or runtime.job_fn is not None)
        ):
            # The chaos layer is scalar-only; "auto" degrades gracefully,
            # explicit "batch" lets evaluate_batch() refuse loudly.
            measured = runtime.evaluate_many(requests)
        else:
            measured = runtime.evaluate_batch(requests)
        sources = runtime.last_sources
        return [
            (measured[key], sources.get(key, "simulated")) for key in keys
        ]
    if engine == "scalar":
        out = []
        for config in configs:
            _, stats = simulate_and_measure(config, trace, seed=seed, warm=warm)
            out.append((stats, "simulated"))
        return out
    pairs = simulate_and_measure_batch(
        configs, trace, seed=seed, warm=warm,
        require_eligible=engine == "batch",
    )
    return [(stats, "simulated") for _, stats in pairs]


def sweep_configs(
    configs: "list[MachineConfig]",
    trace: Trace,
    *,
    seed: int = 0,
    warm: bool = True,
    runtime: "EvaluationRuntime | None" = None,
    engine: str = "auto",
    fidelity: str = "engine",
    top_k: int = 8,
    margin: float = 0.05,
    profile: "LocalityProfile | None" = None,
) -> SweepResult:
    """Measure one trace across several machine configurations.

    With a *runtime*, engine-fidelity points are evaluated through the
    supervised pool; under ``engine="auto"``/``"batch"`` its pending
    configs dispatch as **one** batch kernel job per trace
    (:meth:`EvaluationRuntime.evaluate_batch`) instead of N scalar jobs.
    Without a runtime, ``"auto"`` steps every batch-eligible config per
    kernel call and falls back to scalar for the rest; ``"batch"`` raises
    :class:`~repro.runtime.errors.ConfigError` on any ineligible config;
    ``"scalar"`` forces the per-config path.  All engines are
    bit-identical.

    *fidelity* selects what "measure" means (see the module docstring);
    *top_k*/*margin* shape the ``"multi"`` escalation frontier and
    *profile* supplies a precomputed locality profile (e.g. from
    :func:`repro.runtime.cached_locality_profile`) so the one-pass
    profiling cost is not repaid per sweep.
    """
    if engine not in ("auto", "batch", "scalar"):
        raise ValueError(
            f"engine must be 'auto', 'batch' or 'scalar', got {engine!r}"
        )
    if fidelity not in FIDELITIES:
        raise ValueError(
            f"fidelity must be one of {FIDELITIES}, got {fidelity!r}"
        )
    result = SweepResult()
    if fidelity == "engine":
        for config, (stats, source) in zip(
            configs,
            _measure_engine(configs, trace, seed=seed, warm=warm,
                            runtime=runtime, engine=engine),
        ):
            result.add(config.name, stats, source)
        return result

    from repro.analysis.surrogate import predict_many, select_frontier
    from repro.workloads.locality import profile_trace

    if not configs:
        return result
    if profile is None:
        profile = profile_trace(
            trace, line_bytes=configs[0].l1.line_bytes, warm=warm
        )
    if obs_trace.tracing_enabled():
        with obs_trace.span("surrogate.predict", n_configs=len(configs),
                            trace=trace.name, fidelity=fidelity):
            predictions = predict_many(profile, configs)
    else:
        predictions = predict_many(profile, configs)
    if obs_metrics.metrics_enabled():
        obs_metrics.get_registry().counter("surrogate.predict").inc(len(configs))

    if fidelity == "surrogate":
        for config, prediction in zip(configs, predictions):
            result.add(config.name, prediction, "predicted")
        return result

    frontier = set(select_frontier(predictions, top_k=top_k, margin=margin))
    escalated = [i for i in range(len(configs)) if i in frontier]
    if obs_metrics.metrics_enabled():
        registry = obs_metrics.get_registry()
        registry.counter("surrogate.escalated").inc(len(escalated))
        registry.counter("surrogate.pruned").inc(len(configs) - len(escalated))
    if obs_trace.tracing_enabled():
        obs_trace.event(
            "surrogate.escalate", trace=trace.name,
            escalated=len(escalated), pruned=len(configs) - len(escalated),
            top_k=top_k, margin=margin,
        )
    measured = _measure_engine(
        [configs[i] for i in escalated], trace,
        seed=seed, warm=warm, runtime=runtime, engine=engine,
    )
    by_index = dict(zip(escalated, measured))
    for i, (config, prediction) in enumerate(zip(configs, predictions)):
        if i in by_index:
            stats, source = by_index[i]
            result.add(config.name, stats, source)
        else:
            result.add(config.name, prediction, "predicted")
    return result


def sweep_l1_sizes(
    base: MachineConfig,
    trace: Trace,
    l1_sizes: "list[int]",
    *,
    seed: int = 0,
    warm: bool = True,
    runtime: "EvaluationRuntime | None" = None,
    engine: str = "auto",
    fidelity: str = "engine",
    top_k: int = 8,
    margin: float = 0.05,
) -> SweepResult:
    """Measure one trace across private L1 sizes (the Fig. 6/7 sweep)."""
    configs = [
        base.with_knobs(l1_size_bytes=size, name=f"L1-{size // 1024}KB")
        for size in l1_sizes
    ]
    return sweep_configs(configs, trace, seed=seed, warm=warm,
                         runtime=runtime, engine=engine, fidelity=fidelity,
                         top_k=top_k, margin=margin)
