"""Tier-0 analytical predictor: locality profile + config -> LPM quantities.

Maps a :class:`~repro.workloads.locality.LocalityProfile` and a
:class:`~repro.sim.params.MachineConfig` to predicted per-level miss
ratios, C-AMAT_i, LPMR_i and CPI **without running the engine** — pure
arithmetic, microseconds per configuration, so the full Case Study I
space can be ranked before a single simulation is spent.

The model (docs/MODEL.md section 10 derives each step):

* **Miss ratios** come from the stack-distance survival function:
  ``MR1 = P(SD >= C1/line)`` (fully-associative LRU approximation of the
  set-associative cache) and, by inclusion at a shared line size,
  ``MR2 = P(SD >= C2/line) / MR1`` — one histogram serves every size.
* **CPI_exe** is a critical-path estimate from the issue width and the
  trace's dependency fractions.
* **Concurrency** terms are Little's-law estimates clamped by the
  hardware resources: ``C_H1`` by the L1 ports, ``C_M1`` by MSHRs and
  the instruction window, ``C_H2`` by the L2 banks, ``C_M3`` by the
  DRAM banks.
* **C-AMAT_i** then follow from Eq. (2), the LPMRs from their defining
  Eqs. (9)-(11) ratios (exactly — the ``lpmr_definitions`` contract is
  satisfied by construction), and CPI from the Eq. (12) stall model.

This is a *surrogate*: systematically biased where the engine's event
interactions dominate (see docs/PERFORMANCE.md for the measured
per-SPEC error).  Multi-fidelity exploration therefore never trusts it
for final numbers — it only ranks, and the frontier is re-measured by
the engine (:func:`select_frontier`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.lpm import LPMRReport
from repro.lint.contracts import satisfies
from repro.runtime.errors import ConfigError
from repro.sim.params import MachineConfig
from repro.util.validation import safe_ratio
from repro.workloads.locality import LocalityProfile

__all__ = ["SurrogatePrediction", "predict", "predict_many", "select_frontier"]

#: Overlap predictions are capped strictly below 1, matching the
#: measurement path's convention (repro.sim.stats).
_MAX_OVERLAP = 1.0 - 1e-9


def _clamp01(x: float) -> float:
    return min(max(x, 0.0), 1.0)


@dataclass(frozen=True)
class SurrogatePrediction:
    """Predicted LPM snapshot of one configuration on one trace.

    Field-compatible with :class:`~repro.core.lpm.LPMRReport` (the duck
    type the contract checkers and the LPM algorithm consume) plus the
    sweep-facing quantities (``cpi``, ``apc1``, ``apc2``...), so a
    prediction can stand in for a :class:`~repro.sim.stats.
    HierarchyStats` row in ranking tables.
    """

    lpmr1: float
    lpmr2: float
    lpmr3: float
    camat1: float
    camat2: float
    camat3: float
    mr1: float
    mr2: float
    f_mem: float
    cpi_exe: float
    cpi: float
    overlap_ratio_cm: float
    eta_combined: float
    hit_time1: float
    hit_concurrency1: float
    config_name: str = ""
    #: Monotone resource richness (log2 of the knob product), used only
    #: to pick a representative inside an exact-tie class — see
    #: :func:`select_frontier`.
    resource_score: float = 0.0
    #: The six exploration knobs as a vector, for knob-wise dominance
    #: tests inside an exact-tie class.  Empty when the prediction was
    #: built by hand (tests); frontier selection then falls back to the
    #: scalar ``resource_score``.
    resources: "tuple[int, ...]" = ()

    @property
    def mr1_conventional(self) -> float:
        """Alias for table parity with HierarchyStats rows."""
        return self.mr1

    @property
    def mr1_request(self) -> float:
        """The surrogate does not model MSHR coalescing separately."""
        return self.mr1

    @property
    def mr2_request(self) -> float:
        """Conditional (inclusion) L2 miss ratio."""
        return self.mr2

    @property
    def apc1(self) -> float:
        """Predicted L1 accesses per memory-active cycle (1 / C-AMAT1)."""
        return safe_ratio(1.0, self.camat1)

    @property
    def apc2(self) -> float:
        """Predicted L2 accesses per L2-active cycle (1 / C-AMAT2)."""
        return safe_ratio(1.0, self.camat2)

    @property
    def ipc(self) -> float:
        """Predicted instructions per cycle."""
        return safe_ratio(1.0, self.cpi)

    @satisfies("lpmr_definitions", "report_bounds", "finite_report")
    def lpmr_report(self) -> LPMRReport:
        """The prediction as an LPMRReport, for the LPM algorithm."""
        return LPMRReport(
            lpmr1=self.lpmr1, lpmr2=self.lpmr2, lpmr3=self.lpmr3,
            camat1=self.camat1, camat2=self.camat2, camat3=self.camat3,
            mr1=self.mr1, mr2=self.mr2, f_mem=self.f_mem,
            cpi_exe=self.cpi_exe, overlap_ratio_cm=self.overlap_ratio_cm,
            eta_combined=self.eta_combined, hit_time1=self.hit_time1,
            hit_concurrency1=self.hit_concurrency1,
        )


@satisfies("lpmr_definitions", "report_bounds", "finite_report")
def predict(profile: LocalityProfile, config: MachineConfig) -> SurrogatePrediction:
    """Tier-0 prediction of *config*'s LPM quantities on the profiled trace."""
    line = profile.line_bytes
    if config.l1.line_bytes != line:
        raise ConfigError(
            f"locality profile is line_bytes={line} but the configuration "
            f"uses {config.l1.line_bytes}-byte lines; re-profile the trace"
        )
    if config.l3 is not None:
        raise ConfigError(
            "the tier-0 surrogate models two-level hierarchies; "
            f"{config.name!r} configures an L3"
        )
    hist = profile.histogram
    f_mem = _clamp01(profile.f_mem)

    # Miss-ratio curve: one survival-function lookup per level.
    mr1 = _clamp01(hist.miss_fraction(config.l1.size_bytes // line))
    p2 = _clamp01(hist.miss_fraction(config.l2.size_bytes // line))
    mr2 = _clamp01(safe_ratio(p2, mr1)) if mr1 > 1e-12 else 0.0

    # CPI_exe: issue-width floor plus the dependency critical path (a
    # dependent load pays the L1 hit time even under a perfect cache).
    h1 = float(config.l1_hit_time)
    w = config.core.issue_width
    alu_latency = 1.0  # the compute dependency term pays one ALU cycle
    dep_path = (
        f_mem * profile.dep_frac_mem * h1
        + (1.0 - f_mem) * profile.dep_frac_compute * alu_latency
    )
    cpi_exe = max(1.0 / w, dep_path, 1e-12)

    # Little's-law concurrency estimates, clamped by hardware resources.
    demand = safe_ratio(f_mem, cpi_exe)  # accesses per cycle at full speed
    h2 = float(config.l2_hit_time)
    mem_latency = float(
        config.l2_to_mem_delay + 2 * config.dram.t_bus
        + config.dram.row_closed_latency + config.dram.t_burst
    )
    amp2 = mem_latency
    # L2 bank contention: pipelined banks, so the penalty is a mild mean
    # queueing wait that shrinks with the bank count — calibrated against
    # the engine's ~0.1-CPI swing over the banks ladder, not a hard M/D/1
    # knee (the engine never saturates its banks on these traces).
    demand2 = demand * mr1
    bank_wait = min(0.5 * h2 * demand2 / float(config.l2_banks), 2.0 * h2)
    amp1 = config.l1_to_l2_delay + h2 + bank_wait + mr2 * amp2
    ports_eff = config.l1_ports * (h1 if config.l1_pipelined else 1.0)
    c_h1 = max(1.0, min(ports_eff, demand * h1))
    mlp_scale = 1.0 - profile.dep_frac_mem  # dependent loads serialize
    # The MLP window: misses in flight are bounded by the MSHR file and
    # by how many *independent misses* the core keeps in flight — the
    # classic ROB-limited MLP bound.  ``iw_size`` bounds in-flight memory
    # requests directly (load/store-queue); the ROB holds instructions of
    # every kind, of which only the f_mem fraction are accesses.
    window = min(float(config.core.iw_size), config.core.rob_size * f_mem)
    window_mlp = 1.0 + window * mr1 * mlp_scale
    mlp_cap = min(float(config.mshr_count), window_mlp)
    c_m1 = max(1.0, min(mlp_cap, 1.0 + demand * mr1 * amp1 * mlp_scale))
    c_h2 = max(1.0, min(float(config.l2_banks), demand2 * h2))
    c_m2 = max(
        1.0,
        min(float(config.l2_mshr_count), 1.0 + demand2 * mr2 * amp2 * mlp_scale),
    )
    demand3 = demand2 * mr2
    c_m3 = max(1.0, min(float(config.dram.n_banks), demand3 * mem_latency))

    # Eq. (2) per layer.
    camat1 = h1 / c_h1 + mr1 * amp1 / c_m1
    camat2 = h2 / c_h2 + mr2 * amp2 / c_m2
    camat3 = mem_latency / c_m3

    # Stall model: cpi_exe already pays the L1 hit time (it is measured
    # under a perfect L1), so only miss latency stalls the core.  A
    # dependent load exposes its full AMP — no MSHR can hide a pointer
    # chase — while independent misses overlap each other, amortizing to
    # AMP/C_M1 apiece.  Monotonically non-decreasing in MR1: more misses
    # never predict a faster machine, even as concurrency saturates.
    stall_per_access = mr1 * amp1 * (
        profile.dep_frac_mem + (1.0 - profile.dep_frac_mem) / c_m1
    )
    # L1 port contention: an unpipelined port is busy h1 cycles per
    # access, so every access additionally waits for the port — the
    # engine's single strongest CPU-side knob on these traces.
    service = 1.0 if config.l1_pipelined else h1
    rho1 = min(demand * service / config.l1_ports, 1.0)
    port_wait = 0.5 * (service / config.l1_ports) * rho1
    cpi = cpi_exe + f_mem * (stall_per_access + port_wait)
    # ... and the matching throughput floor: the core cannot retire
    # faster than the ports can serve its memory accesses.
    cpi = max(cpi, f_mem * service / config.l1_ports)
    # Report overlap via the same Eq. (7) identity the engine measures:
    # 1 - stall cycles / memory-active cycles, so Eq. (12) holds exactly
    # for the predicted (cpi, cpi_exe, camat1, overlap) tuple.
    active_per_instr = f_mem * camat1
    if active_per_instr > 1e-12:
        overlap = 1.0 - (cpi - cpi_exe) / active_per_instr
    else:
        overlap = 0.0
    overlap = min(max(overlap, 0.0), _MAX_OVERLAP)
    eta = _clamp01(safe_ratio(1.0, c_m1))
    return SurrogatePrediction(
        lpmr1=camat1 * demand,
        lpmr2=camat2 * demand * mr1,
        lpmr3=camat3 * demand * mr1 * mr2,
        camat1=camat1, camat2=camat2, camat3=camat3,
        mr1=mr1, mr2=mr2, f_mem=f_mem, cpi_exe=cpi_exe, cpi=cpi,
        overlap_ratio_cm=overlap, eta_combined=eta,
        hit_time1=h1, hit_concurrency1=c_h1,
        config_name=config.name,
        resource_score=math.log2(
            config.core.issue_width * config.core.iw_size * config.core.rob_size
            * config.l1_ports * config.mshr_count * config.l2_banks
        ),
        resources=(
            config.core.issue_width, config.core.iw_size,
            config.core.rob_size, config.l1_ports,
            config.mshr_count, config.l2_banks,
        ),
    )


def predict_many(
    profile: LocalityProfile, configs: "list[MachineConfig]"
) -> "list[SurrogatePrediction]":
    """Rank-ready predictions for a whole candidate slice."""
    return [predict(profile, config) for config in configs]


def select_frontier(
    predictions: "list[SurrogatePrediction]",
    *,
    top_k: int = 8,
    margin: float = 0.05,
    objective: str = "cpi",
) -> "list[int]":
    """Indices of the predictions worth escalating to the engine.

    Predictions with an *identical* objective value form an equivalence
    class the surrogate cannot rank — configurations differing only in
    knobs past their saturation point (ROB beyond the MSHR-limited MLP
    window, issue width beyond the dependency limit, ...).  The engine
    is monotone in each resource, so any class member that is knob-wise
    dominated by another member cannot beat it on the engine; each class
    is therefore represented by its *Pareto-maximal* members.  A
    saturated-knob subgrid (the sweep case) has a single maximum, so the
    whole class costs one simulation; a set of single-knob upgrades (the
    greedy-walk case) is an antichain, so every member escalates —
    dominance never silently drops a direction the engine could still
    tell apart.

    The escalated set is then the union of the *top_k* best classes and
    every class within a fractional *margin* of the best — error-margin
    awareness: a margin above the surrogate's observed ranking error
    buys robustness against between-class mis-ranking at the cost of
    extra simulations.  Indices come back in input order.
    """
    if top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")
    if margin < 0.0:
        raise ValueError(f"margin must be >= 0, got {margin}")
    if not predictions:
        return []
    values = [float(getattr(p, objective)) for p in predictions]
    classes: "dict[float, list[int]]" = {}
    for i, value in enumerate(values):
        classes.setdefault(value, []).append(i)
    reps: "dict[float, list[int]]" = {
        value: _pareto_maximal(predictions, members)
        for value, members in classes.items()
    }
    ranked = sorted(reps)
    chosen: "set[int]" = set()
    for v in ranked[:top_k]:
        chosen.update(reps[v])
    cutoff = ranked[0] * (1.0 + margin)
    for v in ranked:
        if v <= cutoff:
            chosen.update(reps[v])
    return sorted(chosen)


def _pareto_maximal(
    predictions: "list[SurrogatePrediction]", members: "list[int]"
) -> "list[int]":
    """Members of one tie class not knob-wise dominated by another member."""
    if len(members) == 1:
        return list(members)
    if any(not predictions[i].resources for i in members):
        # Hand-built predictions without knob vectors: fall back to the
        # scalar richness score (a total order, so one representative).
        return [max(members, key=lambda i: predictions[i].resource_score)]
    out = []
    for i in members:
        ri = predictions[i].resources
        dominated = any(
            j != i
            and all(a >= b for a, b in zip(predictions[j].resources, ri))
            and predictions[j].resources != ri
            for j in members
        )
        if not dominated:
            out.append(i)
    return out
