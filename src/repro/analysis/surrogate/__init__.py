"""Tier-0 analytical surrogate: predict LPM quantities without simulating.

* :mod:`~repro.analysis.surrogate.predictor` — locality profile +
  :class:`~repro.sim.params.MachineConfig` -> predicted MR/C-AMAT/LPMR/CPI
  in microseconds, plus frontier selection for multi-fidelity escalation.
* :mod:`~repro.analysis.surrogate.validate` — error quantification vs the
  cycle-accurate engine (``repro surrogate validate``).

The profiling pass itself lives in :mod:`repro.workloads.locality`; its
persistent cache in :mod:`repro.runtime.histogram_store`.  Everything in
this package is pure (registered as a measurement-producer package with
the program linter).
"""

from repro.analysis.surrogate.predictor import (
    SurrogatePrediction,
    predict,
    predict_many,
    select_frontier,
)
from repro.analysis.surrogate.validate import (
    ValidationReport,
    ValidationRow,
    format_validation_report,
    validate_benchmarks,
    validate_trace,
)

__all__ = [
    "SurrogatePrediction",
    "predict",
    "predict_many",
    "select_frontier",
    "ValidationReport",
    "ValidationRow",
    "format_validation_report",
    "validate_benchmarks",
    "validate_trace",
]
