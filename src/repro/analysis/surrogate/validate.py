"""Calibration/validation harness: surrogate error vs the engine.

Runs the cycle-accurate engine and the tier-0 predictor on the same
trace + configuration and quantifies the disagreement per quantity
(MR1, MR2, C-AMAT1, LPMR1, CPI).  ``repro surrogate validate`` runs it
over the 16 SPEC profiles; docs/PERFORMANCE.md records the measured
table.  The errors here are what justify (or veto) the multi-fidelity
escalation margin — a margin below the observed CPI ranking error means
the engine-optimal configuration can be pruned away.

Pure module: trace generation, simulation, and prediction are all
deterministic functions of their arguments; rendering returns a string.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.surrogate.predictor import SurrogatePrediction, predict
from repro.sim.params import DEFAULT_MACHINE, MachineConfig
from repro.sim.stats import HierarchyStats, simulate_and_measure
from repro.util.validation import safe_ratio
from repro.workloads.locality import LocalityProfile, profile_trace
from repro.workloads.spec import SELECTED_16, get_benchmark
from repro.workloads.trace import Trace

__all__ = [
    "ValidationRow",
    "ValidationReport",
    "validate_trace",
    "validate_benchmarks",
    "format_validation_report",
]


def _rel_error(predicted: float, measured: float) -> float:
    """|pred - meas| / |meas|, falling back to absolute error near zero."""
    if abs(measured) < 1e-9:
        return abs(predicted - measured)
    return abs(predicted - measured) / abs(measured)


@dataclass(frozen=True)
class ValidationRow:
    """Engine-vs-surrogate comparison for one (trace, config) pair."""

    name: str
    mr1_engine: float
    mr1_pred: float
    mr2_engine: float
    mr2_pred: float
    camat1_engine: float
    camat1_pred: float
    lpmr1_engine: float
    lpmr1_pred: float
    cpi_engine: float
    cpi_pred: float

    @property
    def mr1_error(self) -> float:
        """Absolute MR1 error (miss ratios compare additively)."""
        return abs(self.mr1_pred - self.mr1_engine)

    @property
    def mr2_error(self) -> float:
        """Absolute conditional-MR2 error."""
        return abs(self.mr2_pred - self.mr2_engine)

    @property
    def camat1_error(self) -> float:
        """Relative C-AMAT1 error."""
        return _rel_error(self.camat1_pred, self.camat1_engine)

    @property
    def lpmr1_error(self) -> float:
        """Relative LPMR1 error."""
        return _rel_error(self.lpmr1_pred, self.lpmr1_engine)

    @property
    def cpi_error(self) -> float:
        """Relative CPI error — the quantity multi-fidelity ranking uses."""
        return _rel_error(self.cpi_pred, self.cpi_engine)

    def to_dict(self) -> dict:
        """JSON-friendly form (fields plus derived errors)."""
        return {
            "name": self.name,
            "mr1_engine": self.mr1_engine, "mr1_pred": self.mr1_pred,
            "mr2_engine": self.mr2_engine, "mr2_pred": self.mr2_pred,
            "camat1_engine": self.camat1_engine, "camat1_pred": self.camat1_pred,
            "lpmr1_engine": self.lpmr1_engine, "lpmr1_pred": self.lpmr1_pred,
            "cpi_engine": self.cpi_engine, "cpi_pred": self.cpi_pred,
            "mr1_error": self.mr1_error, "mr2_error": self.mr2_error,
            "camat1_error": self.camat1_error, "lpmr1_error": self.lpmr1_error,
            "cpi_error": self.cpi_error,
        }


@dataclass(frozen=True)
class ValidationReport:
    """Per-workload rows plus the aggregate error statistics."""

    rows: "tuple[ValidationRow, ...]"
    config_name: str
    n_accesses: int
    seed: int
    warm: bool

    def _mean(self, attr: str) -> float:
        return safe_ratio(sum(getattr(r, attr) for r in self.rows), len(self.rows))

    def _worst(self, attr: str) -> "ValidationRow | None":
        return max(self.rows, key=lambda r: getattr(r, attr), default=None)

    @property
    def mean_mr1_error(self) -> float:
        """Mean absolute MR1 error across workloads."""
        return self._mean("mr1_error")

    @property
    def mean_camat1_error(self) -> float:
        """Mean relative C-AMAT1 error across workloads."""
        return self._mean("camat1_error")

    @property
    def mean_lpmr1_error(self) -> float:
        """Mean relative LPMR1 error across workloads."""
        return self._mean("lpmr1_error")

    @property
    def mean_cpi_error(self) -> float:
        """Mean relative CPI error across workloads."""
        return self._mean("cpi_error")

    @property
    def worst_cpi_row(self) -> "ValidationRow | None":
        """The workload the surrogate ranks least faithfully."""
        return self._worst("cpi_error")

    def to_dict(self) -> dict:
        """JSON-friendly form."""
        return {
            "config_name": self.config_name,
            "n_accesses": self.n_accesses,
            "seed": self.seed,
            "warm": self.warm,
            "rows": [row.to_dict() for row in self.rows],
            "mean_mr1_error": self.mean_mr1_error,
            "mean_camat1_error": self.mean_camat1_error,
            "mean_lpmr1_error": self.mean_lpmr1_error,
            "mean_cpi_error": self.mean_cpi_error,
        }


def validate_trace(
    trace: Trace,
    config: MachineConfig = DEFAULT_MACHINE,
    *,
    seed: int = 0,
    warm: bool = True,
    profile: "LocalityProfile | None" = None,
    name: "str | None" = None,
) -> ValidationRow:
    """One engine run + one prediction, compared quantity by quantity."""
    if profile is None:
        profile = profile_trace(trace, line_bytes=config.l1.line_bytes, warm=warm)
    stats: HierarchyStats
    _, stats = simulate_and_measure(config, trace, seed=seed, warm=warm)
    pred: SurrogatePrediction = predict(profile, config)
    report = stats.lpmr_report()
    return ValidationRow(
        name=name if name is not None else trace.name,
        mr1_engine=report.mr1, mr1_pred=pred.mr1,
        mr2_engine=report.mr2, mr2_pred=pred.mr2,
        camat1_engine=report.camat1, camat1_pred=pred.camat1,
        lpmr1_engine=report.lpmr1, lpmr1_pred=pred.lpmr1,
        cpi_engine=stats.cpi, cpi_pred=pred.cpi,
    )


def validate_benchmarks(
    names: "tuple[str, ...] | list[str]" = SELECTED_16,
    config: MachineConfig = DEFAULT_MACHINE,
    *,
    n_accesses: int = 20_000,
    seed: int = 3,
    warm: bool = True,
) -> ValidationReport:
    """Surrogate error over the SPEC profile set on one configuration."""
    rows = []
    for name in names:
        trace = get_benchmark(name).trace(n_accesses, seed=seed)
        rows.append(validate_trace(trace, config, seed=seed, warm=warm, name=name))
    return ValidationReport(
        rows=tuple(rows), config_name=config.name,
        n_accesses=n_accesses, seed=seed, warm=warm,
    )


def format_validation_report(report: ValidationReport) -> str:
    """Fixed-width text table of the report, CLI- and docs-ready."""
    header = (
        f"{'benchmark':<16} {'MR1 eng':>8} {'MR1 sur':>8} {'|dMR1|':>7} "
        f"{'C-AMAT1 eng':>11} {'sur':>8} {'err%':>6} "
        f"{'LPMR1 eng':>9} {'sur':>8} {'err%':>6} "
        f"{'CPI eng':>8} {'sur':>8} {'err%':>6}"
    )
    lines = [header, "-" * len(header)]
    for r in report.rows:
        lines.append(
            f"{r.name:<16} {r.mr1_engine:>8.4f} {r.mr1_pred:>8.4f} "
            f"{r.mr1_error:>7.4f} "
            f"{r.camat1_engine:>11.3f} {r.camat1_pred:>8.3f} "
            f"{100 * r.camat1_error:>5.1f}% "
            f"{r.lpmr1_engine:>9.3f} {r.lpmr1_pred:>8.3f} "
            f"{100 * r.lpmr1_error:>5.1f}% "
            f"{r.cpi_engine:>8.3f} {r.cpi_pred:>8.3f} "
            f"{100 * r.cpi_error:>5.1f}%"
        )
    lines.append("-" * len(header))
    worst = report.worst_cpi_row
    lines.append(
        f"mean |dMR1|={report.mean_mr1_error:.4f}  "
        f"mean C-AMAT1 err={100 * report.mean_camat1_error:.1f}%  "
        f"mean LPMR1 err={100 * report.mean_lpmr1_error:.1f}%  "
        f"mean CPI err={100 * report.mean_cpi_error:.1f}%"
    )
    if worst is not None:
        lines.append(
            f"worst CPI error: {worst.name} ({100 * worst.cpi_error:.1f}%)"
        )
    return "\n".join(lines)
