"""Experiment-specific table rendering used by the benchmark harness.

Every reproduced artifact prints through these helpers so regenerated
output lines up with the paper's layout (rows/series named exactly as the
paper names them) and EXPERIMENTS.md can quote the output verbatim.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.sweep import SweepResult
from repro.core.report import render_table
from repro.sim.params import MachineConfig
from repro.sim.stats import HierarchyStats

__all__ = ["table1_text", "apc_sweep_text", "hsp_text", "stall_walk_text"]

#: Row titles exactly as Table I prints them, mapped to the knob names.
_TABLE1_KNOB_ROWS: tuple[tuple[str, str], ...] = (
    ("Pipeline issue width", "issue_width"),
    ("IW size", "iw_size"),
    ("ROB size", "rob_size"),
    ("L1 cache port number", "l1_ports"),
    ("MSHR numbers", "mshr_count"),
    ("L2 cache interleaving", "l2_banks"),
)


def table1_text(
    configs: Sequence[MachineConfig], stats: Sequence[HierarchyStats]
) -> str:
    """Table I layout: configurations as columns, knobs and LPMRs as rows."""
    if len(configs) != len(stats):
        raise ValueError("configs and stats must align")
    headers = ["Configuration", *(c.name for c in configs)]
    knobs = [c.knob_summary() for c in configs]
    rows: list[list[object]] = [
        [title, *(k[knob] for k in knobs)] for title, knob in _TABLE1_KNOB_ROWS
    ]
    rows.append(["LPMR1", *(s.lpmr1 for s in stats)])
    rows.append(["LPMR2", *(s.lpmr2 for s in stats)])
    rows.append(["LPMR3", *(s.lpmr3 for s in stats)])
    return render_table(headers, rows, float_fmt="{:.2f}")


def apc_sweep_text(
    quantity: str,
    benchmarks: Sequence[str],
    l1_sizes_kb: Sequence[int],
    values: "dict[tuple[str, int], float]",
) -> str:
    """Fig. 6/7 layout: benchmarks as rows, L1 sizes as columns."""
    headers = ["benchmark", *(f"{kb} KB" for kb in l1_sizes_kb)]
    rows = []
    for bench in benchmarks:
        rows.append([bench, *(values[(bench, kb)] for kb in l1_sizes_kb)])
    return render_table(headers, rows, float_fmt="{:.4f}", title=quantity)


def hsp_text(results: "dict[str, float]") -> str:
    """Fig. 8 layout: one Hsp bar per scheduling scheme."""
    rows = [(name, value) for name, value in results.items()]
    return render_table(["scheduling scheme", "Hsp"], rows, float_fmt="{:.4f}")


def stall_walk_text(sweep: SweepResult) -> str:
    """Algorithm-walk layout: stall and matching per configuration."""
    rows = []
    for label, st in zip(sweep.labels, sweep.stats):
        rows.append(
            (
                label,
                st.lpmr1,
                st.lpmr2,
                st.lpmr3,
                st.cpi_exe,
                100.0 * st.stall_fraction_of_compute,
                st.overlap_ratio_cm,
            )
        )
    return render_table(
        ["config", "LPMR1", "LPMR2", "LPMR3", "CPI_exe", "stall % of CPI_exe", "overlap"],
        rows,
        float_fmt="{:.3g}",
    )
