"""Reproduction of *LPM: Concurrency-driven Layered Performance Matching*
(Yu-Hang Liu and Xian-He Sun, ICPP 2015).

The package provides, from the bottom of the stack up:

``repro.workloads``
    Synthetic SPEC CPU2006-like trace generation (locality kernels, named
    benchmark profiles, phase/burst behaviour).
``repro.sim``
    A trace-driven out-of-order CPU + non-blocking two-level cache + DRAM
    timing simulator that emits per-access activity intervals.
``repro.core``
    The paper's contribution: the C-AMAT model (Eqs. 1-4), the C-AMAT
    analyzer (Fig. 4), the LPM model (LPMRs, Eqs. 9-15), the stall-time
    formulations (Eqs. 5-8, 12-13) and the LPM optimization algorithm
    (Fig. 3).
``repro.reconfig``
    Case Study I: LPM-guided design-space exploration on a reconfigurable
    architecture (Table I's configurations A-E and a greedy 6-knob search).
``repro.sched``
    Case Study II: NUCA-aware scheduling (NUCA-SA) on a 16-core CMP with
    heterogeneous L1 caches, against Random/Round-Robin, evaluated with
    harmonic weighted speedup.
``repro.analysis``
    Sweep helpers and paper-layout table rendering for the benchmarks.
``repro.runtime``
    Fault-tolerant evaluation runtime: supervised worker pool with
    timeouts/retries/crash recovery, JSONL checkpoint journal, fault
    injection and measurement guards, plus the library-wide exception
    taxonomy rooted at :class:`ReproError`.

Quickstart::

    from repro import simulate_and_measure, table1_config, get_benchmark

    trace = get_benchmark("410.bwaves").trace(50_000, seed=7)
    _, stats = simulate_and_measure(table1_config("A"), trace)
    print(stats.lpmr1, stats.l1.camat, stats.stall_fraction_of_compute)
"""

from repro.core import (
    CAMATParams,
    LayerMeasurement,
    LPMAlgorithm,
    LPMCase,
    LPMRReport,
    LPMRunResult,
    LPMStatus,
    StallModel,
    amat,
    camat,
    camat_from_apc,
    measure_layer,
)
from repro.reconfig import DesignSpace, GreedyReconfigBackend, LadderBackend
from repro.runtime import (
    ConfigError,
    EvaluationRuntime,
    EvaluationTimeout,
    FaultConfig,
    MeasurementError,
    PoolConfig,
    ReproError,
    WorkerCrashed,
)
from repro.sched import (
    NUCAMachine,
    evaluate_schedule,
    harmonic_weighted_speedup,
    nuca_sa,
    profile_benchmarks,
    random_schedule,
    round_robin_schedule,
)
from repro.sim import (
    DEFAULT_MACHINE,
    TABLE1_CONFIGS,
    HierarchySimulator,
    HierarchyStats,
    MachineConfig,
    measure_hierarchy,
    simulate_and_measure,
    table1_config,
)
from repro.workloads import (
    BENCHMARKS,
    SELECTED_16,
    BenchmarkProfile,
    Trace,
    get_benchmark,
)

__version__ = "1.0.0"

__all__ = [
    "BENCHMARKS",
    "BenchmarkProfile",
    "CAMATParams",
    "ConfigError",
    "DEFAULT_MACHINE",
    "DesignSpace",
    "EvaluationRuntime",
    "EvaluationTimeout",
    "FaultConfig",
    "GreedyReconfigBackend",
    "HierarchySimulator",
    "HierarchyStats",
    "LPMAlgorithm",
    "LPMCase",
    "LPMRReport",
    "LPMRunResult",
    "LPMStatus",
    "LadderBackend",
    "LayerMeasurement",
    "MachineConfig",
    "MeasurementError",
    "NUCAMachine",
    "PoolConfig",
    "ReproError",
    "SELECTED_16",
    "StallModel",
    "WorkerCrashed",
    "TABLE1_CONFIGS",
    "Trace",
    "amat",
    "camat",
    "camat_from_apc",
    "evaluate_schedule",
    "get_benchmark",
    "harmonic_weighted_speedup",
    "measure_hierarchy",
    "measure_layer",
    "nuca_sa",
    "profile_benchmarks",
    "random_schedule",
    "round_robin_schedule",
    "simulate_and_measure",
    "table1_config",
    "__version__",
]
