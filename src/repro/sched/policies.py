"""Scheduling policies for the heterogeneous-L1 CMP (Case Study II).

Baselines (the paper: "Random scheduling and Round Robin scheduling are the
widely used scheduling policies in both data-center and HPC environments"):

* :func:`random_schedule` — uniformly random application-to-core mapping;
* :func:`round_robin_schedule` — applications in arrival order onto cores
  in machine order.

The contribution:

* :func:`nuca_sa` — the NUCA-aware Scheduling Algorithm, the LPM algorithm
  instantiated for scheduling.  Two-fold process per the paper: first match
  ``LPMR1`` (give each application the L1 size its locality needs), then
  reduce shared-L2 contention (prefer placements minimizing aggregate APC2
  demand).  Implemented as an optimal assignment (Hungarian method) over a
  surrogate cost combining the two objectives — polynomial time against a
  mapping space of 63,063,000 (the paper's count for 16 apps on 4x4 cores).
  The fine-grained variant uses the LPMR1 information at full precision;
  the coarse-grained variant quantizes it (the Δ=1% vs Δ=10% matching
  targets of Section IV), trading a little Hsp for cheaper decisions.

* :func:`exhaustive_schedule` — true optimum by enumeration, feasible only
  for tiny machines; used to validate NUCA-SA's near-optimality in tests.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.sched.contention import CoRunOutcome, L2ContentionModel
from repro.sched.metrics import fairness_index, harmonic_weighted_speedup, weighted_speedup
from repro.sched.nuca import BenchmarkProfileDB, NUCAMachine
from repro.util.rng import make_rng

__all__ = [
    "Schedule",
    "ScheduleEvaluation",
    "random_schedule",
    "round_robin_schedule",
    "nuca_sa",
    "exhaustive_schedule",
    "evaluate_schedule",
]


@dataclass(frozen=True)
class Schedule:
    """An application-to-core mapping.

    ``apps[i]`` is the benchmark name running on core ``i``; cores are
    ordered group by group as in :attr:`NUCAMachine.core_l1_sizes`.
    """

    apps: tuple[str, ...]
    policy: str

    def assigned_sizes(self, machine: NUCAMachine) -> list[tuple[str, int]]:
        """(benchmark, l1_size) pairs in core order."""
        sizes = machine.core_l1_sizes
        if len(self.apps) != len(sizes):
            raise ValueError(
                f"schedule has {len(self.apps)} apps for {len(sizes)} cores"
            )
        return list(zip(self.apps, sizes))


@dataclass(frozen=True)
class ScheduleEvaluation:
    """Outcome of one schedule under the shared-L2 contention model."""

    schedule: Schedule
    outcomes: tuple[CoRunOutcome, ...]
    hsp: float
    ws: float
    fairness: float
    l2_utilization: float


def _reference_ipcs(apps: "list[str]", db: BenchmarkProfileDB) -> list[float]:
    """IPC_alone reference: standalone on the largest L1, no contention."""
    best_l1 = max(db.machine.distinct_l1_sizes)
    return [db.ipc(a, best_l1) for a in apps]


def evaluate_schedule(
    schedule: Schedule, db: BenchmarkProfileDB, machine: NUCAMachine
) -> ScheduleEvaluation:
    """Predict Hsp/WS/fairness of a schedule via the contention model."""
    model = L2ContentionModel(machine)
    assigned = schedule.assigned_sizes(machine)
    outcomes = model.co_run(assigned, db)
    alone = _reference_ipcs([a for a, _ in assigned], db)
    shared = [o.ipc_shared for o in outcomes]
    return ScheduleEvaluation(
        schedule=schedule,
        outcomes=tuple(outcomes),
        hsp=harmonic_weighted_speedup(alone, shared),
        ws=weighted_speedup(alone, shared),
        fairness=fairness_index(alone, shared),
        l2_utilization=model.utilization(assigned, db),
    )


def _check_apps(apps: "list[str]", machine: NUCAMachine) -> None:
    if len(apps) != machine.n_cores:
        raise ValueError(
            f"need exactly one application per core: {len(apps)} apps for "
            f"{machine.n_cores} cores"
        )


def random_schedule(
    apps: "list[str]", machine: NUCAMachine, *, seed: int = 0
) -> Schedule:
    """Uniformly random mapping (baseline)."""
    _check_apps(apps, machine)
    rng = make_rng(seed)
    perm = rng.permutation(len(apps))
    return Schedule(apps=tuple(apps[i] for i in perm), policy="random")


def round_robin_schedule(apps: "list[str]", machine: NUCAMachine) -> Schedule:
    """Applications in order onto cores in order (baseline)."""
    _check_apps(apps, machine)
    return Schedule(apps=tuple(apps), policy="round-robin")


def _nuca_sa_cost_matrix(
    apps: "list[str]",
    machine: NUCAMachine,
    db: BenchmarkProfileDB,
    *,
    slowdown_quantum: float,
    contention_weight: float,
) -> np.ndarray:
    """Surrogate cost per (application, core).

    The performance term is the LPM-model-predicted slowdown of running at
    that core's L1 size instead of the application's best size: Eq. (12)
    turns the measured LPMR1 into stall time, so
    ``CPI(size) = CPI_exe + CPI_exe * (1 - overlap) * LPMR1(size)`` and the
    term is ``CPI(size)/CPI(best) - 1``.  Minimizing the column-sum of
    slowdowns is exactly maximizing the (contention-free) harmonic weighted
    speedup, which is the paper's two-fold objective part one.  Part two —
    "assign to get the APC2 requirement as small as possible" — enters as a
    contention term proportional to the L2 demand the placement injects.

    The fine/coarse split quantizes the matching information: a Δ=10%
    matcher cannot distinguish placements whose predicted slowdowns differ
    by less than its quantum.
    """
    sizes = machine.core_l1_sizes
    model = L2ContentionModel(machine)
    n = len(apps)
    cost = np.zeros((n, len(sizes)))
    for i, app in enumerate(apps):
        per_size: dict[int, tuple[float, float]] = {}
        for s in machine.distinct_l1_sizes:
            st = db.get(app, s)
            report = st.lpmr_report()
            predicted_cpi = st.cpi_exe + report.predicted_stall_per_instruction()
            per_size[s] = (predicted_cpi, model._l2_rate(st))
        best_cpi = min(v[0] for v in per_size.values())
        for j, s in enumerate(sizes):
            predicted_cpi, l2_rate = per_size[s]
            slowdown = predicted_cpi / best_cpi - 1.0
            # Quantize the matching information: the coarse-grained variant
            # cannot distinguish placements closer than its Δ target.
            quantized = math.floor(slowdown / slowdown_quantum) * slowdown_quantum
            cost[i, j] = quantized + contention_weight * l2_rate
    return cost


def _marginal_contention_price(
    apps: "list[str]", machine: NUCAMachine, db: BenchmarkProfileDB
) -> float:
    """Marginal social cost of one unit of L2 demand (accesses/cycle).

    From the contention model, every application j pays
    ``apki_j * exposure_j * inflation(rho)`` extra stall; the derivative of
    the aggregate with respect to one placement's demand rate is
    ``sum_j apki_j*exposure_j * service / (capacity * (1-rho)^2)``,
    estimated at a provisional rho where each application runs at its
    fastest L1 size.  Pricing demand at this marginal cost makes the
    per-application assignment internalize the shared-L2 externality.
    """
    model = L2ContentionModel(machine)
    best_l1 = max(machine.distinct_l1_sizes)
    rho0 = 0.0
    sensitivity = 0.0
    for app in apps:
        st = db.get(app, best_l1)
        rho0 += model._l2_rate(st) / model.l2_capacity
        sensitivity += model._l2_apki(st) * (1.0 - st.overlap_ratio_cm)
    rho0 = min(rho0, 0.9)
    return sensitivity * model.l2_service / (model.l2_capacity * (1.0 - rho0) ** 2)


def nuca_sa(
    apps: "list[str]",
    machine: NUCAMachine,
    db: BenchmarkProfileDB,
    *,
    grain: str = "fine",
    contention_weight: float | None = None,
) -> Schedule:
    """The NUCA-aware Scheduling Algorithm (LPM-guided, Hungarian-solved).

    ``grain="fine"`` (Δ=1%-style) uses the LPM matching information at
    full resolution; ``grain="coarse"`` (Δ=10%-style) quantizes it.  The
    contention term defaults to the model-derived marginal price (see
    :func:`_marginal_contention_price`); pass ``contention_weight`` to
    override.
    """
    _check_apps(apps, machine)
    if grain not in ("fine", "coarse"):
        raise ValueError(f"grain must be 'fine' or 'coarse', got {grain!r}")
    quantum = 0.01 if grain == "fine" else 0.25
    if contention_weight is None:
        contention_weight = _marginal_contention_price(apps, machine, db)
    cost = _nuca_sa_cost_matrix(
        apps, machine, db, slowdown_quantum=quantum, contention_weight=contention_weight
    )
    rows, cols = linear_sum_assignment(cost)
    core_to_app: dict[int, str] = {int(c): apps[int(r)] for r, c in zip(rows, cols)}
    ordered = tuple(core_to_app[i] for i in range(machine.n_cores))
    return Schedule(apps=ordered, policy=f"nuca-sa-{grain[0]}g")


def exhaustive_schedule(
    apps: "list[str]",
    machine: NUCAMachine,
    db: BenchmarkProfileDB,
    *,
    limit: int = 200_000,
) -> tuple[Schedule, ScheduleEvaluation]:
    """True optimal schedule by enumeration (tiny instances only).

    Enumerates distinct app-to-group assignments (within a group all cores
    are identical) and maximizes Hsp under the contention model.  Raises if
    the mapping space exceeds *limit* — the paper's point that exhaustive
    search "is not realistic" for the real machine.
    """
    _check_apps(apps, machine)
    space = machine.mapping_space_size()
    if space > limit:
        raise ValueError(
            f"mapping space of {space} exceeds the exhaustive-search limit "
            f"({limit}); use nuca_sa instead"
        )
    best: tuple[Schedule, ScheduleEvaluation] | None = None
    seen: set[tuple[str, ...]] = set()
    for perm in itertools.permutations(apps):
        if perm in seen:
            continue
        seen.add(perm)
        schedule = Schedule(apps=perm, policy="exhaustive")
        ev = evaluate_schedule(schedule, db, machine)
        if best is None or ev.hsp > best[1].hsp:
            best = (schedule, ev)
    assert best is not None
    return best
