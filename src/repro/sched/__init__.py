"""Case Study II: LPM-guided scheduling on heterogeneous level-1 caches."""

from repro.sched.contention import CoRunOutcome, L2ContentionModel
from repro.sched.metrics import (
    fairness_index,
    harmonic_weighted_speedup,
    slowdowns,
    weighted_speedup,
)
from repro.sched.partition import (
    co_run_partitioned,
    demand_proportional_shares,
    equal_shares,
    lpm_guided_shares,
)
from repro.sched.nuca import (
    BenchmarkProfileDB,
    CoreGroup,
    NUCAMachine,
    profile_benchmarks,
)
from repro.sched.policies import (
    Schedule,
    ScheduleEvaluation,
    evaluate_schedule,
    exhaustive_schedule,
    nuca_sa,
    random_schedule,
    round_robin_schedule,
)

__all__ = [
    "BenchmarkProfileDB",
    "CoRunOutcome",
    "CoreGroup",
    "L2ContentionModel",
    "NUCAMachine",
    "Schedule",
    "ScheduleEvaluation",
    "co_run_partitioned",
    "demand_proportional_shares",
    "equal_shares",
    "evaluate_schedule",
    "exhaustive_schedule",
    "fairness_index",
    "harmonic_weighted_speedup",
    "lpm_guided_shares",
    "nuca_sa",
    "profile_benchmarks",
    "random_schedule",
    "round_robin_schedule",
    "slowdowns",
    "weighted_speedup",
]
