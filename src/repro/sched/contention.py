"""Shared-L2 interference model for co-scheduled applications.

All schedules in the Fig. 8 experiment run the same sixteen applications on
the same shared L2, so *capacity* pressure is (to first order) identical
across schedules; what a schedule changes is each application's private-L1
size and therefore its **L2 bandwidth demand** (APC2).  The model here
captures that first-order effect:

1. Aggregate L2 demand ``D = sum_i demand_i`` in accesses/cycle, where
   ``demand_i`` is the application's standalone L2 access rate at its
   assigned L1 size (``APC2`` measured per L2-active cycle, rescaled to
   wall-clock rate via its standalone activity).
2. The shared L2 serves at most ``capacity = l2_banks / l2_occupancy``
   accesses per cycle; the utilization ``rho = D / capacity`` inflates L2
   service with an M/M/1-style queueing delay
   ``extra = base_service * rho / (1 - rho)`` (capped).
3. Each application absorbs the extra latency in proportion to its
   per-instruction L2 traffic and its measured *exposure* (the fraction of
   memory activity not already overlapped, ``1 - overlapRatio_cm``):
   ``stall_extra_i = l2_apki_i * extra * (1 - overlap_i)`` cycles per
   instruction, giving ``IPC_shared = 1 / (CPI_alone + stall_extra)``.

The model is deliberately analytic (documented in DESIGN.md): NUCA-SA, the
baselines, and the exhaustive-search validator all see identical physics,
so policy comparisons are apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sched.nuca import BenchmarkProfileDB, NUCAMachine
from repro.sim.stats import HierarchyStats
from repro.util.validation import check_fraction, check_positive

__all__ = ["L2ContentionModel", "CoRunOutcome"]

#: Utilization is capped below 1 so the queueing term stays finite; beyond
#: this point the L2 is saturated and delays are dominated by the cap.
_MAX_RHO = 0.95
#: Cap on queueing inflation, in multiples of the base L2 service time.
_MAX_INFLATION = 20.0


@dataclass(frozen=True)
class CoRunOutcome:
    """Shared-run prediction for one application."""

    benchmark: str
    l1_size: int
    ipc_alone: float
    ipc_shared: float
    extra_stall_per_instruction: float

    @property
    def slowdown(self) -> float:
        """``IPC_alone / IPC_shared`` (>= 1)."""
        return self.ipc_alone / self.ipc_shared


class L2ContentionModel:
    """Bandwidth-queueing interference on the shared L2 (see module doc)."""

    def __init__(self, machine: NUCAMachine) -> None:
        self.machine = machine
        cfg = machine.base_config
        occupancy = 1 if cfg.l2_pipelined else cfg.l2_hit_time
        self.l2_capacity = cfg.l2_banks / occupancy
        self.l2_service = float(cfg.l2_hit_time)

    def _l2_rate(self, stats: HierarchyStats) -> float:
        """Standalone wall-clock L2 access rate (accesses/cycle)."""
        # L2 accesses per instruction x instructions per cycle.
        return stats.f_mem * stats.mr1_request * stats.ipc

    def _l2_apki(self, stats: HierarchyStats) -> float:
        """L2 accesses per instruction."""
        return stats.f_mem * stats.mr1_request

    def utilization(self, assigned: "list[tuple[str, int]]", db: BenchmarkProfileDB) -> float:
        """Aggregate L2 utilization ``rho`` of an assignment."""
        demand = sum(self._l2_rate(db.get(b, s)) for b, s in assigned)
        check_positive("l2_capacity", self.l2_capacity)
        return demand / self.l2_capacity

    def co_run(
        self, assigned: "list[tuple[str, int]]", db: BenchmarkProfileDB
    ) -> list[CoRunOutcome]:
        """Predict per-application shared IPC for an assignment.

        ``assigned`` is a list of (benchmark, l1_size) pairs, one per core.
        """
        if not assigned:
            raise ValueError("assignment must be non-empty")
        rho = min(self.utilization(assigned, db), _MAX_RHO)
        check_fraction("rho", rho)
        inflation = min(self.l2_service * rho / (1.0 - rho), self.l2_service * _MAX_INFLATION)

        outcomes = []
        for benchmark, l1_size in assigned:
            stats = db.get(benchmark, l1_size)
            exposure = 1.0 - stats.overlap_ratio_cm
            extra = self._l2_apki(stats) * inflation * exposure
            cpi_shared = stats.cpi + extra
            outcomes.append(
                CoRunOutcome(
                    benchmark=benchmark,
                    l1_size=l1_size,
                    ipc_alone=stats.ipc,
                    ipc_shared=1.0 / cpi_shared,
                    extra_stall_per_instruction=extra,
                )
            )
        return outcomes
