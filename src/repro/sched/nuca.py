"""The Fig. 5 machine: a 16-core CMP with heterogeneous private L1 caches.

Four computing-unit groups of four cores each, with private L1 data caches
of 4 KB, 16 KB, 32 KB and 64 KB, sharing the L2 (NUCA — non-uniform cache
access).  Scheduling decides which application runs on which core, i.e.
which L1 size each application receives.

:func:`profile_benchmarks` builds the measurement database that both the
Fig. 6/7 plots and the NUCA-SA scheduler consume: every benchmark simulated
standalone on every distinct L1 size, yielding APC1, APC2, IPC and the LPMR
snapshot per (benchmark, L1 size).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.sim.params import MachineConfig
from repro.sim.stats import HierarchyStats, simulate_and_measure
from repro.util.validation import check_int
from repro.workloads.spec import BenchmarkProfile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.evaluate import EvaluationRuntime

__all__ = ["CoreGroup", "NUCAMachine", "BenchmarkProfileDB", "profile_benchmarks"]

KB = 1024


@dataclass(frozen=True)
class CoreGroup:
    """A group of identical cores with one private-L1 size."""

    l1_size_bytes: int
    n_cores: int

    def __post_init__(self) -> None:
        check_int("l1_size_bytes", self.l1_size_bytes, minimum=1024)
        check_int("n_cores", self.n_cores, minimum=1)


def _default_groups() -> tuple[CoreGroup, ...]:
    return (
        CoreGroup(4 * KB, 4),
        CoreGroup(16 * KB, 4),
        CoreGroup(32 * KB, 4),
        CoreGroup(64 * KB, 4),
    )


@dataclass(frozen=True)
class NUCAMachine:
    """The heterogeneous-L1 CMP of Fig. 5.

    ``base_config`` supplies everything except the per-core L1 size.  Case
    Study II uses a pipelined dual-ported L1 with generous MSHRs, so cache
    *size* (not bandwidth) is the differentiating resource between groups.
    """

    groups: tuple[CoreGroup, ...] = field(default_factory=_default_groups)
    #: Per-core parameters.  The shared LLC of a 16-core CMP is pipelined
    #: and 8-way banked, i.e. it can accept one access per bank per cycle —
    #: otherwise sixteen co-runners would saturate it under any schedule and
    #: scheduling could not differentiate (the paper's CMP likewise provides
    #: an LLC sized/banked for sixteen clients).
    base_config: MachineConfig = field(
        default_factory=lambda: MachineConfig().with_knobs(
            issue_width=4, iw_size=64, rob_size=64,
            l1_ports=2, mshr_count=16, l2_banks=8,
        ).with_(l1_pipelined=True, l2_pipelined=True, l2_hit_time=24)
    )

    def __post_init__(self) -> None:
        if not self.groups:
            raise ValueError("need at least one core group")

    @property
    def n_cores(self) -> int:
        """Total core count."""
        return sum(g.n_cores for g in self.groups)

    @property
    def core_l1_sizes(self) -> tuple[int, ...]:
        """Per-core L1 size, cores ordered group by group."""
        sizes: list[int] = []
        for g in self.groups:
            sizes.extend([g.l1_size_bytes] * g.n_cores)
        return tuple(sizes)

    @property
    def distinct_l1_sizes(self) -> tuple[int, ...]:
        """Sorted distinct L1 sizes across groups."""
        return tuple(sorted({g.l1_size_bytes for g in self.groups}))

    def config_for_l1(self, l1_size_bytes: int) -> MachineConfig:
        """Per-core simulator configuration with the given L1 size."""
        return self.base_config.with_knobs(
            l1_size_bytes=l1_size_bytes, name=f"nuca-l1-{l1_size_bytes // KB}k"
        )

    def mapping_space_size(self, n_apps: int | None = None) -> int:
        """Number of distinct application-to-core-group mappings.

        For 16 applications on the default 4x4 machine this is
        ``16! / (4!)^4 = 63,063,000`` — the paper's "extremely large"
        mapping space that motivates LPM-guided scheduling.
        """
        from math import factorial

        n = self.n_cores if n_apps is None else n_apps
        if n != self.n_cores:
            raise ValueError("mapping space defined for n_apps == n_cores")
        size = factorial(n)
        for g in self.groups:
            size //= factorial(g.n_cores)
        return size


@dataclass
class BenchmarkProfileDB:
    """Standalone measurements per (benchmark, L1 size).

    The information NUCA-SA is allowed to use: exactly what the paper's
    online C-AMAT analyzer measures per application on each core type.
    """

    machine: NUCAMachine
    n_mem: int
    seed: int
    stats: dict[tuple[str, int], HierarchyStats] = field(default_factory=dict)

    def get(self, benchmark: str, l1_size: int) -> HierarchyStats:
        """Measurement for one (benchmark, L1 size) pair."""
        try:
            return self.stats[(benchmark, l1_size)]
        except KeyError:
            raise KeyError(
                f"no profile for {benchmark!r} at L1={l1_size}; "
                "was it included in profile_benchmarks()?"
            ) from None

    def benchmarks(self) -> list[str]:
        """Profiled benchmark names, sorted."""
        return sorted({b for b, _ in self.stats})

    def apc1(self, benchmark: str, l1_size: int) -> float:
        """Fig. 6 quantity."""
        return self.get(benchmark, l1_size).apc1

    def apc2(self, benchmark: str, l1_size: int) -> float:
        """Fig. 7 quantity."""
        return self.get(benchmark, l1_size).apc2

    def ipc(self, benchmark: str, l1_size: int) -> float:
        """Standalone IPC (the IPC_alone of the Hsp metric at that L1)."""
        return self.get(benchmark, l1_size).ipc


def profile_benchmarks(
    machine: NUCAMachine,
    benchmarks: "list[BenchmarkProfile]",
    *,
    n_mem: int = 20000,
    seed: int = 0,
    warm: bool = True,
    runtime: "EvaluationRuntime | None" = None,
) -> BenchmarkProfileDB:
    """Simulate every benchmark standalone on every distinct L1 size.

    With a *runtime*, the whole (benchmark x L1 size) grid goes through the
    supervised evaluation pool as one batch — parallel across workers, with
    per-job retries, and checkpointed to the runtime's journal so an
    interrupted profiling run resumes where it stopped.
    """
    db = BenchmarkProfileDB(machine=machine, n_mem=n_mem, seed=seed)
    if runtime is not None:
        from repro.runtime.evaluate import EvaluationRequest

        requests = []
        slots: "list[tuple[str, int, str]]" = []
        for profile in benchmarks:
            trace = profile.trace(n_mem, seed=seed)
            for l1_size in machine.distinct_l1_sizes:
                config = machine.config_for_l1(l1_size)
                key = (
                    f"{profile.name}|n_mem={n_mem}|seed={seed}|warm={warm}"
                    f"|{config.cache_key()}"
                )
                slots.append((profile.name, l1_size, key))
                requests.append(EvaluationRequest(
                    key=key, config=config, trace=trace, seed=seed, warm=warm
                ))
        measured = runtime.evaluate_many(requests)
        for name, l1_size, key in slots:
            db.stats[(name, l1_size)] = measured[key]
        return db
    for profile in benchmarks:
        trace = profile.trace(n_mem, seed=seed)
        for l1_size in machine.distinct_l1_sizes:
            config = machine.config_for_l1(l1_size)
            _, stats = simulate_and_measure(config, trace, seed=seed, warm=warm)
            db.stats[(profile.name, l1_size)] = stats
    return db
