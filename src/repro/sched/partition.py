"""Memory parallelism partition (paper future work, Section VII).

"We also plan to explore various methods to implement LPM, including
memory parallelism partition ..." — dividing the shared memory system's
concurrency among co-running applications instead of letting them contend
freely.  This module implements bandwidth partitioning of the shared L2 on
the Case Study II machine:

* each application *i* receives a share ``s_i`` of the L2's service
  capacity and experiences M/M/1-style queueing against its own slice:
  ``inflation_i = service * rho_i / (1 - rho_i)`` with
  ``rho_i = demand_i / (s_i * capacity)``;
* :func:`equal_shares` and :func:`demand_proportional_shares` are the
  obvious baselines;
* :func:`lpm_guided_shares` allocates by the LPM information — each
  application's measured L2 demand *and* its sensitivity (per-instruction
  L2 traffic times its unoverlapped exposure, the same quantities Eq. (13)
  combines).  The allocation solves the KKT conditions of minimizing total
  extra stall: every application gets its demand plus headroom
  proportional to the square root of (sensitivity x demand), the classic
  square-root capacity rule.

Partitioning trades pooling efficiency for isolation: the benchmark
(``bench_partition.py``) shows the LPM-guided partition protecting
sensitive applications — raising the harmonic weighted speedup — where
free-for-all sharing lets bandwidth hogs tax everyone.
"""

from __future__ import annotations

import math

from repro.sched.contention import CoRunOutcome, L2ContentionModel
from repro.sched.nuca import BenchmarkProfileDB, NUCAMachine
from repro.util.validation import require

__all__ = [
    "equal_shares",
    "demand_proportional_shares",
    "lpm_guided_shares",
    "co_run_partitioned",
]

#: Per-slice utilization cap (same role as the pooled model's cap).
_MAX_RHO = 0.95
_MAX_INFLATION = 20.0


def _demands_and_sensitivities(
    assigned: "list[tuple[str, int]]",
    db: BenchmarkProfileDB,
    model: L2ContentionModel,
) -> tuple[list[float], list[float]]:
    demands, sens = [], []
    for benchmark, l1_size in assigned:
        stats = db.get(benchmark, l1_size)
        demands.append(model._l2_rate(stats))
        sens.append(model._l2_apki(stats) * (1.0 - stats.overlap_ratio_cm))
    return demands, sens


def equal_shares(n: int) -> list[float]:
    """Uniform 1/n capacity slices."""
    require(n > 0, "need at least one application")
    return [1.0 / n] * n


def demand_proportional_shares(
    assigned: "list[tuple[str, int]]",
    db: BenchmarkProfileDB,
    machine: NUCAMachine,
) -> list[float]:
    """Slices proportional to each application's standalone L2 demand."""
    model = L2ContentionModel(machine)
    demands, _ = _demands_and_sensitivities(assigned, db, model)
    total = sum(demands)
    if total <= 0:
        return equal_shares(len(assigned))
    return [d / total for d in demands]


def lpm_guided_shares(
    assigned: "list[tuple[str, int]]",
    db: BenchmarkProfileDB,
    machine: NUCAMachine,
) -> list[float]:
    """Square-root-rule allocation minimizing total extra stall.

    Minimizing ``sum_i sens_i * service * d_i / (c_i - d_i)`` over slice
    capacities ``c_i`` with ``sum c_i = C`` yields
    ``c_i = d_i + headroom * sqrt(sens_i * d_i) / sum_j sqrt(sens_j * d_j)``
    where ``headroom = C - sum d_i``.  Applications whose stall is most
    sensitive to queueing receive the most headroom — the LPM measurement
    (demand and exposure) is exactly the information required.

    Falls back to demand-proportional shares when aggregate demand exceeds
    capacity (no headroom to distribute).
    """
    model = L2ContentionModel(machine)
    demands, sens = _demands_and_sensitivities(assigned, db, model)
    capacity = model.l2_capacity
    total_demand = sum(demands)
    headroom = capacity - total_demand
    if headroom <= 0:
        return demand_proportional_shares(assigned, db, machine)
    weights = [math.sqrt(max(s, 1e-12) * max(d, 1e-12)) for s, d in zip(sens, demands)]
    wsum = sum(weights)
    if wsum <= 0:
        return equal_shares(len(assigned))
    slices = [d + headroom * w / wsum for d, w in zip(demands, weights)]
    total = sum(slices)
    require(total > 0, "slice capacities must sum to a positive total")
    return [c / total for c in slices]


def co_run_partitioned(
    assigned: "list[tuple[str, int]]",
    db: BenchmarkProfileDB,
    machine: NUCAMachine,
    shares: "list[float] | None" = None,
) -> list[CoRunOutcome]:
    """Predict per-application shared IPC under a bandwidth partition.

    ``shares`` must be positive and sum to ~1 (validated); defaults to the
    LPM-guided allocation.
    """
    require(bool(assigned), "assignment must be non-empty")
    if shares is None:
        shares = lpm_guided_shares(assigned, db, machine)
    require(len(shares) == len(assigned), "one share per application required")
    require(all(s > 0 for s in shares), "shares must be positive")
    require(abs(sum(shares) - 1.0) < 1e-6, "shares must sum to 1")

    model = L2ContentionModel(machine)
    outcomes = []
    for (benchmark, l1_size), share in zip(assigned, shares):
        stats = db.get(benchmark, l1_size)
        slice_capacity = share * model.l2_capacity
        demand = model._l2_rate(stats)
        rho = min(demand / slice_capacity if slice_capacity > 0 else _MAX_RHO, _MAX_RHO)
        inflation = min(
            model.l2_service * rho / (1.0 - rho), model.l2_service * _MAX_INFLATION
        )
        exposure = 1.0 - stats.overlap_ratio_cm
        extra = model._l2_apki(stats) * inflation * exposure
        cpi_shared = stats.cpi + extra
        outcomes.append(
            CoRunOutcome(
                benchmark=benchmark,
                l1_size=l1_size,
                ipc_alone=stats.ipc,
                ipc_shared=1.0 / cpi_shared,
                extra_stall_per_instruction=extra,
            )
        )
    return outcomes
