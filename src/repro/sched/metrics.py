"""Multiprogram throughput/fairness metrics for Case Study II.

The paper evaluates scheduling with the Harmonic Weighted Speedup ``Hsp``
of Luo, Gummaraju and Franklin (ISPASS'01), which balances throughput and
fairness::

    Hsp = N / sum_i (IPC_alone_i / IPC_shared_i)

``Hsp`` is the harmonic mean of the per-application *speedups* relative to
running alone; it is 1.0 for interference-free execution and decreases as
any application is slowed (a single starved application drags the harmonic
mean down — hence the fairness emphasis).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.util.validation import require

__all__ = [
    "harmonic_weighted_speedup",
    "weighted_speedup",
    "fairness_index",
    "slowdowns",
]


def _check_pairs(ipc_alone: Sequence[float], ipc_shared: Sequence[float]) -> None:
    require(len(ipc_alone) == len(ipc_shared), "IPC vectors must have equal length")
    require(len(ipc_alone) > 0, "need at least one application")
    for i, (a, s) in enumerate(zip(ipc_alone, ipc_shared)):
        require(a > 0, f"IPC_alone[{i}] must be > 0, got {a}")
        require(s > 0, f"IPC_shared[{i}] must be > 0, got {s}")


def slowdowns(ipc_alone: Sequence[float], ipc_shared: Sequence[float]) -> list[float]:
    """Per-application slowdown ``IPC_alone / IPC_shared`` (>= 1 normally)."""
    _check_pairs(ipc_alone, ipc_shared)
    return [a / s for a, s in zip(ipc_alone, ipc_shared)]


def harmonic_weighted_speedup(
    ipc_alone: Sequence[float], ipc_shared: Sequence[float]
) -> float:
    """``Hsp = N / sum_i slowdown_i`` — the Fig. 8 metric."""
    sd = slowdowns(ipc_alone, ipc_shared)
    return len(sd) / sum(sd)


def weighted_speedup(ipc_alone: Sequence[float], ipc_shared: Sequence[float]) -> float:
    """Arithmetic weighted speedup ``sum_i IPC_shared_i/IPC_alone_i`` (throughput)."""
    _check_pairs(ipc_alone, ipc_shared)
    return sum(s / a for a, s in zip(ipc_alone, ipc_shared))


def fairness_index(ipc_alone: Sequence[float], ipc_shared: Sequence[float]) -> float:
    """Min/max ratio of per-application speedups (1.0 = perfectly fair)."""
    sd = slowdowns(ipc_alone, ipc_shared)
    return min(sd) / max(sd)
