"""Command-line interface: ``python -m repro <command>``.

Thin wrappers over the library so the core workflows run without writing
Python:

``python -m repro simulate --benchmark 410.bwaves --config D``
    Simulate one benchmark on one configuration and print the per-layer
    C-AMAT decomposition plus the LPM snapshot.

``python -m repro walk --benchmark 410.bwaves --delta 140``
    Run the LPM algorithm over the Table I ladder and print the walk.

``python -m repro sweep --benchmark 403.gcc``
    APC1/APC2 across private L1 sizes (one row of Figs. 6/7).
    ``--fidelity surrogate|multi`` ranks with the tier-0 analytical
    surrogate instead of (or before) the engine.

``python -m repro surrogate validate``
    Calibration report: tier-0 predictions vs the cycle-accurate engine
    across the SPEC profile set (docs/PERFORMANCE.md, "Multi-fidelity").

``python -m repro schedule``
    The Fig. 8 experiment: profile the 16 benchmarks on the NUCA machine
    and compare Random / Round-Robin / NUCA-SA.

``python -m repro diagnose --benchmark 429.mcf --config A``
    Measure, then print the bottleneck diagnosis and the recommended
    techniques from the paper's "technique pool".

``python -m repro bench run|compare``
    Fast-vs-reference engine throughput A/B; ``compare`` gates the speedup
    ratio against ``benchmarks/baseline_engine_perf.json``.

``python -m repro serve --port 0 --workers 2``
    Run the evaluation service (docs/ROBUSTNESS.md, "Service layer"):
    concurrent clients submit (trace, config) jobs over a line-delimited
    JSON socket and share one journal/evalcache-backed runtime.

``python -m repro submit --port 4000 --benchmark 403.gcc --configs A,B,C``
    Submit a batch of design points to a running ``serve`` instance and
    print the terminal replies as JSON.

``python -m repro benchmarks``
    List the available benchmark profiles.

``python -m repro lint``
    Run the repo's model-aware static analyzer (docs/STATIC_ANALYSIS.md);
    exit 1 on any violation.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

__all__ = ["main", "build_parser"]

KB = 1024


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="LPM (ICPP'15) reproduction — simulate, measure, optimize.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Observability flags shared by every measurement-producing command.
    obs = argparse.ArgumentParser(add_help=False)
    obs.add_argument("--trace", default=None, metavar="PATH", dest="trace_path",
                     help="append a JSONL span trace to PATH "
                          "(schema: docs/OBSERVABILITY.md)")
    obs.add_argument("--metrics", default=None, choices=("text", "json"),
                     help="collect the repro.obs metrics registry and print "
                          "it after the command")

    # Persistent evaluation cache, shared by the measurement-loop commands.
    cache_p = argparse.ArgumentParser(add_help=False)
    cache_p.add_argument("--eval-cache", default=None, metavar="PATH",
                         dest="eval_cache",
                         help="persistent evaluation-cache directory; "
                              "repeated runs recall identical measurements "
                              "instead of re-simulating "
                              "(keyed on trace content + config + seed + "
                              "engine version)")

    # Multi-fidelity knobs shared by the exploration commands.
    fid_p = argparse.ArgumentParser(add_help=False)
    fid_p.add_argument("--fidelity", choices=("engine", "surrogate", "multi"),
                       default="engine",
                       help="'engine' simulates everything; 'surrogate' "
                            "predicts everything with the tier-0 model; "
                            "'multi' ranks with the surrogate and escalates "
                            "only the top-K/margin frontier to the engine")
    fid_p.add_argument("--top-k", type=int, default=8, dest="top_k",
                       help="tie classes escalated under --fidelity multi")
    fid_p.add_argument("--margin", type=float, default=0.05,
                       help="also escalate every class within this fraction "
                            "of the best prediction (error-margin awareness)")

    sim = sub.add_parser("simulate", parents=[obs],
                         help="simulate one benchmark on one configuration")
    sim.add_argument("--benchmark", default="410.bwaves",
                     help="profile name, e.g. 410.bwaves or just bwaves")
    sim.add_argument("--config", default="A",
                     help="Table I configuration label A..E, or 'default'")
    sim.add_argument("--accesses", type=int, default=30_000,
                     help="memory accesses to generate")
    sim.add_argument("--seed", type=int, default=7)

    walk = sub.add_parser("walk", parents=[obs, cache_p, fid_p],
                          help="run the LPM algorithm over the A..E ladder")
    walk.add_argument("--benchmark", default="410.bwaves")
    walk.add_argument("--delta", type=float, default=140.0,
                      help="stall target as %% of CPI_exe (substrate-scaled)")
    walk.add_argument("--accesses", type=int, default=30_000)
    walk.add_argument("--seed", type=int, default=7)
    walk.add_argument("--no-trim", action="store_true",
                      help="disable the Case III over-provision trim")
    walk.add_argument("--fault-rate", type=float, default=0.0,
                      help="inject measurement faults at this overall rate "
                           "(spread over NaN/drop/truncate/exception kinds)")
    walk.add_argument("--fault-seed", type=int, default=0,
                      help="seed for the fault-injection RNG")

    sweep = sub.add_parser("sweep", parents=[obs, cache_p, fid_p],
                           help="APC1/APC2 across private L1 sizes")
    sweep.add_argument("--benchmark", default="403.gcc")
    sweep.add_argument("--accesses", type=int, default=20_000)
    sweep.add_argument("--seed", type=int, default=3)
    sweep.add_argument("--sizes", default="4,16,32,64",
                       help="comma-separated L1 sizes in KB")
    sweep.add_argument("--engine", choices=("auto", "batch", "scalar"),
                       default="auto",
                       help="'auto' steps every batch-eligible config per "
                            "kernel call, 'batch' requires all configs "
                            "eligible, 'scalar' forces per-config runs "
                            "(all bit-identical)")

    sched = sub.add_parser("schedule", parents=[obs, cache_p],
                           help="the Fig. 8 scheduling comparison")
    sched.add_argument("--accesses", type=int, default=12_000,
                       help="profiling accesses per (benchmark, L1 size)")
    sched.add_argument("--seed", type=int, default=3)
    sched.add_argument("--random-seeds", type=int, default=5)
    sched.add_argument("--workers", type=int, default=0,
                       help="profile on this many worker processes "
                            "(0 = in-process)")
    sched.add_argument("--journal", default=None, metavar="PATH",
                       help="JSONL checkpoint journal; an interrupted "
                            "profiling run resumes from it")

    prof = sub.add_parser(
        "profile", parents=[obs],
        help="per-phase timing profile of the simulate-and-measure pipeline",
    )
    prof.add_argument("--benchmark", default="403.gcc")
    prof.add_argument("--config", default="default",
                      help="Table I configuration label A..E, or 'default'")
    prof.add_argument("--accesses", type=int, default=30_000)
    prof.add_argument("--seed", type=int, default=7)
    prof.add_argument("--rounds", type=int, default=3,
                      help="repetitions; each phase keeps its best time")
    prof.add_argument("--json", action="store_true", dest="as_json",
                      help="emit the structured report as JSON")

    diag = sub.add_parser("diagnose",
                          help="bottleneck diagnosis + technique recommendations")
    diag.add_argument("--benchmark", default="410.bwaves")
    diag.add_argument("--config", default="A")
    diag.add_argument("--accesses", type=int, default=20_000)
    diag.add_argument("--seed", type=int, default=7)

    bench = sub.add_parser(
        "bench",
        help="engine throughput A/B: fast-vs-reference or batch-vs-scalar "
             "(run / compare)",
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bcommon = argparse.ArgumentParser(add_help=False)
    bcommon.add_argument("--kind", choices=("engine", "batch", "surrogate"),
                         default="engine",
                         help="'engine' = fast vs reference on one config; "
                              "'batch' = batch kernel vs N scalar fast "
                              "paths on a Table I knob slice; 'surrogate' = "
                              "tier-0 multi-fidelity sweep vs engine-only on "
                              "the same slice (speedup + frontier agreement)")
    bcommon.add_argument("--benchmark", default="403.gcc",
                         help="SPEC profile for --kind engine (--kind "
                              "batch/surrogate always use the synthetic "
                              "lpm-batch-gate workload)")
    bcommon.add_argument("--accesses", type=int, default=10_000)
    bcommon.add_argument("--configs", type=int, default=64, dest="n_configs",
                         help="design-space slice size for --kind batch")
    bcommon.add_argument("--rounds", type=int, default=3,
                         help="timing repetitions; each engine keeps its best")
    brun = bench_sub.add_parser(
        "run", parents=[bcommon],
        help="measure both engines and print/record the speedup ratio",
    )
    brun.add_argument("--json", default=None, metavar="PATH", dest="json_path",
                      help="also write the JSON record to PATH (use as the "
                           "committed baseline)")
    bcmp = bench_sub.add_parser(
        "compare", parents=[bcommon],
        help="A/B the current tree against a recorded baseline; exit 1 on "
             "regression past the tolerance",
    )
    bcmp.add_argument("--baseline", default=None, metavar="PATH",
                      help="baseline record (default: benchmarks/"
                           "baseline_engine_perf.json or "
                           "baseline_batch_perf.json per --kind)")
    bcmp.add_argument("--tolerance", type=float, default=0.2,
                      help="allowed fractional speedup regression "
                           "(default 0.2 = 20%%)")
    bcmp.add_argument("--min-speedup", type=float, default=0.0,
                      dest="min_speedup",
                      help="absolute speedup floor on top of the relative "
                           "tolerance (e.g. 4.0 for the batch gate)")
    bcmp.add_argument("--out", default=None, metavar="PATH",
                      help="write the comparison record to PATH; default: "
                           "the next free BENCH_<n>.json beside the baseline")

    serve = sub.add_parser(
        "serve", parents=[obs, cache_p],
        help="run the evaluation service (line-delimited JSON over TCP)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port; 0 binds an ephemeral port and prints "
                            "the bound one (default: 0)")
    serve.add_argument("--workers", type=int, default=0,
                       help="evaluation worker processes (0 = in-process)")
    serve.add_argument("--journal", default=None, metavar="PATH",
                       help="JSONL checkpoint journal; a restarted server "
                            "replays finished jobs from it")
    serve.add_argument("--max-batch", type=int, default=4,
                       help="jobs dispatched to the pool per batch")
    serve.add_argument("--max-queued", type=int, default=64,
                       help="global admission bound; past it submissions "
                            "are rejected with a retry-after hint")
    serve.add_argument("--max-queued-per-client", type=int, default=16,
                       help="per-client admission bound")

    smt = sub.add_parser(
        "submit", parents=[obs],
        help="submit a batch of design points to a running `serve` instance",
    )
    smt.add_argument("--host", default="127.0.0.1")
    smt.add_argument("--port", type=int, required=True)
    smt.add_argument("--benchmark", default="410.bwaves")
    smt.add_argument("--configs", default="A",
                     help="comma-separated Table I labels to evaluate")
    smt.add_argument("--accesses", type=int, default=20_000)
    smt.add_argument("--seed", type=int, default=7)
    smt.add_argument("--client-id", default="cli")
    smt.add_argument("--timeout", type=float, default=120.0, dest="timeout_s",
                     help="overall budget for submit + wait, seconds")

    sub.add_parser("benchmarks", help="list available benchmark profiles")

    surr = sub.add_parser(
        "surrogate",
        help="tier-0 analytical surrogate tooling (validate)",
    )
    surr_sub = surr.add_subparsers(dest="surrogate_command", required=True)
    sval = surr_sub.add_parser(
        "validate", parents=[obs],
        help="calibrate the tier-0 predictor against the cycle-accurate "
             "engine across the SPEC profile set",
    )
    sval.add_argument("--benchmarks", default=None,
                      help="comma-separated profile names "
                           "(default: the selected 16)")
    sval.add_argument("--config", default="default",
                      help="Table I configuration label A..E, or 'default'")
    sval.add_argument("--accesses", type=int, default=20_000)
    sval.add_argument("--seed", type=int, default=3)
    sval.add_argument("--json", action="store_true", dest="as_json",
                      help="emit the structured report as JSON")

    lint = sub.add_parser(
        "lint",
        help="run the repo's AST static-analysis suite (determinism, "
             "numerical safety, taxonomy, concurrency, contracts)",
    )
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files/directories to lint (default: the "
                           "installed repro package source)")
    lint.add_argument("--json", action="store_true", dest="as_json",
                      help="emit a machine-readable JSON report "
                           "(alias for --format json)")
    lint.add_argument("--format", default=None, dest="lint_format",
                      choices=("text", "json", "sarif"),
                      help="report format (default: text)")
    lint.add_argument("--rules", default=None,
                      help="comma-separated rule names to run "
                           "(default: all registered rules)")
    lint.add_argument("--list-rules", action="store_true",
                      help="list registered rules and exit")
    lint.add_argument("--program", action="store_true",
                      help="also run the whole-program analysis "
                           "(call graph, purity, fork safety, RNG "
                           "provenance: RACE/PURE/FLOW/SUP rules)")
    lint.add_argument("--baseline", default=None, metavar="PATH",
                      dest="lint_baseline",
                      help="baseline file of grandfathered program "
                           "findings (default: lint-baseline.json beside "
                           "the linted tree, when present)")
    lint.add_argument("--update-baseline", action="store_true",
                      help="rewrite the baseline file with the current "
                           "program findings instead of failing on them")
    lint.add_argument("--output", default=None, metavar="PATH",
                      dest="lint_output",
                      help="also write the report to PATH")
    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.core import format_layer_measurement, format_lpmr_report
    from repro.sim import DEFAULT_MACHINE, simulate_and_measure, table1_config
    from repro.workloads import get_benchmark

    config = (
        DEFAULT_MACHINE if args.config.lower() == "default"
        else table1_config(args.config)
    )
    trace = get_benchmark(args.benchmark).trace(args.accesses, seed=args.seed)
    print(f"workload: {trace}")
    print(f"machine:  {config.name} {config.knob_summary()}\n")
    _, stats = simulate_and_measure(config, trace, seed=0)
    print(format_layer_measurement("L1", stats.l1))
    print()
    print(format_layer_measurement("L2 (LLC)", stats.l2))
    print()
    if stats.mem.accesses:
        print(format_layer_measurement("Main memory", stats.mem))
        print()
    print(format_lpmr_report(stats.lpmr_report()))
    return 0


def _cmd_walk(args: argparse.Namespace) -> int:
    from repro.core import LPMAlgorithm, format_run_result
    from repro.reconfig import LadderBackend
    from repro.sim import table1_config
    from repro.workloads import get_benchmark

    trace = get_benchmark(args.benchmark).trace(args.accesses, seed=args.seed)
    runtime = None
    if args.fault_rate > 0.0 or args.eval_cache is not None:
        from repro.runtime import EvaluationRuntime, FaultConfig

        faults = (
            FaultConfig.uniform(args.fault_rate, seed=args.fault_seed)
            if args.fault_rate > 0.0 else None
        )
        runtime = EvaluationRuntime(faults=faults, cache=args.eval_cache)
    backend = LadderBackend(
        [table1_config(c) for c in "ABCD"], trace,
        deprovision_configs=[table1_config("E")],
        runtime=runtime,
        fidelity=args.fidelity, top_k=args.top_k, margin=args.margin,
    )
    algo = LPMAlgorithm(delta_percent=args.delta, delta_slack_fraction=0.5,
                        max_steps=10)
    result = algo.run(backend, allow_deprovision=not args.no_trim)
    print(format_run_result(result))
    print(f"\nsimulations spent: {backend.log.evaluations}")
    if backend.log.predicted:
        print(f"pruned by tier-0 surrogate: {backend.log.predicted}")
    if args.eval_cache is not None:
        print(f"recalled from cache/journal: {backend.log.cached}")
    if runtime is not None and args.fault_rate > 0.0:
        print(f"measurement retries under {args.fault_rate:.0%} fault "
              f"injection: {runtime.counters.retries}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis import sweep_configs
    from repro.core import render_table
    from repro.sched import NUCAMachine
    from repro.sim.batch import partition_eligible
    from repro.workloads import get_benchmark

    sizes_kb = [int(s) for s in args.sizes.split(",") if s]
    trace = get_benchmark(args.benchmark).trace(args.accesses, seed=args.seed)
    base = NUCAMachine().base_config
    configs = [
        base.with_knobs(l1_size_bytes=kb * KB, name=f"L1-{kb}KB")
        for kb in sizes_kb
    ]
    runtime = None
    if args.eval_cache is not None:
        from repro.runtime import EvaluationRuntime

        runtime = EvaluationRuntime(cache=args.eval_cache)
    if args.fidelity == "surrogate":
        print(f"fidelity: surrogate ({len(configs)} tier-0 predictions, "
              "no simulation)")
    elif args.engine == "scalar":
        print(f"engine: scalar ({len(configs)} per-config simulations)")
    else:
        eligible, fallback = partition_eligible(configs)
        print(f"engine: {args.engine} ({len(configs)}-lane batch: "
              f"{len(eligible)} eligible, {len(fallback)} scalar fallback)")
    result = sweep_configs(configs, trace, seed=0, runtime=runtime,
                           engine=args.engine, fidelity=args.fidelity,
                           top_k=args.top_k, margin=args.margin)
    rows = [
        (label, st.apc1, st.apc2, st.mr1_conventional, st.ipc)
        for label, st in zip(result.labels, result.stats)
    ]
    print(render_table(
        ["L1 size", "APC1", "APC2", "MR1", "IPC"], rows, float_fmt="{:.4f}",
        title=f"{args.benchmark}: L1-size sweep (Figs. 6/7 quantities)",
    ))
    if result.n_predicted:
        print(f"\nfidelity {args.fidelity}: {result.n_simulated} simulated, "
              f"{result.n_predicted} predicted by the tier-0 surrogate")
    if runtime is not None:
        print(f"\nevaluations: {runtime.counters.simulations} simulated, "
              f"{runtime.counters.cache_hits} recalled from cache")
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.analysis import hsp_text
    from repro.sched import (
        NUCAMachine,
        evaluate_schedule,
        nuca_sa,
        profile_benchmarks,
        random_schedule,
        round_robin_schedule,
    )
    from repro.workloads import SELECTED_16, get_benchmark

    machine = NUCAMachine()
    print(f"profiling {len(SELECTED_16)} benchmarks x "
          f"{len(machine.distinct_l1_sizes)} L1 sizes...")
    runtime = None
    if args.workers > 0 or args.journal is not None or args.eval_cache is not None:
        from repro.runtime import EvaluationRuntime, PoolConfig

        runtime = EvaluationRuntime(
            pool=PoolConfig(max_workers=args.workers), journal=args.journal,
            cache=args.eval_cache,
        )
    db = profile_benchmarks(
        machine, [get_benchmark(n) for n in SELECTED_16],
        n_mem=args.accesses, seed=args.seed, runtime=runtime,
    )
    if runtime is not None and runtime.counters.journal_hits:
        print(f"resumed {runtime.counters.journal_hits} profiles from "
              f"{args.journal} ({runtime.counters.simulations} simulated)")
    if runtime is not None and runtime.counters.cache_hits:
        print(f"recalled {runtime.counters.cache_hits} profiles from "
              f"{args.eval_cache} ({runtime.counters.simulations} simulated)")
    apps = list(SELECTED_16)
    results = {
        f"Random (avg of {args.random_seeds})": float(np.mean([
            evaluate_schedule(random_schedule(apps, machine, seed=s), db, machine).hsp
            for s in range(args.random_seeds)
        ])),
        "Round Robin": evaluate_schedule(
            round_robin_schedule(apps, machine), db, machine
        ).hsp,
        "NUCA-SA (cg)": evaluate_schedule(
            nuca_sa(apps, machine, db, grain="coarse"), db, machine
        ).hsp,
        "NUCA-SA (fg)": evaluate_schedule(
            nuca_sa(apps, machine, db, grain="fine"), db, machine
        ).hsp,
    }
    print()
    print(hsp_text(results))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import json

    from repro.obs import format_profile_report, profile_run
    from repro.sim import DEFAULT_MACHINE, table1_config
    from repro.workloads import get_benchmark

    config = (
        DEFAULT_MACHINE if args.config.lower() == "default"
        else table1_config(args.config)
    )
    trace = get_benchmark(args.benchmark).trace(args.accesses, seed=args.seed)
    _, report = profile_run(config, trace, seed=0, rounds=args.rounds)
    if args.as_json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(format_profile_report(report))
    return 0


def _cmd_diagnose(args: argparse.Namespace) -> int:
    from repro.core.diagnosis import render_diagnosis
    from repro.sim import DEFAULT_MACHINE, simulate_and_measure, table1_config
    from repro.workloads import get_benchmark

    config = (
        DEFAULT_MACHINE if args.config.lower() == "default"
        else table1_config(args.config)
    )
    trace = get_benchmark(args.benchmark).trace(args.accesses, seed=args.seed)
    _, stats = simulate_and_measure(config, trace, seed=0)
    print(f"workload: {trace}")
    print(f"machine:  {config.name} {config.knob_summary()}\n")
    print(render_diagnosis(stats, config))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    import repro
    from repro.lint import (
        ASTCache,
        format_json,
        format_rule_listing,
        format_text,
        run_lint,
    )

    if args.list_rules:
        print(format_rule_listing())
        return 0
    fmt = args.lint_format or ("json" if args.as_json else "text")
    paths = args.paths or [Path(repro.__file__).parent]
    requested = (
        [r.strip() for r in args.rules.split(",") if r.strip()] if args.rules else None
    )
    file_rules = program_rules = None
    if requested is not None:
        from repro.lint import RULES
        from repro.lint.program import PROGRAM_RULES

        file_rules = [r for r in requested if r in RULES]
        program_rules = [r for r in requested if r in PROGRAM_RULES]
        unknown = sorted(set(requested) - set(file_rules) - set(program_rules))
        if unknown:
            known = ", ".join(sorted([*RULES, *PROGRAM_RULES]))
            raise KeyError(
                f"unknown lint rule(s) {', '.join(unknown)} (known rules: {known})"
            )
        if program_rules and not args.program:
            raise ValueError(
                f"rule(s) {', '.join(program_rules)} are whole-program rules; "
                "add --program to run them"
            )

    # One shared AST cache: the per-file engine and the program analyzer
    # parse each file exactly once between them.
    cache = ASTCache()
    result = run_lint(paths, rules=file_rules, cache=cache)
    program_result = None
    if args.program:
        from repro.lint.program import load_baseline, run_program_lint, write_baseline

        baseline_path = Path(args.lint_baseline or "lint-baseline.json")
        baseline = load_baseline(baseline_path)
        program_result = run_program_lint(
            paths, rules=program_rules, cache=cache, baseline=baseline
        )
        if args.update_baseline:
            write_baseline(baseline_path, program_result.baseline_entries)
            print(
                f"wrote {baseline_path} "
                f"({len(program_result.baseline_entries)} entries)"
            )
            return 0

    if fmt == "sarif":
        from repro.lint.sarif import format_sarif

        violations = list(result.violations)
        baselined = []
        if program_result is not None:
            violations.extend(program_result.violations)
            baselined = program_result.baselined
        text = format_sarif(sorted(violations), baselined=baselined)
    elif fmt == "json":
        payload = json.loads(format_json(result))
        if program_result is not None:
            program_payload = dict(program_result.summary())
            program_payload["violations"] = [
                v.to_dict() for v in program_result.violations
            ]
            program_payload["baselined_violations"] = [
                v.to_dict() for v in program_result.baselined
            ]
            payload["program"] = program_payload
        text = json.dumps(payload, indent=2, sort_keys=True)
    else:
        from repro.lint.reporters import format_program_text

        parts = [format_text(result)]
        if program_result is not None:
            parts.append(format_program_text(program_result))
        text = "\n".join(parts)
    print(text)
    if args.lint_output:
        Path(args.lint_output).write_text(text + "\n", encoding="utf-8")
    ok = result.ok and (program_result is None or program_result.ok)
    return 0 if ok else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.obs.bench import (
        compare_benchmarks,
        format_bench_record,
        measure_batch_throughput,
        measure_engine_throughput,
    )

    if args.kind == "batch":
        record = measure_batch_throughput(
            n_configs=args.n_configs, accesses=args.accesses,
            rounds=args.rounds,
        )
    elif args.kind == "surrogate":
        from repro.obs.bench import measure_surrogate_throughput

        record = measure_surrogate_throughput(
            n_configs=args.n_configs, accesses=args.accesses,
            rounds=args.rounds,
        )
    else:
        record = measure_engine_throughput(
            args.benchmark, accesses=args.accesses, rounds=args.rounds
        )
    if args.bench_command == "run":
        print(format_bench_record(record))
        if args.json_path is not None:
            Path(args.json_path).write_text(
                json.dumps(record, indent=2, sort_keys=True) + "\n"
            )
            print(f"\nwrote {args.json_path}")
        return 0 if record["identical"] else 2
    baseline_default = {
        "batch": "benchmarks/baseline_batch_perf.json",
        "surrogate": "benchmarks/baseline_surrogate_perf.json",
    }.get(args.kind, "benchmarks/baseline_engine_perf.json")
    baseline_path = Path(args.baseline or baseline_default)
    baseline = json.loads(baseline_path.read_text())
    ok, lines = compare_benchmarks(record, baseline, tolerance=args.tolerance,
                                   min_speedup=args.min_speedup)
    print(format_bench_record(record))
    print()
    print("\n".join(lines))
    out = args.out
    if out is None:
        n = 1
        while (baseline_path.parent / f"BENCH_{n}.json").exists():
            n += 1
        out = baseline_path.parent / f"BENCH_{n}.json"
    Path(out).write_text(json.dumps(
        {"current": record, "baseline": baseline,
         "tolerance": args.tolerance, "ok": ok},
        indent=2, sort_keys=True,
    ) + "\n")
    print(f"\nwrote {out}")
    return 0 if ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.runtime import EvaluationRuntime, PoolConfig
    from repro.service import (
        AdmissionConfig,
        EvaluationServer,
        SchedulerConfig,
        ServerConfig,
    )

    runtime = EvaluationRuntime(
        pool=PoolConfig(max_workers=args.workers),
        journal=args.journal,
        cache=args.eval_cache,
    )
    config = ServerConfig(
        host=args.host,
        port=args.port,
        scheduler=SchedulerConfig(
            max_batch=args.max_batch,
            admission=AdmissionConfig(
                max_queued_total=args.max_queued,
                max_queued_per_client=args.max_queued_per_client,
            ),
        ),
    )

    async def serve() -> None:
        server = EvaluationServer(runtime, config=config)
        await server.start()
        # Scripts read this line to learn the ephemeral port.
        print(f"serving on {config.host}:{server.port}", flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, stop.set)
        try:
            await stop.wait()
        finally:
            for sig in (signal.SIGINT, signal.SIGTERM):
                loop.remove_signal_handler(sig)
            print("draining...", file=sys.stderr, flush=True)
            await server.stop()
            stats = server.scheduler.stats()
            by_status = ", ".join(
                f"{n} {status}" for status, n in sorted(stats["jobs"].items())
            ) or "0"
            print(
                f"drained: {by_status} "
                f"({stats['runtime']['simulations']} simulated), "
                f"{server.connections} connections",
                file=sys.stderr,
            )

    asyncio.run(serve())
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from repro.service import JobStatus, run_jobs
    from repro.workloads import get_benchmark

    labels = [c.strip() for c in args.configs.split(",") if c.strip()]
    if not labels:
        raise ValueError("--configs must name at least one configuration")
    profile = get_benchmark(args.benchmark)
    trace = profile.trace(args.accesses, seed=args.seed)
    specs = [
        {
            "job_id": f"{profile.name}:{label}:{args.seed}",
            "config": {"label": label},
            "seed": 0,
            "warm": True,
        }
        for label in labels
    ]
    results = run_jobs(
        args.host, args.port, trace, specs,
        client_id=args.client_id, timeout_s=args.timeout_s,
    )
    print(json.dumps(results, indent=2, sort_keys=True))
    ok = all(r.get("status") == JobStatus.DONE for r in results.values())
    return 0 if ok else 2


def _cmd_surrogate(args: argparse.Namespace) -> int:
    import json

    from repro.analysis import format_validation_report, validate_benchmarks
    from repro.sim import DEFAULT_MACHINE, table1_config
    from repro.workloads import SELECTED_16

    config = (
        DEFAULT_MACHINE if args.config.lower() == "default"
        else table1_config(args.config)
    )
    names = (
        [n.strip() for n in args.benchmarks.split(",") if n.strip()]
        if args.benchmarks else list(SELECTED_16)
    )
    report = validate_benchmarks(
        names, config, n_accesses=args.accesses, seed=args.seed
    )
    if args.as_json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(format_validation_report(report))
    return 0


def _cmd_benchmarks(_args: argparse.Namespace) -> int:
    from repro.workloads import BENCHMARKS

    for name in sorted(BENCHMARKS):
        p = BENCHMARKS[name]
        print(f"{name:18s} [{p.suite:3s}] f_mem={p.f_mem:.2f}  {p.description}")
    return 0


_COMMANDS = {
    "simulate": _cmd_simulate,
    "diagnose": _cmd_diagnose,
    "walk": _cmd_walk,
    "sweep": _cmd_sweep,
    "schedule": _cmd_schedule,
    "profile": _cmd_profile,
    "bench": _cmd_bench,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "surrogate": _cmd_surrogate,
    "benchmarks": _cmd_benchmarks,
    "lint": _cmd_lint,
}


def main(argv: "Sequence[str] | None" = None) -> int:
    """CLI entry point; returns the process exit code.

    Exit codes: 0 on success, 2 on any anticipated error (unknown
    benchmark/configuration, invalid parameter, failed measurement), 130 on
    interrupt — so shell scripts and CI can branch on the failure class
    instead of parsing tracebacks.
    """
    from repro.runtime.errors import ReproError

    args = build_parser().parse_args(argv)
    trace_path = getattr(args, "trace_path", None)
    metrics_format = getattr(args, "metrics", None)
    if trace_path is not None:
        from repro.obs import configure_tracing

        configure_tracing(trace_path)
    if metrics_format is not None:
        from repro.obs import set_metrics_enabled

        set_metrics_enabled(True)
    try:
        code = _COMMANDS[args.command](args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except (ReproError, KeyError, ValueError) as exc:
        # KeyError reprs its argument; unwrap for a clean one-line message.
        message = exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return 2
    finally:
        if trace_path is not None:
            from repro.obs import configure_tracing

            configure_tracing(None)  # flush + close the JSONL exporter
    if metrics_format is not None:
        from repro.obs import (
            format_metrics_json,
            format_metrics_text,
            get_registry,
            set_metrics_enabled,
        )

        # Snapshot-and-reset so in-process callers (tests, notebooks) can
        # invoke main() repeatedly without metrics bleeding across runs.
        snapshot = get_registry().snapshot_and_reset()
        set_metrics_enabled(False)
        fmt = format_metrics_json if metrics_format == "json" else format_metrics_text
        print()
        print(fmt(snapshot))
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
