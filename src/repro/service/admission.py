"""Admission control: bounded queues with per-client fairness.

The service never buffers unboundedly.  Submissions pass two gates — a
global cap and a per-client cap — and anything over either is rejected
*immediately* with an explicit ``retry_after_s`` hint, so a saturated
server degrades into visible backpressure rather than latent memory
growth.  Queued work drains in round-robin order across clients: a client
streaming hundreds of jobs cannot starve one submitting a single job,
because each pass over the ready clients takes at most one job from each.

The controller is a plain single-threaded data structure; the scheduler
drives it from the event loop, so no locking is needed (and none is
pretended).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.obs import metrics as obs_metrics
from repro.runtime.errors import ConfigError

__all__ = ["AdmissionConfig", "AdmissionController"]


@dataclass(frozen=True)
class AdmissionConfig:
    """Queue bounds and the backpressure hint."""

    #: Total jobs queued across all clients before global rejection.
    max_queued_total: int = 64
    #: Jobs one client may have queued before per-client rejection.
    max_queued_per_client: int = 16
    #: Base retry hint returned with a rejection; scaled by queue fullness
    #: so clients back off harder the deeper the overload.
    retry_after_s: float = 0.05

    def __post_init__(self) -> None:
        if self.max_queued_total < 1:
            raise ConfigError("max_queued_total must be >= 1")
        if self.max_queued_per_client < 1:
            raise ConfigError("max_queued_per_client must be >= 1")
        if self.retry_after_s <= 0:
            raise ConfigError("retry_after_s must be > 0")


class AdmissionController:
    """Bounded multi-client queue with round-robin fair dequeue."""

    def __init__(self, config: "AdmissionConfig | None" = None) -> None:
        self.config = config if config is not None else AdmissionConfig()
        self._queues: "dict[str, deque]" = {}
        #: Clients with queued work, in round-robin service order.
        self._ready: "deque[str]" = deque()
        self.queued = 0
        self.admitted = 0
        self.rejected = 0

    def __len__(self) -> int:
        return self.queued

    def pending(self, client: str) -> int:
        """Jobs currently queued for *client*."""
        queue = self._queues.get(client)
        return len(queue) if queue is not None else 0

    def try_admit(self, client: str, item: object) -> "float | None":
        """Admit *item* for *client*; ``None`` on success.

        On rejection returns the retry-after hint in seconds (the caller
        relays it to the client verbatim) and buffers nothing.
        """
        queue = self._queues.get(client)
        per_client = len(queue) if queue is not None else 0
        if (
            self.queued >= self.config.max_queued_total
            or per_client >= self.config.max_queued_per_client
        ):
            self.rejected += 1
            if obs_metrics.metrics_enabled():
                obs_metrics.get_registry().counter("service.admission.rejected").inc()
            fullness = self.queued / self.config.max_queued_total
            return self.config.retry_after_s * (1.0 + fullness)
        if queue is None:
            queue = self._queues[client] = deque()
        if not queue:
            self._ready.append(client)
        queue.append(item)
        self.queued += 1
        self.admitted += 1
        if obs_metrics.metrics_enabled():
            obs_metrics.get_registry().counter("service.admission.admitted").inc()
        return None

    def next(self) -> "object | None":
        """Dequeue the next job fairly, or ``None`` when empty.

        Takes one job from the client at the head of the ready ring, then
        rotates that client to the tail — strict round-robin across every
        client with pending work.
        """
        while self._ready:
            client = self._ready.popleft()
            queue = self._queues[client]
            if not queue:
                continue  # drained since it was enqueued on the ring
            item = queue.popleft()
            self.queued -= 1
            if queue:
                self._ready.append(client)
            return item
        return None

    def drain_all(self) -> "list[object]":
        """Remove and return every queued job (shutdown path)."""
        drained: "list[object]" = []
        for queue in self._queues.values():
            drained.extend(queue)
            queue.clear()
        self._ready.clear()
        self.queued = 0
        return drained
