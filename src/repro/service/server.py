"""The asyncio evaluation server.

One :class:`EvaluationServer` owns a listening socket, a trace registry,
and a :class:`~repro.service.scheduler.JobScheduler` over one
:class:`~repro.runtime.evaluate.EvaluationRuntime`.  Connections speak the
line-delimited JSON protocol of :mod:`repro.service.protocol`; each
connection is served by one task, and every await in the handler carries a
timeout — an idle or half-dead peer can hold a socket, never the server.

Client disconnects are routine, not errors: a dropped connection releases
its handler task immediately, while any job the client submitted keeps
running to a terminal state (journaled like any other), so a reconnecting
client can poll the result by job id.

Shutdown is a drain: in-flight work finishes, queued jobs are cancelled
with explicit terminal statuses, waiting clients are answered, and only
then does the socket close.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime.errors import ConfigError
from repro.runtime.evalcache import evaluation_cache_key
from repro.runtime.evaluate import EvaluationRequest, EvaluationRuntime
from repro.service.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    JobStatus,
    ProtocolError,
    decode_message,
    encode_message,
    parse_submit,
    trace_from_wire,
)
from repro.service.scheduler import JobRecord, JobScheduler, SchedulerConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.chaos import StoreChaos
    from repro.workloads.trace import Trace

__all__ = ["ServerConfig", "EvaluationServer"]


@dataclass(frozen=True)
class ServerConfig:
    """Socket binding and per-connection timeouts."""

    host: str = "127.0.0.1"
    #: Port 0 binds an ephemeral port; read it back from ``server.port``.
    port: int = 0
    #: Per-read timeout; a connection idle past it is closed.
    idle_timeout_s: float = 60.0
    #: Per-write timeout; a peer that stops reading is disconnected.
    write_timeout_s: float = 10.0
    #: Cap on one long-poll ``wait`` (clients re-issue to wait longer).
    max_wait_s: float = 30.0
    #: Budget for the drain phase of :meth:`EvaluationServer.stop`.
    drain_timeout_s: float = 60.0
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)

    def __post_init__(self) -> None:
        if self.idle_timeout_s <= 0 or self.write_timeout_s <= 0:
            raise ConfigError("connection timeouts must be > 0")
        if self.max_wait_s <= 0 or self.drain_timeout_s <= 0:
            raise ConfigError("max_wait_s and drain_timeout_s must be > 0")


class EvaluationServer:
    """Socket front-end over a scheduler over an evaluation runtime."""

    def __init__(
        self,
        runtime: "EvaluationRuntime | None" = None,
        *,
        config: "ServerConfig | None" = None,
        store_chaos: "StoreChaos | None" = None,
    ) -> None:
        self.config = config if config is not None else ServerConfig()
        self._store_chaos = store_chaos
        # A default runtime is materialized lazily in start(): constructing
        # one opens the journal and cache on disk, which must never happen
        # on the event loop (ASYNC001) — start() hops it through a thread.
        self.runtime = runtime
        self.scheduler = (
            JobScheduler(runtime, self.config.scheduler, store_chaos=store_chaos)
            if runtime is not None
            else None
        )
        self._traces: "dict[str, Trace]" = {}
        self._server: "asyncio.Server | None" = None
        self.port: "int | None" = None
        self.connections = 0
        self.disconnects = 0
        self.protocol_errors = 0

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> None:
        """Bind the socket and start the dispatch loop."""
        if self.runtime is None:
            self.runtime = await asyncio.to_thread(EvaluationRuntime)
        if self.scheduler is None:
            self.scheduler = JobScheduler(
                self.runtime, self.config.scheduler, store_chaos=self._store_chaos
            )
        self._server = await asyncio.start_server(
            self._handle,
            host=self.config.host,
            port=self.config.port,
            limit=MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.scheduler.start()

    async def stop(self) -> None:
        """Drain the scheduler, answer waiters, close the socket."""
        if self.scheduler is None:  # never started
            return
        await self.scheduler.drain(timeout_s=self.config.drain_timeout_s)
        if self._server is not None:
            self._server.close()
            try:
                await asyncio.wait_for(
                    self._server.wait_closed(),
                    timeout=self.config.drain_timeout_s,
                )
            except TimeoutError:
                pass  # lingering handler tasks die with the loop
            self._server = None

    async def __aenter__(self) -> "EvaluationServer":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    # -- connection handling -------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        if obs_metrics.metrics_enabled():
            obs_metrics.get_registry().counter("service.connections").inc()
        try:
            while True:
                try:
                    line = await asyncio.wait_for(
                        reader.readline(), timeout=self.config.idle_timeout_s
                    )
                except TimeoutError:
                    break  # idle peer: reclaim the socket
                except ValueError:
                    # Frame past the stream limit; tell the peer and close.
                    self.protocol_errors += 1
                    writer.write(encode_message(
                        {"ok": False, "code": "protocol",
                         "error": "oversized frame"}
                    ))
                    break
                if not line:
                    break  # orderly EOF
                response = await self._respond(line)
                writer.write(encode_message(response))
                try:
                    await asyncio.wait_for(
                        writer.drain(), timeout=self.config.write_timeout_s
                    )
                except TimeoutError:
                    break  # peer stopped reading
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            # A vanished client is normal chaos, not a server fault; its
            # jobs keep running to terminal states.
            self.disconnects += 1
            if obs_metrics.metrics_enabled():
                obs_metrics.get_registry().counter("service.disconnects").inc()
        finally:
            writer.close()
            try:
                await asyncio.wait_for(
                    writer.wait_closed(), timeout=self.config.write_timeout_s
                )
            except (TimeoutError, ConnectionError, OSError):
                pass

    async def _respond(self, line: bytes) -> dict:
        """Route one framed request to its handler; always returns a reply."""
        try:
            msg = decode_message(line)
            op = msg.get("op")
            if obs_metrics.metrics_enabled():
                obs_metrics.get_registry().counter("service.requests").inc()
            if op == "ping":
                return {
                    "ok": True,
                    "protocol": PROTOCOL_VERSION,
                    "draining": self.scheduler.draining,
                }
            if op == "register_trace":
                return self._op_register_trace(msg)
            if op == "submit":
                return self._op_submit(msg)
            if op == "status":
                return self._op_status(msg)
            if op == "wait":
                return await self._op_wait(msg)
            if op == "stats":
                return {"ok": True, "stats": self.scheduler.stats()}
            raise ProtocolError(f"unknown op {op!r}")
        except ProtocolError as exc:
            self.protocol_errors += 1
            if obs_metrics.metrics_enabled():
                obs_metrics.get_registry().counter("service.protocol_errors").inc()
            return {"ok": False, "code": "protocol", "error": str(exc)}

    # -- ops -----------------------------------------------------------------
    def _op_register_trace(self, msg: dict) -> dict:
        trace = trace_from_wire(msg.get("trace"))
        digest = trace.content_digest()
        self._traces[digest] = trace
        obs_trace.event("service.trace_registered", digest=digest[:16],
                        instructions=trace.n_instructions)
        return {"ok": True, "digest": digest}

    def _op_submit(self, msg: dict) -> dict:
        spec = parse_submit(msg)
        if spec.trace is not None:
            trace = spec.trace
            self._traces[trace.content_digest()] = trace
        else:
            trace = self._traces.get(spec.trace_digest)
            if trace is None:
                raise ProtocolError(
                    f"unknown trace digest {spec.trace_digest!r}; "
                    "register_trace it first"
                )
        # The runtime keys on evaluation identity, not the client's id:
        # identical design points dedupe and survive restarts.
        request = EvaluationRequest(
            key=evaluation_cache_key(trace, spec.config, spec.seed, spec.warm),
            config=spec.config,
            trace=trace,
            seed=spec.seed,
            warm=spec.warm,
        )
        record = JobRecord(
            job_id=spec.job_id, client=spec.client, request=request
        )
        status, retry_after = self.scheduler.submit(record)
        if status == JobStatus.REJECTED:
            reply = {
                "ok": False,
                "job_id": spec.job_id,
                "code": "draining" if self.scheduler.draining else "rejected",
                "error": (
                    "service is draining"
                    if self.scheduler.draining
                    else "admission queue full; retry later"
                ),
            }
            if retry_after is not None:
                reply["retry_after_s"] = round(retry_after, 6)
            return reply
        return {"ok": True, "job_id": spec.job_id, "status": status}

    def _op_status(self, msg: dict) -> dict:
        record = self.scheduler.status(str(msg.get("job_id")))
        if record is None:
            return {"ok": False, "code": "unknown_job",
                    "error": "no such job id"}
        return {"ok": True, **record.public_view()}

    async def _op_wait(self, msg: dict) -> dict:
        job_id = str(msg.get("job_id"))
        timeout_s = msg.get("timeout_s", self.config.max_wait_s)
        if not isinstance(timeout_s, (int, float)) or timeout_s <= 0:
            raise ProtocolError("timeout_s must be a positive number")
        record = await self.scheduler.wait_done(
            job_id, min(float(timeout_s), self.config.max_wait_s)
        )
        if record is None:
            return {"ok": False, "code": "unknown_job",
                    "error": "no such job id"}
        return {"ok": True, **record.public_view()}
