"""Client for the evaluation service.

:class:`ServiceClient` is the async building block — connect, register a
trace once, submit jobs by digest, long-poll for results.  Every await is
bounded by a timeout, and submissions honor the server's backpressure:
an admission rejection carries a ``retry_after_s`` hint which
:meth:`ServiceClient.submit_with_retry` obeys with seeded jitter, so a
thundering herd of rejected clients does not resynchronize into the next
thundering herd.

:func:`run_jobs` is the one-call synchronous convenience used by the CLI
and scripts: connect, upload, submit a batch, wait for every terminal
status, disconnect.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING

from repro.runtime.errors import MeasurementError
from repro.service.protocol import (
    TERMINAL_STATUSES,
    ProtocolError,
    decode_message,
    encode_message,
    trace_to_wire,
)
from repro.util.rng import spawn

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workloads.trace import Trace

__all__ = ["ServiceUnavailable", "ServiceClient", "run_jobs"]


class ServiceUnavailable(MeasurementError):
    """The service rejected or never answered within the client's budget."""


class ServiceClient:
    """One connection to an :class:`~repro.service.server.EvaluationServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        client_id: str = "client",
        timeout_s: float = 30.0,
        seed: int = 0,
    ) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout_s = timeout_s
        self._rng = spawn(seed, "service-client", client_id)
        self._reader: "asyncio.StreamReader | None" = None
        self._writer: "asyncio.StreamWriter | None" = None
        self.rejections = 0

    async def connect(self) -> "ServiceClient":
        try:
            self._reader, self._writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port),
                timeout=self.timeout_s,
            )
        except (ConnectionError, OSError, TimeoutError) as exc:
            raise ServiceUnavailable(
                f"cannot reach {self.host}:{self.port}: {exc}"
            ) from exc
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await asyncio.wait_for(
                    self._writer.wait_closed(), timeout=self.timeout_s
                )
            except (TimeoutError, ConnectionError, OSError):
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "ServiceClient":
        # connect() bounds itself with wait_for internally.
        return await self.connect()  # repro: noqa[CON003] -- self-bounded

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    # -- request plumbing ----------------------------------------------------
    async def call(self, msg: dict) -> dict:
        """One request/response round trip."""
        if self._writer is None or self._reader is None:
            raise ServiceUnavailable("client is not connected")
        self._writer.write(encode_message(msg))
        await asyncio.wait_for(self._writer.drain(), timeout=self.timeout_s)
        line = await asyncio.wait_for(
            self._reader.readline(), timeout=self.timeout_s
        )
        if not line:
            raise ServiceUnavailable("server closed the connection")
        return decode_message(line)

    # -- operations ----------------------------------------------------------
    async def ping(self) -> dict:
        return await self.call({"op": "ping"})

    async def register_trace(self, trace: "Trace") -> str:
        reply = await self.call(
            {"op": "register_trace", "trace": trace_to_wire(trace)}
        )
        if not reply.get("ok"):
            raise ProtocolError(f"register_trace failed: {reply.get('error')}")
        return reply["digest"]

    async def submit(
        self,
        job_id: str,
        *,
        trace_digest: str,
        config: dict,
        seed: int = 0,
        warm: bool = True,
    ) -> dict:
        """One submission attempt; the raw server reply (may be a rejection)."""
        return await self.call({
            "op": "submit",
            "job_id": job_id,
            "client": self.client_id,
            "config": config,
            "trace_digest": trace_digest,
            "seed": seed,
            "warm": warm,
        })

    async def submit_with_retry(
        self,
        job_id: str,
        *,
        trace_digest: str,
        config: dict,
        seed: int = 0,
        warm: bool = True,
        max_attempts: int = 50,
    ) -> dict:
        """Submit, backing off on admission rejections until accepted.

        Honors the server's ``retry_after_s`` hint with multiplicative
        seeded jitter.  Raises :class:`ServiceUnavailable` once
        *max_attempts* rejections pile up or the service is draining.
        """
        for _ in range(max_attempts):
            reply = await self.submit(
                job_id, trace_digest=trace_digest, config=config,
                seed=seed, warm=warm,
            )
            if reply.get("ok") or reply.get("code") not in ("rejected",):
                return reply
            self.rejections += 1
            hint = float(reply.get("retry_after_s", 0.05))
            await asyncio.sleep(hint * (1.0 + float(self._rng.random())))
        raise ServiceUnavailable(
            f"job {job_id!r} rejected {max_attempts} times; server saturated"
        )

    async def wait(self, job_id: str, *, timeout_s: "float | None" = None) -> dict:
        """Long-poll until *job_id* is terminal (re-polls past server caps)."""
        budget = timeout_s if timeout_s is not None else self.timeout_s
        deadline = asyncio.get_running_loop().time() + budget
        while True:
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                raise ServiceUnavailable(
                    f"job {job_id!r} not terminal within {budget}s"
                )
            reply = await self.call({
                "op": "wait", "job_id": job_id,
                "timeout_s": max(0.01, min(remaining, 10.0)),
            })
            if not reply.get("ok"):
                raise ProtocolError(f"wait failed: {reply.get('error')}")
            if reply.get("status") in TERMINAL_STATUSES:
                return reply

    async def status(self, job_id: str) -> dict:
        return await self.call({"op": "status", "job_id": job_id})

    async def stats(self) -> dict:
        reply = await self.call({"op": "stats"})
        if not reply.get("ok"):
            raise ProtocolError(f"stats failed: {reply.get('error')}")
        return reply["stats"]


async def _run_jobs_async(
    host: str,
    port: int,
    trace: "Trace",
    specs: "list[dict]",
    *,
    client_id: str,
    timeout_s: float,
) -> "dict[str, dict]":
    results: "dict[str, dict]" = {}
    async with ServiceClient(
        host, port, client_id=client_id, timeout_s=timeout_s
    ) as client:
        digest = await client.register_trace(trace)
        pending: "list[str]" = []
        for spec in specs:
            job_id = spec["job_id"]
            reply = await client.submit_with_retry(
                job_id,
                trace_digest=digest,
                config=spec["config"],
                seed=spec.get("seed", 0),
                warm=spec.get("warm", True),
            )
            if not reply.get("ok"):
                results[job_id] = reply
                continue
            pending.append(job_id)
        for job_id in pending:
            results[job_id] = await client.wait(job_id, timeout_s=timeout_s)
    return results


def run_jobs(
    host: str,
    port: int,
    trace: "Trace",
    specs: "list[dict]",
    *,
    client_id: str = "cli",
    timeout_s: float = 120.0,
) -> "dict[str, dict]":
    """Synchronous batch convenience: submit *specs*, wait for terminals.

    Each spec is ``{"job_id": ..., "config": {...}, "seed": ..., "warm": ...}``
    (config in wire form).  Returns the terminal server reply per job id.
    """
    return asyncio.run(_run_jobs_async(
        host, port, trace, specs, client_id=client_id, timeout_s=timeout_s
    ))
