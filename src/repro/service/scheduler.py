"""The dispatch loop: admission → breaker → pool, one batch at a time.

The scheduler owns the job table and the single background task that moves
work from the admission queues into the
:class:`~repro.runtime.evaluate.EvaluationRuntime`.  Batches run in a
worker thread (the pool API is synchronous; the event loop must keep
serving clients while a batch simulates), with a service-level deadline as
a backstop over the pool's own per-job timeouts.

Jobs are keyed for the runtime by their *evaluation cache key* — trace
content, config knobs, seed, warm — never by the client-chosen job id.
Two clients submitting the same design point share one simulation, and a
restarted service resumes its journal regardless of what ids the new
clients picked.

Degradation policy, enforced here:

* every admitted job reaches a terminal status — success, a typed failure,
  or an explicit cancellation at drain; nothing is silently dropped;
* infrastructure failures (worker crashes, deadlines) feed the circuit
  breaker; job-fault failures (bad config, unretryable measurement) do
  not — one client's poison job cannot open the breaker on everyone else;
* while the breaker is open, queued jobs *stay queued* (bounded by
  admission) and the half-open probe dispatches exactly one job.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime.errors import is_retryable
from repro.service.admission import AdmissionConfig, AdmissionController
from repro.service.breaker import (
    BreakerConfig,
    CircuitBreaker,
    is_infrastructure_failure,
)
from repro.service.protocol import TERMINAL_STATUSES, JobStatus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.evaluate import EvaluationRequest, EvaluationRuntime
    from repro.service.chaos import StoreChaos

__all__ = ["SchedulerConfig", "JobRecord", "JobScheduler"]


@dataclass(frozen=True)
class SchedulerConfig:
    """Batch sizing, deadlines, and the nested admission/breaker configs."""

    #: Jobs dispatched to the pool per batch (the fair dequeue spreads a
    #: batch across clients).
    max_batch: int = 4
    #: Backstop deadline over one whole batch.  The pool's per-job
    #: ``timeout_s`` (plus retries and backoff) is the primary deadline;
    #: this only fires if the pool itself wedges.
    batch_deadline_s: float = 300.0
    #: Idle wait between queue polls when nothing is runnable.
    idle_poll_s: float = 0.05
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    breaker: BreakerConfig = field(default_factory=BreakerConfig)


@dataclass
class JobRecord:
    """Supervisor-side state of one submitted job."""

    job_id: str
    client: str
    request: "EvaluationRequest"
    status: str = JobStatus.QUEUED
    #: Which layer produced the result (journal / cache / simulated).
    source: "str | None" = None
    attempts: int = 0
    stats_dict: "dict | None" = None
    error: "str | None" = None
    error_kind: "str | None" = None
    retryable: bool = False

    def public_view(self) -> dict:
        """The wire-facing status payload for this job."""
        view: dict = {"job_id": self.job_id, "status": self.status}
        if self.source is not None:
            view["source"] = self.source
        if self.attempts:
            view["attempts"] = self.attempts
        if self.status == JobStatus.DONE:
            view["stats"] = self.stats_dict
        elif self.error is not None:
            view["error"] = self.error
            view["error_kind"] = self.error_kind
            view["retryable"] = self.retryable
        return view


class JobScheduler:
    """Single-task dispatcher between admission and the evaluation runtime."""

    def __init__(
        self,
        runtime: "EvaluationRuntime",
        config: "SchedulerConfig | None" = None,
        *,
        store_chaos: "StoreChaos | None" = None,
    ) -> None:
        self.runtime = runtime
        self.config = config if config is not None else SchedulerConfig()
        self.admission = AdmissionController(self.config.admission)
        self.breaker = CircuitBreaker(self.config.breaker)
        self.store_chaos = store_chaos
        self.jobs: "dict[str, JobRecord]" = {}
        self._events: "dict[str, asyncio.Event]" = {}
        self._wake: "asyncio.Event | None" = None
        self._task: "asyncio.Task | None" = None
        self._draining = False
        self._inflight = 0
        self.batches = 0

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        """Start the dispatch loop on the running event loop."""
        self._wake = asyncio.Event()
        self._task = asyncio.get_running_loop().create_task(self._run())

    async def drain(self, timeout_s: float = 60.0) -> None:
        """Graceful shutdown: finish the in-flight batch, cancel the queue.

        Every job still queued gets a terminal ``cancelled`` status (its
        waiters wake), and anything already journaled stays journaled — a
        restarted service resumes from exactly the drained state.
        """
        self._draining = True
        if self._wake is not None:
            self._wake.set()
        if self._task is not None:
            try:
                await asyncio.wait_for(self._task, timeout=timeout_s)
            except TimeoutError:
                self._task.cancel()
            self._task = None

    @property
    def draining(self) -> bool:
        return self._draining

    # -- submission & queries ------------------------------------------------
    def submit(self, record: JobRecord) -> "tuple[str, float | None]":
        """Admit *record*; returns ``(status, retry_after_s)``.

        ``("queued", None)`` on admission.  A resubmitted job id returns
        the job's current status (idempotent — clients retry submissions
        after a disconnect without double-running anything).  Rejections
        return ``("rejected", hint)`` and record nothing.
        """
        existing = self.jobs.get(record.job_id)
        if existing is not None:
            return existing.status, None
        if self._draining:
            return JobStatus.REJECTED, None
        retry_after = self.admission.try_admit(record.client, record)
        if retry_after is not None:
            return JobStatus.REJECTED, retry_after
        self.jobs[record.job_id] = record
        self._events[record.job_id] = asyncio.Event()
        if self._wake is not None:
            self._wake.set()
        return JobStatus.QUEUED, None

    def status(self, job_id: str) -> "JobRecord | None":
        return self.jobs.get(job_id)

    async def wait_done(
        self, job_id: str, timeout_s: float
    ) -> "JobRecord | None":
        """Wait until *job_id* is terminal or the timeout passes."""
        record = self.jobs.get(job_id)
        if record is None:
            return None
        if record.status in TERMINAL_STATUSES:
            return record
        event = self._events[job_id]
        try:
            await asyncio.wait_for(event.wait(), timeout=timeout_s)
        except TimeoutError:
            pass  # caller sees the still-non-terminal status
        return record

    def stats(self) -> dict:
        """Service-level health and throughput counters."""
        by_status: "dict[str, int]" = {}
        for record in self.jobs.values():
            by_status[record.status] = by_status.get(record.status, 0) + 1
        counters = self.runtime.counters
        return {
            "jobs": by_status,
            "queued": self.admission.queued,
            "inflight": self._inflight,
            "batches": self.batches,
            "admission": {
                "admitted": self.admission.admitted,
                "rejected": self.admission.rejected,
            },
            "breaker": {"state": self.breaker.state, "trips": self.breaker.trips},
            "runtime": {
                "simulations": counters.simulations,
                "journal_hits": counters.journal_hits,
                "cache_hits": counters.cache_hits,
                "retries": counters.retries,
                "timeouts": counters.timeouts,
                "worker_restarts": counters.worker_restarts,
            },
            "draining": self._draining,
        }

    # -- dispatch loop -------------------------------------------------------
    async def _pause(self, delay_s: float) -> None:
        try:
            await asyncio.wait_for(self._wake.wait(), timeout=delay_s)
        except TimeoutError:
            return
        self._wake.clear()

    async def _run(self) -> None:
        while True:
            if self._draining:
                break
            if self.admission.queued == 0:
                await self._pause(self.config.idle_poll_s)
                continue
            # Work exists — consult the breaker only now, because a
            # half-open allow() consumes the probe slot.
            if not self.breaker.allow():
                await self._pause(
                    min(self.config.idle_poll_s, self.breaker.retry_after_s())
                    or self.config.idle_poll_s
                )
                continue
            limit = (
                1
                if self.breaker.state == CircuitBreaker.HALF_OPEN
                else self.config.max_batch
            )
            batch: "list[JobRecord]" = []
            while len(batch) < limit:
                item = self.admission.next()
                if item is None:
                    break
                batch.append(item)
            if not batch:
                continue
            if self.store_chaos is not None:
                # Chaos rounds tear cache shards and truncate the journal
                # on disk — synchronous IO that must not run on the event
                # loop (ASYNC001): a slow disk would stall every connected
                # client, not just this batch.
                await asyncio.to_thread(self.store_chaos.maybe_damage)
            await self._dispatch(batch)
        for item in self.admission.drain_all():
            record: JobRecord = item
            record.status = JobStatus.CANCELLED
            record.error = "service draining"
            record.error_kind = "Cancelled"
            record.retryable = True
            self._finish(record)

    async def _dispatch(self, batch: "list[JobRecord]") -> None:
        for record in batch:
            record.status = JobStatus.RUNNING
        self._inflight = len(batch)
        self.batches += 1
        requests = [record.request for record in batch]
        with obs_trace.span("service.batch", jobs=len(batch)) as span:
            try:
                outcomes = await asyncio.wait_for(
                    asyncio.to_thread(
                        self.runtime.evaluate_many_detailed, requests
                    ),
                    timeout=self.config.batch_deadline_s,
                )
            except TimeoutError:
                # The pool wedged past every per-job deadline.  The thread
                # cannot be cancelled, but the jobs must still terminate:
                # fail them all and charge the breaker once per job.
                for record in batch:
                    record.status = JobStatus.FAILED
                    record.error = (
                        f"batch exceeded the service deadline of "
                        f"{self.config.batch_deadline_s}s"
                    )
                    record.error_kind = "EvaluationTimeout"
                    record.retryable = True
                    self.breaker.record_failure()
                    self._finish(record)
                self._inflight = 0
                span.set(deadline_exceeded=True)
                return
            ok = 0
            for record in batch:
                outcome = outcomes[record.request.key]
                record.attempts = outcome.attempts
                record.source = outcome.source
                if outcome.ok:
                    record.status = JobStatus.DONE
                    record.stats_dict = outcome.stats.to_dict()
                    self.breaker.record_success()
                    ok += 1
                else:
                    record.status = JobStatus.FAILED
                    record.error = str(outcome.error)
                    record.error_kind = type(outcome.error).__name__
                    record.retryable = is_retryable(outcome.error)
                    if is_infrastructure_failure(outcome.error):
                        self.breaker.record_failure()
                    else:
                        # The pool is healthy; the job itself was bad.
                        self.breaker.record_success()
                self._finish(record)
            span.set(ok=ok, failed=len(batch) - ok)
        self._inflight = 0

    def _finish(self, record: JobRecord) -> None:
        event = self._events.get(record.job_id)
        if event is not None:
            event.set()
        if obs_metrics.metrics_enabled():
            obs_metrics.get_registry().counter(
                f"service.jobs.{record.status}"
            ).inc()
