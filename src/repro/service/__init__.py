"""LPM evaluation as a service: concurrent clients, hardened seams.

The package turns the PR-4 evaluation stack — worker pool, checkpoint
journal, persistent evalcache — into a long-running server that concurrent
clients submit ``(trace, MachineConfig)`` jobs to over a line-delimited
JSON socket protocol.  Each seam is hardened and chaos-tested:

========================  ==================================================
module                    responsibility
========================  ==================================================
:mod:`.protocol`          wire format, job specs, config/trace codecs
:mod:`.admission`         bounded queues, per-client fairness, backpressure
:mod:`.breaker`           circuit breaker around the evaluation pool
:mod:`.scheduler`         dispatch loop, job table, deadlines, drain
:mod:`.server`            the asyncio socket front-end
:mod:`.client`            async client + synchronous batch convenience
:mod:`.chaos`             deterministic service-level fault injection
========================  ==================================================

The degradation contract, verified by ``benchmarks/bench_service_resilience``:
no admitted job is ever silently dropped (every one reaches a terminal
status), results are bit-identical to direct ``sim.engine`` runs, overload
is answered with explicit retry-after backpressure, and a drained or
crashed server resumes from its journal without recomputing finished work.
"""

from repro.service.admission import AdmissionConfig, AdmissionController
from repro.service.breaker import BreakerConfig, CircuitBreaker
from repro.service.chaos import ChaosConfig, StoreChaos, make_chaos_job_fn
from repro.service.client import ServiceClient, ServiceUnavailable, run_jobs
from repro.service.protocol import (
    JobStatus,
    ProtocolError,
    config_from_wire,
    config_to_wire,
    trace_from_wire,
    trace_to_wire,
)
from repro.service.scheduler import JobRecord, JobScheduler, SchedulerConfig
from repro.service.server import EvaluationServer, ServerConfig

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "BreakerConfig",
    "CircuitBreaker",
    "ChaosConfig",
    "StoreChaos",
    "make_chaos_job_fn",
    "ServiceClient",
    "ServiceUnavailable",
    "run_jobs",
    "JobStatus",
    "ProtocolError",
    "config_from_wire",
    "config_to_wire",
    "trace_from_wire",
    "trace_to_wire",
    "JobRecord",
    "JobScheduler",
    "SchedulerConfig",
    "EvaluationServer",
    "ServerConfig",
]
