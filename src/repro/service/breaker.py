"""Circuit breaker around the evaluation pool.

When workers start dying or timing out consecutively, retrying every
queued job into the same broken pool multiplies the damage (each failure
burns a full retry budget and a worker respawn).  The breaker converts
that into fast, explicit degradation:

* **closed** — normal operation; consecutive infrastructure failures are
  counted, and ``failure_threshold`` of them in a row trip the breaker;
* **open** — dispatch is suspended; jobs stay queued (bounded by
  admission) and new submissions see backpressure.  After
  ``reset_timeout_s`` the breaker half-opens;
* **half-open** — exactly ``half_open_probes`` probe jobs are let through.
  A probe success closes the breaker; a probe failure re-opens it and the
  wait starts over.

Only *infrastructure* failures (worker crashes, deadline timeouts) feed
the trip counter — a job failing on its own terms (bad configuration, an
unretryable measurement) says nothing about pool health and must not
block other clients' work.

The clock is injectable so tests drive state transitions deterministically
without sleeping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.obs import metrics as obs_metrics
from repro.runtime.errors import ConfigError, EvaluationTimeout, WorkerCrashed

__all__ = ["BreakerConfig", "CircuitBreaker", "is_infrastructure_failure"]


@dataclass(frozen=True)
class BreakerConfig:
    """Trip threshold and recovery pacing."""

    #: Consecutive infrastructure failures that trip the breaker.
    failure_threshold: int = 3
    #: Seconds the breaker stays open before allowing probes.
    reset_timeout_s: float = 1.0
    #: Probe jobs allowed through while half-open.
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ConfigError("failure_threshold must be >= 1")
        if self.reset_timeout_s <= 0:
            raise ConfigError("reset_timeout_s must be > 0")
        if self.half_open_probes < 1:
            raise ConfigError("half_open_probes must be >= 1")


def is_infrastructure_failure(error: "BaseException | None") -> bool:
    """Whether *error* indicts the pool rather than the job itself."""
    return isinstance(error, (WorkerCrashed, EvaluationTimeout))


class CircuitBreaker:
    """Consecutive-failure breaker with timed half-open probing."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        config: "BreakerConfig | None" = None,
        *,
        clock: "Callable[[], float]" = time.monotonic,
    ) -> None:
        self.config = config if config is not None else BreakerConfig()
        self._clock = clock
        self.state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self.trips = 0
        self.probes = 0

    def _transition(self, state: str) -> None:
        if state == self.state:
            return
        self.state = state
        if obs_metrics.metrics_enabled():
            obs_metrics.get_registry().counter(f"service.breaker.to_{state}").inc()

    def allow(self) -> bool:
        """Whether a dispatch may proceed right now.

        In the half-open state each ``allow()`` consumes one probe slot;
        the caller must follow up with :meth:`record_success` or
        :meth:`record_failure` for that probe.
        """
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if self._clock() - self._opened_at < self.config.reset_timeout_s:
                return False
            self._transition(self.HALF_OPEN)
            self._probes_in_flight = 0
        if self._probes_in_flight >= self.config.half_open_probes:
            return False
        self._probes_in_flight += 1
        self.probes += 1
        return True

    def retry_after_s(self) -> float:
        """How long until the breaker would next admit work (0 when it would now)."""
        if self.state != self.OPEN:
            return 0.0
        remaining = self.config.reset_timeout_s - (self._clock() - self._opened_at)
        return max(0.0, remaining)

    def record_success(self) -> None:
        """A dispatched job finished without an infrastructure failure."""
        self._consecutive_failures = 0
        if self.state == self.HALF_OPEN:
            self._probes_in_flight = 0
            self._transition(self.CLOSED)

    def record_failure(self) -> None:
        """A dispatched job died of an infrastructure failure."""
        self._consecutive_failures += 1
        if self.state == self.HALF_OPEN or (
            self.state == self.CLOSED
            and self._consecutive_failures >= self.config.failure_threshold
        ):
            self._opened_at = self._clock()
            self._probes_in_flight = 0
            self.trips += 1
            if obs_metrics.metrics_enabled():
                obs_metrics.get_registry().counter("service.breaker.trips").inc()
            self._transition(self.OPEN)

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"consecutive_failures={self._consecutive_failures}, trips={self.trips})"
        )
