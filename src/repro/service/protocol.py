"""Wire protocol of the evaluation service: line-delimited JSON.

Every message is one JSON object on one ``\\n``-terminated line — trivially
framed, inspectable with ``nc``, and torn-write detectable (a partial line
never parses).  Client requests carry an ``op``; server replies always carry
``ok`` and echo the request's ``job_id`` where one applies.

Requests::

    {"op": "ping"}
    {"op": "register_trace", "trace": {...}}          -> {"ok": true, "digest": ...}
    {"op": "submit", "job_id": ..., "client": ...,
     "config": {"label": "C"} | {"knobs": {...}},
     "trace_digest": ... | "trace": {...},
     "seed": 0, "warm": true}                         -> {"ok": true, "status": "queued"}
    {"op": "status", "job_id": ...}
    {"op": "wait", "job_id": ..., "timeout_s": 10.0}  -> terminal status + stats
    {"op": "stats"}

A rejected submission answers ``{"ok": false, "code": "rejected",
"retry_after_s": ...}`` — backpressure is explicit, never an unbounded
buffer.  Configurations travel as Table I labels or Case Study knob dicts
(the two shapes every experiment in this repo is built from), traces as
digests against the server's trace registry (upload once with
``register_trace``, then submit by digest) or inline column arrays.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.runtime.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.params import MachineConfig
    from repro.workloads.trace import Trace

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "JobStatus",
    "TERMINAL_STATUSES",
    "ProtocolError",
    "JobSpec",
    "encode_message",
    "decode_message",
    "config_from_wire",
    "config_to_wire",
    "trace_from_wire",
    "trace_to_wire",
    "parse_submit",
]

PROTOCOL_VERSION = 1

#: Hard cap on one framed line; an inline trace beyond this must be
#: uploaded via ``register_trace`` chunk-free as well, so it also bounds
#: how much a single client can make the server buffer.
MAX_LINE_BYTES = 8 * 1024 * 1024


class ProtocolError(ReproError):
    """A message violates the wire protocol (malformed, oversized, unknown).

    Deterministic — resending the same bytes fails the same way.
    """

    retryable = False


class JobStatus:
    """Lifecycle states of a submitted job; the last four are terminal."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    REJECTED = "rejected"
    CANCELLED = "cancelled"


TERMINAL_STATUSES = frozenset(
    {JobStatus.DONE, JobStatus.FAILED, JobStatus.REJECTED, JobStatus.CANCELLED}
)


@dataclass(frozen=True)
class JobSpec:
    """A parsed, validated ``submit`` request."""

    job_id: str
    client: str
    config: "MachineConfig"
    trace_digest: "str | None" = None
    trace: "Trace | None" = None
    seed: int = 0
    warm: bool = True


def encode_message(msg: dict) -> bytes:
    """One protocol message as a framed line (compact JSON + newline)."""
    line = json.dumps(msg, separators=(",", ":")).encode("utf-8") + b"\n"
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"message of {len(line)} bytes exceeds the {MAX_LINE_BYTES}-byte frame limit"
        )
    return line


def decode_message(line: bytes) -> dict:
    """Parse one framed line; :class:`ProtocolError` on anything malformed."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError("oversized frame")
    try:
        obj = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"malformed frame: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(f"frame must be a JSON object, got {type(obj).__name__}")
    return obj


#: Knob names accepted on the wire — exactly MachineConfig.with_knobs minus
#: the display name (names are cosmetic and must not affect identity).
_WIRE_KNOBS = frozenset({
    "issue_width", "iw_size", "rob_size", "l1_ports",
    "mshr_count", "l2_banks", "l1_size_bytes",
})


def config_from_wire(obj: object) -> "MachineConfig":
    """A :class:`MachineConfig` from its wire form (label or knob dict)."""
    from repro.runtime.errors import ConfigError
    from repro.sim.params import MachineConfig, table1_config

    if not isinstance(obj, dict):
        raise ProtocolError("config must be an object with 'label' or 'knobs'")
    if "label" in obj:
        try:
            return table1_config(str(obj["label"]))
        except ConfigError as exc:
            raise ProtocolError(str(exc)) from exc
    if "knobs" in obj:
        knobs = obj["knobs"]
        if not isinstance(knobs, dict):
            raise ProtocolError("config knobs must be an object")
        unknown = set(knobs) - _WIRE_KNOBS
        if unknown:
            raise ProtocolError(
                f"unknown config knobs {sorted(unknown)}; "
                f"allowed: {sorted(_WIRE_KNOBS)}"
            )
        try:
            return MachineConfig().with_knobs(
                **{k: int(v) for k, v in knobs.items()}
            )
        except (ConfigError, ValueError, TypeError) as exc:
            raise ProtocolError(f"bad config knobs: {exc}") from exc
    raise ProtocolError("config must carry 'label' or 'knobs'")


def config_to_wire(config: "MachineConfig") -> dict:
    """The knob-dict wire form of *config* (round-trips the six + L1 size)."""
    knobs = dict(config.knob_summary())
    knobs["l1_size_bytes"] = config.l1.size_bytes
    return {"knobs": knobs}


def trace_from_wire(obj: object) -> "Trace":
    """A :class:`Trace` from its column-array wire form."""
    from repro.workloads.trace import Trace

    if not isinstance(obj, dict):
        raise ProtocolError("trace must be an object with column arrays")
    try:
        return Trace(
            is_mem=[bool(x) for x in obj["is_mem"]],
            address=[int(x) for x in obj["address"]],
            is_load=[bool(x) for x in obj["is_load"]],
            name=str(obj.get("name", "wire-trace")),
            depends=(
                [bool(x) for x in obj["depends"]]
                if obj.get("depends") is not None
                else None
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"bad trace payload: {exc}") from exc


def trace_to_wire(trace: "Trace") -> dict:
    """The column-array wire form of *trace*."""
    wire = {
        "is_mem": [bool(x) for x in trace.is_mem],
        "address": [int(x) for x in trace.address],
        "is_load": [bool(x) for x in trace.is_load],
        "name": trace.name,
    }
    if trace.depends is not None:
        wire["depends"] = [bool(x) for x in trace.depends]
    return wire


def parse_submit(msg: dict) -> JobSpec:
    """Validate a ``submit`` request into a :class:`JobSpec`.

    Exactly one of ``trace_digest`` (preferred — upload once, submit many)
    and ``trace`` (inline columns) must be present.
    """
    job_id = msg.get("job_id")
    if not isinstance(job_id, str) or not job_id:
        raise ProtocolError("submit requires a non-empty string job_id")
    client = msg.get("client", "anonymous")
    if not isinstance(client, str) or not client:
        raise ProtocolError("client must be a non-empty string")
    config = config_from_wire(msg.get("config"))
    digest = msg.get("trace_digest")
    inline = msg.get("trace")
    if (digest is None) == (inline is None):
        raise ProtocolError("submit requires exactly one of trace_digest / trace")
    trace = trace_from_wire(inline) if inline is not None else None
    seed = msg.get("seed", 0)
    warm = msg.get("warm", True)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise ProtocolError("seed must be an integer")
    if not isinstance(warm, bool):
        raise ProtocolError("warm must be a boolean")
    return JobSpec(
        job_id=job_id,
        client=client,
        config=config,
        trace_digest=str(digest) if digest is not None else None,
        trace=trace,
        seed=seed,
        warm=warm,
    )
