"""Deterministic service-level chaos: every failure mode on a seeded dial.

:mod:`repro.runtime.faults` corrupts *measurements*; this layer extends the
same philosophy to the service's infrastructure.  Five injectors cover the
ways a long-running evaluation server actually dies in practice:

``crash``
    The worker process SIGKILLs itself mid-job — the supervisor must charge
    a :class:`~repro.runtime.errors.WorkerCrashed` attempt, respawn, retry.
``stall``
    The worker sleeps past its deadline — the per-job timeout must fire and
    the attempt must be charged as an
    :class:`~repro.runtime.errors.EvaluationTimeout`.
``cache corruption``
    An evalcache shard on disk is overwritten with a torn prefix — the next
    read must quarantine it and recompute (see
    :mod:`repro.runtime.evalcache`).
``journal truncation``
    The checkpoint journal's tail is cut mid-byte — a restarted service
    must drop only the torn record and recompute it.
``client disconnect``
    A client vanishes mid-wait — the server must release the connection
    without leaking the job (it still runs to a terminal state).

Worker-side draws are seeded per ``(job, attempt)`` through
:func:`repro.util.rng.spawn`, so a chaos run replays bit-identically and a
retried job draws fresh chaos instead of dying identically forever.  The
store-side injectors live in :class:`StoreChaos`, driven by the scheduler
between batches from its own derived stream.  Client disconnects are the
client's to inject (see the resilience benchmark) — the server only ever
observes them.
"""

from __future__ import annotations

import functools
import os
import signal
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.runtime.evaluate import _simulate_job
from repro.util.rng import spawn
from repro.util.validation import check_fraction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Callable

    from repro.runtime.evalcache import EvaluationCache
    from repro.runtime.journal import CheckpointJournal

__all__ = ["ChaosConfig", "chaos_simulate_job", "make_chaos_job_fn", "StoreChaos"]


@dataclass(frozen=True)
class ChaosConfig:
    """Per-injector rates (independent Bernoulli draws) plus the seed."""

    #: P[worker SIGKILLs itself] per job attempt.
    crash_rate: float = 0.0
    #: P[worker stalls past its deadline] per job attempt.
    stall_rate: float = 0.0
    #: How long a stalled worker sleeps; set it above the pool's
    #: ``timeout_s`` or the stall is a no-op.
    stall_s: float = 30.0
    #: P[one evalcache shard is torn on disk] per dispatch round.
    cache_corrupt_rate: float = 0.0
    #: P[the journal tail is truncated mid-byte] per dispatch round.
    journal_truncate_rate: float = 0.0
    #: P[a waiting client drops its connection] per wait — consumed by
    #: chaos-aware clients, carried here so one config seeds the whole
    #: fault matrix.
    disconnect_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        check_fraction("crash_rate", self.crash_rate)
        check_fraction("stall_rate", self.stall_rate)
        check_fraction("cache_corrupt_rate", self.cache_corrupt_rate)
        check_fraction("journal_truncate_rate", self.journal_truncate_rate)
        check_fraction("disconnect_rate", self.disconnect_rate)

    @property
    def worker_rate(self) -> float:
        """Combined worker-side rate (crash + stall)."""
        return self.crash_rate + self.stall_rate


def chaos_simulate_job(
    config,
    trace,
    seed: int,
    warm: bool,
    faults,
    fault_label: str,
    _attempt: int = 1,
    *,
    chaos: ChaosConfig,
):
    """Worker-side job body that may crash or stall before simulating.

    Drop-in for :func:`repro.runtime.evaluate._simulate_job` (installed via
    the runtime's ``job_fn`` hook); module-level and partial-applied so it
    pickles across the fork.  The chaos draw happens *before* the
    simulation, modelling infrastructure death independent of the
    measurement's own fault injection.
    """
    rng = spawn(chaos.seed, "service-chaos", fault_label, _attempt)
    draw = rng.random()
    if draw < chaos.crash_rate:
        os.kill(os.getpid(), signal.SIGKILL)
    elif draw < chaos.crash_rate + chaos.stall_rate:
        time.sleep(chaos.stall_s)
    return _simulate_job(config, trace, seed, warm, faults, fault_label, _attempt)


def make_chaos_job_fn(chaos: ChaosConfig) -> "Callable":
    """A picklable ``job_fn`` applying *chaos* (for ``EvaluationRuntime``)."""
    return functools.partial(chaos_simulate_job, chaos=chaos)


class StoreChaos:
    """Seeded damage to the persistent stores, applied between dispatches.

    The scheduler calls :meth:`maybe_damage` once per dispatch round; each
    call draws independently for the cache and the journal.  Damage is the
    *real* on-disk kind — a torn JSON prefix over a live shard, a mid-byte
    cut of the journal file — so recovery exercises exactly the code paths
    a power loss would.
    """

    def __init__(
        self,
        chaos: ChaosConfig,
        *,
        cache: "EvaluationCache | None" = None,
        journal: "CheckpointJournal | None" = None,
    ) -> None:
        self.chaos = chaos
        self.cache = cache
        self.journal = journal
        self._rng = spawn(chaos.seed, "service-chaos", "stores")
        self.cache_corruptions = 0
        self.journal_truncations = 0

    def maybe_damage(self) -> None:
        """One chaos round: possibly tear a shard, possibly cut the journal."""
        if (
            self.cache is not None
            and self.chaos.cache_corrupt_rate > 0.0
            and self._rng.random() < self.chaos.cache_corrupt_rate
        ):
            self._corrupt_one_shard()
        if (
            self.journal is not None
            and self.chaos.journal_truncate_rate > 0.0
            and self._rng.random() < self.chaos.journal_truncate_rate
        ):
            self._truncate_journal_tail()

    def _corrupt_one_shard(self) -> None:
        shards = sorted(self.cache.root.glob("*/*.json"))
        if not shards:
            return
        victim = shards[int(self._rng.integers(len(shards)))]
        original = victim.read_bytes()
        cut = int(self._rng.integers(1, max(2, len(original))))
        victim.write_bytes(original[:cut])
        self.cache_corruptions += 1

    def _truncate_journal_tail(self) -> None:
        path = self.journal.path
        if not path.exists():
            return
        data = path.read_bytes()
        if len(data) < 2:
            return
        # Cut strictly inside the final record — anywhere, including inside
        # a multi-byte character — leaving earlier records whole.
        last_line_start = data.rstrip(b"\n").rfind(b"\n") + 1
        if last_line_start >= len(data) - 1:
            return
        cut = int(self._rng.integers(last_line_start + 1, len(data)))
        with path.open("rb+") as fh:
            fh.truncate(cut)
        # The in-memory view keeps the entry (it was fully applied before
        # the damage); only a *restarted* journal sees the torn tail, which
        # is the crash semantics being modelled.  Re-sync so the next append
        # starts a fresh line rather than merging into the tear.
        self.journal.sync_tail()
        self.journal_truncations += 1
