"""``repro.obs`` — structured observability for the reproduction stack.

Three composable pieces (see ``docs/OBSERVABILITY.md``):

* **tracing** (:mod:`repro.obs.trace`) — nestable spans exported as JSONL,
  enough to reconstruct a full LPM algorithm walk offline;
* **metrics** (:mod:`repro.obs.metrics`) — a counter/gauge/histogram
  registry whose snapshots merge across pool workers as a commutative
  monoid;
* **profiling** (:mod:`repro.obs.profile`) — opt-in per-phase timings of
  the simulate-and-measure pipeline, replacing hand-run cProfile sessions;
* **benchmarking** (:mod:`repro.obs.bench`) — the fast-vs-reference engine
  throughput A/B used by ``python -m repro bench`` and the CI perf gate.

Everything is disabled by default and instrumented call sites guard on
:func:`tracing_enabled` / :func:`metrics_enabled`, so the hot paths pay
one boolean check per *run* (never per instruction) when observability is
off.
"""

from repro.obs.bench import (
    compare_benchmarks,
    format_bench_record,
    measure_batch_throughput,
    measure_engine_throughput,
    measure_surrogate_throughput,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    EMPTY_SNAPSHOT,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_metrics_json,
    format_metrics_text,
    get_registry,
    merge_snapshots,
    metrics_enabled,
    set_metrics_enabled,
)
from repro.obs.profile import (
    ProfileReport,
    format_profile_report,
    profile_run,
    profiling_enabled,
    set_profiling_enabled,
)
from repro.obs.trace import (
    NOOP_SPAN,
    Span,
    Tracer,
    configure_tracing,
    event,
    get_tracer,
    read_trace,
    span,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "EMPTY_SNAPSHOT",
    "merge_snapshots",
    "get_registry",
    "metrics_enabled",
    "set_metrics_enabled",
    "format_metrics_text",
    "format_metrics_json",
    "ProfileReport",
    "profile_run",
    "profiling_enabled",
    "set_profiling_enabled",
    "format_profile_report",
    "Span",
    "Tracer",
    "NOOP_SPAN",
    "configure_tracing",
    "get_tracer",
    "tracing_enabled",
    "span",
    "event",
    "read_trace",
    "measure_batch_throughput",
    "measure_engine_throughput",
    "measure_surrogate_throughput",
    "compare_benchmarks",
    "format_bench_record",
]
