"""Engine throughput A/B benchmarks: fast vs reference, batch vs scalar.

The simulator keeps three implementations of its issue loop — the
specialized fast path, the obviously-correct reference
(:mod:`repro.sim.engine`) and the vectorized batch kernel
(:mod:`repro.sim.batch`).  This module measures them on the same trace
and reports the machine-*independent* quantities CI can gate on: the
fast/reference speedup ratio and the batch/scalar design-space-sweep
speedup ratio.  Absolute instructions-per-second numbers vary wildly
across machines; the ratio of two loops timed back-to-back in the same
process is stable to within a few percent.

``python -m repro bench run [--kind batch]`` produces a JSON record;
``python -m repro bench compare`` re-measures the current tree and fails
when the speedup ratio regressed more than a tolerance below a recorded
baseline (``benchmarks/baseline_engine_perf.json`` /
``baseline_batch_perf.json``) or, for the batch gate, below an absolute
``--min-speedup`` floor.
"""

from __future__ import annotations

import math
import time
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

__all__ = [
    "measure_engine_throughput",
    "measure_batch_throughput",
    "measure_surrogate_throughput",
    "compare_benchmarks",
    "format_bench_record",
]

#: Access-record fields whose bit-identity every throughput record verifies.
_IDENTITY_FIELDS = (
    "l1_hit_start", "l1_hit_end", "l1_miss_start", "l1_miss_end",
    "l2_hit_start", "l2_hit_end", "l2_miss_start", "l2_miss_end",
    "mem_start", "mem_end",
)


def measure_engine_throughput(
    benchmark: str = "403.gcc",
    *,
    accesses: int = 10_000,
    rounds: int = 3,
    trace_seed: int = 1,
    sim_seed: int = 0,
) -> dict:
    """Time the fast and reference engines on one workload; best-of-*rounds*.

    Also verifies the two engines produce identical access records on this
    workload — a throughput number for a wrong fast path is meaningless —
    and reports the outcome in the record's ``identical`` field.
    """
    import numpy as np

    from repro.sim import DEFAULT_MACHINE, HierarchySimulator
    from repro.sim.engine import ENGINE_VERSION
    from repro.workloads.spec import get_benchmark

    trace = get_benchmark(benchmark).trace(accesses, seed=trace_seed)
    times: "dict[str, float]" = {}
    results: "dict[str, object]" = {}
    for engine in ("fast", "reference"):
        best = math.inf
        for _ in range(rounds):
            sim = HierarchySimulator(DEFAULT_MACHINE, seed=sim_seed, engine=engine)
            t0 = time.perf_counter()
            res = sim.run(trace)
            best = min(best, time.perf_counter() - t0)
        times[engine] = best
        results[engine] = res
    fast_acc, ref_acc = results["fast"].accesses, results["reference"].accesses
    identical = all(
        np.array_equal(getattr(fast_acc, name), getattr(ref_acc, name))
        for name in _IDENTITY_FIELDS
    )
    n_instr = trace.n_instructions
    return {
        "kind": "engine_throughput",
        "benchmark": benchmark,
        "accesses": accesses,
        "instructions": n_instr,
        "rounds": rounds,
        "engine_version": ENGINE_VERSION,
        "fast_instr_per_s": n_instr / times["fast"],
        "reference_instr_per_s": n_instr / times["reference"],
        "speedup": times["reference"] / times["fast"],
        "identical": identical,
    }


def measure_batch_throughput(
    *,
    n_configs: int = 64,
    accesses: int = 10_000,
    rounds: int = 3,
    trace_seed: int = 7,
    sim_seed: int = 0,
) -> dict:
    """Time a design-space sweep: batch kernel versus N scalar fast paths.

    The workload is the synthetic ``lpm-batch-gate`` trace — a 12 KB
    working set with 8 compute ops per access, the compute-heavy
    high-locality regime where the config axis dominates runtime — swept
    over a Table I knob slice (issue width x IW size x ROB size,
    ``n_configs`` points).  Scalar cost is the sum over configs of
    construct + warm + run on the fast engine; batch cost is one
    construct + warm + run of the whole slice.  Each side keeps its best
    of *rounds*.  Every lane's access record is verified bit-identical
    between the two paths (``identical`` field): a speedup for a wrong
    kernel is meaningless.
    """
    import numpy as np

    from repro.sim import DEFAULT_MACHINE, HierarchySimulator
    from repro.sim.batch import BatchHierarchySimulator
    from repro.sim.engine import ENGINE_VERSION
    from repro.workloads.generators import working_set_addresses
    from repro.workloads.trace import Trace

    addrs = working_set_addresses(accesses, footprint_bytes=12 * 1024,
                                  seed=trace_seed)
    trace = Trace.from_memory_addresses(
        addrs, compute_per_access=8, load_fraction=0.7,
        name="lpm-batch-gate", seed=trace_seed,
    )
    configs = [
        DEFAULT_MACHINE.with_knobs(issue_width=iw, iw_size=w, rob_size=rob,
                                   name=f"c{iw}-{w}-{rob}")
        for iw in (2, 4, 6, 8)
        for w in (32, 64, 96, 128)
        for rob in (48, 96, 128, 192)
    ][:n_configs]

    t_scalar = math.inf
    scalar_results = []
    for _ in range(rounds):
        results = []
        t0 = time.perf_counter()
        for config in configs:
            sim = HierarchySimulator(config, seed=sim_seed, engine="fast")
            sim.warm_caches(trace)
            results.append(sim.run(trace))
        elapsed = time.perf_counter() - t0
        if elapsed < t_scalar:
            t_scalar = elapsed
            scalar_results = results

    t_batch = math.inf
    batch_results = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        batch = BatchHierarchySimulator(configs, seed=sim_seed)
        batch.warm_caches(trace)
        results = batch.run(trace)
        elapsed = time.perf_counter() - t0
        if elapsed < t_batch:
            t_batch = elapsed
            batch_results = results

    identical = all(
        np.array_equal(getattr(res_s.accesses, name),
                       getattr(res_b.accesses, name))
        for res_s, res_b in zip(scalar_results, batch_results)
        for name in _IDENTITY_FIELDS
    )
    n_instr = trace.n_instructions
    return {
        "kind": "batch_throughput",
        "benchmark": trace.name,
        "accesses": accesses,
        "instructions": n_instr,
        "n_configs": len(configs),
        "rounds": rounds,
        "engine_version": ENGINE_VERSION,
        "scalar_instr_per_s": n_instr * len(configs) / t_scalar,
        "batch_instr_per_s": n_instr * len(configs) / t_batch,
        "speedup": t_scalar / t_batch,
        "identical": identical,
    }


def measure_surrogate_throughput(
    *,
    n_configs: int = 64,
    accesses: int = 10_000,
    rounds: int = 3,
    trace_seed: int = 7,
    sim_seed: int = 0,
    top_k: int = 8,
    margin: float = 0.05,
) -> dict:
    """Time a design-space sweep: multi-fidelity versus engine-only.

    The workload is the synthetic ``lpm-batch-gate`` trace swept over the
    same Table I knob slice as :func:`measure_batch_throughput`, so the
    two gates bracket the same design-space walk: ``batch`` measures how
    fast the engine evaluates every point, ``surrogate`` measures how
    few points the tier-0 model lets the engine evaluate at all.

    Reported quantities CI can gate on:

    * ``speedup`` — wall-clock engine-only sweep / multi-fidelity sweep.
    * ``engine_sim_reduction`` — configurations per engine escalation.
    * ``frontier_agreement`` — the escalated frontier attains the
      engine-only optimum (same minimum CPI, bit-equal).

    ``identical`` folds frontier agreement and the 20x reduction floor
    so :func:`compare_benchmarks` gates on them unchanged: a fast prune
    that drops the optimum (or stops pruning) is meaningless.
    """
    from repro.analysis.sweep import sweep_configs
    from repro.sim import DEFAULT_MACHINE
    from repro.sim.engine import ENGINE_VERSION
    from repro.workloads.generators import working_set_addresses
    from repro.workloads.locality import profile_trace
    from repro.workloads.trace import Trace

    addrs = working_set_addresses(accesses, footprint_bytes=12 * 1024,
                                  seed=trace_seed)
    trace = Trace.from_memory_addresses(
        addrs, compute_per_access=8, load_fraction=0.7,
        name="lpm-batch-gate", seed=trace_seed,
    )
    configs = [
        DEFAULT_MACHINE.with_knobs(issue_width=iw, iw_size=w, rob_size=rob,
                                   name=f"c{iw}-{w}-{rob}")
        for iw in (2, 4, 6, 8)
        for w in (32, 64, 96, 128)
        for rob in (48, 96, 128, 192)
    ][:n_configs]

    t_engine = math.inf
    engine_result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = sweep_configs(configs, trace, seed=sim_seed, engine="auto")
        elapsed = time.perf_counter() - t0
        if elapsed < t_engine:
            t_engine = elapsed
            engine_result = result

    t_multi = math.inf
    multi_result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = sweep_configs(configs, trace, seed=sim_seed, engine="auto",
                               fidelity="multi", top_k=top_k, margin=margin)
        elapsed = time.perf_counter() - t0
        if elapsed < t_multi:
            t_multi = elapsed
            multi_result = result

    # Pure tier-0 ranking throughput: profile once, predict the slice.
    from repro.analysis.surrogate import predict_many

    profile = profile_trace(trace, line_bytes=configs[0].l1.line_bytes)
    t_predict = math.inf
    for _ in range(rounds):
        t0 = time.perf_counter()
        predict_many(profile, configs)
        t_predict = min(t_predict, time.perf_counter() - t0)

    engine_best = min(s.cpi for s in engine_result.stats)
    escalated = [
        s for s, src in zip(multi_result.stats, multi_result.sources)
        if src != "predicted"
    ]
    frontier_agreement = bool(
        escalated and min(s.cpi for s in escalated) == engine_best
    )
    reduction = len(configs) / max(len(escalated), 1)
    n_instr = trace.n_instructions
    return {
        "kind": "surrogate_throughput",
        "benchmark": trace.name,
        "accesses": accesses,
        "instructions": n_instr,
        "n_configs": len(configs),
        "rounds": rounds,
        "top_k": top_k,
        "margin": margin,
        "engine_version": ENGINE_VERSION,
        "engine_configs_per_s": len(configs) / t_engine,
        "multi_configs_per_s": len(configs) / t_multi,
        "surrogate_configs_per_s": len(configs) / t_predict,
        "n_escalated": len(escalated),
        "engine_sim_reduction": reduction,
        "frontier_agreement": frontier_agreement,
        "speedup": t_engine / t_multi,
        "identical": frontier_agreement and reduction >= 20.0,
    }


def compare_benchmarks(
    current: dict, baseline: dict, *, tolerance: float = 0.2,
    min_speedup: float = 0.0,
) -> "tuple[bool, list[str]]":
    """Gate *current* against *baseline* on the recorded speedup ratio.

    Returns ``(ok, report_lines)``.  The gate trips when the current
    speedup falls more than ``tolerance`` (fractional) below the
    baseline's, below the absolute ``min_speedup`` floor, or when the
    optimized path stopped being bit-identical.  Absolute throughput is
    reported for context but never gated on.
    """
    floor = max(baseline["speedup"] * (1.0 - tolerance), min_speedup)
    same_kind = current.get("kind") == baseline.get("kind")
    ok = same_kind and current["speedup"] >= floor and current.get("identical", True)
    lines = [
        f"baseline speedup: {baseline['speedup']:.3f}x "
        f"(engine v{baseline.get('engine_version', '?')}, "
        f"{baseline['accesses']} accesses)",
        f"current speedup:  {current['speedup']:.3f}x "
        f"(engine v{current.get('engine_version', '?')}, "
        f"{current['accesses']} accesses)",
        f"gate floor:       {floor:.3f}x (tolerance {tolerance:.0%}"
        + (f", absolute minimum {min_speedup:.1f}x)" if min_speedup > 0 else ")"),
        f"bit-identical:    {current.get('identical', True)}",
    ]
    if not same_kind:
        lines.append(
            f"FAIL: record kind {current.get('kind')!r} does not match "
            f"baseline kind {baseline.get('kind')!r}"
        )
    else:
        lines.append("PASS" if ok
                     else "FAIL: speedup regressed below the gate")
    return ok, lines


def format_bench_record(record: dict) -> str:
    """Human-oriented rendering of one throughput record."""
    if record.get("kind") == "surrogate_throughput":
        return "\n".join([
            f"workload:   {record['benchmark']} ({record['accesses']} accesses, "
            f"{record['instructions']} instructions, best of {record['rounds']})",
            f"slice:      {record['n_configs']} configurations "
            f"(top_k={record['top_k']}, margin={record['margin']})",
            f"engine:     {record['engine_configs_per_s']:,.1f} configs/s "
            f"(every point simulated)",
            f"multi:      {record['multi_configs_per_s']:,.1f} configs/s "
            f"({record['n_escalated']} escalated, "
            f"{record['engine_sim_reduction']:.1f}x fewer engine sims)",
            f"tier-0:     {record['surrogate_configs_per_s']:,.0f} configs/s "
            f"(pure prediction)",
            f"speedup:    {record['speedup']:.3f}x "
            f"(engine v{record['engine_version']})",
            f"frontier:   agreement={record['frontier_agreement']}",
            f"identical:  {record['identical']}",
        ])
    if record.get("kind") == "batch_throughput":
        return "\n".join([
            f"workload:   {record['benchmark']} ({record['accesses']} accesses, "
            f"{record['instructions']} instructions, best of {record['rounds']})",
            f"slice:      {record['n_configs']} configurations "
            f"(Table I knob cross-product)",
            f"scalar:     {record['scalar_instr_per_s']:,.0f} lane-instr/s",
            f"batch:      {record['batch_instr_per_s']:,.0f} lane-instr/s",
            f"speedup:    {record['speedup']:.3f}x "
            f"(engine v{record['engine_version']})",
            f"identical:  {record['identical']}",
        ])
    return "\n".join([
        f"benchmark:  {record['benchmark']} ({record['accesses']} accesses, "
        f"{record['instructions']} instructions, best of {record['rounds']})",
        f"fast:       {record['fast_instr_per_s']:,.0f} instr/s",
        f"reference:  {record['reference_instr_per_s']:,.0f} instr/s",
        f"speedup:    {record['speedup']:.3f}x (engine v{record['engine_version']})",
        f"identical:  {record['identical']}",
    ])
