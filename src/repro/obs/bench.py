"""Engine throughput A/B benchmark: fast path versus reference loop.

The simulator keeps two implementations of its issue loop — the
specialized fast path and the obviously-correct reference
(:mod:`repro.sim.engine`).  This module measures both on the same trace
and reports the machine-*independent* quantity that CI can gate on: the
fast/reference speedup ratio.  Absolute instructions-per-second numbers
vary wildly across machines; the ratio of two loops timed back-to-back in
the same process is stable to within a few percent.

``python -m repro bench run`` produces a JSON record;
``python -m repro bench compare`` re-measures the current tree and fails
when the speedup ratio regressed more than a tolerance below a recorded
baseline (``benchmarks/baseline_engine_perf.json``).
"""

from __future__ import annotations

import math
import time
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

__all__ = ["measure_engine_throughput", "compare_benchmarks", "format_bench_record"]


def measure_engine_throughput(
    benchmark: str = "403.gcc",
    *,
    accesses: int = 10_000,
    rounds: int = 3,
    trace_seed: int = 1,
    sim_seed: int = 0,
) -> dict:
    """Time the fast and reference engines on one workload; best-of-*rounds*.

    Also verifies the two engines produce identical access records on this
    workload — a throughput number for a wrong fast path is meaningless —
    and reports the outcome in the record's ``identical`` field.
    """
    import numpy as np

    from repro.sim import DEFAULT_MACHINE, HierarchySimulator
    from repro.sim.engine import ENGINE_VERSION
    from repro.workloads.spec import get_benchmark

    trace = get_benchmark(benchmark).trace(accesses, seed=trace_seed)
    times: "dict[str, float]" = {}
    results: "dict[str, object]" = {}
    for engine in ("fast", "reference"):
        best = math.inf
        for _ in range(rounds):
            sim = HierarchySimulator(DEFAULT_MACHINE, seed=sim_seed, engine=engine)
            t0 = time.perf_counter()
            res = sim.run(trace)
            best = min(best, time.perf_counter() - t0)
        times[engine] = best
        results[engine] = res
    fast_acc, ref_acc = results["fast"].accesses, results["reference"].accesses
    identical = all(
        np.array_equal(getattr(fast_acc, name), getattr(ref_acc, name))
        for name in ("l1_hit_start", "l1_hit_end", "l1_miss_start", "l1_miss_end",
                     "l2_hit_start", "l2_hit_end", "l2_miss_start", "l2_miss_end",
                     "mem_start", "mem_end")
    )
    n_instr = trace.n_instructions
    return {
        "kind": "engine_throughput",
        "benchmark": benchmark,
        "accesses": accesses,
        "instructions": n_instr,
        "rounds": rounds,
        "engine_version": ENGINE_VERSION,
        "fast_instr_per_s": n_instr / times["fast"],
        "reference_instr_per_s": n_instr / times["reference"],
        "speedup": times["reference"] / times["fast"],
        "identical": identical,
    }


def compare_benchmarks(
    current: dict, baseline: dict, *, tolerance: float = 0.2
) -> "tuple[bool, list[str]]":
    """Gate *current* against *baseline* on the fast/reference speedup.

    Returns ``(ok, report_lines)``.  The gate trips when the current
    speedup falls more than ``tolerance`` (fractional) below the
    baseline's, or when the fast path stopped being bit-identical.
    Absolute throughput is reported for context but never gated on.
    """
    floor = baseline["speedup"] * (1.0 - tolerance)
    ok = current["speedup"] >= floor and current.get("identical", True)
    lines = [
        f"baseline speedup: {baseline['speedup']:.3f}x "
        f"(engine v{baseline.get('engine_version', '?')}, "
        f"{baseline['accesses']} accesses)",
        f"current speedup:  {current['speedup']:.3f}x "
        f"(engine v{current.get('engine_version', '?')}, "
        f"{current['accesses']} accesses)",
        f"gate floor:       {floor:.3f}x (tolerance {tolerance:.0%})",
        f"fast == reference: {current.get('identical', True)}",
        "PASS" if ok else "FAIL: fast-path speedup regressed below the gate",
    ]
    return ok, lines


def format_bench_record(record: dict) -> str:
    """Human-oriented rendering of one throughput record."""
    return "\n".join([
        f"benchmark:  {record['benchmark']} ({record['accesses']} accesses, "
        f"{record['instructions']} instructions, best of {record['rounds']})",
        f"fast:       {record['fast_instr_per_s']:,.0f} instr/s",
        f"reference:  {record['reference_instr_per_s']:,.0f} instr/s",
        f"speedup:    {record['speedup']:.3f}x (engine v{record['engine_version']})",
        f"identical:  {record['identical']}",
    ])
