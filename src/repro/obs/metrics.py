"""Mergeable metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the aggregation half of ``repro.obs``: spans tell you
*when* something happened, metrics tell you *how often* and *how much*.
Three instrument kinds cover everything the stack needs:

* :class:`Counter` — monotone event counts (accesses, misses, retries);
* :class:`Gauge` — last-known level quantities (peak MSHR occupancy);
* :class:`Histogram` — fixed-bucket distributions (per-iteration LPMR).

**Merge semantics.**  Evaluation-pool workers run in separate processes;
each worker accumulates into its own (inherited) registry and ships a
:meth:`~MetricsRegistry.snapshot` back with its result, which the parent
folds in with :meth:`~MetricsRegistry.merge`.  For that to be correct
under retries, crashes and arbitrary arrival order, snapshot merge is a
commutative monoid (property-tested in ``tests/obs``):

* counters add, histogram bucket counts and sums add (conserving totals);
* gauges combine with ``max`` — order-independent, and the natural
  reading for the peak/watermark quantities gauges carry here;
* the empty snapshot is the identity.
"""

from __future__ import annotations

import bisect
import json

from repro.runtime.errors import ConfigError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
    "EMPTY_SNAPSHOT",
    "get_registry",
    "metrics_enabled",
    "set_metrics_enabled",
    "format_metrics_text",
    "format_metrics_json",
]

#: Default histogram bucket upper bounds (values land in the first bucket
#: whose bound is >= the observation; the last bucket is +inf).  Spans two
#: orders of magnitude around 1.0 — right for ratio-like LPM quantities.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 5.0, 10.0, 25.0, 100.0,
)

#: The merge identity: what an untouched registry snapshots to.
EMPTY_SNAPSHOT: dict = {"counters": {}, "gauges": {}, "histograms": {}}


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add *n* (>= 0) events; counters never decrease."""
        if n < 0:
            raise ConfigError(f"counter increment must be >= 0, got {n}")
        self.value += n


class Gauge:
    """A last-known level; merges across processes by maximum."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = float(value)

    def set_max(self, value: float) -> None:
        """Record a high-watermark (keep the larger of old and new)."""
        value = float(value)
        if value > self.value:
            self.value = value


class Histogram:
    """Fixed-bucket histogram; bucket *i* counts values <= ``bounds[i]``.

    The final implicit bucket is unbounded, so every observation lands
    somewhere and the total count is conserved under any merge order.
    """

    __slots__ = ("bounds", "counts", "total", "sum")

    def __init__(self, bounds: "tuple[float, ...]" = DEFAULT_BUCKETS) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ConfigError("histogram bounds must be non-empty and ascending")
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Count one observation of *value*."""
        value = float(value)
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        return self.sum / self.total if self.total else 0.0


class MetricsRegistry:
    """Named instruments, created on first use, snapshot/merge-able."""

    def __init__(self) -> None:
        self._counters: "dict[str, Counter]" = {}
        self._gauges: "dict[str, Gauge]" = {}
        self._histograms: "dict[str, Histogram]" = {}

    # -- instrument access -------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter called *name*, creating it at zero if needed."""
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter()
        return inst

    def gauge(self, name: str) -> Gauge:
        """The gauge called *name*, creating it at zero if needed."""
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge()
        return inst

    def histogram(
        self, name: str, bounds: "tuple[float, ...]" = DEFAULT_BUCKETS
    ) -> Histogram:
        """The histogram called *name* (bounds fixed at first creation)."""
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(bounds)
        return inst

    # -- snapshot / merge --------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-serializable, order-independent copy of all instruments."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "total": h.total,
                    "sum": h.sum,
                }
                for k, h in sorted(self._histograms.items())
            },
        }

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` (e.g. from a pool worker) into this registry."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set_max(value)
        for name, data in snapshot.get("histograms", {}).items():
            hist = self.histogram(name, tuple(data["bounds"]))
            if list(hist.bounds) != list(data["bounds"]):
                raise ConfigError(
                    f"histogram {name!r} bucket bounds differ between merge sides"
                )
            for i, count in enumerate(data["counts"]):
                hist.counts[i] += int(count)
            hist.total += int(data["total"])
            hist.sum += float(data["sum"])

    def reset(self) -> None:
        """Drop every instrument (back to the merge identity)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def snapshot_and_reset(self) -> dict:
        """Atomically snapshot then reset (worker hand-off helper)."""
        snap = self.snapshot()
        self.reset()
        return snap

    def is_empty(self) -> bool:
        """Whether no instrument was ever touched."""
        return not (self._counters or self._gauges or self._histograms)


def merge_snapshots(*snapshots: dict) -> dict:
    """Pure merge of snapshot dicts (associative, commutative, identity
    :data:`EMPTY_SNAPSHOT`) — the function the property suite exercises."""
    registry = MetricsRegistry()
    for snap in snapshots:
        registry.merge(snap)
    return registry.snapshot()


# -- module-level switchboard ----------------------------------------------

_REGISTRY = MetricsRegistry()
_enabled = False  # repro: noqa[RACE002] -- metrics are best-effort observational: fork workers inherit the flag, spawn workers default to off and simply ship no snapshots; results are unaffected either way


def get_registry() -> MetricsRegistry:
    """The process-global registry (inherited by forked pool workers)."""
    return _REGISTRY


def metrics_enabled() -> bool:
    """Whether instrumented call sites should record (fast-path guard)."""
    return _enabled


def set_metrics_enabled(enabled: bool) -> None:
    """Turn metric collection on or off globally."""
    global _enabled
    _enabled = bool(enabled)


# -- reporters --------------------------------------------------------------

def format_metrics_text(snapshot: dict) -> str:
    """Human-readable registry dump (the CLI's ``--metrics text``)."""
    lines = ["== metrics =="]
    for name, value in snapshot.get("counters", {}).items():
        lines.append(f"counter   {name:<40s} {value}")
    for name, value in snapshot.get("gauges", {}).items():
        lines.append(f"gauge     {name:<40s} {value:g}")
    for name, data in snapshot.get("histograms", {}).items():
        mean = data["sum"] / data["total"] if data["total"] else 0.0
        lines.append(
            f"histogram {name:<40s} n={data['total']} mean={mean:.4g}"
        )
    if len(lines) == 1:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)


def format_metrics_json(snapshot: dict) -> str:
    """Machine-readable registry dump (the CLI's ``--metrics json``)."""
    return json.dumps(snapshot, indent=2, sort_keys=True)
