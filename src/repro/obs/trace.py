"""Structured tracing: nestable spans with a JSONL exporter.

The LPM methodology is measurement all the way down — the C-AMAT analyzer
instruments every layer of the *simulated* hierarchy — but until this
module the *software* stack itself was opaque.  A :class:`Tracer` records
**spans** (named, timed, attributed regions of execution) as one JSON
object per line, so a full ``repro walk`` is reconstructable offline:
every LPM iteration, every simulation, every pool attempt is one line in
the trace file (schema in ``docs/OBSERVABILITY.md``).

Design constraints, in order:

1. **Zero cost when disabled.**  Tracing is off by default; the module
   level :func:`span` helper returns a shared no-op context manager
   without touching the clock, and instrumented call sites guard any
   attribute computation behind :func:`tracing_enabled`.
2. **Monotonic timing.**  All durations come from ``time.perf_counter``
   (never ``time.time``, which steps under NTP — rule OBS001 enforces
   this repo-wide).  Span start times are reported relative to the
   tracer's epoch so traces from one process share one timeline.
3. **Thread and fork safety.**  The span stack is thread-local; the
   exporter writes whole lines under a lock to a file opened in append
   mode, and detects ``fork()`` (pid change) to reopen its handle — so
   pool workers inherit the tracer and their spans interleave safely in
   the same JSONL file, tagged with their pid.
"""

from __future__ import annotations

import json
import os
import threading
from time import perf_counter
from typing import IO, Iterator

__all__ = [
    "Span",
    "Tracer",
    "configure_tracing",
    "get_tracer",
    "tracing_enabled",
    "span",
    "event",
    "read_trace",
]


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: object) -> None:
        """Discard attributes (matches :meth:`Span.set`)."""


#: The singleton no-op span; identity-comparable in tests.
NOOP_SPAN = _NoopSpan()


class Span:
    """One named, timed region; a context manager emitting on exit.

    Attributes attached at construction (``tracer.span(name, k=v)``) or
    later via :meth:`set` are serialized into the span's ``attrs`` object.
    Nesting is tracked per thread: the span entered while another is open
    records that span's id as its ``parent_id``.
    """

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id", "_t0", "duration_s")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = tracer._next_id()
        self.parent_id: "int | None" = None
        self._t0 = 0.0
        self.duration_s = 0.0

    def set(self, **attrs: object) -> None:
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        self.parent_id = stack[-1].span_id if stack else None
        stack.append(self)
        self._t0 = perf_counter()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        end = perf_counter()
        self.duration_s = end - self._t0
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        record = {
            "kind": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "t_start_s": round(self._t0 - self._tracer.epoch, 9),
            "duration_s": round(self.duration_s, 9),
            "pid": os.getpid(),
        }
        if exc_type is not None:
            record["error"] = getattr(exc_type, "__name__", str(exc_type))
        if self.attrs:
            record["attrs"] = self.attrs
        self._tracer._emit(record)
        return False


class Tracer:
    """Span factory + JSONL exporter bound to one output path."""

    def __init__(self, path: "str | os.PathLike[str]") -> None:
        self.path = os.fspath(path)
        self.epoch = perf_counter()
        self._lock = threading.Lock()
        self._pid = os.getpid()
        self._fh: "IO[str] | None" = None
        self._local = threading.local()
        self._id_lock = threading.Lock()
        self._id = 0

    # -- span API ----------------------------------------------------------
    def span(self, name: str, **attrs: object) -> Span:
        """An unentered span; use as ``with tracer.span("x", k=v) as sp:``."""
        return Span(self, name, attrs)

    def event(self, name: str, **attrs: object) -> None:
        """Emit an instantaneous (zero-duration) record."""
        stack = self._stack()
        record = {
            "kind": "event",
            "name": name,
            "span_id": self._next_id(),
            "parent_id": stack[-1].span_id if stack else None,
            "t_start_s": round(perf_counter() - self.epoch, 9),
            "duration_s": 0.0,
            "pid": os.getpid(),
        }
        if attrs:
            record["attrs"] = attrs
        self._emit(record)

    # -- internals ---------------------------------------------------------
    def _next_id(self) -> int:
        with self._id_lock:
            self._id += 1
            # Disambiguate ids across forked workers: each process draws
            # from its own counter, so the pid in the record is part of the
            # span identity.  (Cross-process parent links are not tracked.)
            return self._id

    def _stack(self) -> "list[Span]":
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _emit(self, record: dict) -> None:
        line = json.dumps(record, separators=(",", ":"), default=str)
        with self._lock:
            if self._fh is None or os.getpid() != self._pid:
                # First write, or we are a forked child that inherited the
                # parent's handle: (re)open in append mode so concurrent
                # writers interleave at line granularity (O_APPEND).
                self._pid = os.getpid()
                self._fh = open(self.path, "a", encoding="utf-8")
            self._fh.write(line + "\n")
            self._fh.flush()

    def close(self) -> None:
        """Flush and close the export file (reopened on the next emit)."""
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


# -- module-level switchboard ----------------------------------------------

_tracer: "Tracer | None" = None  # repro: noqa[RACE002] -- workers intentionally trace to their own file (or not at all under spawn); configure_tracing documents the per-process contract


def configure_tracing(path: "str | os.PathLike[str] | None") -> "Tracer | None":
    """Install a global tracer writing to *path* (``None`` disables)."""
    global _tracer
    if _tracer is not None:
        _tracer.close()
    _tracer = Tracer(path) if path is not None else None
    return _tracer


def get_tracer() -> "Tracer | None":
    """The installed global tracer, if any."""
    return _tracer


def tracing_enabled() -> bool:
    """Whether a global tracer is installed (call-site fast-path guard)."""
    return _tracer is not None


def span(name: str, **attrs: object) -> "Span | _NoopSpan":
    """A span on the global tracer, or the shared no-op when disabled."""
    if _tracer is None:
        return NOOP_SPAN
    return _tracer.span(name, **attrs)


def event(name: str, **attrs: object) -> None:
    """An event on the global tracer; dropped when disabled."""
    if _tracer is not None:
        _tracer.event(name, **attrs)


def read_trace(path: "str | os.PathLike[str]") -> Iterator[dict]:
    """Parse a JSONL trace file back into record dicts.

    Torn tails (a process killed mid-write) are skipped, matching the
    checkpoint journal's tolerance, so a trace from a crashed run is still
    analyzable.
    """
    with open(path, "r", encoding="utf-8") as fh:
        for raw in fh:
            raw = raw.strip()
            if not raw:
                continue
            try:
                record = json.loads(raw)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                yield record
