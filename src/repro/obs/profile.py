"""Opt-in profiling hooks: per-phase timings and µs/instruction.

``docs/PERFORMANCE.md``'s "measure first" rule used to be serviced by
hand-run ``cProfile`` sessions; this module makes the measurement a
first-class, reproducible artifact.  :func:`profile_run` executes the
standard ``simulate_and_measure`` pipeline with wall-clock (monotonic
``perf_counter``) timings around each phase:

``warmup``
    Functional cache warming (``HierarchySimulator.warm_caches``).
``cpi_exe``
    The perfect-L1 run that measures pure compute capability.
``issue_loop``
    The per-instruction dispatch/execute/retire loop — the hot loop.
``fill_drain``
    Post-loop record assembly: draining the interval lists into the numpy
    ``AccessRecords`` / ``InstructionRecords`` arrays.
``analysis``
    The vectorized C-AMAT analyzer pass (``measure_hierarchy``).

The ``issue_loop`` / ``fill_drain`` split lives inside
:meth:`~repro.sim.engine.HierarchySimulator.run`, guarded by
:func:`profiling_enabled` so the engine pays two clock reads per *run*
(not per instruction) only while a profile is being taken, and nothing at
all otherwise.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.params import MachineConfig
    from repro.sim.stats import HierarchyStats
    from repro.workloads.trace import Trace

__all__ = [
    "ProfileReport",
    "profile_run",
    "profiling_enabled",
    "set_profiling_enabled",
    "format_profile_report",
]

_PHASES = ("warmup", "cpi_exe", "issue_loop", "fill_drain", "analysis")

_enabled = False


def profiling_enabled() -> bool:
    """Whether the engine should record phase timings (fast-path guard)."""
    return _enabled


def set_profiling_enabled(enabled: bool) -> None:
    """Turn engine phase timing on or off globally."""
    global _enabled
    _enabled = bool(enabled)


@contextmanager
def _profiling() -> Iterator[None]:
    previous = _enabled
    set_profiling_enabled(True)
    try:
        yield
    finally:
        set_profiling_enabled(previous)


@dataclass
class ProfileReport:
    """Structured timing profile of one simulate-and-measure pipeline."""

    trace_name: str
    config_name: str
    n_instructions: int
    n_accesses: int
    #: Phase name -> best (minimum over rounds) wall seconds.
    phases: "dict[str, float]" = field(default_factory=dict)
    rounds: int = 1

    @property
    def total_s(self) -> float:
        """Sum of all phase times."""
        return sum(self.phases.values())

    @property
    def simulate_s(self) -> float:
        """Time in the real-run engine (issue loop + record drain)."""
        return self.phases.get("issue_loop", 0.0) + self.phases.get("fill_drain", 0.0)

    @property
    def us_per_instruction(self) -> float:
        """Engine cost per simulated instruction, in microseconds."""
        if not self.n_instructions:
            return 0.0
        return self.simulate_s / self.n_instructions * 1e6

    @property
    def instructions_per_s(self) -> float:
        """Engine throughput in simulated instructions per wall second."""
        return self.n_instructions / self.simulate_s if self.simulate_s > 0 else 0.0

    def phase_share(self, name: str) -> float:
        """Phase time as a fraction of the total pipeline time."""
        total = self.total_s
        return self.phases.get(name, 0.0) / total if total > 0 else 0.0

    def to_dict(self) -> dict:
        """JSON-serializable form (the structured report artifact)."""
        return {
            "trace_name": self.trace_name,
            "config_name": self.config_name,
            "n_instructions": self.n_instructions,
            "n_accesses": self.n_accesses,
            "rounds": self.rounds,
            "phases_s": dict(self.phases),
            "total_s": self.total_s,
            "us_per_instruction": self.us_per_instruction,
            "instructions_per_s": self.instructions_per_s,
        }


def profile_run(
    config: "MachineConfig",
    trace: "Trace",
    *,
    seed: int = 0,
    warm: bool = True,
    rounds: int = 1,
) -> "tuple[HierarchyStats, ProfileReport]":
    """Run the full measurement pipeline with per-phase wall timings.

    Mirrors :func:`repro.sim.stats.simulate_and_measure` exactly (same
    stats out), adding phase timing around each stage.  With ``rounds > 1``
    every phase keeps its *minimum* observed time — the standard way to
    strip scheduler noise from a single-threaded benchmark.
    """
    from repro.obs import trace as obs_trace
    from repro.sim.engine import HierarchySimulator
    from repro.sim.stats import measure_hierarchy

    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    best: "dict[str, float]" = {}
    stats = None
    with _profiling(), obs_trace.span(
        "profile.run", trace=trace.name, config=config.name, rounds=rounds
    ):
        for _ in range(rounds):
            timings: "dict[str, float]" = {}

            t0 = perf_counter()
            perfect_sim = HierarchySimulator(config, seed=seed)
            perfect = perfect_sim.run(trace, perfect=True)
            timings["cpi_exe"] = perf_counter() - t0

            sim = HierarchySimulator(config, seed=seed)
            t0 = perf_counter()
            if warm:
                sim.warm_caches(trace)
            timings["warmup"] = perf_counter() - t0

            result = sim.run(trace)
            timings["issue_loop"] = result.component_stats.get("phase_issue_loop_s", 0.0)
            timings["fill_drain"] = result.component_stats.get("phase_fill_drain_s", 0.0)

            t0 = perf_counter()
            stats = measure_hierarchy(result, cpi_exe=perfect.cpi)
            timings["analysis"] = perf_counter() - t0

            for phase in _PHASES:
                t = timings.get(phase, 0.0)
                if phase not in best or t < best[phase]:
                    best[phase] = t
    assert stats is not None
    report = ProfileReport(
        trace_name=trace.name,
        config_name=config.name,
        n_instructions=result.instructions.n_instructions,
        n_accesses=result.accesses.n_accesses,
        phases=best,
        rounds=rounds,
    )
    return stats, report


def format_profile_report(report: ProfileReport) -> str:
    """Text rendering of a profile — the PERFORMANCE.md measured table."""
    lines = [
        f"profile: {report.trace_name} on {report.config_name} "
        f"({report.n_instructions} instructions, {report.n_accesses} accesses, "
        f"best of {report.rounds} round{'s' if report.rounds != 1 else ''})",
        f"{'phase':<12s} {'seconds':>10s} {'share':>7s}",
    ]
    for phase in _PHASES:
        seconds = report.phases.get(phase, 0.0)
        lines.append(
            f"{phase:<12s} {seconds:>10.4f} {report.phase_share(phase):>6.1%}"
        )
    lines.append(f"{'total':<12s} {report.total_s:>10.4f} {1:>6.0%}")
    lines.append(
        f"engine: {report.us_per_instruction:.2f} us/instruction "
        f"({report.instructions_per_s:,.0f} instructions/s)"
    )
    return "\n".join(lines)
