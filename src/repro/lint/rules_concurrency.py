"""Concurrency-safety rules for the fork-based evaluation pool.

The pool forks workers, so module state is *copied* at fork time: a
worker-side write to a module-level mutable, or to supervisor-owned
attributes, silently diverges from the parent and is lost when the worker
exits.  These rules flag the two shapes of that bug:

* CON001 — module-level mutable containers in pool-adjacent packages
  (``runtime``, ``sim``, ``sched``).  Constants are fine (dunders and
  ALL_CAPS names are exempt by convention: registries populated at import
  time and read-only afterwards), anything else is shared mutable state;
* CON002 — code reachable on the worker side of the fork (functions passed
  as a ``Process(target=...)`` or named ``_worker_*``) rebinding module or
  closure state via ``global`` / ``nonlocal``, or writing attributes on
  anything other than its own locals.

CON003 guards the asyncio side of the house: inside :mod:`repro.service`
every await on a raw socket/stream/queue transport primitive must carry a
deadline — wrapped in ``asyncio.wait_for`` (or an ``asyncio.timeout``
block) or passing a ``timeout=``/``deadline=`` argument — because one
half-dead peer otherwise parks the coroutine, and with it a connection
handler or the dispatch loop, forever.  Higher-level blocking shapes
(``join``, ``wait``, sync disk IO on the loop) belong to the
whole-program ASYNC tier (``repro lint --program``), which sees the call
graph this per-file rule cannot.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.engine import ModuleContext, Rule, Severity, Violation, register

__all__ = [
    "ModuleLevelMutableGlobal",
    "WorkerSideSharedMutation",
    "UnboundedServiceAwait",
]

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "defaultdict", "deque", "Counter"})


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CALLS
    return False


def _is_constant_style(name: str) -> bool:
    return name.startswith("__") or name == name.upper()


@register
class ModuleLevelMutableGlobal(Rule):
    """CON001: fork-unsafe module-level mutable container."""

    name = "CON001"
    severity = Severity.ERROR
    description = (
        "module-level mutable container is fork-unsafe shared state; make "
        "it a constant (ALL_CAPS, treated as frozen) or instance state"
    )
    packages = ("runtime", "sim", "sched")

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        for stmt in ctx.tree.body:
            targets: list[ast.expr] = []
            value: "ast.expr | None" = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None or not _is_mutable_literal(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name) and not _is_constant_style(target.id):
                    yield self.violation(
                        ctx, stmt,
                        f"module-level mutable {target.id!r} is shared "
                        "(fork-copied) state; use ALL_CAPS for a frozen "
                        "registry or move it into an instance",
                    )


def _worker_entry_functions(ctx: ModuleContext) -> "list[ast.FunctionDef]":
    """Functions that run on the worker side of a Process fork."""
    targets: set[str] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            callee = node.func.attr if isinstance(node.func, ast.Attribute) else (
                node.func.id if isinstance(node.func, ast.Name) else None
            )
            if callee == "Process":
                for kw in node.keywords:
                    if kw.arg == "target" and isinstance(kw.value, ast.Name):
                        targets.add(kw.value.id)
    entries = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.FunctionDef) and (
            node.name in targets or node.name.startswith("_worker")
        ):
            entries.append(node)
    return entries


@register
class WorkerSideSharedMutation(Rule):
    """CON002: worker-side code mutating supervisor/module state."""

    name = "CON002"
    severity = Severity.ERROR
    description = (
        "worker-side function mutates state outside its own frame; the "
        "write is lost at fork boundaries — return results over the pipe "
        "instead"
    )
    packages = ("runtime", "sim", "sched")

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        for func in _worker_entry_functions(ctx):
            local_names = {arg.arg for arg in (
                *func.args.posonlyargs, *func.args.args, *func.args.kwonlyargs,
            )}
            if func.args.vararg:
                local_names.add(func.args.vararg.arg)
            if func.args.kwarg:
                local_names.add(func.args.kwarg.arg)
            for node in ast.walk(func):
                if isinstance(node, (ast.Global, ast.Nonlocal)):
                    kind = "global" if isinstance(node, ast.Global) else "nonlocal"
                    yield self.violation(
                        ctx, node,
                        f"{kind} rebinding in worker-side function "
                        f"{func.name!r} diverges from the supervisor after "
                        "fork",
                    )
                elif isinstance(node, ast.Assign):
                    local_names.update(
                        t.id for t in node.targets if isinstance(t, ast.Name)
                    )
                elif isinstance(node, (ast.For, ast.AsyncFor)) and isinstance(
                    node.target, ast.Name
                ):
                    local_names.add(node.target.id)
                elif isinstance(node, (ast.With, ast.AsyncWith)):
                    local_names.update(
                        item.optional_vars.id
                        for item in node.items
                        if isinstance(item.optional_vars, ast.Name)
                    )
                elif isinstance(node, (ast.Attribute,)) and isinstance(
                    node.ctx, (ast.Store, ast.Del)
                ):
                    root = node
                    while isinstance(root, ast.Attribute):
                        root = root.value
                    if isinstance(root, ast.Name) and root.id not in local_names:
                        yield self.violation(
                            ctx, node,
                            f"worker-side function {func.name!r} writes "
                            f"attribute on non-local {root.id!r}; the "
                            "mutation is invisible to the supervisor",
                        )


#: Await targets that block on a peer, a pipe, or a queue — the *raw
#: transport primitives* that hang forever when the other side dies.
#: ``asyncio.wait_for`` itself is deliberately absent: it is the fix, not
#: the hazard.  Generic method names (``join``, ``wait``) are also absent
#: — their blocking forms are the whole-program ASYNC001 tier's scope
#: (rescoped in PR 7 so no line is ever reported by both tiers).
_BLOCKING_AWAITS = frozenset({
    "accept", "connect", "drain", "get", "open_connection",
    "put", "read", "readexactly", "readline", "readuntil", "recv",
    "recv_into", "send", "sendall", "wait_closed",
})


def _has_deadline_kwarg(call: ast.Call) -> bool:
    return any(
        kw.arg is not None and ("timeout" in kw.arg or "deadline" in kw.arg)
        for kw in call.keywords
    )


@register
class UnboundedServiceAwait(Rule):
    """CON003: unbounded await on a socket/stream/queue primitive."""

    name = "CON003"
    severity = Severity.ERROR
    description = (
        "await on a raw socket/stream/queue transport primitive in "
        "repro.service without a deadline; wrap it in asyncio.wait_for "
        "(or an asyncio.timeout block) or pass a timeout=/deadline= "
        "argument so one half-dead peer cannot park the coroutine forever"
    )
    packages = ("service",)

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Await):
                continue
            call = node.value
            if not isinstance(call, ast.Call):
                continue
            name = (
                call.func.attr if isinstance(call.func, ast.Attribute)
                else call.func.id if isinstance(call.func, ast.Name)
                else None
            )
            if name not in _BLOCKING_AWAITS:
                continue
            if _has_deadline_kwarg(call):
                continue
            if self._inside_timeout_block(ctx, node):
                continue
            yield self.violation(
                ctx, node,
                f"await {name}(...) has no deadline; wrap it in "
                "asyncio.wait_for(...) or pass a timeout=/deadline= "
                "argument",
            )

    @staticmethod
    def _inside_timeout_block(ctx: ModuleContext, node: ast.AST) -> bool:
        """Whether an ``async with asyncio.timeout(...)`` bounds *node*."""
        for anc in ctx.ancestors(node):
            if isinstance(anc, (ast.With, ast.AsyncWith)):
                for item in anc.items:
                    expr = item.context_expr
                    if not isinstance(expr, ast.Call):
                        continue
                    chain = ctx.resolve_call_chain(expr.func)
                    if chain and chain[0] == "asyncio" and chain[-1] in (
                        "timeout", "timeout_at",
                    ):
                        return True
            elif isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break  # a timeout block outside the coroutine bounds nothing
        return False
