"""Observability rules: timing and output discipline in instrumented code.

The observability layer (:mod:`repro.obs`) and the evaluation runtime it
instruments live or die by two conventions:

* **Durations come from the monotonic clock.**  ``time.time()`` steps
  under NTP slew and DST, so a span or phase timing taken from it can be
  negative or wildly wrong; every duration in the repo is a
  ``time.perf_counter`` difference (OBS001).
* **Diagnostics are structured, never printed.**  A stray ``print`` from
  inside the tracer, the metrics registry, or a pool worker corrupts the
  machine-readable CLI output (``--metrics json`` and golden snapshots),
  and under a fork-pool interleaves mid-line with the parent.  Anything
  user-facing goes through the reporters or a trace event (OBS002).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.engine import ModuleContext, Rule, Severity, Violation, register

__all__ = ["WallClockDuration", "DirectPrint"]

#: ``time.<x>`` calls that read the steppable wall clock.
_WALL_CLOCK = frozenset({"time", "time_ns"})


@register
class WallClockDuration(Rule):
    """OBS001: wall-clock read where a monotonic duration is required."""

    name = "OBS001"
    severity = Severity.ERROR
    description = (
        "time.time()/time_ns() in instrumented code; durations must use "
        "time.perf_counter (monotonic, never steps)"
    )
    # DET001 already bans wall-clock reads in sim/core/workloads; this rule
    # covers the observability, runtime, and service layers, where the
    # failure mode is a corrupted span/phase timing (or breaker/deadline
    # arithmetic) rather than a nondeterministic result.
    packages = ("obs", "runtime", "service")

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = ctx.resolve_call_chain(node.func)
            if not chain or len(chain) < 2:
                continue
            if chain[0] == "time" and chain[-1] in _WALL_CLOCK:
                dotted = ".".join(chain)
                yield self.violation(
                    ctx, node,
                    f"{dotted}() reads the steppable wall clock; time "
                    "durations with time.perf_counter() instead",
                )


@register
class DirectPrint(Rule):
    """OBS002: bare ``print`` inside the observability/runtime layers."""

    name = "OBS002"
    severity = Severity.ERROR
    description = (
        "direct print() in repro.obs/runtime/service; route output through "
        "the reporters, a trace event, or a metrics counter"
    )
    packages = ("obs", "runtime", "service")

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "print":
                yield self.violation(
                    ctx, node,
                    "print() from instrumented code interleaves with worker "
                    "output and corrupts structured reports; return a string "
                    "or emit a trace event",
                )
