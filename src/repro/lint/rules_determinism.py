"""Determinism rules: measurement paths must be reproducible from one seed.

Every stochastic draw in the simulator and the model core must route
through :mod:`repro.util.rng` (``make_rng`` / ``spawn`` / ``derive_seed``)
so that an experiment is bit-identical under its seed.  Wall-clock reads
and the process-global ``random`` / legacy ``numpy.random`` state break
that guarantee silently; iterating a ``set`` does too, because string
hashing is salted per process (``PYTHONHASHSEED``), which reorders floats
accumulated in iteration order.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.engine import ModuleContext, Rule, Severity, Violation, register

__all__ = ["BannedNondeterministicCall", "SetIterationOrder"]

#: module -> banned terminal attribute names (``None`` bans every call).
_BANNED_CALLS: dict[str, "frozenset[str] | None"] = {
    "random": None,  # the process-global stdlib RNG, in its entirety
    "time": frozenset({"time", "time_ns"}),
    "uuid": frozenset({"uuid1", "uuid4"}),
    "os": frozenset({"urandom", "getrandom"}),
    "secrets": None,
}

#: ``datetime.datetime.<x>`` / ``datetime.date.<x>`` wall-clock reads.
_BANNED_DATETIME = frozenset({"now", "utcnow", "today"})

#: ``numpy.random.<x>`` that is allowed: the seeded Generator API only.
_ALLOWED_NUMPY_RANDOM = frozenset({"default_rng", "Generator", "SeedSequence", "PCG64"})


@register
class BannedNondeterministicCall(Rule):
    """DET001: unseeded randomness or wall-clock reads in measurement code."""

    name = "DET001"
    severity = Severity.ERROR
    description = (
        "unseeded/global randomness or wall-clock call in a measurement path; "
        "route randomness through repro.util.rng"
    )
    packages = ("sim", "core", "workloads")

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        imported_roots = {
            module.split(".")[0]
            for module in (*ctx.import_aliases.values(), *ctx.from_imports.values())
        }
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = ctx.resolve_call_chain(node.func)
            if not chain or len(chain) < 2 or chain[0] not in imported_roots:
                continue
            message = self._classify(chain)
            if message is not None:
                yield self.violation(ctx, node, message)

    @staticmethod
    def _classify(chain: list[str]) -> "str | None":
        root, terminal = chain[0], chain[-1]
        dotted = ".".join(chain)
        if root in _BANNED_CALLS:
            banned = _BANNED_CALLS[root]
            if banned is None or terminal in banned:
                return (
                    f"call to {dotted}() is not reproducible from a seed; "
                    "use repro.util.rng (make_rng/spawn/derive_seed)"
                )
        if root == "datetime" and terminal in _BANNED_DATETIME:
            return f"wall-clock read {dotted}() in a measurement path"
        if root == "numpy" and len(chain) >= 3 and chain[1] == "random":
            if terminal not in _ALLOWED_NUMPY_RANDOM:
                return (
                    f"legacy global-state API {dotted}(); use the seeded "
                    "Generator API via repro.util.rng.make_rng"
                )
        return None


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    return False


@register
class SetIterationOrder(Rule):
    """DET002: hash-order iteration over a set in a measurement path."""

    name = "DET002"
    severity = Severity.ERROR
    description = (
        "iteration over a set depends on hash order (salted per process); "
        "wrap in sorted(...) to fix the order"
    )
    packages = ("sim", "core", "workloads")

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            iters: list[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if _is_set_expression(it):
                    yield self.violation(
                        ctx, it,
                        "iterating a set in hash order; use sorted(...) for a "
                        "deterministic order",
                    )
