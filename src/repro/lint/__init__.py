"""``repro.lint`` — AST static analysis + model-invariant contracts.

Two complementary halves:

* the **lint engine** (:mod:`repro.lint.engine`) with repo-specific rule
  packs — determinism (DET*), numerical safety (NUM*), error-taxonomy
  discipline (ERR*), concurrency/fork safety (CON*), observability
  discipline (OBS*), hot-path performance (PERF*), and contract
  declaration (CTR*).  Run it with ``python -m repro lint``;
* the **contract checker** (:mod:`repro.lint.contracts`): the paper's
  C-AMAT/LPMR identities (Eqs. 2-4, 9-11) as a typed table, declared at
  report-producing sites via :func:`~repro.lint.contracts.satisfies` and
  enforceable at runtime under
  :func:`~repro.lint.contracts.runtime_checks`;
* the **whole-program analyzer** (:mod:`repro.lint.program`): call graph,
  dataflow and purity inference behind the RACE/PURE/FLOW rule packs.
  Run it with ``python -m repro lint --program``.

Suppress a single finding with an inline justification comment::

    value = a / accesses  # repro: noqa[NUM001] -- accesses checked by caller
"""

from repro.lint import (  # noqa: F401  (imported for rule registration)
    rules_concurrency,
    rules_contracts,
    rules_determinism,
    rules_numeric,
    rules_obs,
    rules_perf,
    rules_taxonomy,
)
from repro.lint.contracts import (
    CONTRACTS,
    Contract,
    ContractViolation,
    check_layer,
    check_report,
    check_stats,
    runtime_checks,
    satisfies,
    verify,
)
from repro.lint.engine import (
    RULES,
    ASTCache,
    LintResult,
    Rule,
    Severity,
    Violation,
    lint_source,
    run_lint,
)
from repro.lint.reporters import format_json, format_rule_listing, format_text

__all__ = [
    "RULES",
    "ASTCache",
    "LintResult",
    "Rule",
    "Severity",
    "Violation",
    "lint_source",
    "run_lint",
    "format_text",
    "format_json",
    "format_rule_listing",
    "CONTRACTS",
    "Contract",
    "ContractViolation",
    "satisfies",
    "verify",
    "check_layer",
    "check_stats",
    "check_report",
    "runtime_checks",
]
