"""Numerical-safety rules: divisions, float equality, inf/nan literals.

The analytical models divide by measured quantities (``accesses``,
``miss_count``, ``cpi_exe``, ...) that are legitimately zero for empty or
degenerate windows, so every such division must be guarded.  NUM001
recognizes the repository's sanctioned guard idioms:

* a test mentioning the denominator anywhere in the enclosing function
  (``x / n if n else 0.0``, early ``if n == 0: return``, ``assert n``);
* a validator call on the denominator in the enclosing function
  (``check_positive("apc", apc)``, ``check_at_least(...)``);
* a dataclass whose ``__post_init__`` validates the field being divided by
  (``check_positive("hit_time", self.hit_time)`` makes ``self.hit_time``
  safe in every method of that class);
* the shared :func:`repro.util.validation.safe_ratio` helper.

Only divisions by a *bare name or attribute* whose terminal name is a known
model quantity are examined — arbitrary expressions are out of scope, which
keeps the rule's false-positive rate near zero at the cost of not chasing
aliases.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.engine import ModuleContext, Rule, Severity, Violation, register

__all__ = ["UnguardedModelDivision", "FloatEqualityComparison", "FloatLiteralInfNan"]

#: Model quantities that may legitimately measure zero.  Divisions by other
#: names are not this rule's business.
MODEL_DENOMINATORS = frozenset({
    "accesses", "n", "n_accesses", "total", "count",
    "miss_count", "pure_miss_count", "misses", "pure_misses",
    "active", "active_cycles", "hit_active_cycles", "miss_active_cycles",
    "pure_miss_cycles", "total_cycles",
    "cpi", "cpi_exe", "ipc", "camat", "camat_value", "apc",
    "hit_concurrency", "miss_concurrency", "pure_miss_concurrency",
    "avg_miss_penalty", "pure_miss_penalty", "eta_combined",
    "n_instructions", "instructions",
    "grants", "admissions", "issued", "observed",
    "ceiling", "base_round_trip", "miss_rate",
})

#: Validator helpers that prove a value is non-zero afterwards.  ``require``
#: guards via its condition expression; ``check_int`` only with a positive
#: ``minimum=`` keyword (handled separately).
_POSITIVE_VALIDATORS = frozenset({
    "check_positive", "check_at_least", "check_power_of_two", "require",
})


def _check_int_proves_positive(node: ast.Call) -> bool:
    """Whether a ``check_int(name, value, minimum=k)`` call has ``k >= 1``."""
    for kw in node.keywords:
        if kw.arg == "minimum" and isinstance(kw.value, ast.Constant):
            value = kw.value.value
            return isinstance(value, int) and value >= 1
    return False


def _terminal_name(node: ast.AST) -> "str | None":
    """The rightmost identifier of a bare ``Name`` / ``Attribute`` chain."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _names_in(node: ast.AST) -> set[str]:
    """Every identifier (Name ids and Attribute attrs) under *node*."""
    names: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.add(sub.attr)
    return names


def _guarded_names(func: ast.AST) -> set[str]:
    """Names that appear in any branch/assert test or validator call in *func*."""
    guarded: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.If, ast.IfExp, ast.While, ast.Assert)):
            guarded |= _names_in(node.test)
        elif isinstance(node, ast.comprehension):
            for test in node.ifs:
                guarded |= _names_in(test)
        elif isinstance(node, ast.Call):
            callee = _terminal_name(node.func)
            if callee in _POSITIVE_VALIDATORS or (
                callee == "check_int" and _check_int_proves_positive(node)
            ):
                for arg in node.args:
                    guarded |= _names_in(arg)
    return guarded


def _post_init_validated_fields(cls: ast.ClassDef) -> set[str]:
    """Fields a dataclass's ``__post_init__`` proves positive.

    Recognizes ``check_positive("field", self.field)`` and
    ``check_at_least("field", self.field, k)`` — the string literal is
    taken as the field name, matching the repository convention.
    """
    validated: set[str] = set()
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "__post_init__":
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                callee = _terminal_name(node.func)
                proves_positive = callee in _POSITIVE_VALIDATORS or (
                    callee == "check_int" and _check_int_proves_positive(node)
                )
                if proves_positive and node.args:
                    first = node.args[0]
                    if isinstance(first, ast.Constant) and isinstance(first.value, str):
                        validated.add(first.value)
    return validated


@register
class UnguardedModelDivision(Rule):
    """NUM001: division by a model quantity with no zero guard in scope."""

    name = "NUM001"
    severity = Severity.ERROR
    description = (
        "division by a model quantity (accesses, miss_count, cpi_exe, ...) "
        "without a zero guard; use util.validation.safe_ratio or guard the "
        "denominator"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        class_fields: dict[ast.ClassDef, set[str]] = {}
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.BinOp):
                continue
            if not isinstance(node.op, (ast.Div, ast.FloorDiv, ast.Mod)):
                continue
            denom = _terminal_name(node.right)
            if denom is None or denom not in MODEL_DENOMINATORS:
                continue
            func = ctx.enclosing_function(node)
            if func is not None and denom in _guarded_names(func):
                continue
            if isinstance(node.right, ast.Attribute) and isinstance(
                node.right.value, ast.Name
            ) and node.right.value.id in ("self", "cls"):
                cls = ctx.enclosing_class(node)
                if cls is not None:
                    if cls not in class_fields:
                        class_fields[cls] = _post_init_validated_fields(cls)
                    if denom in class_fields[cls]:
                        continue
            yield self.violation(
                ctx, node,
                f"unguarded division by model quantity {denom!r}; use "
                f"safe_ratio(num, {denom}) or guard against zero",
            )


@register
class FloatEqualityComparison(Rule):
    """NUM002: ``==`` / ``!=`` against a non-zero float literal.

    Comparing to ``0.0`` is exempt: exact zero is this codebase's sentinel
    for "no such phase" (e.g. ``avg_miss_penalty == 0.0`` means no misses)
    and is assigned, never computed, so the comparison is exact.
    """

    name = "NUM002"
    severity = Severity.ERROR
    description = (
        "float equality against a non-zero literal; use math.isclose or an "
        "explicit tolerance"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, (left, right) in zip(node.ops, zip(operands, operands[1:])):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (left, right):
                    if (
                        isinstance(side, ast.Constant)
                        and isinstance(side.value, float)
                        and side.value != 0.0
                    ):
                        yield self.violation(
                            ctx, node,
                            f"exact float comparison against {side.value!r}; "
                            "use math.isclose or a tolerance",
                        )
                        break


@register
class FloatLiteralInfNan(Rule):
    """NUM003: ``float("inf")`` / ``float("nan")`` string round-trips."""

    name = "NUM003"
    severity = Severity.WARNING
    description = 'float("inf"/"nan") literal; use math.inf / math.nan'

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "float"
                and len(node.args) == 1
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                text = node.args[0].value.strip().lstrip("+-").lower()
                if text in {"inf", "infinity", "nan"}:
                    yield self.violation(
                        ctx, node,
                        f'float("{node.args[0].value}"); use math.inf / math.nan',
                    )
