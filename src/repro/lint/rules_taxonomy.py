"""Error-taxonomy rules: keep the ReproError hierarchy intact.

The supervised pool, the online controller, and the CLI all branch on the
:mod:`repro.runtime.errors` taxonomy.  A broad ``except Exception`` between
a raise site and those supervisors flattens a :class:`ReproError` into an
anonymous failure (losing the retryable/non-retryable distinction), and a
bare ``raise ValueError`` where :class:`ConfigError` exists robs callers of
the one base class they are promised.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.engine import ModuleContext, Rule, Severity, Violation, register

__all__ = ["BroadExceptionHandler", "TaxonomyBypassRaise"]

_BROAD = frozenset({"Exception", "BaseException"})
_TAXONOMY_NAMES = frozenset({
    "ReproError", "ConfigError", "MeasurementError",
    "EvaluationTimeout", "WorkerCrashed", "ContractViolation",
})


def _handler_names(handler: ast.ExceptHandler) -> set[str]:
    """The exception class names a handler catches ('' for a bare except)."""
    if handler.type is None:
        return {""}
    nodes = handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    names = set()
    for node in nodes:
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return names


def _reraises(handler: ast.ExceptHandler) -> bool:
    """Whether the handler re-raises (a bare ``raise`` anywhere in its body)."""
    return any(
        isinstance(node, ast.Raise) and node.exc is None
        for node in ast.walk(handler)
    )


@register
class BroadExceptionHandler(Rule):
    """ERR001: broad except that can swallow the ReproError taxonomy."""

    name = "ERR001"
    severity = Severity.ERROR
    description = (
        "except Exception/BaseException/bare can swallow ReproError; catch "
        "the taxonomy first or re-raise"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Try):
                continue
            taxonomy_handled = False
            for handler in node.handlers:
                names = _handler_names(handler)
                if names & _TAXONOMY_NAMES:
                    taxonomy_handled = True
                if not (names & _BROAD or "" in names):
                    continue
                if taxonomy_handled and "" not in names and "BaseException" not in names:
                    # An earlier clause already routed the taxonomy; the
                    # broad clause only sees what is left.
                    continue
                if _reraises(handler):
                    continue
                caught = ", ".join(sorted(n or "<bare>" for n in names))
                yield self.violation(
                    ctx, handler,
                    f"broad handler ({caught}) can swallow ReproError / "
                    "KeyboardInterrupt; narrow it, catch ReproError first, "
                    "or re-raise",
                )


@register
class TaxonomyBypassRaise(Rule):
    """ERR002: raising a builtin where a taxonomy class exists (runtime/)."""

    name = "ERR002"
    severity = Severity.ERROR
    description = (
        "raise ValueError/RuntimeError/TimeoutError inside repro.runtime; "
        "use the ReproError taxonomy (ConfigError, MeasurementError, ...)"
    )
    packages = ("runtime",)

    _BYPASSED = {
        "ValueError": "ConfigError",
        "RuntimeError": "MeasurementError or WorkerCrashed",
        "TimeoutError": "EvaluationTimeout",
    }

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name = None
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            if name in self._BYPASSED:
                yield self.violation(
                    ctx, node,
                    f"raise {name} bypasses the error taxonomy; raise "
                    f"{self._BYPASSED[name]} (repro.runtime.errors) instead",
                )
