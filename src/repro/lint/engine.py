"""The AST lint engine: rule registry, suppression handling, file driver.

``repro.lint`` is a repo-specific static analyzer: generic linters cannot
know that ``accesses`` is a model quantity that may legitimately be zero,
that every random draw must route through :mod:`repro.util.rng`, or that
``except Exception`` can swallow the :class:`~repro.runtime.errors.ReproError`
taxonomy the evaluation pool depends on.  The engine here is deliberately
small:

* a :class:`Rule` base class — one instance per rule id, registered through
  the :func:`register` decorator into :data:`RULES`;
* a :class:`ModuleContext` per linted file, carrying the parsed tree (with
  parent back-links), source lines, import aliases, and the per-line
  suppressions parsed from ``# repro: noqa[RULE1,RULE2] -- why`` comments;
* :func:`run_lint` / :func:`lint_source` drivers that parse, dispatch every
  registered (or selected) rule, filter suppressed violations, and return a
  deterministic, sorted :class:`LintResult`.

Rules are pure functions of the module context: they may not import the
modules they analyze, so linting never executes repository code.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path

__all__ = [
    "Severity",
    "Violation",
    "ModuleContext",
    "Rule",
    "RULES",
    "register",
    "LintResult",
    "lint_source",
    "run_lint",
    "iter_python_files",
]

#: ``# repro: noqa[NUM001,ERR001] -- justification`` (the justification text
#: after the bracket is free-form but expected by convention).
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa\[([A-Z0-9_,\s]+)\]")


class Severity(Enum):
    """How serious a violation is; both levels gate the CI job."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, order=True)
class Violation:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    severity: Severity = field(compare=False)
    message: str = field(compare=False)

    def format(self) -> str:
        """``path:line:col: RULE [severity] message`` — editor-clickable."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity.value}] {self.message}"
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable form for the ``--json`` reporter."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
        }


class ModuleContext:
    """Everything a rule needs to know about one parsed module."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.lines: list[str] = source.splitlines()
        self.tree = tree
        #: line number -> set of suppressed rule names on that line.
        self.noqa: dict[int, set[str]] = {}
        #: local alias -> dotted module name, from import statements
        #: (``import numpy as np`` -> ``{"np": "numpy"}``).
        self.import_aliases: dict[str, str] = {}
        #: local name -> ``module.attr`` for from-imports
        #: (``from time import time`` -> ``{"time": "time.time"}``).
        self.from_imports: dict[str, str] = {}
        self._annotate_parents()
        self._parse_noqa()
        self._collect_imports()

    # -- construction helpers -------------------------------------------------
    def _annotate_parents(self) -> None:
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                child.repro_parent = parent  # type: ignore[attr-defined]

    def _parse_noqa(self) -> None:
        for lineno, line in enumerate(self.lines, start=1):
            match = _NOQA_RE.search(line)
            if match:
                names = {part.strip() for part in match.group(1).split(",") if part.strip()}
                self.noqa.setdefault(lineno, set()).update(names)

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.import_aliases[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    # -- rule-facing API ------------------------------------------------------
    def parent(self, node: ast.AST) -> "ast.AST | None":
        """The syntactic parent of *node* (None for the module root)."""
        return getattr(node, "repro_parent", None)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from *node*'s parent up to the module root."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def enclosing_function(
        self, node: ast.AST
    ) -> "ast.FunctionDef | ast.AsyncFunctionDef | None":
        """The nearest enclosing function definition, if any."""
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None

    def enclosing_class(self, node: ast.AST) -> "ast.ClassDef | None":
        """The nearest enclosing class definition, if any."""
        for anc in self.ancestors(node):
            if isinstance(anc, ast.ClassDef):
                return anc
        return None

    def is_suppressed(self, violation: Violation) -> bool:
        """Whether a ``# repro: noqa[...]`` on the line covers this rule."""
        return violation.rule in self.noqa.get(violation.line, set())

    def resolve_call_chain(self, node: ast.AST) -> "list[str] | None":
        """Resolve an attribute/name chain to dotted parts, imports applied.

        ``np.random.rand`` with ``import numpy as np`` resolves to
        ``["numpy", "random", "rand"]``; a from-import alias expands to its
        source module.  Returns ``None`` for non-static chains (calls,
        subscripts, ...).
        """
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        parts.append(current.id)
        parts.reverse()
        root = parts[0]
        if root in self.import_aliases:
            parts[0:1] = self.import_aliases[root].split(".")
        elif root in self.from_imports:
            parts[0:1] = self.from_imports[root].split(".")
        return parts


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`check`, which
    yields :class:`Violation`\\ s for one module.  ``packages`` restricts a
    rule to files whose path contains one of the named directory segments
    (``None`` applies everywhere under the linted roots).
    """

    name: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""
    #: Directory-segment scope, e.g. ``("sim", "core")``; None = everywhere.
    packages: "tuple[str, ...] | None" = None

    def applies_to(self, path: str) -> bool:
        """Whether this rule runs on the file at *path*."""
        if self.packages is None:
            return True
        parts = Path(path).parts
        return any(pkg in parts for pkg in self.packages)

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        """Yield violations found in *ctx*; overridden by every rule."""
        raise NotImplementedError

    def violation(
        self, ctx: ModuleContext, node: ast.AST, message: str
    ) -> Violation:
        """Build a violation anchored at *node*'s location."""
        return Violation(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.name,
            severity=self.severity,
            message=message,
        )


#: The global rule registry: rule name -> singleton instance.
RULES: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one instance of *cls* to :data:`RULES`."""
    if not cls.name:
        raise ValueError(f"rule class {cls.__name__} must set a name")
    if cls.name in RULES:
        raise ValueError(f"duplicate rule name {cls.name!r}")
    RULES[cls.name] = cls()
    return cls


@dataclass
class LintResult:
    """The outcome of one lint run."""

    violations: list[Violation]
    files_checked: int
    suppressed: int = 0

    @property
    def ok(self) -> bool:
        """Whether the run found no violations at all."""
        return not self.violations


def _select_rules(rules: "Sequence[str] | None") -> list[Rule]:
    if rules is None:
        return [RULES[name] for name in sorted(RULES)]
    selected = []
    for name in rules:
        if name not in RULES:
            known = ", ".join(sorted(RULES))
            raise KeyError(f"unknown lint rule {name!r} (known rules: {known})")
        selected.append(RULES[name])
    return selected


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    rules: "Sequence[str] | None" = None,
) -> list[Violation]:
    """Lint one source string; the unit used by the test suite."""
    tree = ast.parse(source, filename=path)
    ctx = ModuleContext(path, source, tree)
    found: list[Violation] = []
    for rule in _select_rules(rules):
        if not rule.applies_to(path):
            continue
        for violation in rule.check(ctx):
            if not ctx.is_suppressed(violation):
                found.append(violation)
    return sorted(found)


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """All ``.py`` files under *paths* (files pass through), sorted."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def run_lint(
    paths: "Sequence[str | Path]",
    *,
    rules: "Sequence[str] | None" = None,
) -> LintResult:
    """Lint every Python file under *paths* with the selected rules.

    Violations are sorted by (path, line, col, rule); a file that fails to
    parse contributes one ``SYNTAX`` error violation rather than aborting
    the run.
    """
    selected = _select_rules(rules)
    violations: list[Violation] = []
    suppressed = 0
    files = 0
    for file_path in iter_python_files(Path(p) for p in paths):
        files += 1
        rel = str(file_path)
        try:
            source = file_path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=rel)
        except (SyntaxError, ValueError, OSError) as exc:
            violations.append(
                Violation(
                    path=rel,
                    line=getattr(exc, "lineno", None) or 1,
                    col=0,
                    rule="SYNTAX",
                    severity=Severity.ERROR,
                    message=f"could not parse: {exc}",
                )
            )
            continue
        ctx = ModuleContext(rel, source, tree)
        for rule in selected:
            if not rule.applies_to(rel):
                continue
            for violation in rule.check(ctx):
                if ctx.is_suppressed(violation):
                    suppressed += 1
                else:
                    violations.append(violation)
    return LintResult(sorted(violations), files_checked=files, suppressed=suppressed)
