"""The AST lint engine: rule registry, suppression handling, file driver.

``repro.lint`` is a repo-specific static analyzer: generic linters cannot
know that ``accesses`` is a model quantity that may legitimately be zero,
that every random draw must route through :mod:`repro.util.rng`, or that
``except Exception`` can swallow the :class:`~repro.runtime.errors.ReproError`
taxonomy the evaluation pool depends on.  The engine here is deliberately
small:

* a :class:`Rule` base class — one instance per rule id, registered through
  the :func:`register` decorator into :data:`RULES`;
* a :class:`ModuleContext` per linted file, carrying the parsed tree (with
  parent back-links), source lines, import aliases, and the per-line
  suppressions parsed from ``# repro: noqa[RULE1,RULE2] -- why`` comments;
* :func:`run_lint` / :func:`lint_source` drivers that parse, dispatch every
  registered (or selected) rule, filter suppressed violations, and return a
  deterministic, sorted :class:`LintResult`.

Rules are pure functions of the module context: they may not import the
modules they analyze, so linting never executes repository code.
"""

from __future__ import annotations

import ast
import hashlib
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path

__all__ = [
    "Severity",
    "Violation",
    "ModuleContext",
    "Rule",
    "RULES",
    "register",
    "ASTCache",
    "LintResult",
    "lint_source",
    "run_lint",
    "iter_python_files",
]

#: ``# repro: noqa[NUM001,ERR001] -- justification`` (the justification text
#: after the bracket is free-form but required for the suppression to count
#: as *justified*; program mode rejects unjustified suppressions outright).
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa\[([A-Z0-9_,\s]+)\]")

#: The justification convention: `` -- why`` after the closing bracket.
_NOQA_JUSTIFIED_RE = re.compile(
    r"#\s*repro:\s*noqa\[[A-Z0-9_,\s]+\]\s*--\s*\S"
)


class Severity(Enum):
    """How serious a violation is; both levels gate the CI job."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, order=True)
class Violation:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    severity: Severity = field(compare=False)
    message: str = field(compare=False)
    #: Optional structured payload (interval bounds, units, drift values)
    #: surfaced as ``detail`` in JSON and ``properties`` in SARIF.  Must
    #: be JSON-safe: the value-analysis rules stringify infinities.
    detail: "dict[str, object] | None" = field(default=None, compare=False)

    def format(self) -> str:
        """``path:line:col: RULE [severity] message`` — editor-clickable."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity.value}] {self.message}"
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable form for the ``--json`` reporter."""
        data: dict[str, object] = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.detail is not None:
            data["detail"] = dict(self.detail)
        return data


class ModuleContext:
    """Everything a rule needs to know about one parsed module."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.lines: list[str] = source.splitlines()
        self.tree = tree
        #: line number -> set of suppressed rule names on that line.
        self.noqa: dict[int, set[str]] = {}
        #: line number -> whether that line's noqa carries a ``-- why``.
        self.noqa_justified: dict[int, bool] = {}
        #: local alias -> dotted module name, from import statements
        #: (``import numpy as np`` -> ``{"np": "numpy"}``).
        self.import_aliases: dict[str, str] = {}
        #: local name -> ``module.attr`` for from-imports
        #: (``from time import time`` -> ``{"time": "time.time"}``).
        self.from_imports: dict[str, str] = {}
        self._annotate_parents()
        self._parse_noqa()
        self._collect_imports()

    # -- construction helpers -------------------------------------------------
    def _annotate_parents(self) -> None:
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                child.repro_parent = parent  # type: ignore[attr-defined]

    def _parse_noqa(self) -> None:
        for lineno, line in enumerate(self.lines, start=1):
            match = _NOQA_RE.search(line)
            if match:
                names = {part.strip() for part in match.group(1).split(",") if part.strip()}
                self.noqa.setdefault(lineno, set()).update(names)
                self.noqa_justified[lineno] = bool(_NOQA_JUSTIFIED_RE.search(line))

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.import_aliases[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    # -- rule-facing API ------------------------------------------------------
    def parent(self, node: ast.AST) -> "ast.AST | None":
        """The syntactic parent of *node* (None for the module root)."""
        return getattr(node, "repro_parent", None)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from *node*'s parent up to the module root."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def enclosing_function(
        self, node: ast.AST
    ) -> "ast.FunctionDef | ast.AsyncFunctionDef | None":
        """The nearest enclosing function definition, if any."""
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None

    def enclosing_class(self, node: ast.AST) -> "ast.ClassDef | None":
        """The nearest enclosing class definition, if any."""
        for anc in self.ancestors(node):
            if isinstance(anc, ast.ClassDef):
                return anc
        return None

    def is_suppressed(self, violation: Violation) -> bool:
        """Whether a ``# repro: noqa[...]`` on the line covers this rule."""
        return violation.rule in self.noqa.get(violation.line, set())

    def is_suppression_justified(self, line: int) -> bool:
        """Whether the noqa on *line* carries the ``-- why`` justification."""
        return self.noqa_justified.get(line, False)

    def resolve_call_chain(self, node: ast.AST) -> "list[str] | None":
        """Resolve an attribute/name chain to dotted parts, imports applied.

        ``np.random.rand`` with ``import numpy as np`` resolves to
        ``["numpy", "random", "rand"]``; a from-import alias expands to its
        source module.  Returns ``None`` for non-static chains (calls,
        subscripts, ...).
        """
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        parts.append(current.id)
        parts.reverse()
        root = parts[0]
        if root in self.import_aliases:
            parts[0:1] = self.import_aliases[root].split(".")
        elif root in self.from_imports:
            parts[0:1] = self.from_imports[root].split(".")
        return parts


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`check`, which
    yields :class:`Violation`\\ s for one module.  ``packages`` restricts a
    rule to files whose path contains one of the named directory segments
    (``None`` applies everywhere under the linted roots).
    """

    name: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""
    #: Directory-segment scope, e.g. ``("sim", "core")``; None = everywhere.
    packages: "tuple[str, ...] | None" = None

    def applies_to(self, path: str) -> bool:
        """Whether this rule runs on the file at *path*."""
        if self.packages is None:
            return True
        parts = Path(path).parts
        return any(pkg in parts for pkg in self.packages)

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        """Yield violations found in *ctx*; overridden by every rule."""
        raise NotImplementedError

    def violation(
        self, ctx: ModuleContext, node: ast.AST, message: str
    ) -> Violation:
        """Build a violation anchored at *node*'s location."""
        return Violation(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.name,
            severity=self.severity,
            message=message,
        )


#: The global rule registry: rule name -> singleton instance.
RULES: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one instance of *cls* to :data:`RULES`."""
    if not cls.name:
        raise ValueError(f"rule class {cls.__name__} must set a name")
    if cls.name in RULES:
        raise ValueError(f"duplicate rule name {cls.name!r}")
    RULES[cls.name] = cls()
    return cls


class ASTCache:
    """Per-run parse cache: each file's source is parsed exactly once.

    Keyed by ``(path, sha256(source))`` so a content change within one run
    (e.g. a fixer rewriting between passes) re-parses, while the common
    case — the per-file rule engine and the whole-program analyzer both
    visiting the same file — reuses the one :class:`ModuleContext`.
    ``parses``/``hits`` make the single-parse property measurable.
    """

    def __init__(self) -> None:
        self._contexts: dict[tuple[str, str], ModuleContext] = {}
        self.parses = 0
        self.hits = 0

    @staticmethod
    def _digest(source: str) -> str:
        return hashlib.sha256(source.encode("utf-8")).hexdigest()

    def context(self, path: str, source: "str | None" = None) -> ModuleContext:
        """The parsed :class:`ModuleContext` for *path*.

        Reads the file when *source* is not given.  Propagates
        ``SyntaxError`` / ``OSError`` to the caller (the drivers turn those
        into ``SYNTAX`` violations).
        """
        if source is None:
            source = Path(path).read_text(encoding="utf-8")
        key = (str(path), self._digest(source))
        cached = self._contexts.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        tree = ast.parse(source, filename=str(path))
        ctx = ModuleContext(str(path), source, tree)
        self.parses += 1
        self._contexts[key] = ctx
        return ctx


@dataclass
class LintResult:
    """The outcome of one lint run."""

    violations: list[Violation]
    files_checked: int
    suppressed: int = 0
    #: Split of :attr:`suppressed` by whether the noqa carries a ``-- why``.
    suppressed_justified: int = 0
    suppressed_unjustified: int = 0
    #: Parser work done by this run (single-parse satellite): ``parses``
    #: counts real ``ast.parse`` calls, ``parse_reuses`` cache hits.
    parses: int = 0
    parse_reuses: int = 0

    @property
    def ok(self) -> bool:
        """Whether the run found no violations at all."""
        return not self.violations

    def summary(self) -> dict[str, object]:
        """The run's summary numbers — the single source both the text and
        JSON reporters render, so their outputs cannot drift apart."""
        return {
            "violations": len(self.violations),
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "suppressed_justified": self.suppressed_justified,
            "suppressed_unjustified": self.suppressed_unjustified,
            "parses": self.parses,
            "parse_reuses": self.parse_reuses,
            "ok": self.ok,
        }


def _select_rules(rules: "Sequence[str] | None") -> list[Rule]:
    if rules is None:
        return [RULES[name] for name in sorted(RULES)]
    selected = []
    for name in rules:
        if name not in RULES:
            known = ", ".join(sorted(RULES))
            raise KeyError(f"unknown lint rule {name!r} (known rules: {known})")
        selected.append(RULES[name])
    return selected


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    rules: "Sequence[str] | None" = None,
) -> list[Violation]:
    """Lint one source string; the unit used by the test suite."""
    tree = ast.parse(source, filename=path)
    ctx = ModuleContext(path, source, tree)
    found: list[Violation] = []
    for rule in _select_rules(rules):
        if not rule.applies_to(path):
            continue
        for violation in rule.check(ctx):
            if not ctx.is_suppressed(violation):
                found.append(violation)
    return sorted(found)


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """All ``.py`` files under *paths* (files pass through), sorted."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def run_lint(
    paths: "Sequence[str | Path]",
    *,
    rules: "Sequence[str] | None" = None,
    cache: "ASTCache | None" = None,
) -> LintResult:
    """Lint every Python file under *paths* with the selected rules.

    Violations are sorted by (path, line, col, rule); a file that fails to
    parse contributes one ``SYNTAX`` error violation rather than aborting
    the run.  Passing a shared :class:`ASTCache` lets a caller (e.g. the
    whole-program driver) guarantee each file is parsed once per run.
    """
    selected = _select_rules(rules)
    cache = cache if cache is not None else ASTCache()
    parses_before, hits_before = cache.parses, cache.hits
    violations: list[Violation] = []
    suppressed = 0
    justified = 0
    files = 0
    for file_path in iter_python_files(Path(p) for p in paths):
        files += 1
        rel = str(file_path)
        try:
            ctx = cache.context(rel)
        except (SyntaxError, ValueError, OSError) as exc:
            violations.append(
                Violation(
                    path=rel,
                    line=getattr(exc, "lineno", None) or 1,
                    col=0,
                    rule="SYNTAX",
                    severity=Severity.ERROR,
                    message=f"could not parse: {exc}",
                )
            )
            continue
        for rule in selected:
            if not rule.applies_to(rel):
                continue
            for violation in rule.check(ctx):
                if ctx.is_suppressed(violation):
                    suppressed += 1
                    if ctx.is_suppression_justified(violation.line):
                        justified += 1
                else:
                    violations.append(violation)
    return LintResult(
        sorted(violations),
        files_checked=files,
        suppressed=suppressed,
        suppressed_justified=justified,
        suppressed_unjustified=suppressed - justified,
        parses=cache.parses - parses_before,
        parse_reuses=cache.hits - hits_before,
    )
