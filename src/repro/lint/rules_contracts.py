"""CTR001: report-producing functions must declare their model contracts.

Any function that returns a freshly constructed ``LayerMeasurement``,
``HierarchyStats`` or ``LPMRReport`` is a *measurement producer*: its
output feeds the LPM algorithm's decisions.  Producers must carry the
:func:`repro.lint.contracts.satisfies` decorator naming the invariants the
output upholds, so (a) the declaration is visible at the definition site
and (b) the test suite's runtime contract mode can verify every produced
object.  Deserializers (``from_dict``-style classmethods reconstructing a
checkpointed object verbatim) are exempt — they reproduce, not produce.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.engine import ModuleContext, Rule, Severity, Violation, register

__all__ = ["UndeclaredReportProducer"]

_REPORT_TYPES = frozenset({"LayerMeasurement", "HierarchyStats", "LPMRReport"})
_EXEMPT_NAMES = frozenset({"from_dict"})


def _has_satisfies_decorator(func: ast.FunctionDef) -> bool:
    for deco in func.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name == "satisfies":
            return True
    return False


@register
class UndeclaredReportProducer(Rule):
    """CTR001: constructor-returning producer without a contract declaration."""

    name = "CTR001"
    severity = Severity.ERROR
    description = (
        "function returns a LayerMeasurement/HierarchyStats/LPMRReport but "
        "declares no contracts; add @satisfies(...) from repro.lint.contracts"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        reported: set[ast.AST] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            call = node.value
            if not (isinstance(call, ast.Call) and isinstance(call.func, ast.Name)):
                continue
            if call.func.id not in _REPORT_TYPES:
                continue
            func = ctx.enclosing_function(node)
            if func is None or not isinstance(func, ast.FunctionDef):
                continue
            if func.name in _EXEMPT_NAMES or _has_satisfies_decorator(func):
                continue
            if func in reported:
                continue
            reported.add(func)
            yield self.violation(
                ctx, func,
                f"{func.name}() returns a {call.func.id} but declares no "
                "model contracts; decorate it with @satisfies(...) naming "
                "the invariants its output upholds",
            )
