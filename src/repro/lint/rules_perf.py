"""Performance rules: keep observability out of the per-instruction path.

The engine's issue loops run once per *instruction*; the observability
layer budgets one enabled-check per *run* (see ``docs/OBSERVABILITY.md``).
A span or event created inside a simulation loop therefore pays dict
lookups, object construction and (when tracing is on) an export per
instruction — the exact regression the fast-path work removed.  PERF001
flags ``repro.obs`` span/event calls lexically inside a ``for``/``while``
loop in the simulation packages unless the call is guarded by
``tracing_enabled()`` (hoisting the guard around the whole loop also
counts).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.engine import ModuleContext, Rule, Severity, Violation, register

__all__ = ["SpanInHotLoop"]

#: ``repro.obs`` entry points that allocate/export per call.
_SPAN_LIKE = frozenset({"span", "event"})

#: Calls in an ``if`` test that make a span/event acceptable in a loop.
_GUARDS = frozenset({"tracing_enabled", "metrics_enabled"})


def _is_obs_chain(chain: "list[str] | None") -> bool:
    return (
        chain is not None
        and len(chain) >= 2
        and chain[-1] in _SPAN_LIKE
        and "obs" in chain[:-1]
    )


def _test_calls_guard(ctx: ModuleContext, test: ast.AST) -> bool:
    for node in ast.walk(test):
        if isinstance(node, ast.Call):
            chain = ctx.resolve_call_chain(node.func)
            if chain and chain[-1] in _GUARDS:
                return True
    return False


@register
class SpanInHotLoop(Rule):
    """PERF001: obs span/event inside a simulation loop without a guard."""

    name = "PERF001"
    severity = Severity.ERROR
    description = (
        "repro.obs span()/event() inside a loop in simulation code; guard "
        "with tracing_enabled() (per call or hoisted around the loop) so "
        "the per-instruction path pays one boolean check at most"
    )
    packages = ("sim", "core", "analysis")

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not _is_obs_chain(ctx.resolve_call_chain(node.func)):
                continue
            in_loop = False
            guarded = False
            for anc in ctx.ancestors(node):
                if isinstance(anc, (ast.For, ast.AsyncFor, ast.While)):
                    in_loop = True
                elif isinstance(anc, ast.If) and _test_calls_guard(ctx, anc.test):
                    guarded = True
                elif isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    break
            if in_loop and not guarded:
                yield self.violation(
                    ctx, node,
                    "span/event created once per loop iteration; guard with "
                    "tracing_enabled() or hoist the span outside the loop",
                )
