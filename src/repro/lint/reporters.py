"""Render a :class:`~repro.lint.engine.LintResult` as text or JSON."""

from __future__ import annotations

import json

from repro.lint.engine import RULES, LintResult

__all__ = ["format_text", "format_json", "format_rule_listing"]


def format_text(result: LintResult) -> str:
    """Human-readable report: one line per violation plus a summary."""
    lines = [v.format() for v in result.violations]
    noun = "violation" if len(result.violations) == 1 else "violations"
    summary = (
        f"{len(result.violations)} {noun} in {result.files_checked} files"
        + (f" ({result.suppressed} suppressed by noqa)" if result.suppressed else "")
    )
    lines.append(summary)
    return "\n".join(lines)


def format_json(result: LintResult) -> str:
    """Machine-readable report for CI annotation tooling."""
    payload = {
        "violations": [v.to_dict() for v in result.violations],
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "ok": result.ok,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def format_rule_listing() -> str:
    """The ``--list-rules`` output: every registered rule with its scope."""
    lines = []
    for name in sorted(RULES):
        rule = RULES[name]
        scope = ",".join(rule.packages) if rule.packages else "all"
        lines.append(f"{name}  [{rule.severity.value:7s}] ({scope}) {rule.description}")
    return "\n".join(lines)
