"""Render a :class:`~repro.lint.engine.LintResult` as text or JSON."""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from repro.lint.engine import RULES, LintResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.program.driver import ProgramLintResult

__all__ = ["format_text", "format_json", "format_program_text", "format_rule_listing"]


def format_text(result: LintResult) -> str:
    """Human-readable report: one line per violation plus a summary.

    The summary line renders exactly the fields of
    :meth:`~repro.lint.engine.LintResult.summary`, which is also what
    :func:`format_json` serializes — the two reporters cannot drift.
    """
    lines = [v.format() for v in result.violations]
    summary = result.summary()
    noun = "violation" if summary["violations"] == 1 else "violations"
    text = f"{summary['violations']} {noun} in {summary['files_checked']} files"
    if result.suppressed:
        text += (
            f" ({result.suppressed} suppressed by noqa: "
            f"{result.suppressed_justified} justified, "
            f"{result.suppressed_unjustified} unjustified)"
        )
    lines.append(text)
    return "\n".join(lines)


def format_json(result: LintResult) -> str:
    """Machine-readable report for CI annotation tooling.

    Carries the violation list plus every summary field the text reporter
    prints (same :meth:`~repro.lint.engine.LintResult.summary` source),
    including the justified/unjustified suppression split.
    """
    payload: dict = dict(result.summary())
    # ``summary()["violations"]`` is the count; the JSON report carries the
    # full list instead (the count is its length).
    payload["violations"] = [v.to_dict() for v in result.violations]
    return json.dumps(payload, indent=2, sort_keys=True)


def format_program_text(result: "ProgramLintResult") -> str:
    """Human-readable report of one ``--program`` run.

    Baselined (grandfathered) findings render with a ``[baselined]`` tag
    but do not gate; the summary line carries the same numbers
    :meth:`~repro.lint.program.driver.ProgramLintResult.summary`
    serializes into the JSON report.
    """
    lines = [v.format() for v in result.violations]
    lines.extend(f"{v.format()} [baselined]" for v in result.baselined)
    noun = "violation" if len(result.violations) == 1 else "violations"
    lines.append(
        f"program analysis: {len(result.violations)} {noun} "
        f"({len(result.baselined)} baselined) in {result.files_checked} files; "
        f"entry points: {len(result.entries.cli)} cli, "
        f"{len(result.entries.pool)} pool, {len(result.entries.engine)} engine; "
        f"{result.suppressed} suppressed "
        f"({result.suppressed_justified} justified, "
        f"{result.suppressed_unjustified} unjustified); "
        f"parses: {result.parses} (+{result.parse_reuses} reused)"
    )
    return "\n".join(lines)


def format_rule_listing() -> str:
    """The ``--list-rules`` output: every registered rule with its scope.

    Program rules (the whole-program RACE/PURE/FLOW/SUP packs, run with
    ``--program``) are listed with the ``program`` scope marker.
    """
    from repro.lint.program.rules import PROGRAM_RULES

    lines = []
    for name in sorted(RULES):
        rule = RULES[name]
        scope = ",".join(rule.packages) if rule.packages else "all"
        lines.append(f"{name}  [{rule.severity.value:7s}] ({scope}) {rule.description}")
    for name in sorted(PROGRAM_RULES):
        program_rule = PROGRAM_RULES[name]
        lines.append(
            f"{name}  [{program_rule.severity.value:7s}] (program) "
            f"{program_rule.description}"
        )
    return "\n".join(lines)
