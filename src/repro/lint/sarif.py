"""SARIF 2.1.0 output for lint results.

SARIF (Static Analysis Results Interchange Format) is what CI code
scanners ingest: emitting it lets the program-analysis findings surface
as first-class code-review annotations instead of log text.  Only the
subset of the format we populate is produced — one ``run`` by the
``repro-lint`` driver, one ``result`` per violation, with rule metadata
drawn from both the per-file and program rule registries.

:func:`validate_sarif` is a structural validator for that subset (the
golden tests run it offline; full JSON-schema validation against the
published schema is intentionally not attempted so the test suite needs
no network access).
"""

from __future__ import annotations

import json
from collections.abc import Sequence

from repro.lint.engine import RULES, Severity, Violation
from repro.lint.program.rules import PROGRAM_RULES

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "sarif_document", "format_sarif", "validate_sarif"]

SARIF_SCHEMA_URI = (
    "https://json.schemastore.org/sarif-2.1.0.json"
)
SARIF_VERSION = "2.1.0"

#: Reported as ``tool.driver.version``; bump alongside rule-set changes.
TOOL_VERSION = "1.2.0"


def _level(severity: Severity) -> str:
    return "error" if severity is Severity.ERROR else "warning"


def _rule_metadata() -> "list[dict[str, object]]":
    """Every registered rule (per-file + program), sorted by id."""
    merged: "dict[str, tuple[str, Severity]]" = {}
    for name, rule in RULES.items():
        merged[name] = (rule.description, rule.severity)
    for name, program_rule in PROGRAM_RULES.items():
        merged[name] = (program_rule.description, program_rule.severity)
    # Findings synthesized by the drivers rather than a rule class.
    merged.setdefault("SYNTAX", ("file could not be parsed", Severity.ERROR))
    return [
        {
            "id": name,
            "shortDescription": {"text": merged[name][0]},
            "defaultConfiguration": {"level": _level(merged[name][1])},
        }
        for name in sorted(merged)
    ]


def _artifact_uri(path: str) -> str:
    """Forward-slash relative URI, as SARIF artifactLocation expects."""
    return path.replace("\\", "/").lstrip("/")


def sarif_document(
    violations: "Sequence[Violation]",
    *,
    baselined: "Sequence[Violation]" = (),
) -> "dict[str, object]":
    """Build the SARIF log for one lint run.

    Gating *violations* carry ``baselineState: "new"``; *baselined*
    findings are included with ``baselineState: "unchanged"`` so scanners
    show the full picture while only new findings gate.
    """
    rules_meta = _rule_metadata()
    rule_index = {str(meta["id"]): i for i, meta in enumerate(rules_meta)}

    def result(violation: Violation, state: str) -> "dict[str, object]":
        out: "dict[str, object]" = {
            "ruleId": violation.rule,
            "ruleIndex": rule_index.get(violation.rule, -1),
            "level": _level(violation.severity),
            "message": {"text": violation.message},
            "baselineState": state,
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": _artifact_uri(violation.path)},
                        "region": {
                            "startLine": max(violation.line, 1),
                            "startColumn": violation.col + 1,
                        },
                    }
                }
            ],
        }
        if violation.detail is not None:
            out["properties"] = dict(violation.detail)
        return out

    results = [result(v, "new") for v in violations]
    results.extend(result(v, "unchanged") for v in baselined)
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro-lint",
                        "version": TOOL_VERSION,
                        "rules": rules_meta,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }


def format_sarif(
    violations: "Sequence[Violation]",
    *,
    baselined: "Sequence[Violation]" = (),
) -> str:
    """The SARIF log serialized for ``--format sarif``."""
    return json.dumps(
        sarif_document(violations, baselined=baselined), indent=2, sort_keys=True
    )


def validate_sarif(doc: object) -> "list[str]":
    """Structural validation of the SARIF subset this module emits.

    Returns a list of problems (empty when the document is valid).  The
    checks mirror the required properties of the SARIF 2.1.0 schema for
    the populated subset: top-level version/runs, tool.driver.name, and
    per-result ruleId / message.text / physicalLocation shape.
    """
    problems: "list[str]" = []
    if not isinstance(doc, dict):
        return ["document: expected a JSON object"]
    if doc.get("version") != SARIF_VERSION:
        problems.append(f"version: expected {SARIF_VERSION!r}")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        problems.append("runs: expected a non-empty array")
        return problems
    for i, run in enumerate(runs):
        if not isinstance(run, dict):
            problems.append(f"runs[{i}]: expected an object")
            continue
        driver = run.get("tool", {}).get("driver", {}) if isinstance(run.get("tool"), dict) else {}
        if not isinstance(driver, dict) or not isinstance(driver.get("name"), str):
            problems.append(f"runs[{i}].tool.driver.name: expected a string")
        rules = driver.get("rules", []) if isinstance(driver, dict) else []
        rule_ids = set()
        if isinstance(rules, list):
            for j, meta in enumerate(rules):
                if not isinstance(meta, dict) or not isinstance(meta.get("id"), str):
                    problems.append(f"runs[{i}].tool.driver.rules[{j}].id: expected a string")
                else:
                    rule_ids.add(meta["id"])
        results = run.get("results")
        if not isinstance(results, list):
            problems.append(f"runs[{i}].results: expected an array")
            continue
        for j, res in enumerate(results):
            where = f"runs[{i}].results[{j}]"
            if not isinstance(res, dict):
                problems.append(f"{where}: expected an object")
                continue
            if not isinstance(res.get("ruleId"), str):
                problems.append(f"{where}.ruleId: expected a string")
            elif rule_ids and res["ruleId"] not in rule_ids:
                problems.append(f"{where}.ruleId: {res['ruleId']!r} not in driver rules")
            message = res.get("message")
            if not isinstance(message, dict) or not isinstance(message.get("text"), str):
                problems.append(f"{where}.message.text: expected a string")
            if res.get("level") not in ("none", "note", "warning", "error"):
                problems.append(f"{where}.level: invalid level")
            locations = res.get("locations")
            if not isinstance(locations, list) or not locations:
                problems.append(f"{where}.locations: expected a non-empty array")
                continue
            for k, loc in enumerate(locations):
                physical = loc.get("physicalLocation") if isinstance(loc, dict) else None
                if not isinstance(physical, dict):
                    problems.append(f"{where}.locations[{k}].physicalLocation: missing")
                    continue
                artifact = physical.get("artifactLocation")
                if not isinstance(artifact, dict) or not isinstance(artifact.get("uri"), str):
                    problems.append(
                        f"{where}.locations[{k}].physicalLocation.artifactLocation.uri: expected a string"
                    )
                region = physical.get("region")
                if not isinstance(region, dict) or not isinstance(region.get("startLine"), int):
                    problems.append(
                        f"{where}.locations[{k}].physicalLocation.region.startLine: expected an integer"
                    )
                elif region["startLine"] < 1:
                    problems.append(
                        f"{where}.locations[{k}].physicalLocation.region.startLine: must be >= 1"
                    )
    return problems
