"""Model-invariant contracts: the paper's identities as a typed, checkable table.

The C-AMAT and LPM equations are not merely formulas the code evaluates —
they are *identities* that every measurement the analyzer emits must
satisfy exactly (up to float rounding):

========================  =====================================================
``cycle_conservation``    every memory-active cycle is hit-active or a pure
                          miss cycle: ``active == hit_active + pure_miss``
``pure_subset``           pure misses/cycles are subsets of misses/cycles
``rate_bounds``           ``0 <= pMR <= MR <= 1`` (a pure miss is a miss)
``concurrency_floor``     ``C_H, Cm, C_M >= 1`` (an active cycle has >= 1
                          in-flight access)
``eq2_identity``          Eq. (2): ``C-AMAT == H/C_H + pMR*pAMP/C_M`` — holds
                          exactly with ``H`` the mean hit time, by the
                          incidence-counting identities
``eq3_apc_inverse``       Eq. (3): ``C-AMAT * APC == 1``
``finite_layer``          every layer field is finite
``lpmr_definitions``      Eqs. (9)-(11): each LPMR equals its defining ratio
``report_bounds``         miss rates and ``f_mem`` in [0, 1]; ``cpi_exe > 0``;
                          overlap ratio in [0, 1); ``C_H1 >= 1``
``finite_report``         every report field is finite
========================  =====================================================

Producers of :class:`~repro.core.analyzer.LayerMeasurement`,
:class:`~repro.sim.stats.HierarchyStats` and
:class:`~repro.core.lpm.LPMRReport` declare which contracts their output
satisfies with the :func:`satisfies` decorator; lint rule CTR001 statically
rejects report-producing functions that make no declaration.  The test
suite turns on :func:`runtime_checks`, under which every decorated call
verifies its actual return value and raises :class:`ContractViolation` on
the first broken identity.

The checkers use duck typing (``getattr``) rather than importing the model
types, so this module stays import-light and cycle-free — any layer can
import it.
"""

from __future__ import annotations

import functools
import math
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, TypeVar

from repro.runtime.errors import MeasurementError

__all__ = [
    "Contract",
    "CONTRACTS",
    "ContractViolation",
    "satisfies",
    "verify",
    "check_layer",
    "check_stats",
    "check_report",
    "runtime_checks",
    "runtime_checks_enabled",
    "set_runtime_checks",
]

#: Relative tolerance for identity checks: the identities are exact in real
#: arithmetic, so only accumulated rounding error is admitted.
_RTOL = 1e-9
_ATOL = 1e-9


class ContractViolation(MeasurementError):
    """A model output broke one of the declared invariants.

    Deterministic by construction (the same inputs rebreak the same
    identity), so the evaluation pool must not retry it.
    """

    retryable = False


@dataclass(frozen=True)
class Contract:
    """One machine-checkable invariant over a model output object."""

    name: str
    equation: str
    description: str
    #: Which object kind the contract applies to: "layer", "stats", "report".
    applies_to: str
    #: Returns failure messages (empty when the contract holds).
    check: Callable[[Any], list[str]]


def _close(a: float, b: float, scale: float = 1.0) -> bool:
    return math.isclose(a, b, rel_tol=_RTOL, abs_tol=_ATOL * max(1.0, abs(scale)))


def _finite_fields(obj: Any, fields: tuple[str, ...]) -> list[str]:
    problems = []
    for name in fields:
        value = float(getattr(obj, name))
        if not math.isfinite(value):
            problems.append(f"{name} is not finite: {value}")
    return problems


# -- layer contracts ---------------------------------------------------------

def _check_cycle_conservation(m: Any) -> list[str]:
    lhs = m.active_cycles
    rhs = m.hit_active_cycles + m.pure_miss_cycles
    if lhs != rhs:
        return [
            f"active_cycles ({lhs}) != hit_active_cycles "
            f"({m.hit_active_cycles}) + pure_miss_cycles ({m.pure_miss_cycles})"
        ]
    return []


def _check_pure_subset(m: Any) -> list[str]:
    problems = []
    if m.pure_miss_cycles > m.miss_active_cycles:
        problems.append(
            f"pure_miss_cycles ({m.pure_miss_cycles}) > miss_active_cycles "
            f"({m.miss_active_cycles})"
        )
    if m.pure_miss_count > m.miss_count:
        problems.append(
            f"pure_miss_count ({m.pure_miss_count}) > miss_count ({m.miss_count})"
        )
    return problems


def _check_rate_bounds(m: Any) -> list[str]:
    pmr, mr = m.pure_miss_rate, m.miss_rate
    if not (0.0 <= pmr <= mr + _ATOL and mr <= 1.0 + _ATOL):
        return [f"rate bounds violated: pMR={pmr}, MR={mr} (need 0 <= pMR <= MR <= 1)"]
    return []


def _check_concurrency_floor(m: Any) -> list[str]:
    problems = []
    for name in ("hit_concurrency", "miss_concurrency", "pure_miss_concurrency"):
        value = getattr(m, name)
        if value < 1.0 - _ATOL:
            problems.append(f"{name} = {value} < 1")
    return problems


def _check_eq2_identity(m: Any) -> list[str]:
    if m.accesses == 0:
        return [] if m.camat == 0.0 else [f"empty layer has camat = {m.camat}"]
    model = m.camat_params.value
    if not _close(model, m.camat, scale=m.camat):
        return [
            f"Eq. (2) broken: H/C_H + pMR*pAMP/C_M = {model} but "
            f"active/accesses = {m.camat}"
        ]
    return []


def _check_eq3_apc_inverse(m: Any) -> list[str]:
    if m.accesses == 0 or m.active_cycles == 0:
        if m.camat != 0.0 or m.apc != 0.0:
            return [f"degenerate layer has camat={m.camat}, apc={m.apc} (want 0, 0)"]
        return []
    if not _close(m.camat * m.apc, 1.0):
        return [f"Eq. (3) broken: camat * apc = {m.camat * m.apc} != 1"]
    return []


_LAYER_FIELDS = (
    "hit_time", "hit_concurrency", "miss_rate", "avg_miss_penalty",
    "miss_concurrency", "pure_miss_rate", "pure_miss_penalty",
    "pure_miss_concurrency", "apc", "camat", "amat", "eta",
)


def _check_finite_layer(m: Any) -> list[str]:
    return _finite_fields(m, _LAYER_FIELDS)


# -- stats / report contracts ------------------------------------------------

def _lpmr_mismatch(name: str, actual: float, expected: float) -> list[str]:
    if not _close(actual, expected, scale=max(abs(actual), abs(expected))):
        return [f"{name} = {actual} but its defining ratio gives {expected}"]
    return []


def _check_lpmr_definitions(obj: Any) -> list[str]:
    """Eqs. (9)-(11) on either a HierarchyStats or an LPMRReport.

    Both carry ``lpmr1..3``, ``f_mem`` and ``cpi_exe``; the C-AMATs and miss
    ratios come from layers (stats) or scalar fields (report).
    """
    if hasattr(obj, "l1"):  # HierarchyStats
        camat1, camat2 = obj.l1.camat, obj.l2.camat
        third = obj.l3 if getattr(obj, "l3", None) is not None else obj.mem
        camat3 = third.camat
        mr1, mr2 = obj.mr1_request, obj.mr2_request
    else:  # LPMRReport
        camat1, camat2, camat3 = obj.camat1, obj.camat2, obj.camat3
        mr1, mr2 = obj.mr1, obj.mr2
    if obj.cpi_exe <= 0.0:
        expected = (0.0, 0.0, 0.0)
    else:
        expected = (
            camat1 * obj.f_mem / obj.cpi_exe,
            camat2 * obj.f_mem * mr1 / obj.cpi_exe,
            camat3 * obj.f_mem * mr1 * mr2 / obj.cpi_exe,
        )
    problems = []
    problems += _lpmr_mismatch("lpmr1 (Eq. 9)", obj.lpmr1, expected[0])
    problems += _lpmr_mismatch("lpmr2 (Eq. 10)", obj.lpmr2, expected[1])
    problems += _lpmr_mismatch("lpmr3 (Eq. 11)", obj.lpmr3, expected[2])
    return problems


def _check_report_bounds(r: Any) -> list[str]:
    problems = []
    if hasattr(r, "l1"):  # HierarchyStats: bounds on the raw measured ratios
        pairs = (("mr1_request", r.mr1_request), ("mr2_request", r.mr2_request))
        overlap = r.overlap_ratio_cm
        cpi_exe_positive = r.cpi_exe >= 0.0  # 0 allowed pre-clamping
        hit_conc = r.l1.hit_concurrency
    else:
        pairs = (("mr1", r.mr1), ("mr2", r.mr2), ("f_mem", r.f_mem))
        overlap = r.overlap_ratio_cm
        cpi_exe_positive = r.cpi_exe > 0.0
        hit_conc = r.hit_concurrency1
    for name, value in pairs:
        if not (0.0 - _ATOL <= value <= 1.0 + _ATOL):
            problems.append(f"{name} = {value} outside [0, 1]")
    if not (0.0 <= overlap < 1.0):
        problems.append(f"overlap_ratio_cm = {overlap} outside [0, 1)")
    if not cpi_exe_positive:
        problems.append(f"cpi_exe = {r.cpi_exe} must be > 0")
    if hit_conc < 1.0 - _ATOL:
        problems.append(f"L1 hit concurrency = {hit_conc} < 1")
    return problems


_REPORT_FIELDS = (
    "lpmr1", "lpmr2", "lpmr3", "camat1", "camat2", "camat3",
    "mr1", "mr2", "f_mem", "cpi_exe", "overlap_ratio_cm", "eta_combined",
    "hit_time1", "hit_concurrency1",
)


def _check_finite_report(r: Any) -> list[str]:
    return _finite_fields(r, _REPORT_FIELDS)


def _check_stats_layers(s: Any) -> list[str]:
    problems = []
    layers = [("l1", s.l1), ("l2", s.l2), ("mem", s.mem)]
    if getattr(s, "l3", None) is not None:
        layers.append(("l3", s.l3))
    for name, layer in layers:
        for contract_name in _LAYER_CONTRACT_NAMES:
            for problem in CONTRACTS[contract_name].check(layer):
                problems.append(f"{name}: {problem}")
    return problems


_CONTRACT_LIST = [
    Contract(
        name="cycle_conservation",
        equation="active = hit_active + pure_miss (cycle accounting)",
        description="every memory-active cycle is hit-active or a pure miss cycle",
        applies_to="layer",
        check=_check_cycle_conservation,
    ),
    Contract(
        name="pure_subset",
        equation="pure_miss_cycles <= miss_cycles; pure_misses <= misses",
        description="pure misses are a subset of misses",
        applies_to="layer",
        check=_check_pure_subset,
    ),
    Contract(
        name="rate_bounds",
        equation="0 <= pMR <= MR <= 1",
        description="a pure miss is a miss; rates are fractions of accesses",
        applies_to="layer",
        check=_check_rate_bounds,
    ),
    Contract(
        name="concurrency_floor",
        equation="C_H >= 1, Cm >= 1, C_M >= 1",
        description="an active cycle has at least one in-flight access",
        applies_to="layer",
        check=_check_concurrency_floor,
    ),
    Contract(
        name="eq2_identity",
        equation="C-AMAT = H/C_H + pMR*pAMP/C_M (Eq. 2)",
        description="the five-parameter decomposition equals active/accesses",
        applies_to="layer",
        check=_check_eq2_identity,
    ),
    Contract(
        name="eq3_apc_inverse",
        equation="C-AMAT * APC = 1 (Eq. 3)",
        description="C-AMAT is the reciprocal of accesses per active cycle",
        applies_to="layer",
        check=_check_eq3_apc_inverse,
    ),
    Contract(
        name="finite_layer",
        equation="all layer fields finite",
        description="no NaN/inf escapes a layer measurement",
        applies_to="layer",
        check=_check_finite_layer,
    ),
    Contract(
        name="lpmr_definitions",
        equation="LPMR_i = C-AMAT_i * f_mem * prod(MR) / CPI_exe (Eqs. 9-11)",
        description="each matching ratio equals its defining request/supply ratio",
        applies_to="stats,report",
        check=_check_lpmr_definitions,
    ),
    Contract(
        name="report_bounds",
        equation="MR, f_mem in [0,1]; overlap in [0,1); CPI_exe > 0; C_H1 >= 1",
        description="report scalars lie in their physical ranges",
        applies_to="stats,report",
        check=_check_report_bounds,
    ),
    Contract(
        name="finite_report",
        equation="all report fields finite",
        description="no NaN/inf escapes an LPMR report",
        applies_to="report",
        check=_check_finite_report,
    ),
    Contract(
        name="stats_layers",
        equation="every layer of the hierarchy satisfies the layer contracts",
        description="per-layer contracts applied to l1/l2/mem (and l3)",
        applies_to="stats",
        check=_check_stats_layers,
    ),
]

#: The typed contract table, keyed by contract name.
CONTRACTS: dict[str, Contract] = {c.name: c for c in _CONTRACT_LIST}

_LAYER_CONTRACT_NAMES = tuple(
    c.name for c in _CONTRACT_LIST if c.applies_to == "layer"
)
_STATS_CONTRACT_NAMES = ("stats_layers", "lpmr_definitions", "report_bounds")
_REPORT_CONTRACT_NAMES = ("lpmr_definitions", "report_bounds", "finite_report")


# -- verification entry points ----------------------------------------------

def verify(obj: Any, names: "tuple[str, ...] | list[str]") -> list[str]:
    """Run the named contracts against *obj*; returns failure messages."""
    problems: list[str] = []
    for name in names:
        contract = CONTRACTS[name]
        for problem in contract.check(obj):
            problems.append(f"[{name}] {problem} ({contract.equation})")
    return problems


def _raise_if_broken(obj: Any, names: "tuple[str, ...]", kind: str) -> Any:
    problems = verify(obj, names)
    if problems:
        summary = "; ".join(problems)
        raise ContractViolation(f"{kind} breaks model contracts: {summary}")
    return obj


def check_layer(measurement: Any) -> Any:
    """Assert all layer contracts on a LayerMeasurement; returns it."""
    return _raise_if_broken(measurement, _LAYER_CONTRACT_NAMES, "layer measurement")


def check_stats(stats: Any) -> Any:
    """Assert all hierarchy contracts on a HierarchyStats; returns it."""
    return _raise_if_broken(stats, _STATS_CONTRACT_NAMES, "hierarchy stats")


def check_report(report: Any) -> Any:
    """Assert all report contracts on an LPMRReport; returns it."""
    return _raise_if_broken(report, _REPORT_CONTRACT_NAMES, "LPMR report")


# -- declaration + runtime assertion mode ------------------------------------

_runtime_checks_enabled = False  # repro: noqa[RACE002] -- per-process assertion mode by design: fork workers inherit the flag, spawn workers default to off and simply skip the optional output checks; measured results are identical either way

F = TypeVar("F", bound=Callable[..., Any])


def runtime_checks_enabled() -> bool:
    """Whether decorated producers verify their outputs at call time."""
    return _runtime_checks_enabled


def set_runtime_checks(enabled: bool) -> None:
    """Globally enable/disable runtime contract verification."""
    global _runtime_checks_enabled
    _runtime_checks_enabled = enabled


@contextmanager
def runtime_checks() -> Iterator[None]:
    """Context manager enabling runtime verification (used by the tests)."""
    previous = _runtime_checks_enabled
    set_runtime_checks(True)
    try:
        yield
    finally:
        set_runtime_checks(previous)


def satisfies(*names: str) -> Callable[[F], F]:
    """Declare which contracts a report-producing function's output satisfies.

    The declaration is machine-checked twice: statically, lint rule CTR001
    requires every function returning a ``LayerMeasurement`` /
    ``HierarchyStats`` / ``LPMRReport`` constructor to carry this decorator;
    dynamically, under :func:`runtime_checks` every call verifies its actual
    return value against the declared contracts and raises
    :class:`ContractViolation` on the first broken identity.
    """
    for name in names:
        if name not in CONTRACTS:
            known = ", ".join(sorted(CONTRACTS))
            raise KeyError(f"unknown contract {name!r} (known: {known})")
    if not names:
        raise ValueError("satisfies() requires at least one contract name")

    def decorate(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            result = fn(*args, **kwargs)
            if _runtime_checks_enabled:
                _raise_if_broken(result, names, f"{fn.__qualname__}() output")
            return result

        wrapper.__repro_contracts__ = names  # type: ignore[attr-defined]
        return wrapper  # type: ignore[return-value]

    return decorate
