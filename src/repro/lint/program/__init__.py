"""``repro.lint.program`` — whole-program static analysis.

The per-file rule packs in :mod:`repro.lint` see one module at a time, so
they can only *approximate* cross-module properties: CON001 flags every
module-level mutable container in pool-adjacent packages because it cannot
know which ones pool jobs actually reach, and DET001 bans legacy RNG APIs
per file because it cannot follow a generator handed across modules.  This
package sees the program:

* a **cross-module symbol table and import graph**
  (:mod:`~repro.lint.program.symbols`) built from one shared
  :class:`~repro.lint.engine.ASTCache` parse per file;
* a **coroutine-aware call graph** (:mod:`~repro.lint.program.callgraph`)
  rooted at the CLI commands, the evaluation-pool job paths and the
  simulation engine entry points, with kinded edges (call / await /
  spawn / executor) and a loop/thread/worker execution-context
  classification;
* an **intraprocedural CFG with reaching definitions** and a transitive
  **side-effect (purity + may-block) inference**
  (:mod:`~repro.lint.program.dataflow`);
* a **lock discovery and acquisition-order graph**
  (:mod:`~repro.lint.program.locks`) with cycle detection;
* the **RACE / PURE / FLOW / ASYNC rule packs**
  (:mod:`~repro.lint.program.rules`) plus SUP001, the eager rejection of
  unjustified suppressions, and the baseline workflow
  (:mod:`~repro.lint.program.baseline`) for graded adoption (the ASYNC
  rules are never baselined);
* a **value-analysis tier** (:mod:`~repro.lint.program.values`): interval
  abstract interpretation with widening/narrowing and branch refinement
  plus a unit-kind lattice over the model vocabulary, feeding the
  **VAL / UNIT / DRIFT rule packs**
  (:mod:`~repro.lint.program.rules_values`) — possible zero divisions,
  possibly-negative gathers (the PR-8 hetero-ROB bug shape), dimension
  mismatches, and cross-implementation model-constant drift (DRIFT001 is
  never baselined).

Run it with ``python -m repro lint --program``; see
``docs/STATIC_ANALYSIS.md`` for the architecture and rule reference.
"""

from repro.lint.program.baseline import (
    Baseline,
    fingerprint_violation,
    load_baseline,
    write_baseline,
)
from repro.lint.program.callgraph import (
    CallGraph,
    EntryPoints,
    ExecutionContexts,
    classify_contexts,
    find_entry_points,
)
from repro.lint.program.dataflow import (
    CFG,
    EffectAnalysis,
    FunctionEffects,
    build_cfg,
    reaching_definitions,
)
from repro.lint.program.driver import ProgramLintResult, run_program_lint
from repro.lint.program.locks import LockAnalysis
from repro.lint.program.rules import PROGRAM_RULES, ProgramRule
# Importing the pack registers VAL001/VAL002/UNIT001/DRIFT001.
from repro.lint.program.rules_values import (
    ModelConstantDrift,
    PossibleZeroDivision,
    PossiblyNegativeIndex,
    UnitMismatch,
)
from repro.lint.program.symbols import (
    FunctionInfo,
    GlobalVar,
    ModuleInfo,
    ProgramModel,
    build_program,
)
from repro.lint.program.values import (
    AbstractValue,
    Interval,
    ValueAnalysis,
    extract_model_constants,
)

__all__ = [
    "ProgramModel",
    "ModuleInfo",
    "FunctionInfo",
    "GlobalVar",
    "build_program",
    "CallGraph",
    "EntryPoints",
    "ExecutionContexts",
    "classify_contexts",
    "find_entry_points",
    "LockAnalysis",
    "CFG",
    "build_cfg",
    "reaching_definitions",
    "EffectAnalysis",
    "FunctionEffects",
    "PROGRAM_RULES",
    "ProgramRule",
    "Interval",
    "AbstractValue",
    "ValueAnalysis",
    "extract_model_constants",
    "PossibleZeroDivision",
    "PossiblyNegativeIndex",
    "UnitMismatch",
    "ModelConstantDrift",
    "Baseline",
    "fingerprint_violation",
    "load_baseline",
    "write_baseline",
    "ProgramLintResult",
    "run_program_lint",
]
