"""Cross-module symbol table and import graph.

The foundation every whole-program pass builds on: parse each file once
(through the shared :class:`~repro.lint.engine.ASTCache`), assign it a
dotted module name derived from the ``__init__.py`` package structure, and
index what it defines — top-level functions, class methods, module-level
globals — plus what it imports.  :meth:`ProgramModel.resolve` then maps a
dotted reference observed at a call site back to the defining
:class:`FunctionInfo` / :class:`GlobalVar`, chasing re-export chains
(``from repro.sim.engine import simulate`` re-exported through
``repro.sim.__init__``) so that ``repro.sim.simulate`` and
``repro.sim.engine.simulate`` resolve to the same symbol.

Like the per-file engine, everything here is purely syntactic: the program
model never imports or executes the code it analyzes.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.engine import ASTCache, ModuleContext, iter_python_files

__all__ = [
    "FunctionInfo",
    "GlobalVar",
    "ModuleInfo",
    "ProgramModel",
    "build_program",
    "module_name_for",
]

#: Calls producing a mutable container at module level (mirrors CON001).
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "defaultdict", "deque", "Counter"})


def module_name_for(path: Path) -> str:
    """The dotted module name of *path*, from its ``__init__.py`` chain.

    Walks upward while the parent directory is a package (contains
    ``__init__.py``); a file outside any package is just its stem.
    """
    path = path.resolve()
    parts = [path.stem] if path.name != "__init__.py" else []
    current = path.parent
    while (current / "__init__.py").exists():
        parts.insert(0, current.name)
        parent = current.parent
        if parent == current:  # filesystem root
            break
        current = parent
    return ".".join(parts) if parts else path.stem


def _is_mutable_value(node: ast.AST) -> bool:
    if isinstance(
        node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
    ):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CALLS
    return False


@dataclass
class FunctionInfo:
    """One top-level function or class method of one module."""

    module: str
    qualname: str
    node: "ast.FunctionDef | ast.AsyncFunctionDef"
    class_name: "str | None" = None
    #: Decorator references resolved to dotted names (imports applied).
    decorators: "tuple[str, ...]" = ()

    @property
    def ref(self) -> str:
        """Program-wide stable identity: ``module:qualname``."""
        return f"{self.module}:{self.qualname}"

    @property
    def name(self) -> str:
        """The bare function name (last qualname segment)."""
        return self.qualname.rsplit(".", 1)[-1]


@dataclass
class GlobalVar:
    """One module-level variable binding."""

    module: str
    name: str
    node: ast.stmt
    lineno: int
    #: Whether the bound value is a mutable container literal/constructor.
    mutable: bool
    #: ALL_CAPS / dunder naming — the frozen-registry convention.
    constant_style: bool

    @property
    def ref(self) -> str:
        """Program-wide stable identity: ``module:name``."""
        return f"{self.module}:{self.name}"


class ModuleInfo:
    """Symbols and imports of one parsed module."""

    def __init__(self, name: str, path: str, ctx: ModuleContext) -> None:
        self.name = name
        self.path = path
        self.ctx = ctx
        #: qualname -> function/method info (nested defs fold into parents).
        self.functions: "dict[str, FunctionInfo]" = {}
        #: class name -> method qualnames, for ``Cls()`` / ``self.m()`` resolution.
        self.classes: "dict[str, list[str]]" = {}
        #: module-level variable name -> binding info.
        self.globals: "dict[str, GlobalVar]" = {}
        self._collect()

    def _collect(self) -> None:
        for stmt in self.ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[stmt.name] = FunctionInfo(
                    module=self.name,
                    qualname=stmt.name,
                    node=stmt,
                    decorators=self._decorator_refs(stmt),
                )
            elif isinstance(stmt, ast.ClassDef):
                methods: "list[str]" = []
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        qualname = f"{stmt.name}.{sub.name}"
                        methods.append(qualname)
                        self.functions[qualname] = FunctionInfo(
                            module=self.name,
                            qualname=qualname,
                            node=sub,
                            class_name=stmt.name,
                            decorators=self._decorator_refs(sub),
                        )
                self.classes[stmt.name] = methods
            else:
                self._collect_global(stmt)

    def _decorator_refs(
        self, func: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> "tuple[str, ...]":
        refs = []
        for deco in func.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            chain = self.ctx.resolve_call_chain(target)
            if chain:
                refs.append(".".join(chain))
        return tuple(refs)

    def _collect_global(self, stmt: ast.stmt) -> None:
        targets: "list[ast.expr]" = []
        value: "ast.expr | None" = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if isinstance(target, ast.Name):
                self.globals[target.id] = GlobalVar(
                    module=self.name,
                    name=target.id,
                    node=stmt,
                    lineno=stmt.lineno,
                    mutable=value is not None and _is_mutable_value(value),
                    constant_style=(
                        target.id.startswith("__") or target.id == target.id.upper()
                    ),
                )

    def resolve_local(self, chain: "list[str]") -> "str | None":
        """Resolve an import-expanded chain rooted at a local symbol.

        Returns the dotted reference with this module's name substituted
        for the local root (``measure_layer`` -> ``repro.core.analyzer
        .measure_layer``), or ``None`` when the root is not defined here.
        """
        root = chain[0]
        if root in self.functions or root in self.classes or root in self.globals:
            return ".".join([self.name, *chain])
        return None


@dataclass
class Resolution:
    """Outcome of :meth:`ProgramModel.resolve` for one dotted reference."""

    kind: str  # "function" | "class" | "global" | "module"
    module: str
    function: "FunctionInfo | None" = None
    global_var: "GlobalVar | None" = None
    class_name: "str | None" = None


@dataclass
class ProgramModel:
    """The whole program: modules, their symbols, and the import graph."""

    modules: "dict[str, ModuleInfo]" = field(default_factory=dict)
    #: Shared parse cache (exposed so drivers can report single-parse stats).
    cache: ASTCache = field(default_factory=ASTCache)
    #: Files that failed to parse: path -> error message.
    parse_failures: "dict[str, str]" = field(default_factory=dict)

    # -- indexing -----------------------------------------------------------
    def functions(self) -> "Iterator[FunctionInfo]":
        """Every function of every module, in deterministic order."""
        for name in sorted(self.modules):
            info = self.modules[name]
            for qualname in sorted(info.functions):
                yield info.functions[qualname]

    def function(self, ref: str) -> "FunctionInfo | None":
        """Look up a function by its ``module:qualname`` reference."""
        module, _, qualname = ref.partition(":")
        info = self.modules.get(module)
        return info.functions.get(qualname) if info else None

    def module_of(self, path: str) -> "ModuleInfo | None":
        """The module whose source file is *path*."""
        resolved = str(Path(path))
        for info in self.modules.values():
            if str(Path(info.path)) == resolved:
                return info
        return None

    # -- import graph -------------------------------------------------------
    def import_graph(self) -> "dict[str, set[str]]":
        """Module -> program-internal modules it imports (re-exports kept)."""
        graph: "dict[str, set[str]]" = {name: set() for name in self.modules}
        for name, info in self.modules.items():
            imported = [
                *info.ctx.import_aliases.values(),
                *(t.rsplit(".", 1)[0] for t in info.ctx.from_imports.values()),
            ]
            for target in imported:
                resolved = self._closest_module(target)
                if resolved is not None and resolved != name:
                    graph[name].add(resolved)
        return graph

    def _closest_module(self, dotted: str) -> "str | None":
        """The longest known module name that prefixes *dotted*."""
        parts = dotted.split(".")
        for end in range(len(parts), 0, -1):
            candidate = ".".join(parts[:end])
            if candidate in self.modules:
                return candidate
        return None

    # -- symbol resolution --------------------------------------------------
    def resolve(self, dotted: str, *, _depth: int = 0) -> "Resolution | None":
        """Resolve a dotted reference to its defining symbol.

        Chases re-export chains through package ``__init__`` modules up to
        a small depth bound (cycles in hand-written imports are rare but
        must not hang the analyzer).
        """
        if _depth > 8:
            return None
        module_name = self._closest_module(dotted)
        if module_name is None:
            return None
        info = self.modules[module_name]
        rest = dotted[len(module_name) :].lstrip(".")
        if not rest:
            return Resolution(kind="module", module=module_name)
        head, _, tail = rest.partition(".")
        if rest in info.functions:
            return Resolution(
                kind="function", module=module_name, function=info.functions[rest]
            )
        if head in info.classes:
            if not tail:  # ``Cls(...)`` — constructor
                init = info.functions.get(f"{head}.__init__")
                return Resolution(
                    kind="class",
                    module=module_name,
                    class_name=head,
                    function=init,
                )
            return None  # unknown method reference
        if head in info.globals and not tail:
            return Resolution(
                kind="global", module=module_name, global_var=info.globals[head]
            )
        # Re-export: the name is imported into this module from elsewhere.
        if head in info.ctx.from_imports:
            target = info.ctx.from_imports[head]
            suffix = f".{tail}" if tail else ""
            return self.resolve(f"{target}{suffix}", _depth=_depth + 1)
        if head in info.ctx.import_aliases:
            target = info.ctx.import_aliases[head]
            suffix = f".{tail}" if tail else ""
            return self.resolve(f"{target}{suffix}", _depth=_depth + 1)
        return None

    def resolve_in_module(
        self, info: ModuleInfo, node: ast.AST
    ) -> "Resolution | None":
        """Resolve a name/attribute chain observed inside *info*'s source."""
        chain = info.ctx.resolve_call_chain(node)
        if not chain:
            return None
        local = info.resolve_local(chain)
        if local is not None:
            return self.resolve(local)
        return self.resolve(".".join(chain))


def build_program(
    paths: "Sequence[str | Path]", *, cache: "ASTCache | None" = None
) -> ProgramModel:
    """Parse every Python file under *paths* into a :class:`ProgramModel`.

    Files that fail to parse are recorded in
    :attr:`ProgramModel.parse_failures` (the driver reports them as
    ``SYNTAX`` findings) rather than aborting the build.
    """
    model = ProgramModel(cache=cache if cache is not None else ASTCache())
    for file_path in iter_python_files(Path(p) for p in paths):
        rel = str(file_path)
        try:
            ctx = model.cache.context(rel)
        except (SyntaxError, ValueError, OSError) as exc:
            model.parse_failures[rel] = str(exc)
            continue
        name = module_name_for(file_path)
        # Two roots shipping a same-named module: keep the first, note the
        # clash deterministically (sorted file iteration makes this stable).
        if name in model.modules:
            name = f"{name}@{rel}"
        model.modules[name] = ModuleInfo(name, rel, ctx)
    return model
